"""RNG discipline tests."""

import numpy as np
import pytest

from repro.util.rng import as_generator, spawn_generators


def test_as_generator_from_none_gives_generator():
    gen = as_generator(None)
    assert isinstance(gen, np.random.Generator)


def test_as_generator_from_int_is_reproducible():
    a = as_generator(42).uniform(size=5)
    b = as_generator(42).uniform(size=5)
    np.testing.assert_array_equal(a, b)


def test_as_generator_passes_through_generator():
    gen = np.random.default_rng(1)
    assert as_generator(gen) is gen


def test_as_generator_accepts_seed_sequence():
    seq = np.random.SeedSequence(5)
    gen = as_generator(seq)
    assert isinstance(gen, np.random.Generator)


def test_as_generator_rejects_strings():
    with pytest.raises(TypeError):
        as_generator("not a seed")


def test_as_generator_rejects_float():
    with pytest.raises(TypeError):
        as_generator(1.5)


def test_spawn_generators_count():
    children = spawn_generators(3, 4)
    assert len(children) == 4


def test_spawn_generators_zero():
    assert spawn_generators(3, 0) == []


def test_spawn_generators_negative_raises():
    with pytest.raises(ValueError):
        spawn_generators(3, -1)


def test_spawn_generators_reproducible():
    a = [g.uniform() for g in spawn_generators(11, 3)]
    b = [g.uniform() for g in spawn_generators(11, 3)]
    assert a == b


def test_spawn_generators_children_differ():
    children = spawn_generators(11, 3)
    draws = [g.uniform() for g in children]
    assert len(set(draws)) == 3


def test_spawned_children_independent_of_parent_draws():
    parent = np.random.default_rng(8)
    children = spawn_generators(parent, 2)
    # Further parent draws must not affect already-spawned children.
    first = children[0].uniform()
    parent2 = np.random.default_rng(8)
    children2 = spawn_generators(parent2, 2)
    parent2.uniform(size=100)
    assert children2[0].uniform() == first
