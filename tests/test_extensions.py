"""Tests for extension modules: geographic routing, aggregation,
identity-aware tracking, proxy defense, reporting."""

import numpy as np
import pytest

from repro.countermeasures import proxy_collection_flux, proxy_defense_overhead
from repro.errors import ConfigurationError
from repro.routing import build_collection_tree
from repro.routing.geographic import build_geographic_tree
from repro.smc import TrackerConfig
from repro.smc.identity import IdentityAwareTracker, _SlotFingerprint
from repro.traffic import simulate_flux
from repro.traffic.aggregation import aggregated_subtree_flux


class TestGeographicRouting:
    def test_spans_connected_network(self, small_network):
        tree = build_geographic_tree(small_network, np.array([7.0, 7.0]), rng=0)
        assert tree.reachable.all()

    def test_roots_at_nearest_node(self, small_network):
        sink = np.array([3.0, 11.0])
        tree = build_geographic_tree(small_network, sink, rng=0)
        assert tree.root == small_network.nearest_node(sink)

    def test_parents_strictly_closer_or_recovered(self, small_network):
        tree = build_geographic_tree(small_network, np.array([7.0, 7.0]), rng=0)
        root_pos = small_network.positions[tree.root]
        d = np.hypot(
            small_network.positions[:, 0] - root_pos[0],
            small_network.positions[:, 1] - root_pos[1],
        )
        closer = 0
        for node in range(small_network.node_count):
            if node != tree.root and d[tree.parents[node]] < d[node]:
                closer += 1
        # The vast majority of parents make geometric progress.
        assert closer > 0.9 * (small_network.node_count - 1)

    def test_parents_are_neighbors(self, small_network):
        tree = build_geographic_tree(small_network, np.array([7.0, 7.0]), rng=0)
        for node in range(small_network.node_count):
            if node != tree.root and tree.parents[node] >= 0:
                assert tree.parents[node] in small_network.graph.neighbors(node)

    def test_flux_conservation(self, small_network):
        tree = build_geographic_tree(small_network, np.array([7.0, 7.0]), rng=0)
        agg = tree.subtree_aggregate()
        assert agg[tree.root] == pytest.approx(tree.reachable.sum())

    def test_hops_consistent_with_parents(self, small_network):
        tree = build_geographic_tree(small_network, np.array([7.0, 7.0]), rng=0)
        for node in range(small_network.node_count):
            if node != tree.root and tree.hops[node] > 0:
                assert tree.hops[tree.parents[node]] == tree.hops[node] - 1

    def test_bad_root_raises(self, small_network):
        with pytest.raises(ConfigurationError):
            build_geographic_tree(small_network, np.zeros(2), root=10_000)


class TestAggregation:
    def _tree(self, small_network):
        return build_collection_tree(small_network, np.array([7.0, 7.0]), rng=0)

    def test_factor_one_matches_raw(self, small_network):
        tree = self._tree(small_network)
        w = np.full(small_network.node_count, 1.5)
        np.testing.assert_allclose(
            aggregated_subtree_flux(tree, w, 1.0), tree.subtree_aggregate(w)
        )

    def test_factor_zero_flattens(self, small_network):
        tree = self._tree(small_network)
        w = np.ones(small_network.node_count)
        flux = aggregated_subtree_flux(tree, w, 0.0)
        # Root carries own + one unit per child, not the whole network.
        children = tree.children_counts()[tree.root]
        assert flux[tree.root] == pytest.approx(1.0 + children)

    def test_monotone_in_factor(self, small_network):
        tree = self._tree(small_network)
        w = np.ones(small_network.node_count)
        f_low = aggregated_subtree_flux(tree, w, 0.2)
        f_high = aggregated_subtree_flux(tree, w, 0.8)
        assert f_high.sum() > f_low.sum()

    def test_factor_validated(self, small_network):
        tree = self._tree(small_network)
        with pytest.raises(ConfigurationError):
            aggregated_subtree_flux(
                tree, np.ones(small_network.node_count), 1.5
            )

    def test_weights_shape_checked(self, small_network):
        tree = self._tree(small_network)
        with pytest.raises(ConfigurationError):
            aggregated_subtree_flux(tree, np.ones(3), 1.0)


class TestIdentityTracker:
    def test_fingerprint_ewma(self):
        fp = _SlotFingerprint()
        fp.update(2.0, alpha=0.5)
        assert fp.theta_mean == 2.0
        fp.update(4.0, alpha=0.5)
        assert fp.theta_mean == pytest.approx(3.0)
        assert not fp.confident
        fp.update(3.0, alpha=0.5)
        assert fp.confident

    def test_constructor_validation(self, small_network):
        with pytest.raises(ConfigurationError):
            IdentityAwareTracker(
                small_network.field,
                small_network.positions[:20],
                2,
                ewma_alpha=0.0,
            )
        with pytest.raises(ConfigurationError):
            IdentityAwareTracker(
                small_network.field,
                small_network.positions[:20],
                2,
                max_permutation_size=1,
            )

    def test_delegates_to_base(self, small_network):
        from repro.network import sample_sniffers_percentage
        from repro.traffic import MeasurementModel

        gen = np.random.default_rng(0)
        sn = sample_sniffers_percentage(small_network, 20, rng=gen)
        tracker = IdentityAwareTracker(
            small_network.field,
            small_network.positions[sn],
            1,
            TrackerConfig(prediction_count=150, keep_count=10, max_speed=3.0),
            rng=gen,
        )
        truth = np.array([4.0, 11.0])
        mm = MeasurementModel(small_network, sn, smooth=True, rng=1)
        for t in range(4):
            flux = simulate_flux(small_network, [truth], [2.0], rng=t)
            step = tracker.step(mm.observe(flux, time=float(t)))
        assert len(tracker.history) == 4
        assert tracker.estimates().shape == (1, 2)
        assert np.linalg.norm(tracker.estimates()[0] - truth) < 4.0


class TestProxyDefense:
    def test_flux_peaks_at_proxy_not_user(self, small_network):
        gen = np.random.default_rng(1)
        user = np.array([2.0, 2.0])
        # Pick a proxy far from the user.
        proxy = small_network.nearest_node(np.array([13.0, 13.0]))
        flux, used_proxy = proxy_collection_flux(
            small_network, user, 2.0, rng=gen, proxy=proxy
        )
        assert used_proxy == proxy
        peak = int(np.argmax(flux))
        proxy_pos = small_network.positions[proxy]
        peak_pos = small_network.positions[peak]
        assert np.linalg.norm(peak_pos - proxy_pos) < np.linalg.norm(
            peak_pos - user
        )

    def test_total_traffic_exceeds_direct(self, small_network):
        gen = np.random.default_rng(2)
        user = np.array([2.0, 2.0])
        direct = simulate_flux(small_network, [user], [2.0], rng=gen)
        defended, _ = proxy_collection_flux(small_network, user, 2.0, rng=gen)
        overhead = proxy_defense_overhead(small_network, defended, direct)
        assert overhead > 0

    def test_bad_stretch_raises(self, small_network):
        with pytest.raises(ConfigurationError):
            proxy_collection_flux(small_network, np.zeros(2), 0.0)

    def test_bad_proxy_raises(self, small_network):
        with pytest.raises(ConfigurationError):
            proxy_collection_flux(
                small_network, np.zeros(2), 1.0, proxy=10_000
            )


class TestReporting:
    def test_markdown_table(self):
        from repro.experiments.reporting import _markdown_table

        text = _markdown_table([{"a": 1, "b": 2.5}])
        assert "| a | b |" in text
        assert "| 1 | 2.500 |" in text

    def test_result_to_markdown(self):
        from repro.experiments.harness import ExperimentResult
        from repro.experiments.reporting import result_to_markdown

        r = ExperimentResult(
            figure="Fig X", title="t", rows=[{"v": 1}], paper_reference="p"
        )
        text = result_to_markdown(r, 1.0)
        assert "## Fig X" in text
        assert "**Paper reports:** p" in text

    def test_plan_covers_all_figures(self):
        from repro.experiments.config import PaperDefaults
        from repro.experiments.reporting import build_experiment_plan

        plan = build_experiment_plan(PaperDefaults().scaled(10), seed=0)
        names = [name for name, _ in plan]
        assert names == [
            "Fig 3a", "Fig 3b", "Fig 4", "Fig 5", "Fig 6a", "Fig 6b",
            "Fig 7", "Fig 8a", "Fig 8b", "Fig 9", "Fig 10a", "Fig 10b",
        ]
