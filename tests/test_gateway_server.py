"""GatewayServer end to end over real sockets.

The serve layer's exactly-one-typed-reply invariant, extended through
the network: every request frame written by any of N concurrent
connections gets exactly one correlated reply frame (none lost, none
duplicated), malformed frames get typed error frames with the
connection surviving, a connection that dies before its reply is
written has that reply counted as dropped (never a scheduler hang),
and a tracked session driven over the wire is bitwise-identical to a
local tracking loop.
"""

import asyncio
import json
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, GatewayError
from repro.fpmap import build_fingerprint_map
from repro.gateway import GatewayClient, GatewayServer, protocol
from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage
from repro.serve import LocalizationService
from repro.smc import SequentialMonteCarloTracker
from repro.stream import SyntheticLiveSource, TrackingSession
from repro.traffic import MeasurementModel, simulate_flux


@pytest.fixture(scope="module")
def scenario():
    net = build_network(
        field=RectangularField(10, 10), node_count=100, radius=2.0, rng=5
    )
    sniffers = sample_sniffers_percentage(net, 20, rng=2)
    fmap = build_fingerprint_map(net.field, net.positions[sniffers],
                                 resolution=2.0)
    return net, sniffers, fmap


def _service(scenario, **kwargs):
    net, sniffers, fmap = scenario
    kwargs.setdefault("fingerprint_map", fmap)
    kwargs.setdefault("max_batch", 8)
    kwargs.setdefault("max_wait_s", 0.002)
    return LocalizationService(net.field, net.positions[sniffers], **kwargs)


def _observations(scenario, count, seed=0):
    net, sniffers, _ = scenario
    gen = np.random.default_rng(seed)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    out = []
    for _ in range(count):
        truth = net.field.sample_uniform(1, gen)
        flux = simulate_flux(
            net, list(truth), [float(gen.uniform(1.0, 3.0))], rng=gen
        )
        out.append(measure.observe(flux))
    return out


def _run(coro):
    return asyncio.run(coro)


class TestLifecycle:
    def test_ephemeral_port_is_published(self, scenario):
        with _service(scenario) as service:
            gateway = GatewayServer(service, port=0)
            assert gateway.port is None
            with gateway:
                assert isinstance(gateway.port, int) and gateway.port > 0
                snap = gateway.snapshot()
                assert snap["port"] == gateway.port
                assert snap["backend"] == "LocalizationService"

    def test_backend_must_expose_submit(self):
        with pytest.raises(ConfigurationError):
            GatewayServer(object())

    def test_connect_handshake_and_ping(self, scenario):
        with _service(scenario) as service, GatewayServer(service) as gateway:
            async def go():
                async with GatewayClient(
                    "127.0.0.1", gateway.port, "probe"
                ) as client:
                    pong = await client.ping()
                    return pong

            pong = _run(go())
            assert pong["type"] == "pong"
            snap = gateway.snapshot()
            assert snap["connections_opened"] == 1
            assert snap["connections_open"] == 0  # closed on exit


class TestExactlyOneReply:
    def test_no_lost_or_duplicated_replies(self, scenario):
        """6 connections x 5 pipelined requests: every id exactly once."""
        observations = _observations(scenario, 5, seed=1)
        with _service(scenario) as service, GatewayServer(service) as gateway:
            async def one_client(c):
                async with GatewayClient(
                    "127.0.0.1", gateway.port, f"client-{c}", timeout_s=60.0
                ) as client:
                    pending = [
                        client.localize(obs, id=f"c{c}-r{r}",
                                        candidate_count=24, seed=c * 100 + r)
                        for r, obs in enumerate(observations)
                    ]
                    return await asyncio.gather(*pending)

            async def go():
                return await asyncio.gather(
                    *(one_client(c) for c in range(6))
                )

            replies = [f for frames in _run(go()) for f in frames]
        ids = [f["id"] for f in replies]
        assert len(ids) == 30
        assert len(set(ids)) == 30  # none duplicated
        for frame in replies:
            assert frame["ok"] is True
            assert frame["kind"] == "localize"
            assert len(frame["estimates"]) >= 1
            assert frame["span_id"].endswith(frame["id"])
        assert gateway.metrics.replies_dropped == 0
        assert gateway.metrics.requests_forwarded == 30

    def test_malformed_frame_gets_typed_error_and_connection_survives(
        self, scenario
    ):
        with _service(scenario) as service, GatewayServer(service) as gateway:
            async def go():
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port
                )
                try:
                    writer.write(b"{this is not json\n")
                    await writer.drain()
                    error = json.loads(await reader.readline())
                    writer.write(protocol.encode_frame(
                        {"type": "ping", "id": "after"}
                    ))
                    await writer.drain()
                    pong = json.loads(await reader.readline())
                    return error, pong
                finally:
                    writer.close()
                    await writer.wait_closed()

            error, pong = _run(go())
        assert error["type"] == "error"
        assert error["code"] == "bad_frame"
        assert pong == {"type": "pong", "id": "after"}
        assert gateway.metrics.protocol_errors == 1

    def test_unknown_frame_type_is_typed(self, scenario):
        with _service(scenario) as service, GatewayServer(service) as gateway:
            async def go():
                async with GatewayClient("127.0.0.1", gateway.port) as client:
                    return await client.request({"type": "teleport"})

            frame = _run(go())
        assert frame["type"] == "error"
        assert frame["code"] == "unknown_type"

    def test_bad_request_frame_is_typed(self, scenario):
        with _service(scenario) as service, GatewayServer(service) as gateway:
            async def go():
                async with GatewayClient("127.0.0.1", gateway.port) as client:
                    return await client.request(
                        {"type": "localize", "observation": None}
                    )

            frame = _run(go())
        assert frame["type"] == "error"
        assert frame["code"] == "bad_request"

    def test_dead_connection_reply_is_dropped_not_hung(self, scenario):
        """Close right after sending: the reply is counted, never blocks."""
        obs = _observations(scenario, 1, seed=2)[0]
        with _service(scenario) as service, GatewayServer(service) as gateway:
            async def go():
                _, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port
                )
                writer.write(protocol.encode_frame({
                    "type": "localize", "id": "doomed",
                    "observation": protocol.observation_to_wire(obs),
                    "candidate_count": 24, "seed": 3,
                }))
                await writer.drain()
                writer.close()  # gone before the solve completes

            _run(go())
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if gateway.metrics.replies_dropped >= 1:
                    break
                time.sleep(0.02)
            assert gateway.metrics.replies_dropped >= 1
            # The service still resolved its future and stayed healthy.
            assert service.metrics.replies_ok >= 1


class TestSessionsOverTheWire:
    def test_tracked_stream_matches_local_loop_bitwise(self, scenario):
        net, sniffers, fmap = scenario
        windows = list(SyntheticLiveSource(
            net, sniffers, user_count=2, rounds=4, rng=3
        ))
        with _service(scenario) as service, GatewayServer(service) as gateway:
            async def go():
                async with GatewayClient(
                    "127.0.0.1", gateway.port, "tracker", timeout_s=60.0
                ) as client:
                    opened = await client.open_session("s", 2, seed=11)
                    frames = []
                    for obs in windows:
                        frames.append(await client.track_step("s", obs))
                    return opened, frames

            opened, frames = _run(go())
            session = service.close_session("s")
        assert opened["type"] == "session_opened"
        for frame in frames:
            assert frame["ok"] is True and frame["stepped"] is True
        local = TrackingSession("local", SequentialMonteCarloTracker(
            net.field, net.positions[sniffers], 2,
            rng=np.random.default_rng(11), fingerprint_map=fmap,
        ))
        for obs in windows:
            local.process(obs)
        assert np.array_equal(session.estimates(), local.estimates())
        # The wire frames themselves carry the estimates bitwise.
        wire_last = np.asarray(frames[-1]["estimates"], dtype=float)
        assert np.array_equal(wire_last, local.estimates()[-len(wire_last):])

    def test_duplicate_session_is_a_typed_error_frame(self, scenario):
        with _service(scenario) as service, GatewayServer(service) as gateway:
            async def go():
                async with GatewayClient("127.0.0.1", gateway.port) as client:
                    first = await client.open_session("dup", 1, seed=0)
                    second = await client.open_session("dup", 1, seed=0)
                    return first, second

            first, second = _run(go())
        assert first["type"] == "session_opened"
        assert second["type"] == "error"
        assert second["code"] == "bad_request"


class TestObservability:
    def test_trace_dump_carries_stage_decomposition(self, scenario):
        obs = _observations(scenario, 2, seed=4)
        with _service(scenario) as service, GatewayServer(
            service, name="gw"
        ) as gateway:
            async def go():
                async with GatewayClient(
                    "127.0.0.1", gateway.port, timeout_s=60.0
                ) as client:
                    for r, o in enumerate(obs):
                        await client.localize(o, id=f"t{r}",
                                              candidate_count=24, seed=r)
                    return await client.trace_dump(limit=10)

            dump = _run(go())
        assert dump["type"] == "traces"
        spans = {t["span_id"] for t in dump["traces"]}
        assert any(s.startswith("gw-") for s in spans)
        stages = dump["stages"]
        for stage in ("gateway_in", "admission", "solve", "reply",
                      "gateway_out"):
            assert stage in stages, f"missing stage {stage!r}"
            assert stages[stage]["count"] >= 1
        for trace in dump["traces"]:
            assert trace["total_s"] == pytest.approx(
                sum(trace["stages"].values())
            )
        assert dump["gateway"]["frames_received"] >= 3

    def test_metrics_frame_and_subscription_pushes(self, scenario):
        with _service(scenario) as service, GatewayServer(service) as gateway:
            async def go():
                async with GatewayClient("127.0.0.1", gateway.port) as client:
                    one_shot = await client.metrics()
                    pushes = await client.subscribe_metrics(
                        3, interval_s=0.02
                    )
                    return one_shot, pushes

            one_shot, pushes = _run(go())
        assert one_shot["type"] == "metrics"
        assert "gateway" in one_shot["snapshot"]
        assert "service" in one_shot["snapshot"]
        assert [p["seq"] for p in pushes] == [0, 1, 2]

    def test_client_request_raises_when_gateway_dies(self, scenario):
        with _service(scenario) as service:
            gateway = GatewayServer(service)
            gateway.start()

            async def go():
                client = GatewayClient(
                    "127.0.0.1", gateway.port, timeout_s=5.0
                )
                await client.connect()
                gateway.stop()  # connection torn down under the client
                with pytest.raises(GatewayError):
                    while True:  # first write may still land in buffers
                        await client.ping()
                await client.close()

            try:
                _run(go())
            finally:
                gateway.stop()


class TestFleetBackend:
    def test_localize_and_session_through_fleet(self, scenario):
        fleet_mod = pytest.importorskip("repro.fleet")
        net, sniffers, fmap = scenario
        obs = _observations(scenario, 2, seed=6)
        fleet = fleet_mod.ServeFleet(
            net.field, net.positions[sniffers], workers=2,
            fingerprint_map=fmap, max_batch=8, max_wait_s=0.002,
        )
        with fleet, GatewayServer(fleet) as gateway:
            async def go():
                async with GatewayClient(
                    "127.0.0.1", gateway.port, timeout_s=120.0
                ) as client:
                    replies = [
                        await client.localize(o, id=f"f{r}",
                                              candidate_count=24, seed=r)
                        for r, o in enumerate(obs)
                    ]
                    opened = await client.open_session("fs", 1, seed=5)
                    snap = await client.metrics()
                    return replies, opened, snap

            replies, opened, snap = _run(go())
        for frame in replies:
            assert frame["ok"] is True
        assert opened["type"] == "session_opened"
        assert "fleet" in snap["snapshot"]
