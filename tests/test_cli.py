"""CLI tests (parser wiring + command smoke runs on small networks)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.nodes == 900
        assert args.users == 2
        assert args.deployment == "perturbed_grid"

    def test_global_seed(self):
        args = build_parser().parse_args(["--seed", "7", "simulate"])
        assert args.seed == 7

    def test_experiment_figures(self):
        args = build_parser().parse_args(["experiment", "6a"])
        assert args.figure == "6a"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "99"])

    def test_track_crossing_flag(self):
        args = build_parser().parse_args(["track", "--crossing"])
        assert args.crossing


_SMALL = ["--nodes", "225", "--field", "15", "--radius", "2.0"]


class TestCommands:
    def test_simulate_stdout(self, capsys):
        rc = main(["--seed", "1", "simulate", *_SMALL, "--users", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "network: 225 nodes" in out
        assert "user 0" in out

    def test_simulate_csv(self, tmp_path, capsys):
        out_file = tmp_path / "flux.csv"
        rc = main(
            ["--seed", "1", "simulate", *_SMALL, "--output", str(out_file)]
        )
        assert rc == 0
        lines = out_file.read_text().splitlines()
        assert lines[0] == "node,x,y,flux"
        assert len(lines) == 226

    def test_localize(self, capsys):
        rc = main(
            [
                "--seed", "2", "localize", *_SMALL,
                "--users", "1", "--percentage", "20",
                "--candidates", "500", "--restarts", "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean error" in out

    def test_track(self, capsys):
        rc = main(
            [
                "--seed", "3", "track", *_SMALL,
                "--users", "1", "--rounds", "4",
                "--percentage", "20", "--predictions", "150",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "final mean error" in out

    def test_traces_summary(self, capsys):
        rc = main(
            ["--seed", "4", "traces", "--users", "3", "--aps", "60",
             "--landmarks", "15"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "syslog records" in out

    def test_traces_file(self, tmp_path):
        out_file = tmp_path / "trace.log"
        rc = main(
            ["--seed", "4", "traces", "--users", "2", "--aps", "40",
             "--landmarks", "10", "--output", str(out_file)]
        )
        assert rc == 0
        content = out_file.read_text().splitlines()
        assert all(len(line.split("\t")) == 4 for line in content[:20])

    def test_experiment_fig9(self, capsys):
        rc = main(["--seed", "5", "experiment", "9", "--scale", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig 9" in out

    @pytest.mark.slow
    def test_defend(self, capsys):
        rc = main(
            ["--seed", "6", "defend", *_SMALL, "--users", "1",
             "--repetitions", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "padding" in out and "dummy_sinks" in out


class TestAblationExperiments:
    def test_ablation_id_parses(self):
        args = build_parser().parse_args(["experiment", "ablation-routing"])
        assert args.figure == "ablation-routing"

    @pytest.mark.slow
    def test_ablation_runs(self, capsys):
        rc = main(
            ["--seed", "5", "experiment", "ablation-smoothing", "--scale", "6"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "smoothing=on" in out


class TestCrossingTrack:
    @pytest.mark.slow
    def test_track_crossing(self, capsys):
        rc = main(
            [
                "--seed", "9", "track", *_SMALL, "--crossing",
                "--rounds", "5", "--percentage", "20",
                "--predictions", "150",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "final mean error" in out


class TestCliPlanConsistency:
    def test_cli_figure_choices_cover_experiment_plan(self):
        """Every figure in the reporting plan is reachable from the CLI."""
        from repro.experiments.config import PaperDefaults
        from repro.experiments.reporting import build_experiment_plan

        parser = build_parser()
        sub = next(
            a for a in parser._subparsers._group_actions
        ).choices["experiment"]
        figure_action = next(
            a for a in sub._actions if a.dest == "figure"
        )
        plan_ids = {
            name.replace("Fig ", "").lower()
            for name, _ in build_experiment_plan(
                PaperDefaults().scaled(10), 0
            )
        }
        assert plan_ids <= set(figure_action.choices)
