"""CLI tests (parser wiring + command smoke runs on small networks)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.nodes == 900
        assert args.users == 2
        assert args.deployment == "perturbed_grid"

    def test_global_seed(self):
        args = build_parser().parse_args(["--seed", "7", "simulate"])
        assert args.seed == 7

    def test_experiment_figures(self):
        args = build_parser().parse_args(["experiment", "6a"])
        assert args.figure == "6a"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "99"])

    def test_track_crossing_flag(self):
        args = build_parser().parse_args(["track", "--crossing"])
        assert args.crossing

    def test_track_stream_defaults(self):
        args = build_parser().parse_args(["track-stream"])
        assert args.input is None
        assert args.checkpoint is None
        assert args.checkpoint_every == 0


class TestExitCodes:
    def test_version_flag(self, capsys):
        import repro

        assert main(["--version"]) == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_unknown_subcommand_exits_2(self, capsys):
        assert main(["definitely-not-a-command"]) == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_missing_subcommand_exits_2(self):
        assert main([]) == 2

    def test_help_exits_0(self, capsys):
        assert main(["--help"]) == 0
        assert "track-stream" in capsys.readouterr().out


_SMALL = ["--nodes", "225", "--field", "15", "--radius", "2.0"]


class TestCommands:
    def test_simulate_stdout(self, capsys):
        rc = main(["--seed", "1", "simulate", *_SMALL, "--users", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "network: 225 nodes" in out
        assert "user 0" in out

    def test_simulate_csv(self, tmp_path, capsys):
        out_file = tmp_path / "flux.csv"
        rc = main(
            ["--seed", "1", "simulate", *_SMALL, "--output", str(out_file)]
        )
        assert rc == 0
        lines = out_file.read_text().splitlines()
        assert lines[0] == "node,x,y,flux"
        assert len(lines) == 226

    def test_localize(self, capsys):
        rc = main(
            [
                "--seed", "2", "localize", *_SMALL,
                "--users", "1", "--percentage", "20",
                "--candidates", "500", "--restarts", "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean error" in out

    def test_track(self, capsys):
        rc = main(
            [
                "--seed", "3", "track", *_SMALL,
                "--users", "1", "--rounds", "4",
                "--percentage", "20", "--predictions", "150",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "final mean error" in out

    def test_traces_summary(self, capsys):
        rc = main(
            ["--seed", "4", "traces", "--users", "3", "--aps", "60",
             "--landmarks", "15"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "syslog records" in out

    def test_traces_file(self, tmp_path):
        out_file = tmp_path / "trace.log"
        rc = main(
            ["--seed", "4", "traces", "--users", "2", "--aps", "40",
             "--landmarks", "10", "--output", str(out_file)]
        )
        assert rc == 0
        content = out_file.read_text().splitlines()
        assert all(len(line.split("\t")) == 4 for line in content[:20])

    def test_experiment_fig9(self, capsys):
        rc = main(["--seed", "5", "experiment", "9", "--scale", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig 9" in out

    @pytest.mark.slow
    def test_defend(self, capsys):
        rc = main(
            ["--seed", "6", "defend", *_SMALL, "--users", "1",
             "--repetitions", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "padding" in out and "dummy_sinks" in out


class TestTrackStream:
    _STREAM = [
        "track-stream", *_SMALL,
        "--users", "1", "--percentage", "20", "--predictions", "120",
    ]

    def test_synthetic_stream(self, capsys):
        rc = main(["--seed", "11", *self._STREAM, "--rounds", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "final estimates" in out
        assert '"windows_processed": 4' in out

    def test_replay_checkpoint_kill_resume(self, tmp_path, capsys):
        """Replay a saved log end-to-end with a mid-run kill/resume and a
        malformed (out-of-order) observation injected into the log."""
        import numpy as np

        from repro.network import build_network, sample_sniffers_percentage
        from repro.geometry import RectangularField
        from repro.smc import SequentialMonteCarloTracker, TrackerConfig
        from repro.stream import SyntheticLiveSource
        from repro.util.persistence import save_observations

        net = build_network(
            field=RectangularField(15, 15), node_count=225, radius=2.0,
            rng=np.random.default_rng(11),
        )
        sniffers = sample_sniffers_percentage(net, 20, rng=1)
        observations = list(
            SyntheticLiveSource(net, sniffers, user_count=1, rounds=6, rng=2)
        )
        # inject an out-of-order window: the stream layer must skip it
        polluted = list(observations)
        polluted.insert(3, observations[0])
        log = save_observations(polluted, tmp_path / "log.npz")
        net_path = tmp_path / "net.npz"
        from repro.util.persistence import save_network

        save_network(net, net_path)
        ckpt = tmp_path / "run.ckpt.npz"

        base = [
            "track-stream", "--network", str(net_path),
            "--input", str(log), "--users", "1", "--predictions", "120",
            "--checkpoint", str(ckpt),
        ]
        # killed after 3 windows...
        assert main(["--seed", "5", *base, "--max-windows", "3"]) == 0
        assert ckpt.exists()
        capsys.readouterr()
        # ...resumed to the end
        assert main(["--seed", "5", *base]) == 0
        out = capsys.readouterr().out
        assert "resumed" in out
        assert '"windows_processed": 6' in out
        assert '"out_of_order": 1' in out

        # and the final estimates match the equivalent batch run
        tracker = SequentialMonteCarloTracker(
            net.field, net.positions[sniffers], user_count=1,
            config=TrackerConfig(prediction_count=120, keep_count=10),
            rng=np.random.default_rng(5),
        )
        for obs in observations:
            tracker.step(obs)
        for x, y in tracker.estimates():
            assert f"({x:6.2f}, {y:6.2f})" in out

    def test_both_input_and_jsonl_rejected(self, tmp_path, capsys):
        rc = main(
            ["track-stream", "--input", "a.npz", "--jsonl", "b.jsonl"]
        )
        assert rc == 2

    def test_jsonl_stream(self, tmp_path, capsys):
        import numpy as np

        from repro.geometry import RectangularField
        from repro.network import build_network, sample_sniffers_percentage
        from repro.stream import SyntheticLiveSource, observation_to_jsonl
        from repro.util.persistence import save_network

        net = build_network(
            field=RectangularField(15, 15), node_count=225, radius=2.0,
            rng=np.random.default_rng(11),
        )
        sniffers = sample_sniffers_percentage(net, 20, rng=1)
        observations = list(
            SyntheticLiveSource(net, sniffers, user_count=1, rounds=3, rng=2)
        )
        feed = tmp_path / "feed.jsonl"
        lines = [observation_to_jsonl(o) for o in observations]
        lines.insert(1, "garbage that is not json")
        feed.write_text("\n".join(lines) + "\n")
        net_path = save_network(net, tmp_path / "net.npz")
        rc = main(
            [
                "--seed", "5", "track-stream",
                "--network", str(net_path), "--jsonl", str(feed),
                "--users", "1", "--predictions", "120",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert '"windows_processed": 3' in out


class TestAblationExperiments:
    def test_ablation_id_parses(self):
        args = build_parser().parse_args(["experiment", "ablation-routing"])
        assert args.figure == "ablation-routing"

    @pytest.mark.slow
    def test_ablation_runs(self, capsys):
        rc = main(
            ["--seed", "5", "experiment", "ablation-smoothing", "--scale", "6"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "smoothing=on" in out


class TestCrossingTrack:
    @pytest.mark.slow
    def test_track_crossing(self, capsys):
        rc = main(
            [
                "--seed", "9", "track", *_SMALL, "--crossing",
                "--rounds", "5", "--percentage", "20",
                "--predictions", "150",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "final mean error" in out


class TestCliPlanConsistency:
    def test_cli_figure_choices_cover_experiment_plan(self):
        """Every figure in the reporting plan is reachable from the CLI."""
        from repro.experiments.config import PaperDefaults
        from repro.experiments.reporting import build_experiment_plan

        parser = build_parser()
        sub = next(
            a for a in parser._subparsers._group_actions
        ).choices["experiment"]
        figure_action = next(
            a for a in sub._actions if a.dest == "figure"
        )
        plan_ids = {
            name.replace("Fig ", "").lower()
            for name, _ in build_experiment_plan(
                PaperDefaults().scaled(10), 0
            )
        }
        assert plan_ids <= set(figure_action.choices)


class TestServe:
    def test_serve_defaults_parse(self):
        args = build_parser().parse_args(["serve"])
        assert args.clients == 8
        assert args.max_batch == 32
        assert args.policy == "reject"
        assert args.deadline_ms is None
        assert args.track_sessions == 0

    def test_serve_load_run(self, capsys):
        rc = main(
            [
                "--seed", "3", "serve", *_SMALL, "--clients", "3",
                "--requests", "3", "--candidates", "32",
                "--percentage", "20", "--max-batch", "8",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "serving 3 localize clients x 3 requests" in out
        assert "9 ok, 0 errors" in out
        assert '"replies_ok": 9' in out

    def test_serve_with_map_tracking_and_checkpoints(
        self, tmp_path, capsys
    ):
        rc = main(
            [
                "--seed", "3", "serve", *_SMALL, "--clients", "2",
                "--requests", "3", "--candidates", "32",
                "--map-resolution", "2.0", "--track-sessions", "1",
                "--checkpoint-dir", str(tmp_path),
                "--metrics-out", str(tmp_path / "metrics.json"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "(map-seeded)" in out
        assert "checkpointed track-0" in out
        assert (tmp_path / "track-0.ckpt.npz").exists()
        import json as _json

        payload = _json.loads((tmp_path / "metrics.json").read_text())
        assert payload["replies_ok"] == 9  # 2x3 localize + 3 track steps

    def test_serve_rejects_bad_map(self, tmp_path, capsys):
        bogus = tmp_path / "nope.npz"
        np.savez(bogus, junk=np.zeros(3))
        rc = main(["serve", *_SMALL, "--map", str(bogus)])
        assert rc == 1
        assert "cannot use map" in capsys.readouterr().err
