"""The AIMD governor against a real service, with scripted load.

The closed loop is tested deterministically: ``p95_source`` replays a
scripted load shift (calm -> overload -> recovery) against the real
knob objects (``scheduler.controller``, ``scheduler.fusion_min_depth``,
``queue.capacity``), so every assertion about hysteresis, cooldown,
clamping, and multi-knob movement is exact — no sleeps, no real
latency needed.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fpmap import build_fingerprint_map
from repro.gateway import GatewayGovernor
from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage
from repro.serve import LocalizationService


@pytest.fixture(scope="module")
def scenario():
    net = build_network(
        field=RectangularField(10, 10), node_count=100, radius=2.0, rng=5
    )
    sniffers = sample_sniffers_percentage(net, 20, rng=2)
    fmap = build_fingerprint_map(net.field, net.positions[sniffers],
                                 resolution=2.0)
    return net, sniffers, fmap


@pytest.fixture()
def service(scenario):
    net, sniffers, fmap = scenario
    with LocalizationService(
        net.field, net.positions[sniffers], fingerprint_map=fmap,
        max_batch=8, max_wait_s=0.002, queue_capacity=256,
    ) as svc:
        yield svc


class _Script:
    """A p95_source that replays a list, holding its last value."""

    def __init__(self, values):
        self.values = list(values)
        self.calls = 0

    def __call__(self):
        value = self.values[min(self.calls, len(self.values) - 1)]
        self.calls += 1
        return value


def _governor(service, script, **kwargs):
    kwargs.setdefault("patience", 2)
    kwargs.setdefault("cooldown_ticks", 1)
    return GatewayGovernor(
        service, slo_p95_s=0.050, p95_source=script, **kwargs
    )


class TestControlLaw:
    def test_load_shift_moves_at_least_two_knobs_and_recovers(self, service):
        """The ISSUE-9 contract: a scripted overload makes the governor
        move >= 2 distinct knobs; when p95 returns inside the SLO the
        loop stops tightening."""
        script = _Script(
            [0.010, 0.010]          # calm
            + [0.120] * 8           # overload: 2.4x the 50ms SLO
            + [0.030] * 6           # recovered: inside SLO, above headroom
        )
        governor = _governor(service, script)
        baseline = {
            "target_p95_s": float(
                service.scheduler.controller.target_p95_s
            ),
            "fusion_min_depth": int(service.scheduler.fusion_min_depth),
        }
        for _ in range(16):
            governor.tick()
        moved = {e["knob"] for e in governor.events}
        assert len(moved) >= 2, f"only moved {moved}"
        assert "target_p95_s" in moved
        assert service.scheduler.controller.target_p95_s < (
            baseline["target_p95_s"]
        )
        assert service.scheduler.fusion_min_depth > (
            baseline["fusion_min_depth"]
        )
        adjustments_after_overload = governor.adjustments_total
        # The recovered tail (in-SLO, above headroom) must be quiet.
        for _ in range(4):
            assert governor.tick() == []
        assert governor.adjustments_total == adjustments_after_overload
        # Every move was counted in the service metrics too.
        counted = service.metrics.governor_adjustments
        assert sum(counted.values()) == governor.adjustments_total
        assert set(counted) == moved

    def test_hysteresis_needs_a_patience_streak(self, service):
        script = _Script([0.120, 0.010, 0.120, 0.010, 0.120, 0.010])
        governor = _governor(service, script, patience=2)
        for _ in range(6):  # violations never persist 2 ticks in a row
            governor.tick()
        assert governor.adjustments_total == 0

    def test_cooldown_holds_after_a_move(self, service):
        script = _Script([0.120] * 10)
        governor = _governor(service, script, patience=1, cooldown_ticks=3)
        assert governor.tick() != []  # first violation moves immediately
        for _ in range(3):
            assert governor.tick() == []  # held by the cooldown
        assert governor.tick() != []  # cooldown expired, still violating

    def test_knobs_clamp_at_their_ranges(self, service):
        script = _Script([0.500] * 60)  # unbounded overload
        governor = _governor(
            service, script, patience=1, cooldown_ticks=0,
            depth_range=(1, 4),
        )
        for _ in range(60):
            governor.tick()
        controller = service.scheduler.controller
        assert controller.target_p95_s >= governor.target_range_s[0]
        assert controller.target_p95_s == pytest.approx(
            governor.target_range_s[0]
        )
        assert service.scheduler.fusion_min_depth <= 4
        # Clamped knobs stop producing events: one more tick, no moves.
        assert governor.tick() == []

    def test_relax_restores_baselines_on_headroom(self, service):
        overload = _Script([0.120] * 6)
        governor = _governor(service, overload, patience=1, cooldown_ticks=0)
        baseline_depth = int(service.scheduler.fusion_min_depth)
        for _ in range(6):
            governor.tick()
        tightened_target = float(service.scheduler.controller.target_p95_s)
        assert service.scheduler.fusion_min_depth > baseline_depth
        governor._p95_source = _Script([0.001] * 40)  # deep headroom
        for _ in range(40):
            governor.tick()
        assert service.scheduler.fusion_min_depth == baseline_depth
        assert service.scheduler.controller.target_p95_s > tightened_target
        relax_reasons = {
            e["reason"] for e in governor.events if "headroom" in e["reason"]
        }
        assert relax_reasons  # the recovery arm actually ran

    def test_deep_backlog_sheds_admission_capacity(self, service):
        script = _Script([0.120] * 6)
        governor = _governor(service, script, patience=1, cooldown_ticks=0)
        queue = service.queue
        baseline_capacity = int(queue.capacity)
        # Fake a deep backlog: the governor reads depth_hint() only.
        original = queue.depth_hint
        queue.depth_hint = lambda: baseline_capacity
        try:
            for _ in range(4):
                governor.tick()
        finally:
            queue.depth_hint = original
        assert queue.capacity < baseline_capacity
        assert queue.capacity >= governor.capacity_range[0]
        moved = {e["knob"] for e in governor.events}
        assert "admission_capacity" in moved

    def test_nan_p95_is_a_no_op(self, service):
        script = _Script([float("nan")] * 5)
        governor = _governor(service, script, patience=1)
        for _ in range(5):
            assert governor.tick() == []
        assert governor.adjustments_total == 0

    def test_seeds_controller_target_at_the_slo(self, scenario):
        net, sniffers, fmap = scenario
        with LocalizationService(
            net.field, net.positions[sniffers], fingerprint_map=fmap,
        ) as svc:
            assert svc.scheduler.controller.target_p95_s is None
            GatewayGovernor(svc, slo_p95_s=0.040,
                            p95_source=lambda: float("nan"))
            assert svc.scheduler.controller.target_p95_s == 0.040


class TestLifecycleAndReporting:
    def test_snapshot_shape(self, service):
        script = _Script([0.120] * 4)
        governor = _governor(service, script, patience=1, cooldown_ticks=0)
        governor.tick()
        snap = governor.snapshot()
        assert snap["slo_p95_s"] == 0.050
        assert snap["ticks"] == 1
        assert snap["adjustments_total"] >= 1
        assert set(snap["knobs"]) == {
            "target_p95_s", "fusion_min_depth", "admission_capacity"
        }
        assert snap["events"][0]["p95_s"] == 0.120
        assert snap["events"][0]["tick"] == 1

    def test_background_thread_ticks(self, service):
        script = _Script([0.010])
        governor = _governor(service, script, interval_s=0.01)
        governor.start()
        try:
            import time
            deadline = time.monotonic() + 5.0
            while governor.ticks < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            governor.stop()
        assert governor.ticks >= 3
        governor.stop()  # idempotent

    def test_bad_parameters_are_rejected(self, service):
        with pytest.raises(ConfigurationError):
            GatewayGovernor(service, slo_p95_s=0.0)
        with pytest.raises(ConfigurationError):
            GatewayGovernor(service, slo_p95_s=0.05, decrease=1.5)
        with pytest.raises(ConfigurationError):
            GatewayGovernor(service, slo_p95_s=0.05, patience=0)
        with pytest.raises(ConfigurationError):
            GatewayGovernor(service, slo_p95_s=0.05, headroom=0.0)

    def test_default_p95_source_reads_service_reservoir(self, service):
        governor = GatewayGovernor(service, slo_p95_s=0.050)
        assert np.isnan(governor._p95_source())  # no traffic yet
        service.metrics.record_reply(0.123)
        assert governor._p95_source() == pytest.approx(0.123)
