"""Trajectory and movement-model tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry import RectangularField
from repro.mobility import (
    Trajectory,
    crossing_trajectories,
    linear_trajectory,
    random_walk_trajectory,
    random_waypoint_trajectory,
)


class TestTrajectory:
    def _traj(self):
        return Trajectory(
            times=np.array([0.0, 1.0, 3.0]),
            positions=np.array([[0.0, 0.0], [2.0, 0.0], [2.0, 4.0]]),
        )

    def test_duration_and_length(self):
        t = self._traj()
        assert t.duration == 3.0
        assert t.length == pytest.approx(6.0)

    def test_at_interpolates(self):
        t = self._traj()
        np.testing.assert_allclose(t.at(0.5), [1.0, 0.0])
        np.testing.assert_allclose(t.at(2.0), [2.0, 2.0])

    def test_at_clamps(self):
        t = self._traj()
        np.testing.assert_allclose(t.at(-1.0), [0.0, 0.0])
        np.testing.assert_allclose(t.at(99.0), [2.0, 4.0])

    def test_sample_matches_at(self):
        t = self._traj()
        times = np.array([0.25, 1.5, 2.75])
        sampled = t.sample(times)
        for i, tt in enumerate(times):
            np.testing.assert_allclose(sampled[i], t.at(tt))

    def test_max_speed(self):
        t = self._traj()
        assert t.max_speed() == pytest.approx(2.0)

    def test_compress_time(self):
        t = self._traj().compress_time(2.0)
        assert t.duration == pytest.approx(1.5)
        np.testing.assert_allclose(t.positions, self._traj().positions)

    def test_compress_bad_factor(self):
        with pytest.raises(ConfigurationError):
            self._traj().compress_time(0.0)

    def test_shift_time(self):
        t = self._traj().shift_time(10.0)
        assert t.times[0] == 10.0

    def test_segment(self):
        seg = self._traj().segment(0.5, 2.0)
        assert seg.times[0] == 0.5
        assert seg.times[-1] == 2.0
        np.testing.assert_allclose(seg.positions[0], [1.0, 0.0])
        np.testing.assert_allclose(seg.positions[-1], [2.0, 2.0])

    def test_segment_out_of_span_raises(self):
        with pytest.raises(ConfigurationError):
            self._traj().segment(-1.0, 2.0)

    def test_nonincreasing_times_raise(self):
        with pytest.raises(ConfigurationError):
            Trajectory(times=np.array([0.0, 0.0]), positions=np.zeros((2, 2)))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            Trajectory(times=np.array([0.0, 1.0]), positions=np.zeros((3, 2)))

    def test_single_point_trajectory(self):
        t = Trajectory(times=np.array([1.0]), positions=np.array([[2.0, 3.0]]))
        assert t.duration == 0.0
        assert t.length == 0.0
        assert t.max_speed() == 0.0


class TestModels:
    def test_linear_endpoints(self):
        t = linear_trajectory((0, 0), (9, 0), rounds=10)
        np.testing.assert_allclose(t.positions[0], [0, 0])
        np.testing.assert_allclose(t.positions[-1], [9, 0])
        assert t.max_speed() == pytest.approx(1.0)

    def test_waypoint_within_field_and_speed(self):
        field = RectangularField(20, 20)
        t = random_waypoint_trajectory(field, rounds=30, speed=2.0, rng=0)
        assert field.contains(t.positions).all()
        assert t.max_speed() <= 2.0 + 1e-9

    def test_waypoint_moves(self):
        field = RectangularField(20, 20)
        t = random_waypoint_trajectory(field, rounds=30, speed=2.0, rng=0)
        assert t.length > 10.0

    def test_walk_within_field_and_step(self):
        field = RectangularField(20, 20)
        t = random_walk_trajectory(field, rounds=30, max_step=1.5, rng=0)
        assert field.contains(t.positions).all()
        steps = np.linalg.norm(np.diff(t.positions, axis=0), axis=1)
        assert np.all(steps <= 1.5 + 1e-9)

    def test_crossing_trajectories_intersect(self):
        field = RectangularField(30, 30)
        a, b = crossing_trajectories(field, rounds=11)
        mid = 5
        d = np.linalg.norm(a.positions[mid] - b.positions[mid])
        assert d < 1e-9  # both at the center at the middle round

    def test_crossing_same_rounds(self):
        field = RectangularField(30, 30)
        a, b = crossing_trajectories(field, rounds=8)
        assert a.times.size == b.times.size == 8

    def test_bad_rounds_raise(self):
        field = RectangularField(10, 10)
        with pytest.raises(ConfigurationError):
            linear_trajectory((0, 0), (1, 1), rounds=0)
        with pytest.raises(ConfigurationError):
            crossing_trajectories(field, rounds=1)
