"""Statistical shape tests for the paper's headline claims.

These run the attack repeatedly at small scale and assert the
*relationships* the paper reports (benchmarks assert the same at
larger scale; these keep regressions visible in plain pytest runs).
"""

import numpy as np
import pytest

from repro.fingerprint import NLSLocalizer
from repro.network import sample_sniffers_percentage, sample_sniffers_stratified
from repro.traffic import MeasurementModel, simulate_flux


def _localization_errors(
    network, percentage, user_count, repetitions, seed, stratified=False
):
    errors = []
    gen = np.random.default_rng(seed)
    for _ in range(repetitions):
        truth = network.field.sample_uniform(user_count, gen)
        stretches = gen.uniform(1.0, 3.0, user_count)
        flux = simulate_flux(network, list(truth), list(stretches), rng=gen)
        if stratified:
            count = max(1, int(round(network.node_count * percentage / 100)))
            sniffers = sample_sniffers_stratified(network, count, rng=gen)
        else:
            sniffers = sample_sniffers_percentage(network, percentage, rng=gen)
        obs = MeasurementModel(network, sniffers, smooth=True, rng=gen).observe(
            flux
        )
        loc = NLSLocalizer(network.field, network.positions[sniffers])
        result = loc.localize(
            obs,
            user_count=user_count,
            candidate_count=1200,
            restarts=2,
            rng=gen,
        )
        errors.append(float(result.errors_to(truth).mean()))
    return float(np.mean(errors))


@pytest.mark.slow
class TestPaperShapes:
    def test_error_grows_with_user_count(self, paper_network):
        e1 = _localization_errors(paper_network, 10, 1, 6, seed=1)
        e3 = _localization_errors(paper_network, 10, 3, 6, seed=1)
        assert e3 > e1 - 0.5  # more users never makes it much easier

    def test_sparse_sampling_survives_at_ten_percent(self, paper_network):
        e10 = _localization_errors(paper_network, 10, 1, 6, seed=2)
        # Paper: ~1.23 at 10%; generous 3x bound against flakiness.
        assert e10 < 3.7

    def test_extreme_sparsity_degrades(self, paper_network):
        e20 = _localization_errors(paper_network, 20, 1, 6, seed=3)
        e2 = _localization_errors(paper_network, 2, 1, 6, seed=3)
        assert e2 > e20 - 0.3

    def test_stratified_sniffers_no_worse_than_random(self, paper_network):
        random = _localization_errors(paper_network, 5, 1, 6, seed=4)
        stratified = _localization_errors(
            paper_network, 5, 1, 6, seed=4, stratified=True
        )
        # Stratified coverage should help (or at least not hurt) at
        # small sniffer counts — our variance-reduction extension.
        assert stratified < random + 0.75

    def test_full_map_briefing_beats_sparse_nls(self, paper_network):
        """Full information (900 nodes) beats 10% sampling on average."""
        from repro.fingerprint import brief_flux_map
        from repro.smc.association import assignment_errors

        gen = np.random.default_rng(5)
        briefing_errors, nls_errors = [], []
        for _ in range(5):
            truth = paper_network.field.sample_uniform(2, gen)
            stretches = gen.uniform(1.0, 3.0, 2)
            flux = simulate_flux(
                paper_network, list(truth), list(stretches), rng=gen
            )
            result = brief_flux_map(paper_network, flux, max_users=2)
            positions = result.positions
            while positions.shape[0] < 2:
                positions = np.vstack([positions, positions[-1]])
            errs, _ = assignment_errors(positions[:2], truth)
            briefing_errors.append(errs.mean())

            sniffers = sample_sniffers_percentage(paper_network, 10, rng=gen)
            obs = MeasurementModel(
                paper_network, sniffers, smooth=True, rng=gen
            ).observe(flux)
            loc = NLSLocalizer(
                paper_network.field, paper_network.positions[sniffers]
            )
            res = loc.localize(
                obs, user_count=2, candidate_count=1200, restarts=2, rng=gen
            )
            nls_errors.append(float(res.errors_to(truth).mean()))
        assert np.mean(briefing_errors) < np.mean(nls_errors) + 0.5
