"""Collection event and schedule tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traffic import (
    CollectionEvent,
    CollectionSchedule,
    poisson_schedule,
    synchronous_schedule,
)


def _event(user=0, time=0.0, pos=(1.0, 1.0), stretch=1.0):
    return CollectionEvent(user=user, time=time, position=pos, stretch=stretch)


class TestCollectionEvent:
    def test_valid(self):
        e = _event()
        assert e.user == 0 and e.stretch == 1.0

    def test_negative_user_raises(self):
        with pytest.raises(ConfigurationError):
            _event(user=-1)

    def test_nan_time_raises(self):
        with pytest.raises(ConfigurationError):
            _event(time=float("nan"))

    def test_negative_stretch_raises(self):
        with pytest.raises(ConfigurationError):
            _event(stretch=-1.0)

    def test_zero_stretch_allowed(self):
        assert _event(stretch=0.0).stretch == 0.0


class TestCollectionSchedule:
    def _schedule(self):
        return CollectionSchedule(
            [
                _event(user=1, time=5.0),
                _event(user=0, time=1.0),
                _event(user=0, time=3.0),
            ]
        )

    def test_sorted_by_time(self):
        s = self._schedule()
        assert [e.time for e in s] == [1.0, 3.0, 5.0]

    def test_len(self):
        assert len(self._schedule()) == 3

    def test_users(self):
        assert self._schedule().users == [0, 1]

    def test_time_span(self):
        assert self._schedule().time_span == (1.0, 5.0)

    def test_empty_span_raises(self):
        with pytest.raises(ConfigurationError):
            CollectionSchedule([]).time_span

    def test_events_in_window_right_open(self):
        s = self._schedule()
        got = s.events_in_window(1.0, 3.0)
        assert [e.time for e in got] == [1.0]

    def test_events_in_window_empty(self):
        assert self._schedule().events_in_window(10.0, 20.0) == []

    def test_events_in_window_backwards_raises(self):
        with pytest.raises(ConfigurationError):
            self._schedule().events_in_window(5.0, 1.0)

    def test_windows_cover_all_events(self):
        s = self._schedule()
        windows = s.windows(2.0)
        total = sum(len(events) for _, events in windows)
        assert total == 3

    def test_windows_include_empty(self):
        s = CollectionSchedule([_event(time=0.0), _event(time=10.0)])
        windows = s.windows(1.0)
        empty = [w for w, events in windows if not events]
        assert len(empty) >= 8

    def test_user_events(self):
        s = self._schedule()
        assert len(s.user_events(0)) == 2
        assert len(s.user_events(1)) == 1


class TestSynchronousSchedule:
    def test_one_event_per_user_per_round(self):
        trajs = [np.zeros((4, 2)), np.ones((4, 2))]
        s = synchronous_schedule(trajs, [1.0, 2.0])
        assert len(s) == 8
        for t, events in s.windows(1.0):
            assert len(events) == 2

    def test_stretches_assigned(self):
        s = synchronous_schedule([np.zeros((2, 2))], [2.5])
        assert all(e.stretch == 2.5 for e in s)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ConfigurationError):
            synchronous_schedule([np.zeros((2, 2))], [1.0, 2.0])

    def test_unequal_rounds_raise(self):
        with pytest.raises(ConfigurationError):
            synchronous_schedule(
                [np.zeros((2, 2)), np.zeros((3, 2))], [1.0, 1.0]
            )

    def test_no_users_raises(self):
        with pytest.raises(ConfigurationError):
            synchronous_schedule([], [])

    def test_times_spaced_by_delta(self):
        s = synchronous_schedule([np.zeros((3, 2))], [1.0], delta_t=2.0)
        assert [e.time for e in s] == [0.0, 2.0, 4.0]


class TestPoissonSchedule:
    def _traj(self):
        times = np.array([0.0, 100.0])
        positions = np.array([[0.0, 0.0], [10.0, 0.0]])
        return positions, times

    def test_event_count_scales_with_rate(self):
        pos, times = self._traj()
        dense = poisson_schedule([pos], [times], [1.0], rate=0.5, horizon=100, rng=0)
        sparse = poisson_schedule([pos], [times], [1.0], rate=0.05, horizon=100, rng=0)
        assert len(dense) > len(sparse)

    def test_positions_interpolated(self):
        pos, times = self._traj()
        s = poisson_schedule([pos], [times], [1.0], rate=0.2, horizon=100, rng=1)
        for e in s:
            expected_x = e.time / 10.0
            assert e.position[0] == pytest.approx(expected_x)

    def test_horizon_respected(self):
        pos, times = self._traj()
        s = poisson_schedule([pos], [times], [1.0], rate=0.5, horizon=50, rng=2)
        assert all(e.time < 50 for e in s)

    def test_empty_schedule_raises(self):
        pos, times = self._traj()
        with pytest.raises(ConfigurationError):
            poisson_schedule([pos], [times], [1.0], rate=1e-9, horizon=1.0, rng=3)

    def test_misaligned_inputs_raise(self):
        pos, times = self._traj()
        with pytest.raises(ConfigurationError):
            poisson_schedule([pos], [times], [1.0, 2.0], rate=1.0, horizon=10)
