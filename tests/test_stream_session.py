"""TrackingSession: defensive validation, latency accounting, truth errors."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network import sample_sniffers_percentage
from repro.smc import SequentialMonteCarloTracker, TrackerConfig
from repro.stream import SyntheticLiveSource, TrackingSession
from repro.traffic.measurement import FluxObservation

_CFG = TrackerConfig(prediction_count=120, keep_count=8)


@pytest.fixture()
def scenario(small_network):
    sniffers = sample_sniffers_percentage(small_network, 20, rng=1)
    source = SyntheticLiveSource(
        small_network, sniffers, user_count=1, rounds=6, rng=2
    )
    observations = list(source)

    def make_session(truth=None):
        tracker = SequentialMonteCarloTracker(
            small_network.field,
            small_network.positions[sniffers],
            user_count=1,
            config=_CFG,
            rng=7,
        )
        return TrackingSession("s1", tracker, truth=truth)

    return source, observations, make_session


class TestProcessing:
    def test_processes_good_windows(self, scenario):
        _, observations, make_session = scenario
        session = make_session()
        for obs in observations:
            step = session.process(obs)
            assert step is not None
        assert session.metrics.windows_processed == len(observations)
        assert session.windows_consumed == len(observations)
        assert session.last_time == observations[-1].time
        assert session.estimates().shape == (1, 2)

    def test_latency_recorded(self, scenario):
        _, observations, make_session = scenario
        session = make_session()
        session.process(observations[0])
        q = session.metrics.latency_quantiles()
        assert q["p50"] > 0.0
        assert q["p95"] >= q["p50"]

    def test_truth_error_accounted(self, scenario):
        source, observations, make_session = scenario
        session = make_session(truth=source.truth_at)
        for obs in observations:
            session.process(obs)
        assert np.isfinite(session.metrics.mean_error())

    def test_without_truth_error_is_nan(self, scenario):
        _, observations, make_session = scenario
        session = make_session()
        session.process(observations[0])
        assert np.isnan(session.metrics.mean_error())


class TestValidationSkips:
    def test_out_of_order_window_skipped(self, scenario):
        _, observations, make_session = scenario
        session = make_session()
        session.process(observations[2])
        assert session.process(observations[0]) is None  # time went backwards
        assert session.process(observations[2]) is None  # duplicate time
        assert (
            session.metrics.windows_skipped[TrackingSession.SKIP_OUT_OF_ORDER]
            == 2
        )
        # the stream continues fine afterwards
        assert session.process(observations[3]) is not None

    def test_arity_mismatch_skipped(self, scenario):
        _, observations, make_session = scenario
        session = make_session()
        bad = FluxObservation(
            time=0.5, sniffers=np.arange(3), values=np.ones(3)
        )
        assert session.process(bad) is None
        assert (
            session.metrics.windows_skipped[
                TrackingSession.SKIP_ARITY_MISMATCH
            ]
            == 1
        )

    def test_non_observation_skipped(self, scenario):
        _, _, make_session = scenario
        session = make_session()
        assert session.process({"time": 0.0}) is None
        assert session.process(None) is None
        assert (
            session.metrics.windows_skipped[TrackingSession.SKIP_BAD_TYPE] == 2
        )

    def test_bad_time_skipped(self, scenario):
        _, observations, make_session = scenario
        session = make_session()
        template = observations[0]
        for bad_time in (float("nan"), float("inf")):
            bad = FluxObservation(
                time=bad_time,
                sniffers=template.sniffers,
                values=template.values,
            )
            assert session.process(bad) is None
        assert (
            session.metrics.windows_skipped[TrackingSession.SKIP_BAD_TIME] == 2
        )

    def test_infinite_or_negative_values_skipped(self, scenario):
        _, observations, make_session = scenario
        session = make_session()
        template = observations[0]
        inf_values = template.values.copy()
        inf_values[0] = np.inf
        neg_values = template.values.copy()
        neg_values[0] = -1.0
        for values in (inf_values, neg_values):
            bad = FluxObservation(
                time=0.25, sniffers=template.sniffers, values=values
            )
            assert session.process(bad) is None
        assert (
            session.metrics.windows_skipped[TrackingSession.SKIP_BAD_VALUES]
            == 2
        )

    def test_nan_dropout_values_accepted(self, scenario):
        _, observations, make_session = scenario
        session = make_session()
        template = observations[0]
        values = template.values.copy()
        values[:2] = np.nan  # sniffer dropout is legitimate
        obs = FluxObservation(
            time=template.time, sniffers=template.sniffers, values=values
        )
        assert session.process(obs) is not None

    def test_skips_never_advance_clock(self, scenario):
        _, observations, make_session = scenario
        session = make_session()
        session.process(observations[0])
        before = session.last_time
        session.process("garbage")
        assert session.last_time == before

    def test_tracker_state_untouched_by_skips(self, scenario):
        _, observations, make_session = scenario
        session = make_session()
        session.process(observations[0])
        estimates_before = session.estimates().copy()
        session.process(observations[0])  # duplicate -> skipped
        session.process(42)
        np.testing.assert_array_equal(session.estimates(), estimates_before)


class TestConstruction:
    def test_empty_session_id_rejected(self, scenario):
        _, _, make_session = scenario
        tracker = make_session().tracker
        with pytest.raises(ConfigurationError):
            TrackingSession("", tracker)

    def test_summary_shape(self, scenario):
        _, observations, make_session = scenario
        session = make_session()
        session.process(observations[0])
        summary = session.summary()
        assert summary["session_id"] == "s1"
        assert summary["windows_consumed"] == 1
        assert summary["windows_processed"] == 1
