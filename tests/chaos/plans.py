"""Seeded random fault plans for the chaos harness.

Every generator here produces plans that are *recoverable by
construction*: the services under test run with a 3-attempt
:class:`~repro.faults.RetryPolicy`, so a plan may throw at most
``MAX_ATTEMPTS - 1 = 2`` faults into any single retried call. The
chaos tests then get to assert full-strength invariants — every reply
ok, results bitwise-identical to the no-fault run — rather than the
weaker "something typed came back".

Unrecoverable shapes (unlimited crash faults, exhausted budgets) are
covered deterministically in tests/test_resilience.py instead, where
the expected typed failure can be pinned down exactly.
"""

import numpy as np

from repro.faults import FaultPlan, FaultSpec

#: Retry budget the chaos services run with; plans stay under it.
MAX_ATTEMPTS = 3


def random_serve_plan(seed):
    """A serve-side plan the batch-fuse retry always absorbs.

    Faults land only in the fused kernel pass: ``serve.batch.fuse``
    fires at the top of :func:`fuse_pool_kernels`, and
    ``engine.kernel.transient`` is pinned to ``skip=0`` so its budget
    is consumed by the *first* kernel evaluation of the run — which is
    that same retried fused pass, never an unguarded per-request
    solve. Combined budgets never exceed MAX_ATTEMPTS - 1 failures.
    """
    rng = np.random.default_rng(seed)
    fuse_times, kernel_times = [(1, 0), (2, 0), (1, 1), (0, 1), (0, 2)][
        int(rng.integers(5))
    ]
    specs = []
    if fuse_times:
        # skip only when the kernel site is quiet: a deferred fuse
        # fault must not stack on top of kernel faults in a later call.
        skip = int(rng.integers(0, 3)) if kernel_times == 0 else 0
        specs.append(FaultSpec("serve.batch.fuse", times=fuse_times, skip=skip))
    if kernel_times:
        specs.append(
            FaultSpec("engine.kernel.transient", times=kernel_times, skip=0)
        )
    return FaultPlan(specs, seed=seed)


def random_gateway_slow_plan(seed):
    """A delivery-delay-only gateway plan: nothing is ever lost.

    ``gateway.client.slow`` stalls reply writes without dropping them,
    so every request frame still gets its one reply frame and results
    stay bitwise-identical to the no-fault run — the strongest
    invariant the chaos harness can demand of the network layer.
    """
    rng = np.random.default_rng(seed)
    return FaultPlan([FaultSpec(
        "gateway.client.slow",
        times=int(rng.integers(1, 4)),
        skip=int(rng.integers(0, 4)),
        delay_s=0.002,
    )], seed=seed)


def random_gateway_drop_plan(seed):
    """A connection-killing gateway plan (torn frames, half-open peers).

    These faults genuinely destroy connections, so the client under
    test must reconnect and resend (at-least-once). The invariants
    still hold bitwise: a resent localize recomputes deterministically
    from its seed, and a resent track window that already landed is
    skipped as out-of-order with tracker state untouched. Budgets stay
    tiny (``times<=1`` per site) so a bounded retry loop always wins.
    """
    rng = np.random.default_rng(seed)
    specs = []
    if rng.random() < 0.6:
        specs.append(FaultSpec(
            "gateway.frame.torn", times=1, skip=int(rng.integers(0, 5)),
        ))
    if rng.random() < 0.6:
        specs.append(FaultSpec(
            "gateway.conn.half_open", times=1, skip=int(rng.integers(0, 4)),
        ))
    if rng.random() < 0.5:
        specs.append(FaultSpec(
            "gateway.client.slow", times=1,
            skip=int(rng.integers(0, 3)), delay_s=0.002,
        ))
    if not specs:  # never hand back a vacuous plan
        specs.append(FaultSpec("gateway.frame.torn", times=1, skip=1))
    return FaultPlan(specs, seed=seed)


def random_stream_plan(seed):
    """A stream-side plan that perturbs delivery, not tracker state.

    Duplicated windows are skipped as out-of-order and stalls only
    cost (fake-clock) time, so estimates stay bitwise-identical to the
    clean run; torn windows are excluded here because losing a window
    legitimately changes the trajectory (they get their own test).
    Checkpoint faults stay within the writer's retry budget.
    """
    rng = np.random.default_rng(seed)
    specs = []
    if rng.random() < 0.8:
        specs.append(FaultSpec(
            "stream.source.duplicate",
            times=int(rng.integers(1, 3)),
            skip=int(rng.integers(0, 4)),
        ))
    if rng.random() < 0.5:
        specs.append(FaultSpec(
            "stream.source.stall", times=1,
            skip=int(rng.integers(0, 3)), delay_s=0.001,
        ))
    if rng.random() < 0.6:
        specs.append(FaultSpec("checkpoint.partial_write", times=1))
    if rng.random() < 0.4:
        specs.append(FaultSpec("checkpoint.fsync", times=1))
    if not specs:  # never hand back a vacuous plan
        specs.append(FaultSpec("stream.source.duplicate", times=1))
    return FaultPlan(specs, seed=seed)
