"""Chaos sweep over the gateway: faults on the wire, results bitwise.

Two sweeps, one invariant ladder:

* **slow plans** only delay reply writes, so the plain client must see
  every reply (exactly one per request, none lost or duplicated) and
  results bitwise-identical to the no-fault baseline;
* **drop plans** tear frames and half-open connections, so an
  at-least-once client (reconnect + resend) is required — and *still*
  gets bitwise-identical results: a resent localize recomputes
  deterministically from its seed, and a resent track window that
  already landed is skipped as out-of-order with tracker state
  untouched. A reply that resolved after its connection died is
  discarded and counted (``replies_dropped``), never a hang.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import GatewayError, ProtocolError
from repro.faults import FaultPlan, FaultSpec, injected
from repro.fpmap import build_fingerprint_map
from repro.gateway import GatewayClient, GatewayServer, protocol
from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage
from repro.serve import LocalizationService
from repro.stream import SyntheticLiveSource
from repro.traffic import MeasurementModel, simulate_flux

from .plans import random_gateway_drop_plan, random_gateway_slow_plan

SLOW_SEEDS = range(8)
DROP_SEEDS = range(12)

_RETRYABLE = (GatewayError, ProtocolError, ConnectionError, OSError,
              asyncio.TimeoutError)


@pytest.fixture(scope="module")
def scenario():
    net = build_network(
        field=RectangularField(8, 8), node_count=64, radius=2.0, rng=11
    )
    sniffers = sample_sniffers_percentage(net, 25, rng=3)
    fmap = build_fingerprint_map(net.field, net.positions[sniffers],
                                 resolution=2.0)
    gen = np.random.default_rng(17)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    observations = []
    for _ in range(4):
        truth = net.field.sample_uniform(1, gen)
        flux = simulate_flux(
            net, list(truth), [float(gen.uniform(1.0, 3.0))], rng=gen
        )
        observations.append(measure.observe(flux))
    windows = list(SyntheticLiveSource(
        net, sniffers, user_count=2, rounds=3, rng=7
    ))
    return net, sniffers, fmap, observations, windows


def _service(scenario):
    net, sniffers, fmap, _, _ = scenario
    return LocalizationService(
        net.field, net.positions[sniffers], fingerprint_map=fmap,
        max_batch=4, max_wait_s=0.002,
    )


class _AtLeastOnceClient:
    """Reconnect-and-resend wrapper: survives torn and half-open faults."""

    def __init__(self, host, port, attempts=10):
        self.host = host
        self.port = port
        self.attempts = attempts
        self._client = None

    async def _ensure(self):
        while self._client is None:
            client = GatewayClient(
                self.host, self.port, "chaos", timeout_s=15.0
            )
            try:
                await client.connect()
                self._client = client
            except _RETRYABLE:
                await client.close()

    async def call(self, frame):
        for _ in range(self.attempts):
            await self._ensure()
            try:
                return await self._client.request(dict(frame))
            except _RETRYABLE:
                await self.close()
        raise AssertionError(
            f"frame {frame.get('id')!r} never survived its retry budget"
        )

    async def close(self):
        if self._client is not None:
            client, self._client = self._client, None
            await client.close()


async def _drive(port, observations, windows):
    """One full client run: localizations, then a tracked session.

    Returns the localize estimates read off the wire. Requests go out
    sequentially so every run (clean or faulted) batches identically.
    """
    client = _AtLeastOnceClient("127.0.0.1", port)
    estimates = []
    try:
        for i, obs in enumerate(observations):
            reply = await client.call({
                "type": "localize", "id": f"q{i}",
                "observation": protocol.observation_to_wire(obs),
                "candidate_count": 24, "seed": 1000 + i,
            })
            assert reply["ok"] is True, reply
            estimates.append(reply["estimates"])
        opened = await client.call({
            "type": "open_session", "id": "open",
            "session_id": "chaos", "user_count": 2, "seed": 11,
        })
        # At-least-once: a resent open after a torn session_opened
        # reply is a duplicate — the typed error frame is the ack.
        assert opened["type"] in ("session_opened", "error"), opened
        for i, obs in enumerate(windows):
            reply = await client.call({
                "type": "track_step", "id": f"w{i}",
                "session_id": "chaos",
                "observation": protocol.observation_to_wire(obs),
            })
            # A resent window that already landed is skipped
            # (ok=True, stepped=False): state untouched either way.
            assert reply["ok"] is True, reply
    finally:
        await client.close()
    return estimates


def _run(scenario, plan):
    _, _, _, observations, windows = scenario
    with _service(scenario) as service:
        with GatewayServer(service) as gateway:
            with injected(plan):
                estimates = asyncio.run(_drive(
                    gateway.port, observations, windows,
                ))
            fired = dict(gateway.metrics.faults_injected)
            dropped = gateway.metrics.replies_dropped
        session = service.close_session("chaos")
    return estimates, session.estimates(), fired, dropped


@pytest.fixture(scope="module")
def baseline(scenario):
    return _run(scenario, None)


@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_slow_plans_lose_nothing(scenario, baseline, seed):
    plan = random_gateway_slow_plan(seed)
    estimates, tracked, fired, dropped = _run(scenario, plan)
    clean_estimates, clean_tracked, _, _ = baseline
    assert fired.get("gateway.client.slow", 0) >= 1
    assert dropped == 0  # delays never drop a reply
    assert estimates == clean_estimates  # wire floats: bitwise equality
    assert np.array_equal(tracked, clean_tracked)


@pytest.mark.parametrize("seed", DROP_SEEDS)
def test_drop_plans_survive_reconnect_and_resend(scenario, baseline, seed):
    plan = random_gateway_drop_plan(seed)
    estimates, tracked, fired, dropped = _run(scenario, plan)
    clean_estimates, clean_tracked, _, _ = baseline
    assert sum(fired.values()) >= 1  # the plan was never vacuous
    assert estimates == clean_estimates
    assert np.array_equal(tracked, clean_tracked)


def test_torn_reply_is_discarded_and_counted(scenario, baseline):
    """Pin the drop accounting: the first write after the handshake is
    the q0 localize reply, so ``skip=1`` tears exactly one reply frame
    — which must surface as ``replies_dropped``, never a hang."""
    plan = FaultPlan([FaultSpec("gateway.frame.torn", times=1, skip=1)])
    estimates, tracked, fired, dropped = _run(scenario, plan)
    clean_estimates, clean_tracked, _, _ = baseline
    assert fired == {"gateway.frame.torn": 1}
    assert dropped == 1
    assert estimates == clean_estimates
    assert np.array_equal(tracked, clean_tracked)
