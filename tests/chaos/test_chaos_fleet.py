"""Chaos over the fleet: seeded worker kills between track steps.

A ``fleet.worker.exit`` fault plan is armed in the router process just
long enough to fork the initial workers, so exactly those workers
inherit it (the replacement forked at failover starts disarmed — the
plan state is per-process after fork). The inheriting owner worker
``os._exit``\\ s on its ``skip``-th request receipt — between track
steps, before the step is applied — and the router must:

* answer every submitted request exactly once (zero loss, the
  redelivery path);
* resume the session from its newest checkpoint so the surviving
  stream is bitwise-identical to a run that never saw the fault
  (checkpoint-bounded replay);
* count the death, respawn, and resume in its own metrics.
"""

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec, injected
from repro.fleet import ServeFleet
from repro.fpmap import build_fingerprint_map
from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage
from repro.serve import LocalizeRequest, TrackStepRequest
from repro.traffic import MeasurementModel, simulate_flux

STEPS = 8
USERS = 2


@pytest.fixture(scope="module")
def scenario():
    net = build_network(
        field=RectangularField(8, 8), node_count=64, radius=2.0, rng=11
    )
    sniffers = sample_sniffers_percentage(net, 25, rng=3)
    fmap = build_fingerprint_map(
        net.field, net.positions[sniffers], resolution=1.0
    )
    gen = np.random.default_rng(23)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    truth = net.field.sample_uniform(USERS, gen)
    stream = [
        measure.observe(
            simulate_flux(net, list(truth), [1.5, 2.5], rng=gen),
            time=float(step),
        )
        for step in range(STEPS)
    ]
    localizes = []
    for r in range(STEPS):
        point = net.field.sample_uniform(1, gen)
        flux = simulate_flux(
            net, list(point), [float(gen.uniform(1.0, 3.0))], rng=gen
        )
        localizes.append(LocalizeRequest(
            request_id=f"r{r}", client_id="lone-client",
            observation=measure.observe(flux), candidate_count=24,
            seed=int(gen.integers(2**31)),
        ))
    return net, sniffers, fmap, stream, localizes


def _kill_plan(skip):
    return FaultPlan(
        [FaultSpec("fleet.worker.exit", times=1, skip=skip)], seed=skip
    )


def _start_fleet(scenario, plan):
    net, sniffers, fmap, _, _ = scenario
    fleet = ServeFleet(
        net.field, net.positions[sniffers], workers=2,
        fingerprint_map=fmap, max_batch=8, max_wait_s=0.001,
    )
    # Arm only across the fork: the initial workers inherit the armed
    # plan; by failover time the router is disarmed again, so the
    # replacement worker comes up clean and the fault fires once.
    with injected(plan):
        fleet.start()
    return fleet


def _run_tracked(scenario, plan=None):
    _, _, _, stream, _ = scenario
    fleet = _start_fleet(scenario, plan)
    try:
        fleet.open_session("s0", USERS, seed=7)
        estimates = []
        for i, obs in enumerate(stream):
            reply = fleet.call(
                TrackStepRequest(
                    request_id=f"t{i}", client_id="tracker",
                    session_id="s0", observation=obs,
                ),
                timeout=300,
            )
            estimates.append(reply.estimates.tobytes())
        snapshot = fleet.fleet_snapshot()
    finally:
        fleet.stop()
    return estimates, snapshot


def _run_localizes(scenario, plan=None):
    _, _, _, _, localizes = scenario
    fleet = _start_fleet(scenario, plan)
    try:
        replies = [fleet.call(r, timeout=300) for r in localizes]
        snapshot = fleet.fleet_snapshot()
    finally:
        fleet.stop()
    payload = [
        (f.positions.tobytes(), f.thetas.tobytes(), float(f.objective))
        for reply in replies
        for f in reply.result.fits
    ]
    return payload, snapshot


@pytest.fixture(scope="module")
def tracked_baseline(scenario):
    estimates, snapshot = _run_tracked(scenario)
    assert snapshot["router"]["worker_deaths"] == 0
    return estimates


@pytest.fixture(scope="module")
def localize_baseline(scenario):
    payload, _ = _run_localizes(scenario)
    return payload


@pytest.mark.parametrize("skip", [0, 3, 6])
def test_worker_killed_between_steps_resumes_bitwise(
    scenario, tracked_baseline, skip
):
    estimates, snapshot = _run_tracked(scenario, _kill_plan(skip))
    router = snapshot["router"]

    # Zero loss: every step answered exactly once, in order.
    assert len(estimates) == STEPS

    # The fault actually fired and was recovered from.
    assert router["worker_deaths"] == 1, router
    assert router["worker_restarts"] == 1
    assert router["sessions_resumed"] == 1
    assert router["redeliveries"] >= 1

    # Checkpoint-bounded replay: the resumed stream is the stream.
    assert estimates == tracked_baseline


def test_worker_killed_mid_localize_burst_loses_nothing(
    scenario, localize_baseline
):
    payload, snapshot = _run_localizes(scenario, _kill_plan(4))
    router = snapshot["router"]
    assert router["worker_deaths"] == 1
    assert router["redeliveries"] >= 1
    # Localize requests are stateless: the redelivered request
    # recomputes on the replacement and the reply is bitwise the same.
    assert payload == localize_baseline


def test_disarmed_plan_costs_nothing(scenario, tracked_baseline):
    # The no-fault run under a plan for a *different* site behaves as
    # the baseline (the fault point is one None check when disarmed).
    plan = FaultPlan(
        [FaultSpec("serve.batch.fuse", times=1, skip=10_000)], seed=1
    )
    estimates, snapshot = _run_tracked(scenario, plan)
    assert snapshot["router"]["worker_deaths"] == 0
    assert estimates == tracked_baseline
