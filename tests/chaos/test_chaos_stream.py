"""Chaos sweep over the streaming path: seeded delivery + durability faults.

Invariants asserted under every plan:

* estimates bitwise-identical to the clean run (duplicates are skipped,
  stalls only cost time, torn writes are retried);
* the checkpoint file is either absent or loads as a valid, resumable
  checkpoint — never a hybrid (atomic rename);
* every injected delivery fault is visible in the skip counters.
"""

import numpy as np
import pytest

from repro.errors import FaultInjected
from repro.faults import FaultPlan, FaultSpec, RetryPolicy, injected
from repro.network import sample_sniffers_percentage
from repro.smc import SequentialMonteCarloTracker, TrackerConfig
from repro.stream import (
    ReplaySource,
    SyntheticLiveSource,
    TrackingSession,
    run_stream,
)
from repro.stream.checkpoint import load_checkpoint, save_checkpoint

from .plans import MAX_ATTEMPTS, random_stream_plan

SEEDS = range(25)
_CFG = TrackerConfig(prediction_count=100, keep_count=5)
_RETRIES = RetryPolicy(
    max_attempts=MAX_ATTEMPTS, base_delay_s=0.0, max_delay_s=0.0
)


@pytest.fixture(scope="module")
def scenario(small_network):
    sniffers = sample_sniffers_percentage(small_network, 20, rng=1)
    source = SyntheticLiveSource(
        small_network, sniffers, user_count=2, rounds=6, rng=2
    )
    observations = list(source)

    def make_tracker(seed=31):
        return SequentialMonteCarloTracker(
            small_network.field,
            small_network.positions[sniffers],
            user_count=2,
            config=_CFG,
            rng=seed,
        )

    return observations, make_tracker


@pytest.fixture(scope="module")
def baseline(scenario):
    observations, make_tracker = scenario
    session = TrackingSession("clean", make_tracker())
    run_stream(ReplaySource(observations), session)
    return session.estimates()


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_plan_preserves_estimates_bitwise(
    scenario, baseline, seed, tmp_path
):
    observations, make_tracker = scenario
    plan = random_stream_plan(seed)
    path = tmp_path / "chaos.ckpt.npz"
    session = TrackingSession("chaos", make_tracker())
    with injected(plan):
        run_stream(
            ReplaySource(observations), session,
            checkpoint_path=path, retry_policy=_RETRIES,
        )

    np.testing.assert_array_equal(session.estimates(), baseline)

    # Delivery faults are observable, not silent: every duplicated
    # window shows up as an out-of-order skip.
    duplicated = plan.fired("stream.source.duplicate")
    assert session.metrics.windows_skipped.get("out_of_order", 0) == duplicated
    assert session.windows_consumed == len(observations) + duplicated

    # Torn checkpoint writes were retried within budget; whatever was
    # published is a complete checkpoint, never a hybrid.
    assert path.exists()
    restored = load_checkpoint(path)
    assert restored.session_id == "chaos"
    assert restored.windows_consumed == session.windows_consumed


@pytest.mark.parametrize("seed", [0, 7, 19])
def test_chaos_interrupt_then_resume_lands_identically(
    scenario, baseline, seed, tmp_path
):
    """Kill mid-stream under faults, resume disarmed, land bitwise on
    the clean trajectory — checkpoints carry the full tracker state."""
    observations, make_tracker = scenario
    plan = random_stream_plan(seed)
    path = tmp_path / "resume.ckpt.npz"
    first = TrackingSession("run", make_tracker())
    with injected(plan):
        run_stream(
            ReplaySource(observations), first,
            checkpoint_path=path, max_windows=3, retry_policy=_RETRIES,
        )
    assert path.exists()

    from repro.stream import resume_or_create

    second = resume_or_create(
        path, lambda: TrackingSession("run", make_tracker())
    )
    assert second.windows_consumed == 3
    run_stream(ReplaySource(observations), second)
    np.testing.assert_array_equal(second.estimates(), baseline)


@pytest.mark.parametrize("seed", [1, 5])
def test_torn_windows_are_counted_not_silent(scenario, seed, tmp_path):
    observations, make_tracker = scenario
    plan = FaultPlan(
        [FaultSpec("stream.source.torn", times=2, skip=1)], seed=seed
    )
    session = TrackingSession("torn", make_tracker())
    with injected(plan):
        run_stream(ReplaySource(observations), session)
    assert plan.fired("stream.source.torn") == 2
    assert session.metrics.windows_skipped.get("arity_mismatch", 0) == 2
    assert session.metrics.windows_processed == len(observations) - 2


def test_unretried_torn_write_keeps_previous_checkpoint(scenario, tmp_path):
    """Without a retry policy the torn write surfaces — and the
    previously published checkpoint stays bitwise intact."""
    observations, make_tracker = scenario
    path = tmp_path / "torn.ckpt.npz"
    session = TrackingSession("torn-write", make_tracker())
    for obs in observations[:2]:
        session.process(obs)
    save_checkpoint(session, path)
    before = path.read_bytes()
    for obs in observations[2:]:
        session.process(obs)
    plan = FaultPlan([FaultSpec("checkpoint.partial_write", times=None)])
    with injected(plan):
        with pytest.raises(FaultInjected):
            save_checkpoint(session, path)
    assert path.read_bytes() == before
    assert load_checkpoint(path).windows_consumed == 2
