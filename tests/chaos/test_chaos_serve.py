"""Chaos sweep over the serving path: 25 seeded random fault plans.

Invariants asserted under every plan:

* exactly one typed reply per submitted future — none lost, none
  duplicated, none left pending;
* every reply ok (the plans are retry-recoverable by construction,
  see tests/chaos/plans.py);
* float64 results bitwise-identical to the no-fault baseline run —
  a retried batch recomputes, it never drifts.
"""

import numpy as np
import pytest

from repro.faults import RetryPolicy, injected
from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage
from repro.serve import LocalizationService, LocalizeRequest
from repro.traffic import MeasurementModel, simulate_flux

from .plans import MAX_ATTEMPTS, random_serve_plan

SEEDS = range(25)
_RETRIES = RetryPolicy(
    max_attempts=MAX_ATTEMPTS, base_delay_s=0.0, max_delay_s=0.0
)


@pytest.fixture(scope="module")
def scenario():
    net = build_network(
        field=RectangularField(8, 8), node_count=64, radius=2.0, rng=11
    )
    sniffers = sample_sniffers_percentage(net, 25, rng=3)
    gen = np.random.default_rng(17)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    requests = []
    for r in range(6):
        truth = net.field.sample_uniform(1, gen)
        flux = simulate_flux(
            net, list(truth), [float(gen.uniform(1.0, 3.0))], rng=gen
        )
        requests.append(LocalizeRequest(
            request_id=f"r{r}", client_id=f"c{r % 2}",
            observation=measure.observe(flux), candidate_count=24,
            seed=int(gen.integers(2**31)), use_map=False,
        ))
    return net, sniffers, requests


def _run(scenario, plan):
    net, sniffers, requests = scenario
    service = LocalizationService(
        net.field, net.positions[sniffers], max_batch=4,
        retry_policy=_RETRIES,
    )
    with injected(plan), service:
        futures = [(r.request_id, service.submit(r)) for r in requests]
        replies = [(rid, f.result(timeout=60)) for rid, f in futures]
    return replies, service.metrics.snapshot()


@pytest.fixture(scope="module")
def baseline(scenario):
    replies, _ = _run(scenario, None)
    return replies


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_plan_preserves_replies_bitwise(scenario, baseline, seed):
    plan = random_serve_plan(seed)
    replies, metrics = _run(scenario, plan)

    # Exactly one reply per request, in submission order, none lost.
    assert [rid for rid, _ in replies] == [rid for rid, _ in baseline]
    assert all(reply is not None for _, reply in replies)
    assert all(reply.request_id == rid for rid, reply in replies)

    # The plans are recoverable by construction: every reply is ok.
    bad = [(rid, reply.code) for rid, reply in replies if not reply.ok]
    assert not bad, f"seed {seed} plan {plan.summary()} -> {bad}"

    # Bitwise equality against the no-fault run.
    for (_, clean), (_, chaotic) in zip(baseline, replies):
        assert len(clean.result.fits) == len(chaotic.result.fits)
        for a, b in zip(clean.result.fits, chaotic.result.fits):
            np.testing.assert_array_equal(a.positions, b.positions)
            np.testing.assert_array_equal(a.thetas, b.thetas)
            assert a.objective == b.objective

    # Bookkeeping is consistent: what fired was retried, stayed within
    # budget, and the fault never leaked past the retry boundary.
    for site in plan.sites:
        spec = plan.spec(site)
        if spec.times is not None:
            assert plan.fired(site) <= spec.times
    assert metrics["retries_total"] == sum(
        plan.fired(site) for site in plan.sites
    )
    assert metrics["replies_error_total"] == 0
