"""LocalizationService end to end: many clients, one deployment.

Covers the reply-delivery invariant under real thread concurrency
(every submitted request gets exactly one reply, none lost or
duplicated), session streaming equivalence with the local tracking
loop, drain-and-checkpoint shutdown with resume, the blocking
``call`` API, and the metrics HTTP endpoint.
"""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.errors import ConfigurationError, DeadlineExpired
from repro.fpmap import MapRegistry, build_fingerprint_map
from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage
from repro.serve import (
    ERROR_SHUTDOWN,
    ERROR_UNKNOWN_SESSION,
    LocalizationService,
    LocalizeRequest,
    MetricsServer,
    TrackStepRequest,
)
from repro.smc import SequentialMonteCarloTracker, TrackerConfig
from repro.stream import SyntheticLiveSource, TrackingSession
from repro.traffic import MeasurementModel, simulate_flux

_CFG = TrackerConfig(prediction_count=100, keep_count=5)


@pytest.fixture(scope="module")
def scenario():
    net = build_network(
        field=RectangularField(10, 10), node_count=100, radius=2.0, rng=5
    )
    sniffers = sample_sniffers_percentage(net, 20, rng=2)
    fmap = build_fingerprint_map(net.field, net.positions[sniffers],
                                 resolution=2.0)
    return net, sniffers, fmap


def _service(scenario, **kwargs):
    net, sniffers, fmap = scenario
    kwargs.setdefault("fingerprint_map", fmap)
    kwargs.setdefault("max_batch", 8)
    kwargs.setdefault("max_wait_s", 0.002)
    return LocalizationService(net.field, net.positions[sniffers], **kwargs)


def _requests(scenario, clients, per_client, seed=0):
    net, sniffers, _ = scenario
    gen = np.random.default_rng(seed)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    work = []
    for c in range(clients):
        batch = []
        for r in range(per_client):
            truth = net.field.sample_uniform(1, gen)
            flux = simulate_flux(
                net, list(truth), [float(gen.uniform(1.0, 3.0))], rng=gen
            )
            batch.append(LocalizeRequest(
                request_id=f"c{c}-r{r}", client_id=f"client-{c}",
                observation=measure.observe(flux), candidate_count=32,
                seed=int(gen.integers(2**31)),
            ))
        work.append(batch)
    return work


class TestConcurrentClients:
    def test_no_lost_or_duplicated_replies(self, scenario):
        work = _requests(scenario, clients=4, per_client=8)
        replies = []
        lock = threading.Lock()

        def client(batch):
            mine = [None] * len(batch)
            for i, request in enumerate(batch):
                mine[i] = service.submit(request).result(timeout=30)
            with lock:
                replies.extend(mine)

        with _service(scenario) as service:
            threads = [
                threading.Thread(target=client, args=(batch,))
                for batch in work
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        submitted = {r.request_id for batch in work for r in batch}
        returned = [r.request_id for r in replies]
        assert len(returned) == len(submitted) == 32
        assert set(returned) == submitted  # none lost
        assert len(set(returned)) == len(returned)  # none duplicated
        assert all(r.ok for r in replies)
        assert service.metrics.replies_ok == 32

    def test_reply_routing_matches_request(self, scenario):
        work = _requests(scenario, clients=2, per_client=2)
        with _service(scenario) as service:
            for batch in work:
                for request in batch:
                    reply = service.submit(request).result(timeout=30)
                    assert reply.request_id == request.request_id
                    assert reply.client_id == request.client_id


class TestTrackingSessions:
    def _windows(self, scenario, rounds=5):
        net, sniffers, _ = scenario
        return list(SyntheticLiveSource(
            net, sniffers, user_count=2, rounds=rounds, rng=3
        ))

    def test_streamed_session_matches_local_loop(self, scenario):
        net, sniffers, fmap = scenario
        windows = self._windows(scenario)
        with _service(scenario) as service:
            service.open_session("s", user_count=2, config=_CFG, rng=11)
            for r, obs in enumerate(windows):
                reply = service.submit(TrackStepRequest(
                    request_id=f"r{r}", client_id="t", session_id="s",
                    observation=obs,
                )).result(timeout=30)
                assert reply.ok and reply.skip_reason is None
        local = TrackingSession("local", SequentialMonteCarloTracker(
            net.field, net.positions[sniffers], 2,
            config=_CFG, rng=11, fingerprint_map=fmap,
        ))
        for obs in windows:
            local.process(obs)
        session = service.close_session("s")
        assert session.windows_consumed == local.windows_consumed
        assert np.array_equal(session.estimates(), local.estimates())

    def test_skipped_window_is_a_reply_not_an_error(self, scenario):
        windows = self._windows(scenario)
        with _service(scenario) as service:
            service.open_session("s", user_count=2, config=_CFG, rng=11)
            first = service.submit(TrackStepRequest(
                request_id="r0", client_id="t", session_id="s",
                observation=windows[1],
            )).result(timeout=30)
            stale = service.submit(TrackStepRequest(
                request_id="r1", client_id="t", session_id="s",
                observation=windows[0],  # out of order
            )).result(timeout=30)
        assert first.ok and first.skip_reason is None
        assert stale.ok and stale.skip_reason is not None
        assert stale.step is None

    def test_unknown_session_is_a_typed_error(self, scenario):
        windows = self._windows(scenario, rounds=1)
        with _service(scenario) as service:
            reply = service.submit(TrackStepRequest(
                request_id="r0", client_id="t", session_id="ghost",
                observation=windows[0],
            )).result(timeout=30)
        assert not reply.ok
        assert reply.code == ERROR_UNKNOWN_SESSION

    def test_drain_and_checkpoint_then_resume(self, scenario, tmp_path):
        windows = self._windows(scenario)
        service = _service(scenario).start()
        service.open_session("patrol", user_count=2, config=_CFG, rng=11)
        for r, obs in enumerate(windows[:3]):
            service.submit(TrackStepRequest(
                request_id=f"r{r}", client_id="t", session_id="patrol",
                observation=obs,
            )).result(timeout=30)
        summary = service.stop(checkpoint_dir=tmp_path)
        path = summary["checkpoints"]["patrol"]
        assert path.endswith("patrol.ckpt.npz")

        revived = _service(scenario)
        session = revived.resume_session(path)
        assert session.session_id == "patrol"
        assert session.windows_consumed == 3
        with revived:
            reply = revived.submit(TrackStepRequest(
                request_id="r3", client_id="t", session_id="patrol",
                observation=windows[3],
            )).result(timeout=30)
        assert reply.ok and reply.skip_reason is None

    def test_duplicate_session_id_rejected(self, scenario):
        service = _service(scenario)
        service.open_session("s", user_count=2, config=_CFG)
        with pytest.raises(ConfigurationError):
            service.open_session("s", user_count=2, config=_CFG)


class TestLifecycle:
    def test_submit_after_stop_gets_shutdown_reply(self, scenario):
        request = _requests(scenario, 1, 1)[0][0]
        service = _service(scenario).start()
        service.stop()
        reply = service.submit(request).result(timeout=5)
        assert not reply.ok
        assert reply.code == ERROR_SHUTDOWN

    def test_stop_without_drain_flushes_queue(self, scenario):
        batch = _requests(scenario, 1, 4)[0]
        service = _service(scenario)  # never started: nothing drains
        futures = [service.submit(r) for r in batch]
        summary = service.stop(drain=False)
        assert summary["flushed"] == 4
        for future in futures:
            reply = future.result(timeout=5)
            assert reply.code == ERROR_SHUTDOWN

    def test_double_start_rejected(self, scenario):
        with _service(scenario) as service:
            with pytest.raises(ConfigurationError):
                service.start()

    def test_call_raises_typed_exception(self, scenario):
        request = _requests(scenario, 1, 1)[0][0]
        expired = LocalizeRequest(
            request_id="late", client_id="c", observation=request.observation,
            candidate_count=32, deadline_s=0.0,
        )
        with _service(scenario) as service:
            assert service.call(request, timeout=30).ok
            with pytest.raises(DeadlineExpired):
                service.call(expired, timeout=30)

    def test_rejects_non_request_objects(self, scenario):
        service = _service(scenario)
        with pytest.raises(ConfigurationError):
            service.submit({"request_id": "r"})


class TestSharedState:
    def test_registry_shares_one_build(self, scenario):
        net, sniffers, _ = scenario
        registry = MapRegistry()
        a = LocalizationService(
            net.field, net.positions[sniffers],
            registry=registry, map_resolution=2.0,
        )
        b = LocalizationService(
            net.field, net.positions[sniffers],
            registry=registry, map_resolution=2.0,
        )
        assert registry.builds == 1
        assert a.fingerprint_map is b.fingerprint_map

    def test_wrong_deployment_map_refused(self, scenario):
        net, sniffers, _ = scenario
        other = build_fingerprint_map(
            net.field, net.positions[sniffers][:-1], resolution=2.0
        )
        with pytest.raises(ConfigurationError):
            LocalizationService(
                net.field, net.positions[sniffers], fingerprint_map=other
            )


class TestMetricsEndpoint:
    def test_http_snapshot(self, scenario):
        batch = _requests(scenario, 1, 3)[0]
        with _service(scenario) as service:
            for request in batch:
                service.call(request, timeout=30)
            with MetricsServer(service.metrics, port=0) as endpoint:
                url = f"http://127.0.0.1:{endpoint.port}"
                payload = json.loads(
                    urllib.request.urlopen(f"{url}/metrics").read()
                )
                health = json.loads(
                    urllib.request.urlopen(f"{url}/healthz").read()
                )
        assert payload["replies_ok"] == 3
        assert payload["requests_submitted"] == 3
        assert payload["batches"] >= 1
        assert health == {"status": "ok"}

    def test_snapshot_fields(self, scenario):
        batch = _requests(scenario, 1, 2)[0]
        with _service(scenario) as service:
            for request in batch:
                service.call(request, timeout=30)
        snapshot = service.metrics.snapshot()
        for key in (
            "latency_p50_s", "latency_p95_s", "latency_p99_s",
            "batch_size_histogram", "batch_size_mean", "queue_depth",
            "deadline_expiries", "fused_candidate_rows",
        ):
            assert key in snapshot
        assert snapshot["fused_candidate_rows"] > 0
