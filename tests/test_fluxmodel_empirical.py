"""Empirical kernel calibration tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FittingError
from repro.fluxmodel.empirical import (
    CalibratedFluxModel,
    EmpiricalKernel,
    fit_empirical_kernel,
)
from repro.fluxmodel.discrete import DiscreteFluxModel


class TestEmpiricalKernel:
    def _kernel(self):
        return EmpiricalKernel(
            bin_edges=np.linspace(0, 1, 5),
            corrections=np.array([2.0, 1.5, 1.0, 0.5]),
        )

    def test_correction_lookup(self):
        k = self._kernel()
        np.testing.assert_allclose(
            k.correction_at(np.array([0.1, 0.3, 0.6, 0.9])),
            [2.0, 1.5, 1.0, 0.5],
        )

    def test_clipping(self):
        k = self._kernel()
        assert k.correction_at(np.array([-0.5]))[0] == 2.0
        assert k.correction_at(np.array([1.5]))[0] == 0.5

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            EmpiricalKernel(
                bin_edges=np.linspace(0, 1, 5), corrections=np.ones(2)
            )

    def test_nonfinite_rejected(self):
        with pytest.raises(ConfigurationError):
            EmpiricalKernel(
                bin_edges=np.linspace(0, 1, 3),
                corrections=np.array([1.0, np.nan]),
            )


class TestFitEmpiricalKernel:
    def test_fit_produces_positive_corrections(self, small_network):
        kernel = fit_empirical_kernel(small_network, probe_count=3, rng=0)
        assert np.all(kernel.corrections > 0)
        assert kernel.corrections.size == 12

    def test_corrections_order_of_magnitude(self, small_network):
        """The analytic kernel is right up to a ~hop-distance factor."""
        kernel = fit_empirical_kernel(small_network, probe_count=4, rng=1)
        r_hat = small_network.average_hop_distance()
        # measured/analytic ratio should be within a few x of 1/r.
        mid = kernel.corrections[3:9]
        assert np.all(mid > 0.1 / r_hat)
        assert np.all(mid < 10.0 / r_hat)

    def test_parameter_validation(self, small_network):
        with pytest.raises(ConfigurationError):
            fit_empirical_kernel(small_network, probe_count=0)
        with pytest.raises(ConfigurationError):
            fit_empirical_kernel(small_network, bins=1)


class TestCalibratedFluxModel:
    def test_identity_correction_matches_analytic(self, small_network):
        identity = EmpiricalKernel(
            bin_edges=np.linspace(0, 1, 4), corrections=np.ones(3)
        )
        analytic = DiscreteFluxModel(
            small_network.field, small_network.positions[:30], d_floor=1.0
        )
        calibrated = CalibratedFluxModel(
            small_network.field,
            small_network.positions[:30],
            kernel=identity,
            d_floor=1.0,
        )
        sink = np.array([7.0, 7.0])
        np.testing.assert_allclose(
            calibrated.geometry_kernel(sink),
            analytic.geometry_kernel(sink),
            rtol=1e-9,
        )

    def test_correction_scales_kernel(self, small_network):
        double = EmpiricalKernel(
            bin_edges=np.linspace(0, 1, 4), corrections=np.full(3, 2.0)
        )
        analytic = DiscreteFluxModel(
            small_network.field, small_network.positions[:30], d_floor=1.0
        )
        calibrated = CalibratedFluxModel(
            small_network.field,
            small_network.positions[:30],
            kernel=double,
            d_floor=1.0,
        )
        sink = np.array([7.0, 7.0])
        np.testing.assert_allclose(
            calibrated.geometry_kernel(sink),
            2.0 * analytic.geometry_kernel(sink),
            rtol=1e-9,
        )

    def test_restrict_to_preserves_kernel(self, small_network):
        kernel = fit_empirical_kernel(small_network, probe_count=2, rng=2)
        model = CalibratedFluxModel(
            small_network.field, small_network.positions[:30], kernel=kernel
        )
        sub = model.restrict_to(np.array([0, 5, 10]))
        assert isinstance(sub, CalibratedFluxModel)
        sink = np.array([7.0, 7.0])
        np.testing.assert_allclose(
            sub.geometry_kernel(sink), model.geometry_kernel(sink)[[0, 5, 10]]
        )

    def test_calibrated_fits_measured_flux_better_on_average(
        self, small_network
    ):
        """Calibration reduces the mean residual across sinks.

        The learned correction captures the radial bias *averaged over
        positions*; individual sinks (corners especially) can still go
        either way, so the contract is about the average.
        """
        from repro.routing import build_collection_tree
        from repro.traffic import smooth_flux

        kernel = fit_empirical_kernel(small_network, probe_count=5, rng=3)
        analytic = DiscreteFluxModel(
            small_network.field, small_network.positions, d_floor=1.0
        )
        calibrated = CalibratedFluxModel(
            small_network.field,
            small_network.positions,
            kernel=kernel,
            d_floor=1.0,
        )

        def residual(model, measured, root_pos):
            g = model.geometry_kernel(root_pos)
            theta = float(g @ measured) / float(g @ g)
            return float(np.linalg.norm(theta * g - measured))

        analytic_res, calibrated_res = [], []
        for seed in range(6):
            gen = np.random.default_rng(99 + seed)
            sink = small_network.field.sample_uniform(1, gen)[0]
            tree = build_collection_tree(small_network, sink, rng=gen)
            measured = smooth_flux(small_network, tree.subtree_aggregate())
            root_pos = small_network.positions[tree.root]
            analytic_res.append(residual(analytic, measured, root_pos))
            calibrated_res.append(residual(calibrated, measured, root_pos))
        wins = sum(c < a for a, c in zip(analytic_res, calibrated_res))
        assert wins >= 3
        assert np.mean(calibrated_res) < np.mean(analytic_res) * 1.1


class TestLossyFlux:
    def test_delivery_one_matches_lossless(self, small_network):
        from repro.routing import build_collection_tree
        from repro.traffic.lossy import lossy_subtree_flux

        tree = build_collection_tree(small_network, np.array([7.0, 7.0]), rng=0)
        w = np.ones(small_network.node_count)
        np.testing.assert_allclose(
            lossy_subtree_flux(tree, w, 1.0), tree.subtree_aggregate(w)
        )

    def test_loss_reduces_flux(self, small_network):
        from repro.routing import build_collection_tree
        from repro.traffic.lossy import lossy_subtree_flux

        tree = build_collection_tree(small_network, np.array([7.0, 7.0]), rng=0)
        w = np.ones(small_network.node_count)
        lossy = lossy_subtree_flux(tree, w, 0.8)
        lossless = tree.subtree_aggregate(w)
        assert lossy[tree.root] < lossless[tree.root]
        assert np.all(lossy <= lossless + 1e-9)

    def test_chain_attenuation_exact(self):
        from repro.routing.tree import CollectionTree
        from repro.traffic.lossy import lossy_subtree_flux

        parents = np.array([0, 0, 1, 2], dtype=np.int64)
        hops = np.arange(4, dtype=np.int64)
        tree = CollectionTree(root=0, parents=parents, hops=hops)
        flux = lossy_subtree_flux(tree, np.ones(4), 0.5)
        # leaf: 1; its parent: 1 + .5; next: 1 + .5(1.5) = 1.75; root: 1 + .5*1.75
        np.testing.assert_allclose(flux, [1.875, 1.75, 1.5, 1.0])

    def test_delivery_validated(self, small_network):
        from repro.routing import build_collection_tree
        from repro.traffic.lossy import lossy_subtree_flux

        tree = build_collection_tree(small_network, np.array([7.0, 7.0]), rng=0)
        with pytest.raises(ConfigurationError):
            lossy_subtree_flux(tree, np.ones(small_network.node_count), 0.0)


class TestAdaptiveCounts:
    def _samples(self, spread):
        from repro.smc.samples import UserSamples

        positions = np.array([[0.0, 0.0], [spread, 0.0]]) + 5.0
        return UserSamples(
            positions=positions, weights=np.array([0.5, 0.5]), t_last=0.0
        )

    def test_concentrated_posterior_needs_fewer(self):
        from repro.smc.adaptive import adaptive_prediction_count

        tight = adaptive_prediction_count(
            self._samples(0.1), radius=3.0, max_count=100_000
        )
        broad = adaptive_prediction_count(
            self._samples(8.0), radius=3.0, max_count=100_000
        )
        assert tight < broad  # broad posterior -> larger search area

    def test_radius_increases_count(self):
        from repro.smc.adaptive import adaptive_prediction_count

        small = adaptive_prediction_count(self._samples(1.0), radius=1.0)
        large = adaptive_prediction_count(self._samples(1.0), radius=10.0)
        assert large > small

    def test_bounds_respected(self):
        from repro.smc.adaptive import adaptive_prediction_count

        count = adaptive_prediction_count(
            self._samples(0.01), radius=50.0, min_count=10, max_count=200
        )
        assert count == 200

    def test_validation(self):
        from repro.smc.adaptive import adaptive_prediction_count

        with pytest.raises(ConfigurationError):
            adaptive_prediction_count(
                self._samples(1.0), radius=1.0, min_count=0
            )
