"""Spatial cluster partitioning of fingerprint maps."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fleet import cluster_keys, partition_map, shard_cells, submap
from repro.fpmap import build_fingerprint_map
from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage


@pytest.fixture(scope="module")
def fmap():
    net = build_network(
        field=RectangularField(10, 10), node_count=100, radius=2.2, rng=5
    )
    sniffers = sample_sniffers_percentage(net, 25, rng=2)
    return build_fingerprint_map(
        net.field, net.positions[sniffers], resolution=1.0
    )


class TestClusterKeys:
    def test_one_key_per_cell(self, fmap):
        keys = cluster_keys(fmap, cluster_cells=4)
        assert keys.shape == (fmap.cell_count,)

    def test_cells_in_same_block_share_a_key(self, fmap):
        keys = cluster_keys(fmap, cluster_cells=4)
        xmin, ymin, _, _ = fmap.field.bounding_box
        block = 4 * fmap.resolution
        for cell in (0, fmap.cell_count // 2, fmap.cell_count - 1):
            same = np.flatnonzero(keys == keys[cell])
            cols = np.floor(
                (fmap.cell_positions[same, 0] - xmin) / block
            )
            rows = np.floor(
                (fmap.cell_positions[same, 1] - ymin) / block
            )
            assert len(set(cols)) == 1 and len(set(rows)) == 1

    def test_invalid_cluster_cells(self, fmap):
        with pytest.raises(ConfigurationError):
            cluster_keys(fmap, cluster_cells=0)


class TestShardCells:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    def test_disjoint_cover(self, fmap, shards):
        cells = shard_cells(fmap, shards)
        assert len(cells) == shards
        merged = np.concatenate(cells)
        assert sorted(merged) == list(range(fmap.cell_count))
        assert len(set(merged.tolist())) == fmap.cell_count

    def test_whole_clusters_move_together(self, fmap):
        keys = cluster_keys(fmap, cluster_cells=4)
        for shard, indices in enumerate(shard_cells(fmap, 3)):
            shard_keys = set(keys[indices].tolist())
            # Every cell of each of this shard's clusters is here.
            member = np.isin(keys, list(shard_keys))
            assert np.array_equal(np.flatnonzero(member), indices), shard

    def test_shards_hold_balanced_cluster_counts(self, fmap):
        # Round-robin deals whole clusters, so shard sizes balance in
        # *clusters* (cells only approximately: boundary blocks are
        # smaller than interior ones).
        keys = cluster_keys(fmap, cluster_cells=4)
        counts = [
            len(set(keys[indices].tolist()))
            for indices in shard_cells(fmap, 4)
        ]
        assert max(counts) - min(counts) <= 1
        assert min(len(c) for c in shard_cells(fmap, 4)) > 0

    def test_invalid_shards(self, fmap):
        with pytest.raises(ConfigurationError):
            shard_cells(fmap, 0)


class TestSubmap:
    def test_submap_is_a_valid_map_of_the_same_deployment(self, fmap):
        cells = shard_cells(fmap, 2)[0]
        shard = submap(fmap, cells)
        assert shard.deployment == fmap.deployment
        shard.validate_against(
            fmap.field, fmap.sniffer_positions, fmap.d_floor
        )
        np.testing.assert_array_equal(
            shard.cell_positions, fmap.cell_positions[cells]
        )
        np.testing.assert_array_equal(
            shard.signatures, fmap.signatures[cells]
        )

    def test_submap_rows_are_copies(self, fmap):
        shard = submap(fmap, np.arange(4))
        shard.signatures[0, 0] += 1.0
        assert shard.signatures[0, 0] != fmap.signatures[0, 0]

    def test_empty_shard_refused(self, fmap):
        with pytest.raises(ConfigurationError):
            submap(fmap, np.array([], dtype=np.int64))

    def test_out_of_range_cells_refused(self, fmap):
        with pytest.raises(ConfigurationError):
            submap(fmap, np.array([fmap.cell_count]))


class TestPartitionMap:
    def test_single_shard_returns_parent_uncopied(self, fmap):
        submaps, cells = partition_map(fmap, 1)
        assert submaps[0] is fmap
        np.testing.assert_array_equal(cells[0], np.arange(fmap.cell_count))

    def test_partition_covers_every_cell_exactly_once(self, fmap):
        submaps, cells = partition_map(fmap, 3)
        assert sum(m.cell_count for m in submaps) == fmap.cell_count
        merged = np.sort(np.concatenate(cells))
        np.testing.assert_array_equal(merged, np.arange(fmap.cell_count))


class TestRegistryIntegration:
    def test_get_or_partition_caches_shards(self, fmap):
        from repro.fpmap import MapRegistry

        registry = MapRegistry()
        registry.register(fmap)
        first = registry.get_or_partition(fmap, 2)
        second = registry.get_or_partition(fmap, 2)
        assert [a is b for a, b in zip(first, second)] == [True, True]
        assert registry.partitions >= 1

    def test_invalidate_drops_shards(self, fmap):
        from repro.fpmap import MapRegistry

        registry = MapRegistry()
        registry.register(fmap)
        first = registry.get_or_partition(fmap, 2)
        registry.invalidate(fmap.deployment)
        registry.register(fmap)
        again = registry.get_or_partition(fmap, 2)
        assert first[0] is not again[0]
