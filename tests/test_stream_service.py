"""Service loop end-to-end: replay equivalence, resume, malformed input."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network import sample_sniffers_percentage
from repro.smc import SequentialMonteCarloTracker, TrackerConfig
from repro.stream import (
    ReplaySource,
    StreamMetrics,
    SyntheticLiveSource,
    TrackingSession,
    merge_metrics,
    resume_or_create,
    run_stream,
)
from repro.traffic.measurement import FluxObservation

_CFG = TrackerConfig(prediction_count=130, keep_count=8)


@pytest.fixture()
def scenario(small_network):
    sniffers = sample_sniffers_percentage(small_network, 20, rng=1)
    source = SyntheticLiveSource(
        small_network, sniffers, user_count=2, rounds=7, rng=2
    )
    observations = list(source)

    def make_tracker(seed=31):
        return SequentialMonteCarloTracker(
            small_network.field,
            small_network.positions[sniffers],
            user_count=2,
            config=_CFG,
            rng=seed,
        )

    return observations, make_tracker


class TestRunStream:
    def test_matches_batch_tracker(self, scenario):
        """The service pumping a replayed stream must land exactly where
        the batch ``Tracker.run`` lands on the same observations."""
        observations, make_tracker = scenario
        batch = make_tracker()
        batch.run(observations)

        session = TrackingSession("svc", make_tracker())
        run_stream(ReplaySource(observations), session)
        np.testing.assert_array_equal(
            session.estimates(), batch.estimates()
        )

    def test_survives_injected_malformed_observations(self, scenario):
        observations, make_tracker = scenario
        polluted = list(observations)
        polluted.insert(3, FluxObservation(  # wrong arity
            time=2.5, sniffers=np.arange(2), values=np.ones(2)
        ))
        polluted.insert(5, "not an observation at all")
        clean_session = TrackingSession("clean", make_tracker())
        run_stream(ReplaySource(observations), clean_session)
        dirty_session = TrackingSession("dirty", make_tracker())
        run_stream(ReplaySource(polluted), dirty_session)
        # the junk was counted, and did not disturb the estimates
        assert dirty_session.metrics.skipped_total == 2
        np.testing.assert_array_equal(
            dirty_session.estimates(), clean_session.estimates()
        )

    def test_on_step_observer_sees_every_window(self, scenario):
        observations, make_tracker = scenario
        seen = []
        session = TrackingSession("svc", make_tracker())
        run_stream(
            ReplaySource(observations),
            session,
            on_step=lambda s, step: seen.append(step is not None),
        )
        assert len(seen) == len(observations)
        assert all(seen)

    def test_max_windows_bounds_consumption(self, scenario):
        observations, make_tracker = scenario
        session = TrackingSession("svc", make_tracker())
        run_stream(ReplaySource(observations), session, max_windows=2)
        assert session.windows_consumed == 2

    def test_checkpoint_written_at_exit(self, scenario, tmp_path):
        observations, make_tracker = scenario
        path = tmp_path / "exit.ckpt.npz"
        session = TrackingSession("svc", make_tracker())
        run_stream(ReplaySource(observations), session, checkpoint_path=path)
        assert path.exists()

    def test_checkpoint_cadence(self, scenario, tmp_path):
        observations, make_tracker = scenario
        path = tmp_path / "cad.ckpt.npz"
        writes = []
        import repro.stream.service as service_module

        original = service_module.save_checkpoint

        def spy(session, target, **kwargs):
            writes.append(session.windows_consumed)
            return original(session, target, **kwargs)

        session = TrackingSession("svc", make_tracker())
        try:
            service_module.save_checkpoint = spy
            run_stream(
                ReplaySource(observations),
                session,
                checkpoint_path=path,
                checkpoint_every=3,
            )
        finally:
            service_module.save_checkpoint = original
        assert 3 in writes and 6 in writes
        assert writes[-1] == len(observations)

    def test_validation(self, scenario):
        observations, make_tracker = scenario
        session = TrackingSession("svc", make_tracker())
        with pytest.raises(ConfigurationError):
            run_stream(ReplaySource(observations), session, checkpoint_every=-1)
        with pytest.raises(ConfigurationError):
            run_stream(ReplaySource(observations), session, max_windows=-1)


class TestResumeOrCreate:
    def test_creates_when_no_checkpoint(self, scenario, tmp_path):
        observations, make_tracker = scenario
        session = resume_or_create(
            tmp_path / "none.npz",
            lambda: TrackingSession("svc", make_tracker()),
        )
        assert session.windows_consumed == 0

    def test_resumes_when_checkpoint_exists(self, scenario, tmp_path):
        observations, make_tracker = scenario
        path = tmp_path / "r.ckpt.npz"

        def factory():
            return TrackingSession("svc", make_tracker())

        first = resume_or_create(path, factory)
        run_stream(
            ReplaySource(observations), first,
            checkpoint_path=path, max_windows=3,
        )
        second = resume_or_create(path, factory)
        assert second.windows_consumed == 3
        run_stream(ReplaySource(observations), second, checkpoint_path=path)
        assert second.windows_consumed == len(observations)

    def test_truth_attached_to_fresh_session(self, scenario, tmp_path):
        _, make_tracker = scenario
        truth = lambda t: None  # noqa: E731
        session = resume_or_create(
            tmp_path / "none.npz",
            lambda: TrackingSession("svc", make_tracker()),
            truth=truth,
        )
        assert session.truth is truth


class TestMetricsExport:
    def test_json_is_parseable_and_nan_safe(self, scenario):
        import json

        observations, make_tracker = scenario
        session = TrackingSession("svc", make_tracker())
        payload = json.loads(session.metrics.to_json())
        assert payload["mean_error"] is None  # NaN -> null
        run_stream(ReplaySource(observations), session)
        payload = json.loads(session.metrics.to_json())
        assert payload["windows_processed"] == len(observations)
        assert payload["latency_p95_s"] >= payload["latency_p50_s"]

    def test_latency_reservoir_is_bounded(self):
        metrics = StreamMetrics(latency_capacity=4)
        for latency in (1.0, 2.0, 3.0, 4.0, 100.0):
            metrics.record_window(latency)
        q = metrics.latency_quantiles()
        assert q["p95"] <= 100.0
        assert metrics.windows_processed == 5

    def test_merge_metrics_totals(self):
        a, b = StreamMetrics(), StreamMetrics()
        a.record_window(0.01)
        b.record_window(0.02)
        b.record_skip("bad_type")
        summary = merge_metrics({"a": a, "b": b})
        assert summary["sessions"] == 2
        assert summary["windows_processed"] == 2
        assert summary["windows_skipped_total"] == 1

    def test_metrics_validation(self):
        with pytest.raises(ConfigurationError):
            StreamMetrics(latency_capacity=0)
