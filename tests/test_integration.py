"""End-to-end integration tests: the full attack pipelines."""

import numpy as np
import pytest

from repro import (
    MeasurementModel,
    NLSLocalizer,
    SequentialMonteCarloTracker,
    TrackerConfig,
    build_network,
    build_synthetic_dataset,
    sample_sniffers_percentage,
    simulate_flux,
    synchronous_schedule,
)
from repro.mobility import linear_trajectory
from repro.smc.association import tracking_errors_over_time
from repro.traffic import DropoutNoise, FluxSimulator, GaussianNoise


@pytest.mark.slow
class TestLocalizationPipeline:
    def test_two_users_end_to_end(self, paper_network):
        gen = np.random.default_rng(5)
        truth = paper_network.field.sample_uniform(2, gen)
        stretches = gen.uniform(1.0, 3.0, 2)
        flux = simulate_flux(paper_network, list(truth), list(stretches), rng=gen)
        sniffers = sample_sniffers_percentage(paper_network, 10, rng=gen)
        obs = MeasurementModel(
            paper_network, sniffers, smooth=True, rng=gen
        ).observe(flux)
        loc = NLSLocalizer(
            paper_network.field, paper_network.positions[sniffers]
        )
        result = loc.localize(
            obs, user_count=2, candidate_count=2000, restarts=3, rng=gen
        )
        errors = result.errors_to(truth)
        assert errors.mean() < 5.0  # single-seed sanity; bench averages

    def test_robust_to_gaussian_noise(self, paper_network):
        gen = np.random.default_rng(6)
        truth = paper_network.field.sample_uniform(1, gen)
        flux = simulate_flux(paper_network, list(truth), [2.0], rng=gen)
        sniffers = sample_sniffers_percentage(paper_network, 10, rng=gen)
        obs = MeasurementModel(
            paper_network,
            sniffers,
            noise=GaussianNoise(0.1),
            smooth=True,
            rng=gen,
        ).observe(flux)
        loc = NLSLocalizer(
            paper_network.field, paper_network.positions[sniffers]
        )
        result = loc.localize(
            obs, user_count=1, candidate_count=2000, restarts=2, rng=gen
        )
        assert float(result.errors_to(truth)[0]) < 5.0

    def test_robust_to_dropout(self, paper_network):
        gen = np.random.default_rng(7)
        truth = paper_network.field.sample_uniform(1, gen)
        flux = simulate_flux(paper_network, list(truth), [2.0], rng=gen)
        sniffers = sample_sniffers_percentage(paper_network, 20, rng=gen)
        obs = MeasurementModel(
            paper_network,
            sniffers,
            noise=DropoutNoise(0.3),
            smooth=True,
            rng=gen,
        ).observe(flux)
        loc = NLSLocalizer(
            paper_network.field, paper_network.positions[sniffers]
        )
        result = loc.localize(
            obs, user_count=1, candidate_count=2000, restarts=2, rng=gen
        )
        assert float(result.errors_to(truth)[0]) < 5.0


@pytest.mark.slow
class TestTrackingPipeline:
    def test_linear_user_tracked(self, paper_network):
        gen = np.random.default_rng(8)
        rounds = 8
        traj = linear_trajectory((5.0, 5.0), (25.0, 20.0), rounds)
        schedule = synchronous_schedule([traj.positions], [2.0])
        sim = FluxSimulator(paper_network, rng=gen)
        sniffers = sample_sniffers_percentage(paper_network, 10, rng=gen)
        measure = MeasurementModel(paper_network, sniffers, smooth=True, rng=gen)
        tracker = SequentialMonteCarloTracker(
            paper_network.field,
            paper_network.positions[sniffers],
            user_count=1,
            config=TrackerConfig(
                prediction_count=500, keep_count=10, max_speed=5.0
            ),
            rng=gen,
        )
        steps = []
        for t, events in schedule.windows(1.0):
            flux = sim.window_flux(events).total
            steps.append(tracker.step(measure.observe(flux, time=t)))
        errors = tracking_errors_over_time(steps, [traj.positions])
        # Converged accuracy beats the initial guess.
        assert errors[-3:].mean() < errors[0].mean()
        assert errors[-1].mean() < 4.0

    def test_trace_driven_smoke(self):
        """Small end-to-end trace-driven run completes and scores."""
        from repro.experiments.config import PaperDefaults
        from repro.experiments.trace_driven import _run_trace_tracking

        net = build_network(node_count=400, radius=2.4,
                            field=None, rng=3)
        dataset = build_synthetic_dataset(user_count=12, ap_count=150, rng=4)
        error = _run_trace_tracking(
            net,
            dataset,
            user_count=3,
            sniffer_percentage=15.0,
            resampling_radius=8.0,
            defaults=PaperDefaults().scaled(5),
            gen=np.random.default_rng(5),
            window_count=24,
        )
        assert 0 <= error < 15.0
