"""Equivalence tests for the chunked geometry-kernel evaluator.

The contract under test: every configuration of
:func:`repro.engine.kernels.evaluate_geometry_kernels` — chunked,
parallel, process-backed, preallocated output — produces float64 values
bitwise identical to :func:`reference_geometry_kernels`, the pre-engine
pair-grid implementation kept as oracle; float32 mode stays within a
small relative envelope.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Engine, reference_geometry_kernels
from repro.engine.kernels import evaluate_geometry_kernels
from repro.errors import ConfigurationError
from repro.geometry import CircularField, PolygonField, RectangularField

D_FLOOR = 0.05


def _scenario(field, m=137, n=23, seed=7):
    gen = np.random.default_rng(seed)
    nodes = field.sample_uniform(n, gen)
    sinks = field.sample_uniform(m, gen)
    return nodes, sinks


FIELDS = [
    RectangularField(12, 7),
    RectangularField(30, 30, origin=(-5.0, 2.0)),
    CircularField(6.0, center=(1.0, -2.0)),
    PolygonField([(0, 0), (8, 0), (10, 5), (4, 9), (0, 6)]),
]


@pytest.mark.parametrize("field", FIELDS, ids=lambda f: type(f).__name__)
def test_broadcast_matches_reference_bitwise(field):
    nodes, sinks = _scenario(field)
    want = reference_geometry_kernels(field, nodes, sinks, D_FLOOR)
    got = evaluate_geometry_kernels(field, nodes, sinks, D_FLOOR)
    assert got.dtype == np.float64
    assert np.array_equal(want, got)


@pytest.mark.parametrize("chunk_size", [1, 7, 64, 137, 1000])
def test_chunked_is_bitwise_invariant(chunk_size):
    field = RectangularField(15, 15)
    nodes, sinks = _scenario(field)
    want = reference_geometry_kernels(field, nodes, sinks, D_FLOOR)
    got = evaluate_geometry_kernels(
        field, nodes, sinks, D_FLOOR, chunk_size=chunk_size
    )
    assert np.array_equal(want, got)


@pytest.mark.parametrize("field", FIELDS, ids=lambda f: type(f).__name__)
def test_parallel_threads_bitwise_equal_serial(field):
    nodes, sinks = _scenario(field, m=301)
    want = evaluate_geometry_kernels(field, nodes, sinks, D_FLOOR)
    with Engine(workers=4, chunk_size=32) as eng:
        got = evaluate_geometry_kernels(field, nodes, sinks, D_FLOOR, engine=eng)
    assert np.array_equal(want, got)


def test_process_backend_bitwise_equal_serial():
    field = RectangularField(15, 15)
    nodes, sinks = _scenario(field, m=4097)  # above the process-path floor
    want = evaluate_geometry_kernels(field, nodes, sinks, D_FLOOR)
    with Engine(workers=2, backend="process", chunk_size=1024) as eng:
        got = evaluate_geometry_kernels(field, nodes, sinks, D_FLOOR, engine=eng)
    assert np.array_equal(want, got)


def test_node_at_sink_degenerate_direction():
    # A sink coincident with a node: the reference pins the ray
    # direction to (1, 0); the broadcast path must reproduce that.
    field = RectangularField(10, 10)
    nodes = np.array([[3.0, 4.0], [7.0, 2.0]])
    sinks = np.array([[3.0, 4.0], [5.0, 5.0]])
    want = reference_geometry_kernels(field, nodes, sinks, D_FLOOR)
    got = evaluate_geometry_kernels(field, nodes, sinks, D_FLOOR)
    assert np.array_equal(want, got)
    assert np.all(np.isfinite(got))


def test_out_of_field_sinks_clipped_like_reference():
    field = RectangularField(10, 10)
    nodes, _ = _scenario(field)
    sinks = np.array(
        [[-3.0, 5.0], [12.0, 11.0], [5.0, -0.5], [10.0, 10.0], [0.0, 0.0]]
    )
    want = reference_geometry_kernels(field, nodes, sinks, D_FLOOR)
    got = evaluate_geometry_kernels(field, nodes, sinks, D_FLOOR)
    assert np.array_equal(want, got)


def test_single_sink_promoted_to_row():
    field = RectangularField(10, 10)
    nodes, _ = _scenario(field)
    got = evaluate_geometry_kernels(field, nodes, np.array([2.0, 3.0]), D_FLOOR)
    assert got.shape == (1, nodes.shape[0])
    want = reference_geometry_kernels(field, nodes, np.array([2.0, 3.0]), D_FLOOR)
    assert np.array_equal(want, got)


def test_bad_sink_shape_raises():
    field = RectangularField(10, 10)
    nodes, _ = _scenario(field)
    with pytest.raises(ConfigurationError):
        evaluate_geometry_kernels(field, nodes, np.zeros((4, 3)), D_FLOOR)


def test_float32_mode_dtype_and_envelope():
    field = RectangularField(15, 15)
    nodes, sinks = _scenario(field, m=500)
    want = reference_geometry_kernels(field, nodes, sinks, D_FLOOR)
    with Engine(dtype="float32") as eng:
        got = evaluate_geometry_kernels(field, nodes, sinks, D_FLOOR, engine=eng)
    assert got.dtype == np.float32
    scale = np.maximum(np.abs(want), 1.0)
    assert np.max(np.abs(got.astype(float) - want) / scale) < 1e-3


def test_out_buffer_is_written_in_place_and_dtype_wins():
    field = RectangularField(15, 15)
    nodes, sinks = _scenario(field)
    out = np.empty((sinks.shape[0], nodes.shape[0]), dtype=np.float64)
    with Engine(dtype="float32") as eng:
        got = evaluate_geometry_kernels(
            field, nodes, sinks, D_FLOOR, engine=eng, out=out
        )
    assert got is out
    # The preallocated buffer's float64 overrides the engine's float32.
    want = reference_geometry_kernels(field, nodes, sinks, D_FLOOR)
    assert np.array_equal(want, out)


def test_out_buffer_shape_mismatch_raises():
    field = RectangularField(15, 15)
    nodes, sinks = _scenario(field)
    with pytest.raises(ConfigurationError):
        evaluate_geometry_kernels(
            field, nodes, sinks, D_FLOOR, out=np.empty((3, 3))
        )


def test_kernel_values_nonnegative_and_match_formula():
    # Formula 3.4: g = (l^2 - d^2) / (2 d), floored at zero — spot-check
    # one pair against a hand ray cast.
    field = RectangularField(10, 10)
    nodes = np.array([[6.0, 5.0]])
    sinks = np.array([[2.0, 5.0]])  # ray exits at x=10 -> l = 8
    got = evaluate_geometry_kernels(field, nodes, sinks, D_FLOOR)
    l, d = 8.0, 4.0
    assert got[0, 0] == pytest.approx((l * l - d * d) / (2 * d))
    assert np.all(got >= 0.0)
