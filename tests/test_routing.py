"""Collection-tree construction and aggregation tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ConnectivityError
from repro.network.graph import UnitDiskGraph
from repro.network.topology import Network
from repro.geometry import RectangularField
from repro.routing import CollectionTree, build_collection_tree


def _line_network(n=6):
    field = RectangularField(float(n), 2.0)
    pts = np.column_stack([np.arange(n) + 0.5, np.ones(n)])
    return Network(field=field, positions=pts, graph=UnitDiskGraph(pts, 1.2))


class TestCollectionTree:
    def _chain_tree(self, n=4):
        parents = np.array([0] + list(range(n - 1)), dtype=np.int64)
        hops = np.arange(n, dtype=np.int64)
        return CollectionTree(root=0, parents=parents, hops=hops)

    def test_subtree_sizes_chain(self):
        tree = self._chain_tree(4)
        np.testing.assert_allclose(tree.subtree_aggregate(), [4, 3, 2, 1])

    def test_subtree_custom_weights(self):
        tree = self._chain_tree(3)
        np.testing.assert_allclose(
            tree.subtree_aggregate(np.array([1.0, 2.0, 4.0])), [7, 6, 4]
        )

    def test_root_aggregate_equals_total(self, small_network):
        tree = build_collection_tree(small_network, np.array([7.0, 7.0]), rng=0)
        flux = tree.subtree_aggregate()
        assert flux[tree.root] == pytest.approx(tree.reachable.sum())

    def test_star_tree(self):
        parents = np.array([0, 0, 0, 0], dtype=np.int64)
        hops = np.array([0, 1, 1, 1], dtype=np.int64)
        tree = CollectionTree(root=0, parents=parents, hops=hops)
        np.testing.assert_allclose(tree.subtree_aggregate(), [4, 1, 1, 1])
        np.testing.assert_array_equal(tree.children_counts(), [3, 0, 0, 0])

    def test_unreachable_contribute_zero(self):
        parents = np.array([0, 0, -1], dtype=np.int64)
        hops = np.array([0, 1, -1], dtype=np.int64)
        tree = CollectionTree(root=0, parents=parents, hops=hops)
        agg = tree.subtree_aggregate()
        np.testing.assert_allclose(agg, [2, 1, 0])

    def test_path_to_root(self):
        tree = self._chain_tree(4)
        np.testing.assert_array_equal(tree.path_to_root(3), [3, 2, 1, 0])

    def test_path_to_root_of_root(self):
        tree = self._chain_tree(4)
        np.testing.assert_array_equal(tree.path_to_root(0), [0])

    def test_path_unreachable_raises(self):
        parents = np.array([0, -1], dtype=np.int64)
        hops = np.array([0, -1], dtype=np.int64)
        tree = CollectionTree(root=0, parents=parents, hops=hops)
        with pytest.raises(ConfigurationError):
            tree.path_to_root(1)

    def test_bad_root_raises(self):
        with pytest.raises(ConfigurationError):
            CollectionTree(
                root=1,
                parents=np.array([0, 0], dtype=np.int64),
                hops=np.array([0, 1], dtype=np.int64),
            )

    def test_weights_shape_checked(self):
        tree = self._chain_tree(3)
        with pytest.raises(ConfigurationError):
            tree.subtree_aggregate(np.ones(5))

    def test_max_hops(self):
        assert self._chain_tree(4).max_hops == 3


class TestBuildCollectionTree:
    def test_roots_at_nearest_node(self, small_network):
        sink = np.array([3.3, 9.1])
        tree = build_collection_tree(small_network, sink, rng=0)
        assert tree.root == small_network.nearest_node(sink)

    def test_explicit_root(self, small_network):
        tree = build_collection_tree(small_network, np.zeros(2), root=42, rng=0)
        assert tree.root == 42

    def test_explicit_root_out_of_range(self, small_network):
        with pytest.raises(ConfigurationError):
            build_collection_tree(small_network, np.zeros(2), root=10_000)

    def test_hops_match_bfs(self, small_network):
        tree = build_collection_tree(small_network, np.array([1.0, 1.0]), rng=0)
        bfs = small_network.graph.bfs_hops(tree.root)
        np.testing.assert_array_equal(tree.hops, bfs)

    def test_parents_one_hop_closer(self, small_network):
        tree = build_collection_tree(small_network, np.array([7.0, 7.0]), rng=0)
        for node in range(small_network.node_count):
            if tree.hops[node] > 0:
                assert tree.hops[tree.parents[node]] == tree.hops[node] - 1

    def test_parents_are_neighbors(self, small_network):
        tree = build_collection_tree(small_network, np.array([7.0, 7.0]), rng=0)
        for node in range(small_network.node_count):
            if tree.hops[node] > 0:
                assert tree.parents[node] in small_network.graph.neighbors(node)

    def test_line_tree_is_chain(self):
        net = _line_network(6)
        tree = build_collection_tree(net, np.array([0.5, 1.0]), rng=0)
        np.testing.assert_array_equal(tree.hops, np.arange(6))

    def test_random_tie_breaking_varies(self, small_network):
        sink = np.array([7.0, 7.0])
        trees = [
            build_collection_tree(small_network, sink, rng=seed).parents
            for seed in range(6)
        ]
        assert any(
            not np.array_equal(trees[0], other) for other in trees[1:]
        ), "tie-breaking should produce different trees across seeds"

    def test_disconnected_raises_when_required(self):
        field = RectangularField(20, 2)
        pts = np.array([[0.5, 1.0], [1.0, 1.0], [19.0, 1.0]])
        net = Network(field=field, positions=pts, graph=UnitDiskGraph(pts, 1.2))
        with pytest.raises(ConnectivityError):
            build_collection_tree(
                net, np.array([0.5, 1.0]), require_connected=True, rng=0
            )

    def test_disconnected_tolerated_by_default(self):
        field = RectangularField(20, 2)
        pts = np.array([[0.5, 1.0], [1.0, 1.0], [19.0, 1.0]])
        net = Network(field=field, positions=pts, graph=UnitDiskGraph(pts, 1.2))
        tree = build_collection_tree(net, np.array([0.5, 1.0]), rng=0)
        assert tree.hops[2] == -1
