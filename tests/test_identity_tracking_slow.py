"""Behavioural tests for the identity-aware tracker on crossings."""

import numpy as np
import pytest

from repro.mobility import crossing_trajectories
from repro.network import build_network, sample_sniffers_percentage
from repro.smc import SequentialMonteCarloTracker, TrackerConfig
from repro.smc.association import assignment_errors
from repro.smc.identity import IdentityAwareTracker
from repro.traffic import FluxSimulator, MeasurementModel, synchronous_schedule


def _run_crossing(tracker_cls, seed, stretches):
    gen = np.random.default_rng(seed)
    net = build_network(node_count=400, radius=2.4, rng=gen)
    a, b = crossing_trajectories(net.field, 12)
    schedule = synchronous_schedule([a.positions, b.positions], stretches)
    sim = FluxSimulator(net, rng=gen)
    sniffers = sample_sniffers_percentage(net, 20, rng=gen)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    tracker = tracker_cls(
        net.field,
        net.positions[sniffers],
        2,
        TrackerConfig(prediction_count=300, keep_count=10, max_speed=5.0),
        rng=gen,
    )
    perms = []
    for k, (t, events) in enumerate(schedule.windows(1.0)):
        step = tracker.step(
            measure.observe(sim.window_flux(events).total, time=t)
        )
        truth = np.stack([a.positions[k], b.positions[k]])
        _, p = assignment_errors(step.estimates, truth)
        perms.append(p)
    return perms, tracker


@pytest.mark.slow
class TestIdentityAwareTracking:
    def test_no_swaps_with_indistinct_stretches(self):
        """Equal stretches give no fingerprint: the separation gate
        must suppress permutation attempts entirely."""
        swaps = 0
        for seed in (1, 2, 3):
            _, tracker = _run_crossing(
                IdentityAwareTracker, seed, [2.0, 2.0]
            )
            swaps += tracker.swap_count
        assert swaps == 0

    def test_swap_counter_increments_with_distinct_stretches(self):
        total_swaps = 0
        for seed in (1, 2, 3, 4):
            _, tracker = _run_crossing(
                IdentityAwareTracker, seed, [3.0, 1.0]
            )
            total_swaps += tracker.swap_count
        # Some crossing runs trigger at least one corrective swap.
        assert total_swaps >= 1

    def test_history_shared_with_base(self):
        perms, tracker = _run_crossing(IdentityAwareTracker, 7, [3.0, 1.0])
        assert len(tracker.history) == len(perms)
