"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    ConfigurationError,
    ConnectivityError,
    DeploymentError,
    FittingError,
    GeometryError,
    ReproError,
    StreamError,
    TraceError,
    TrackingError,
)

ALL_ERRORS = [
    ConfigurationError,
    GeometryError,
    DeploymentError,
    ConnectivityError,
    FittingError,
    TrackingError,
    TraceError,
    StreamError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_errors_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_errors_are_catchable_as_repro_error(exc):
    with pytest.raises(ReproError):
        raise exc("boom")


def test_repro_error_is_an_exception():
    assert issubclass(ReproError, Exception)


def test_errors_carry_messages():
    try:
        raise FittingError("specific detail")
    except ReproError as e:
        assert "specific detail" in str(e)
