"""Coverage for smaller branches: viz labels, adaptive in-tracker,
field helpers, experiment helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry import CircularField, PolygonField, RectangularField


class TestFieldHelpers:
    def test_rect_repr(self):
        assert "RectangularField" in repr(RectangularField(3, 4))

    def test_circle_repr(self):
        assert "CircularField" in repr(CircularField(2.0))

    def test_polygon_repr(self):
        p = PolygonField([(0, 0), (1, 0), (0, 1)])
        assert "3 vertices" in repr(p)

    def test_polygon_bounding_box(self):
        p = PolygonField([(0, 0), (4, 0), (4, 2), (0, 2)])
        assert p.bounding_box == (0.0, 0.0, 4.0, 2.0)

    def test_circle_clip_keeps_inside_points(self):
        f = CircularField(2.0)
        pts = np.array([[0.5, 0.5]])
        np.testing.assert_allclose(f.clip(pts), pts)

    def test_default_clip_is_bbox_clamp(self):
        p = PolygonField([(0, 0), (4, 0), (4, 4), (0, 4)])
        out = p.clip(np.array([[10.0, -3.0]]))
        np.testing.assert_allclose(out, [[4.0, 0.0]])

    def test_diameter(self):
        assert CircularField(3.0).diameter == pytest.approx(6 * np.sqrt(2))


class TestRadiusForDegree:
    def test_formula(self):
        from repro.experiments.model_accuracy import _radius_for_degree

        r = _radius_for_degree(12.0, 2500, 50.0)
        rho = 2500 / 2500.0
        assert np.pi * rho * r**2 == pytest.approx(12.0)

    def test_invalid_degree(self):
        from repro.experiments.model_accuracy import _radius_for_degree

        with pytest.raises(ConfigurationError):
            _radius_for_degree(0.0, 100, 10.0)


class TestAdaptiveInTracker:
    def test_adaptive_counts_vary_with_convergence(self, small_network):
        """After convergence the drawn pool shrinks below the cap."""
        from repro.network import sample_sniffers_percentage
        from repro.smc import SequentialMonteCarloTracker, TrackerConfig
        from repro.traffic import MeasurementModel, simulate_flux

        gen = np.random.default_rng(5)
        sniffers = sample_sniffers_percentage(small_network, 20, rng=gen)
        cfg = TrackerConfig(
            prediction_count=900, keep_count=10, max_speed=2.0,
            adaptive_predictions=True,
        )
        tracker = SequentialMonteCarloTracker(
            small_network.field,
            small_network.positions[sniffers],
            1,
            cfg,
            rng=gen,
        )
        truth = np.array([6.0, 9.0])
        mm = MeasurementModel(small_network, sniffers, smooth=True, rng=gen)
        from repro.smc.adaptive import adaptive_prediction_count

        prior_count = adaptive_prediction_count(
            tracker.samples[0], cfg.max_speed, min_count=100, max_count=900
        )
        counts = []
        for t in range(5):
            flux = simulate_flux(small_network, [truth], [2.0], rng=t)
            tracker.step(mm.observe(flux, time=float(t)))
            counts.append(
                adaptive_prediction_count(
                    tracker.samples[0],
                    cfg.max_speed,
                    min_count=100,
                    max_count=900,
                )
            )
        # The uniform prior needs the largest budget; converged
        # posteriors need (much) less. All counts stay within bounds.
        assert prior_count >= max(counts)
        assert all(100 <= c <= 900 for c in counts)


class TestVizLabels:
    def test_series_with_labels(self):
        from repro.viz import render_series

        xs = np.array([0.0, 1.0])
        out = render_series(
            {"s": (xs, xs)}, x_label="round", y_label="error"
        )
        assert "error vs round" in out

    def test_series_ylabel_only(self):
        from repro.viz import render_series

        xs = np.array([0.0, 1.0])
        out = render_series({"s": (xs, xs)}, y_label="error")
        assert out.startswith("error")

    def test_plot_too_small_rejected(self):
        from repro.viz import render_series

        with pytest.raises(ConfigurationError):
            render_series(
                {"s": (np.zeros(2), np.zeros(2))}, width=4, height=2
            )


class TestSweepOutcomeInternals:
    def test_sweep_outcome_fields(self, small_network):
        from repro.fingerprint.nls import coordinate_descent
        from repro.fingerprint.objective import FluxObjective
        from repro.fluxmodel.discrete import DiscreteFluxModel
        from repro.traffic import simulate_flux
        from repro.traffic.measurement import FluxObservation

        gen = np.random.default_rng(0)
        flux = simulate_flux(small_network, [np.array([7.0, 7.0])], [2.0], rng=gen)
        sniffers = np.arange(40)
        model = DiscreteFluxModel(
            small_network.field, small_network.positions[sniffers], d_floor=1.0
        )
        obs = FluxObservation(
            time=0.0, sniffers=sniffers, values=flux[sniffers]
        )
        objective = FluxObjective.from_observation(model, obs)
        pools = [small_network.field.sample_uniform(50, gen)]
        out = coordinate_descent(objective, pools, rng=gen)
        assert out.best_indices.shape == (1,)
        assert out.best_thetas.shape == (1,)
        assert np.isfinite(out.best_objective)
        # Best index is the argmin of the final per-user ranking.
        assert out.best_indices[0] == int(
            np.argmin(out.per_user_objectives[0])
        )
