"""Candidate-generator edge behavior: field-boundary clipping and budgets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fingerprint import DiscCandidates, GridCandidates
from repro.geometry import RectangularField


class TestDiscCandidatesBoundary:
    """The prediction proposal (Formula 4.2) near the field edge: the
    user cannot leave the field, so proposals are clipped onto it."""

    @pytest.mark.parametrize(
        "center", [[0.3, 0.3], [14.7, 0.3], [0.3, 14.7], [14.7, 14.7]]
    )
    def test_corner_center_clips_into_field(self, small_field, rng, center):
        radius = 2.0  # v_max * dt, mostly outside the field at a corner
        gen = DiscCandidates(small_field, np.array(center), radius)
        pts = gen.generate(500, rng)
        assert pts.shape == (500, 2)
        assert np.all(small_field.contains(pts))

    def test_clipped_points_stay_within_prediction_radius(self, small_field, rng):
        """Clipping is a projection onto a convex set, so a candidate's
        distance to the (in-field) center can only shrink: every clipped
        sample still respects the mobility bound ``v_max * dt``."""
        center = np.array([0.5, 7.0])
        radius = 3.0
        gen = DiscCandidates(small_field, center, radius)
        pts = gen.generate(800, rng)
        d = np.linalg.norm(pts - center[None, :], axis=1)
        assert np.all(d <= radius + 1e-9)

    def test_boundary_mass_accumulates_on_edge(self, small_field, rng):
        """Near the edge the out-of-field disc mass lands exactly on the
        boundary (projection), not reflected inward or discarded."""
        center = np.array([0.2, 7.0])
        gen = DiscCandidates(small_field, center, 1.5)
        pts = gen.generate(1000, rng)
        on_left_edge = np.isclose(pts[:, 0], 0.0)
        # disc extends 1.3 beyond x=0: a substantial fraction projects
        assert on_left_edge.mean() > 0.15
        interior = ~on_left_edge
        assert interior.mean() > 0.4  # the in-field mass stays a disc
        d = np.linalg.norm(pts[interior] - center[None, :], axis=1)
        assert np.all(d <= 1.5 + 1e-9)

    def test_interior_center_distribution_unclipped(self, rng):
        field = RectangularField(20.0, 20.0)
        center = np.array([10.0, 10.0])
        gen = DiscCandidates(field, center, 2.0)
        pts = gen.generate(2000, rng)
        d = np.linalg.norm(pts - center[None, :], axis=1)
        assert np.all(d <= 2.0)
        # uniform-in-disc: median distance at r * sqrt(0.5)
        assert abs(np.median(d) - 2.0 * np.sqrt(0.5)) < 0.1

    def test_multiple_centers_cycled(self, small_field, rng):
        centers = np.array([[2.0, 2.0], [13.0, 13.0]])
        gen = DiscCandidates(small_field, centers, 1.0)
        pts = gen.generate(101, rng)
        d = np.linalg.norm(
            pts[:, None, :] - centers[None, :, :], axis=2
        )
        nearest = d.argmin(axis=1)
        # both centers get close to half of the (odd) budget
        assert abs(int((nearest == 0).sum()) - 50) <= 1
        assert np.all(d.min(axis=1) <= 1.0 + 1e-9)


class TestGridCandidatesBudget:
    @pytest.mark.parametrize("count", [1, 3, 7, 10, 13, 50, 81, 100])
    def test_exact_count_returned(self, small_field, rng, count):
        pts = GridCandidates(small_field).generate(count, rng)
        assert pts.shape == (count, 2)

    @pytest.mark.parametrize("count", [7, 13, 23])
    def test_truncation_keeps_full_field_coverage(self, small_field, rng, count):
        """Regression: non-square budgets used to drop the trailing
        row-major points, leaving the top band of the field empty."""
        pts = GridCandidates(small_field).generate(count, rng)
        xmin, ymin, xmax, ymax = small_field.bounding_box
        ys = pts[:, 1]
        assert ys.max() > ymin + 0.6 * (ymax - ymin)
        assert ys.min() < ymin + 0.4 * (ymax - ymin)

    def test_square_budget_is_the_full_grid(self, small_field, rng):
        pts = GridCandidates(small_field).generate(9, rng)
        assert np.unique(pts[:, 0]).size == 3
        assert np.unique(pts[:, 1]).size == 3

    def test_jitter_stays_inside_field(self, small_field, rng):
        pts = GridCandidates(small_field, jitter=5.0).generate(64, rng)
        assert pts.shape == (64, 2)
        assert np.all(small_field.contains(pts))

    def test_no_duplicate_selection_under_truncation(self, small_field, rng):
        pts = GridCandidates(small_field).generate(37, rng)
        assert np.unique(pts, axis=0).shape[0] == 37

    def test_invalid_count_rejected(self, small_field, rng):
        with pytest.raises(ConfigurationError):
            GridCandidates(small_field).generate(0, rng)
