"""Resampling strategy tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.smc.resampling import (
    multinomial_resample,
    residual_resample,
    resample,
    systematic_resample,
)

ALL = [multinomial_resample, systematic_resample, residual_resample]


@pytest.mark.parametrize("fn", ALL)
class TestCommonContracts:
    def test_output_shape_and_range(self, fn):
        w = np.array([0.1, 0.2, 0.7])
        out = fn(w, 50, np.random.default_rng(0))
        assert out.shape == (50,)
        assert out.min() >= 0 and out.max() < 3

    def test_unbiased_proportions(self, fn):
        w = np.array([0.2, 0.8])
        out = fn(w, 10_000, np.random.default_rng(1))
        frac = np.mean(out == 1)
        assert 0.75 < frac < 0.85

    def test_unnormalized_weights_accepted(self, fn):
        out = fn(np.array([1.0, 3.0]), 1000, np.random.default_rng(2))
        assert 0.65 < np.mean(out == 1) < 0.85

    def test_zero_weight_never_selected(self, fn):
        w = np.array([0.0, 1.0, 0.0])
        out = fn(w, 200, np.random.default_rng(3))
        assert np.all(out == 1)

    def test_bad_count_raises(self, fn):
        with pytest.raises(ConfigurationError):
            fn(np.array([1.0]), 0, np.random.default_rng(0))

    def test_negative_weights_raise(self, fn):
        with pytest.raises(ConfigurationError):
            fn(np.array([0.5, -0.5]), 10, np.random.default_rng(0))

    def test_zero_sum_raises(self, fn):
        with pytest.raises(ConfigurationError):
            fn(np.zeros(3), 10, np.random.default_rng(0))


class TestVarianceOrdering:
    def test_systematic_has_lower_variance_than_multinomial(self):
        w = np.full(10, 0.1)
        counts_sys, counts_mult = [], []
        for seed in range(50):
            gen = np.random.default_rng(seed)
            s = systematic_resample(w, 100, gen)
            m = multinomial_resample(w, 100, gen)
            counts_sys.append(np.bincount(s, minlength=10))
            counts_mult.append(np.bincount(m, minlength=10))
        var_sys = np.var(np.asarray(counts_sys))
        var_mult = np.var(np.asarray(counts_mult))
        assert var_sys < var_mult

    def test_systematic_integer_counts(self):
        # With exactly proportional weights, systematic resampling
        # yields exactly proportional counts.
        w = np.array([0.25, 0.75])
        out = systematic_resample(w, 100, np.random.default_rng(0))
        counts = np.bincount(out, minlength=2)
        np.testing.assert_array_equal(counts, [25, 75])

    def test_residual_deterministic_part(self):
        w = np.array([0.5, 0.5])
        out = residual_resample(w, 10, np.random.default_rng(0))
        counts = np.bincount(out, minlength=2)
        np.testing.assert_array_equal(counts, [5, 5])


class TestDispatch:
    def test_known_methods(self):
        w = np.array([1.0, 1.0])
        for method in ("multinomial", "systematic", "residual"):
            out = resample(method, w, 10, np.random.default_rng(0))
            assert out.shape == (10,)

    def test_unknown_method_raises(self):
        with pytest.raises(ConfigurationError):
            resample("bogus", np.array([1.0]), 10, np.random.default_rng(0))

    def test_tracker_config_accepts_resampling(self):
        from repro.smc import TrackerConfig

        cfg = TrackerConfig(resampling="systematic")
        assert cfg.resampling == "systematic"
        with pytest.raises(ConfigurationError):
            TrackerConfig(resampling="bogus")

    def test_predict_samples_method_param(self, small_network):
        from repro.smc.prediction import predict_samples
        from repro.smc.samples import UserSamples

        samples = UserSamples(
            positions=np.array([[5.0, 5.0], [9.0, 9.0]]),
            weights=np.array([0.5, 0.5]),
            t_last=0.0,
        )
        for method in ("multinomial", "systematic", "residual"):
            positions, parents = predict_samples(
                small_network.field, samples, 1.0, 40,
                np.random.default_rng(0), method=method,
            )
            assert positions.shape == (40, 2)
            assert parents.shape == (40,)
