"""Flux simulation, stretch models, smoothing, and measurement tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traffic import (
    CollectionEvent,
    DropoutNoise,
    FluxSimulator,
    GaussianNoise,
    MeasurementModel,
    NoNoise,
    PerNodeInterestStretch,
    RandomStretch,
    UniformStretch,
    simulate_flux,
    smooth_flux,
)


class TestStretchModels:
    def test_uniform(self):
        m = UniformStretch(2.0)
        assert m.user_stretch(0) == 2.0 == m.user_stretch(5)

    def test_uniform_node_weights(self):
        w = UniformStretch(1.5).node_weights(0, 4)
        np.testing.assert_allclose(w, 1.5)

    def test_random_in_range(self):
        m = RandomStretch(1.0, 3.0, rng=0)
        values = [m.user_stretch(u) for u in range(50)]
        assert all(1.0 <= v <= 3.0 for v in values)

    def test_random_stable_per_user(self):
        m = RandomStretch(rng=0)
        assert m.user_stretch(3) == m.user_stretch(3)

    def test_random_bad_range_raises(self):
        with pytest.raises(ConfigurationError):
            RandomStretch(3.0, 1.0)

    def test_interest_stretch_decays(self, small_network):
        m = PerNodeInterestStretch(
            base_stretch=2.0,
            interest_center=np.array([7.5, 7.5]),
            decay_scale=3.0,
            positions=small_network.positions,
        )
        w = m.node_weights(0, small_network.node_count)
        d = np.hypot(
            small_network.positions[:, 0] - 7.5,
            small_network.positions[:, 1] - 7.5,
        )
        near = w[np.argmin(d)]
        far = w[np.argmax(d)]
        assert near > far

    def test_interest_stretch_shape_check(self, small_network):
        m = PerNodeInterestStretch(
            base_stretch=1.0,
            interest_center=np.zeros(2),
            decay_scale=1.0,
            positions=small_network.positions,
        )
        with pytest.raises(ConfigurationError):
            m.node_weights(0, 3)


class TestFluxSimulator:
    def test_flux_conservation(self, small_network):
        """The root's flux equals the total generated data."""
        flux = simulate_flux(small_network, [np.array([7.0, 7.0])], [2.0], rng=0)
        assert flux.max() == pytest.approx(2.0 * small_network.node_count)

    def test_every_node_carries_own_data(self, small_network):
        flux = simulate_flux(small_network, [np.array([7.0, 7.0])], [1.5], rng=0)
        assert np.all(flux >= 1.5 - 1e-9)

    def test_superposition(self, small_network):
        p1, p2 = np.array([3.0, 3.0]), np.array([12.0, 12.0])
        sim = FluxSimulator(small_network, rng=0)
        e1 = CollectionEvent(user=0, time=0, position=tuple(p1), stretch=1.0)
        e2 = CollectionEvent(user=1, time=0, position=tuple(p2), stretch=2.0)
        breakdown = sim.window_flux([e1, e2])
        np.testing.assert_allclose(
            breakdown.total, breakdown.per_user[0] + breakdown.per_user[1]
        )

    def test_per_user_accumulates_repeat_events(self, small_network):
        sim = FluxSimulator(small_network, rng=0)
        e = CollectionEvent(user=0, time=0, position=(5.0, 5.0), stretch=1.0)
        breakdown = sim.window_flux([e, e])
        assert breakdown.per_user[0].max() == pytest.approx(
            2.0 * small_network.node_count
        )

    def test_empty_window(self, small_network):
        sim = FluxSimulator(small_network, rng=0)
        breakdown = sim.window_flux([])
        np.testing.assert_allclose(breakdown.total, 0.0)
        assert breakdown.per_user == {}

    def test_flux_scales_with_stretch(self, small_network):
        f1 = simulate_flux(small_network, [np.array([7.0, 7.0])], [1.0], rng=5)
        f2 = simulate_flux(small_network, [np.array([7.0, 7.0])], [3.0], rng=5)
        np.testing.assert_allclose(f2, 3.0 * f1)

    def test_mismatched_inputs_raise(self, small_network):
        with pytest.raises(ConfigurationError):
            simulate_flux(small_network, [np.zeros(2)], [1.0, 2.0])


class TestSmoothing:
    def test_preserves_constant_field(self, small_network):
        flux = np.full(small_network.node_count, 4.2)
        out = smooth_flux(small_network, flux)
        np.testing.assert_allclose(out, 4.2)

    def test_reduces_variance(self, small_network):
        flux = simulate_flux(small_network, [np.array([7.0, 7.0])], [1.0], rng=0)
        smoothed = smooth_flux(small_network, flux)
        assert smoothed.std() < flux.std()

    def test_exclude_self(self, small_network):
        flux = np.zeros(small_network.node_count)
        flux[0] = 100.0
        out = smooth_flux(small_network, flux, include_self=False)
        assert out[0] == 0.0

    def test_custom_radius_matches_manual(self, small_network):
        gen = np.random.default_rng(0)
        flux = gen.uniform(size=small_network.node_count)
        radius = 3.0
        out = smooth_flux(small_network, flux, radius=radius)
        pos = small_network.positions
        i = 10
        d = np.hypot(pos[:, 0] - pos[i, 0], pos[:, 1] - pos[i, 1])
        expected = flux[d <= radius].mean()
        assert out[i] == pytest.approx(expected)

    def test_shape_check(self, small_network):
        with pytest.raises(ConfigurationError):
            smooth_flux(small_network, np.zeros(3))


class TestMeasurement:
    def test_no_noise_exact(self, small_network):
        flux = simulate_flux(small_network, [np.array([7.0, 7.0])], [1.0], rng=0)
        sniffers = np.array([0, 5, 10])
        obs = MeasurementModel(small_network, sniffers, rng=0).observe(flux, time=3.0)
        np.testing.assert_allclose(obs.values, flux[sniffers])
        assert obs.time == 3.0
        assert obs.count == 3

    def test_smooth_option(self, small_network):
        flux = simulate_flux(small_network, [np.array([7.0, 7.0])], [1.0], rng=0)
        sniffers = np.arange(20)
        raw = MeasurementModel(small_network, sniffers, rng=0).observe(flux)
        smoothed = MeasurementModel(
            small_network, sniffers, smooth=True, rng=0
        ).observe(flux)
        assert not np.allclose(raw.values, smoothed.values)

    def test_gaussian_noise_perturbs(self, small_network):
        flux = simulate_flux(small_network, [np.array([7.0, 7.0])], [1.0], rng=0)
        sniffers = np.arange(30)
        obs = MeasurementModel(
            small_network, sniffers, noise=GaussianNoise(0.1), rng=0
        ).observe(flux)
        assert not np.allclose(obs.values, flux[sniffers])
        assert np.all(obs.values >= 0)

    def test_dropout_produces_nans(self, small_network):
        flux = np.ones(small_network.node_count)
        sniffers = np.arange(100)
        obs = MeasurementModel(
            small_network, sniffers, noise=DropoutNoise(0.5), rng=0
        ).observe(flux)
        nan_count = int(np.isnan(obs.values).sum())
        assert 20 <= nan_count <= 80

    def test_dropout_zero_is_noop(self, small_network):
        flux = np.ones(small_network.node_count)
        obs = MeasurementModel(
            small_network, np.arange(10), noise=DropoutNoise(0.0), rng=0
        ).observe(flux)
        assert not np.any(np.isnan(obs.values))

    def test_noise_does_not_mutate_input(self):
        values = np.ones(5)
        GaussianNoise(0.5).apply(values, np.random.default_rng(0))
        np.testing.assert_allclose(values, 1.0)

    def test_duplicate_sniffers_raise(self, small_network):
        with pytest.raises(ConfigurationError):
            MeasurementModel(small_network, np.array([1, 1, 2]))

    def test_out_of_range_sniffers_raise(self, small_network):
        with pytest.raises(ConfigurationError):
            MeasurementModel(small_network, np.array([0, 10_000]))

    def test_flux_shape_checked(self, small_network):
        mm = MeasurementModel(small_network, np.array([0, 1]))
        with pytest.raises(ConfigurationError):
            mm.observe(np.zeros(5))
