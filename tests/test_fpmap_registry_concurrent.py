"""MapRegistry under concurrent access: one build, no storms.

The serve layer shares one registry across services and sessions, so
concurrent ``get_or_build`` callers of the same deployment must
coalesce onto a single build (no rebuild storm), invalidation must
trigger exactly one rebuild, and mixed get/build/invalidate churn must
neither deadlock nor hand out a half-built map.
"""

import threading

import numpy as np
import pytest

from repro.fpmap import MapRegistry
from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage


@pytest.fixture(scope="module")
def deployment():
    net = build_network(
        field=RectangularField(8, 8), node_count=64, radius=2.0, rng=9
    )
    sniffers = sample_sniffers_percentage(net, 25, rng=1)
    return net.field, net.positions[sniffers]


def _hammer(threads, target):
    """Start all threads behind a barrier so they race for real."""
    barrier = threading.Barrier(threads)
    errors = []

    def wrapped(index):
        barrier.wait()
        try:
            target(index)
        except Exception as exc:  # surfaced below, not swallowed
            errors.append(exc)

    pool = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(threads)
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join(timeout=60)
    assert not any(t.is_alive() for t in pool), "registry deadlocked"
    assert not errors, errors


class TestConcurrentBuilds:
    def test_racing_callers_share_one_build(self, deployment):
        field, sniffer_positions = deployment
        registry = MapRegistry()
        maps = [None] * 8

        def build(index):
            maps[index] = registry.get_or_build(
                field, sniffer_positions, resolution=2.0
            )

        _hammer(8, build)
        assert registry.builds == 1
        assert all(fmap is maps[0] for fmap in maps)

    def test_invalidate_triggers_exactly_one_rebuild(self, deployment):
        field, sniffer_positions = deployment
        registry = MapRegistry()
        first = registry.get_or_build(field, sniffer_positions, resolution=2.0)
        assert registry.invalidate(first.deployment)
        maps = [None] * 8

        def rebuild(index):
            maps[index] = registry.get_or_build(
                field, sniffer_positions, resolution=2.0
            )

        _hammer(8, rebuild)
        assert registry.builds == 2
        assert all(fmap is maps[0] for fmap in maps)
        assert maps[0] is not first

    def test_distinct_deployments_build_independently(self, deployment):
        field, sniffer_positions = deployment
        registry = MapRegistry(capacity=8)

        def build(index):
            # Two distinct sniffer sets interleaved across threads.
            subset = sniffer_positions[: len(sniffer_positions) - index % 2]
            registry.get_or_build(field, subset, resolution=2.0)

        _hammer(6, build)
        assert registry.builds == 2
        assert len(registry) == 2

    def test_mixed_churn_no_deadlock_no_partial_maps(self, deployment):
        field, sniffer_positions = deployment
        registry = MapRegistry(capacity=2)
        seen = []
        lock = threading.Lock()

        def churn(index):
            for round_number in range(10):
                fmap = registry.get_or_build(
                    field, sniffer_positions, resolution=2.0
                )
                # A handed-out map is always fully built and queryable.
                assert fmap.cell_count > 0
                match = fmap.match(
                    np.abs(fmap.signatures[0]) + 0.1, k=2
                )
                assert match.indices.shape == (2,)
                with lock:
                    seen.append(fmap)
                if index == 0 and round_number % 3 == 0:
                    registry.invalidate(fmap.deployment)

        _hammer(4, churn)
        assert registry.builds >= 1
        # Every map anyone observed answers for the same deployment.
        assert len({fmap.deployment for fmap in seen}) == 1
