"""Deployment strategy tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry import CircularField, RectangularField
from repro.network import (
    deploy_perturbed_grid,
    deploy_poisson,
    deploy_uniform_random,
)


class TestUniformRandom:
    def test_count_and_containment(self):
        field = RectangularField(10, 10)
        pts = deploy_uniform_random(field, 150, rng=0)
        assert pts.shape == (150, 2)
        assert field.contains(pts).all()

    def test_reproducible(self):
        field = RectangularField(10, 10)
        np.testing.assert_array_equal(
            deploy_uniform_random(field, 10, rng=5),
            deploy_uniform_random(field, 10, rng=5),
        )

    def test_zero_count_raises(self):
        with pytest.raises(ConfigurationError):
            deploy_uniform_random(RectangularField(10, 10), 0)

    def test_works_on_circle(self):
        field = CircularField(5.0)
        pts = deploy_uniform_random(field, 50, rng=1)
        assert field.contains(pts).all()


class TestPerturbedGrid:
    def test_count_exact(self):
        field = RectangularField(30, 30)
        pts = deploy_perturbed_grid(field, 900, rng=0)
        assert pts.shape == (900, 2)

    def test_containment(self):
        field = RectangularField(30, 30)
        pts = deploy_perturbed_grid(field, 900, rng=0)
        assert field.contains(pts).all()

    def test_zero_perturbation_is_regular(self):
        field = RectangularField(10, 10)
        pts = deploy_perturbed_grid(field, 100, perturbation=0.0, rng=0)
        xs = np.unique(np.round(pts[:, 0], 9))
        assert xs.size == 10  # perfect 10x10 grid columns

    def test_nonsquare_count(self):
        field = RectangularField(10, 10)
        pts = deploy_perturbed_grid(field, 37, rng=0)
        assert pts.shape == (37, 2)

    def test_covers_field_evenly(self):
        field = RectangularField(20, 20)
        pts = deploy_perturbed_grid(field, 400, rng=0)
        # every quadrant gets about a quarter of the nodes
        for qx in (0, 10):
            for qy in (0, 10):
                count = np.count_nonzero(
                    (pts[:, 0] >= qx)
                    & (pts[:, 0] < qx + 10)
                    & (pts[:, 1] >= qy)
                    & (pts[:, 1] < qy + 10)
                )
                assert 70 <= count <= 130

    def test_perturbation_bounds_enforced(self):
        field = RectangularField(10, 10)
        with pytest.raises(ConfigurationError):
            deploy_perturbed_grid(field, 100, perturbation=0.9)

    def test_requires_rectangular_field(self):
        with pytest.raises(ConfigurationError):
            deploy_perturbed_grid(CircularField(5.0), 100)

    def test_aspect_ratio_respected(self):
        field = RectangularField(40, 10)
        pts = deploy_perturbed_grid(field, 160, rng=0)
        assert pts.shape == (160, 2)
        assert field.contains(pts).all()


class TestPoisson:
    def test_mean_count(self):
        field = RectangularField(20, 20)
        counts = [
            deploy_poisson(field, 0.5, rng=seed).shape[0] for seed in range(10)
        ]
        assert 150 <= np.mean(counts) <= 250  # mean 200

    def test_containment(self):
        field = RectangularField(20, 20)
        pts = deploy_poisson(field, 0.5, rng=0)
        assert field.contains(pts).all()

    def test_bad_intensity_raises(self):
        with pytest.raises(ConfigurationError):
            deploy_poisson(RectangularField(10, 10), -1.0)
