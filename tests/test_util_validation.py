"""Validation helper tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.util.validation import (
    check_finite_array,
    check_in_range,
    check_positive,
    check_probability,
    check_shape,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive("x", 0.0)

    def test_accepts_zero_when_not_strict(self):
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", -1.0, strict=False)

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", float("nan"))

    def test_rejects_inf(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", float("inf"))

    def test_coerces_int(self):
        out = check_positive("x", 3)
        assert isinstance(out, float) and out == 3.0


class TestCheckInRange:
    def test_accepts_inside(self):
        assert check_in_range("x", 0.5, 0, 1) == 0.5

    def test_inclusive_bounds(self):
        assert check_in_range("x", 0.0, 0, 1) == 0.0
        assert check_in_range("x", 1.0, 0, 1) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ConfigurationError):
            check_in_range("x", 0.0, 0, 1, inclusive=(False, True))
        with pytest.raises(ConfigurationError):
            check_in_range("x", 1.0, 0, 1, inclusive=(True, False))

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError):
            check_in_range("x", 2.0, 0, 1)

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            check_in_range("x", float("nan"), 0, 1)

    def test_message_mentions_bounds(self):
        with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
            check_in_range("x", 5, 0, 1)


class TestCheckProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_accepts(self, p):
        assert check_probability("p", p) == p

    @pytest.mark.parametrize("p", [-0.1, 1.1])
    def test_rejects(self, p):
        with pytest.raises(ConfigurationError):
            check_probability("p", p)


class TestCheckFiniteArray:
    def test_accepts_finite(self):
        arr = check_finite_array("a", [1.0, 2.0])
        np.testing.assert_array_equal(arr, [1.0, 2.0])

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError, match="non-finite"):
            check_finite_array("a", [1.0, np.nan])

    def test_rejects_inf(self):
        with pytest.raises(ConfigurationError):
            check_finite_array("a", [np.inf])

    def test_empty_ok(self):
        assert check_finite_array("a", []).size == 0

    def test_returns_float_array(self):
        assert check_finite_array("a", [1, 2]).dtype == float


class TestCheckShape:
    def test_exact_shape(self):
        arr = check_shape("a", np.zeros((3, 2)), (3, 2))
        assert arr.shape == (3, 2)

    def test_wildcard(self):
        check_shape("a", np.zeros((7, 2)), (None, 2))

    def test_wrong_ndim(self):
        with pytest.raises(ConfigurationError):
            check_shape("a", np.zeros(3), (3, 1))

    def test_wrong_extent(self):
        with pytest.raises(ConfigurationError):
            check_shape("a", np.zeros((3, 3)), (None, 2))
