"""SyntheticTraceConfig validation and generator statistics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.traces import SyntheticTraceConfig, generate_campus_aps, generate_syslog_records
from repro.traces.parser import parse_syslog_records
from repro.traces.synthetic import _mac_for


class TestConfigValidation:
    def test_defaults_valid(self):
        cfg = SyntheticTraceConfig()
        assert cfg.horizon > 0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("horizon", 0.0),
            ("mean_dwell", -1.0),
            ("dwell_sigma", 0.0),
            ("mean_gap", 0.0),
            ("hop_locality", 0.0),
            ("start_jitter", 0.0),
        ],
    )
    def test_positive_fields_enforced(self, field, value):
        with pytest.raises(ConfigurationError):
            SyntheticTraceConfig(**{field: value})

    def test_session_hops_enforced(self):
        with pytest.raises(ConfigurationError):
            SyntheticTraceConfig(session_hop_count=0)


class TestMacFormat:
    def test_shape(self):
        mac = _mac_for(0)
        parts = mac.split(":")
        assert len(parts) == 6
        assert all(len(p) == 2 for p in parts)

    def test_distinct_users_distinct_macs(self):
        macs = {_mac_for(u) for u in range(500)}
        assert len(macs) == 500

    def test_deterministic(self):
        assert _mac_for(42) == _mac_for(42)


class TestGeneratorStatistics:
    def test_dwell_times_heavy_tailed(self):
        """Lognormal dwells: mean notably exceeds the median."""
        aps = generate_campus_aps(count=40, rng=0)
        lines = generate_syslog_records(aps, user_count=4, rng=1)
        parsed = parse_syslog_records(lines)
        dwells = []
        for seq in parsed.values():
            times = [t for t, _ in seq]
            gaps = np.diff(times)
            dwells.extend(g for g in gaps if g < 6 * 3600)  # in-session
        dwells = np.asarray(dwells)
        assert dwells.size > 50
        assert dwells.mean() > 1.2 * np.median(dwells)

    def test_sessions_separated_by_gaps(self):
        aps = generate_campus_aps(count=40, rng=0)
        cfg = SyntheticTraceConfig(mean_gap=12 * 3600.0)
        lines = generate_syslog_records(aps, user_count=3, config=cfg, rng=2)
        parsed = parse_syslog_records(lines)
        long_gaps = 0
        for seq in parsed.values():
            gaps = np.diff([t for t, _ in seq])
            long_gaps += int(np.sum(gaps > 6 * 3600))
        assert long_gaps > 5  # multiple distinct sessions per record

    def test_reproducible(self):
        aps = generate_campus_aps(count=30, rng=0)
        a = generate_syslog_records(aps, user_count=2, rng=9)
        b = generate_syslog_records(aps, user_count=2, rng=9)
        assert a == b

    def test_records_reference_known_aps(self):
        aps = generate_campus_aps(count=30, rng=0)
        names = {ap.name for ap in aps}
        lines = generate_syslog_records(aps, user_count=2, rng=3)
        for line in lines:
            assert line.split("\t")[2] in names
