"""Resilience wiring across engine, serve, and stream.

The latent-bug sweep's regression tests live here: exception swallows
are now observable, the admission deadline race is closed under an
injected clock, checkpoints are atomic and typed on corruption, and a
dead or hung fork worker surfaces as :class:`WorkerCrashed` instead of
a silent infinite ``join``.
"""

import sys
import threading

import numpy as np
import pytest

from repro.engine import Engine
from repro.errors import (
    ConfigurationError,
    FaultInjected,
    RetriesExhausted,
    WorkerCrashed,
)
from repro.faults import (
    FakeClock,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    clock,
    injected,
)
from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage
from repro.serve import (
    ERROR_DEADLINE_EXPIRED,
    LocalizationService,
    LocalizeRequest,
)
from repro.serve.admission import PendingRequest
from repro.serve.metrics import ServerMetrics
from repro.serve.resilience import BackendGovernor
from repro.smc import SequentialMonteCarloTracker, TrackerConfig
from repro.stream import TrackingSession
from repro.stream.checkpoint import load_checkpoint, save_checkpoint
from repro.traffic import MeasurementModel, simulate_flux

_CFG = TrackerConfig(prediction_count=100, keep_count=5)
_FAST_RETRIES = RetryPolicy(max_attempts=3, base_delay_s=0.0, max_delay_s=0.0)


@pytest.fixture(scope="module")
def scenario():
    net = build_network(
        field=RectangularField(10, 10), node_count=100, radius=2.0, rng=5
    )
    sniffers = sample_sniffers_percentage(net, 20, rng=2)
    return net, sniffers


def _requests(net, sniffers, count, seed=0, deadline_s=None):
    gen = np.random.default_rng(seed)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    out = []
    for r in range(count):
        truth = net.field.sample_uniform(1, gen)
        flux = simulate_flux(
            net, list(truth), [float(gen.uniform(1.0, 3.0))], rng=gen
        )
        out.append(LocalizeRequest(
            request_id=f"r{r}", client_id="c0",
            observation=measure.observe(flux), candidate_count=32,
            seed=int(gen.integers(2**31)), use_map=False,
            deadline_s=deadline_s,
        ))
    return out


def _tracker(net, sniffers, rng=3):
    return SequentialMonteCarloTracker(
        net.field, net.positions[sniffers], user_count=1, config=_CFG, rng=rng
    )


# ----------------------------------------------------------------------
# Engine: retry policy + typed worker-death errors.
# ----------------------------------------------------------------------
class TestEngineRetry:
    def test_map_retries_transients(self):
        calls = []

        def flaky(x):
            calls.append(x)
            if calls.count(x) == 1 and x == 2:
                raise FaultInjected("transient")
            return x * x

        eng = Engine(retry_policy=_FAST_RETRIES)
        assert eng.map(flaky, [1, 2, 3]) == [1, 4, 9]

    def test_run_chunks_retries_transients(self):
        failed = []
        out = np.zeros(8)

        def task(start, stop):
            if start == 4 and not failed:
                failed.append(1)
                raise FaultInjected("transient")
            out[start:stop] = 1.0

        eng = Engine(retry_policy=_FAST_RETRIES)
        eng.run_chunks(8, task, chunk_size=4)
        assert out.sum() == 8.0

    def test_no_policy_propagates_first_failure(self):
        def broken(x):
            raise FaultInjected("down")

        with pytest.raises(FaultInjected):
            Engine().map(broken, [1, 2])

    def test_exhaustion_is_typed(self):
        def broken(x):
            raise FaultInjected("permanently down")

        eng = Engine(retry_policy=RetryPolicy(max_attempts=2,
                                              base_delay_s=0.0,
                                              max_delay_s=0.0))
        with pytest.raises(RetriesExhausted):
            eng.map(broken, [1, 2])

    def test_config_and_policy_both_kwargs_ok(self):
        from repro.engine import EngineConfig

        eng = Engine(EngineConfig(workers=2), retry_policy=_FAST_RETRIES)
        assert eng.retry_policy is _FAST_RETRIES
        eng.close()


@pytest.mark.skipif(sys.platform == "win32", reason="fork backend only")
class TestProcessBackendWatchdog:
    def _evaluate(self, scenario, plan, watchdog_s, retry_policy=None):
        from repro.engine.kernels import evaluate_geometry_kernels

        net, sniffers = scenario
        nodes = net.positions[sniffers]
        sinks = np.random.default_rng(0).uniform(0, 10, size=(96, 2))
        eng = Engine(workers=2, chunk_size=32, backend="process",
                     watchdog_s=watchdog_s, retry_policy=retry_policy)
        try:
            with injected(plan):
                return evaluate_geometry_kernels(
                    net.field, nodes, sinks, 1.0, engine=eng
                )
        finally:
            eng.close()

    def test_worker_crash_raises_typed_not_hangs(self, scenario):
        plan = FaultPlan([FaultSpec("engine.worker.crash", times=None)])
        with pytest.raises(WorkerCrashed, match="watchdog"):
            self._evaluate(scenario, plan, watchdog_s=3.0)

    def test_worker_hang_hits_watchdog(self, scenario):
        plan = FaultPlan(
            [FaultSpec("engine.worker.hang", times=None, delay_s=60.0)]
        )
        with pytest.raises(WorkerCrashed, match="died or hung"):
            self._evaluate(scenario, plan, watchdog_s=2.0)

    def test_watchdog_validation(self):
        from repro.engine import EngineConfig

        with pytest.raises(ConfigurationError):
            EngineConfig(watchdog_s=0.0)
        assert EngineConfig(watchdog_s=None).watchdog_s is None


# ----------------------------------------------------------------------
# BackendGovernor: fallback ladder under an injected clock.
# ----------------------------------------------------------------------
class TestBackendGovernor:
    def test_none_engine_always_serial(self):
        governor = BackendGovernor(None)
        assert governor.current_engine() is None
        assert governor.record_fault() is False

    def test_threshold_then_cooldown_then_reescalate(self):
        events = []
        eng = Engine()
        fake = FakeClock()
        governor = BackendGovernor(
            eng, fault_threshold=2, cooldown_s=10.0,
            on_fallback=lambda: events.append("down"),
            on_reescalate=lambda: events.append("up"),
        )
        with clock.installed(fake):
            assert governor.current_engine() is eng
            assert governor.record_fault() is False
            assert governor.record_fault() is True  # threshold
            assert events == ["down"]
            assert governor.current_engine() is None  # leased out
            fake.advance(9.0)
            assert governor.current_engine() is None  # still cooling
            fake.advance(2.0)
            assert governor.current_engine() is eng  # re-escalated
            assert events == ["down", "up"]
            assert governor.streak == 0

    def test_success_resets_streak(self):
        governor = BackendGovernor(Engine(), fault_threshold=3)
        governor.record_fault()
        governor.record_fault()
        governor.record_success()
        assert governor.streak == 0
        assert governor.record_fault() is False

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BackendGovernor(None, fault_threshold=0)
        with pytest.raises(ConfigurationError):
            BackendGovernor(None, cooldown_s=0.0)


# ----------------------------------------------------------------------
# Serve: observable prematch fallback, deadline race, degradation.
# ----------------------------------------------------------------------
class TestPrematchObserved:
    def test_raising_prematch_is_counted_and_recovered(self, scenario):
        net, sniffers = scenario
        from repro.fpmap import build_fingerprint_map

        fmap = build_fingerprint_map(net.field, net.positions[sniffers],
                                     resolution=2.0)
        service = LocalizationService(
            net.field, net.positions[sniffers], fingerprint_map=fmap,
            max_batch=4,
        )
        broken = {"count": 0}
        original = fmap.match_many

        def exploding(values, ks, **kwargs):
            broken["count"] += 1
            raise RuntimeError("prematch blew up")

        fmap.match_many = exploding
        try:
            requests = _requests(net, sniffers, 2, seed=1)
            # use_map must be on for the fused prematch to trigger.
            requests = [
                LocalizeRequest(
                    request_id=r.request_id, client_id=r.client_id,
                    observation=r.observation, candidate_count=32,
                    seed=r.seed, use_map=True,
                )
                for r in requests
            ]
            with service:
                replies = [service.submit(r).result(timeout=30) for r in requests]
        finally:
            fmap.match_many = original
        assert all(reply.ok for reply in replies)  # per-request fallback
        assert broken["count"] >= 1
        snapshot = service.metrics.snapshot()
        assert snapshot["internal_faults"].get("serve.prematch", 0) >= 1
        assert snapshot["internal_faults_total"] >= 1


class TestDeadlineDispatchRace:
    def test_expiry_between_drain_and_dispatch(self, scenario):
        """A deadline lapsing after the queue purge still gets the typed
        reply — re-checked at dispatch time on the injected clock."""
        net, sniffers = scenario
        service = LocalizationService(net.field, net.positions[sniffers])
        scheduler = service.scheduler
        fake = FakeClock(start=1000.0)
        with clock.installed(fake):
            request = _requests(net, sniffers, 1, seed=2, deadline_s=5.0)[0]
            item = PendingRequest.wrap(request)
            assert not item.expired()
            # The race window: drained at t=1000, dispatched after the
            # deadline passed (a slow fused batch ahead of it).
            fake.advance(6.0)
            scheduler._process([item])
            reply = item.future.result(timeout=5)
        assert not reply.ok
        assert reply.code == ERROR_DEADLINE_EXPIRED
        assert "before evaluation" in reply.message
        assert service.metrics.deadline_expiries == 1

    def test_live_request_still_solved(self, scenario):
        net, sniffers = scenario
        service = LocalizationService(net.field, net.positions[sniffers])
        fake = FakeClock(start=1000.0)
        with clock.installed(fake):
            request = _requests(net, sniffers, 1, seed=3, deadline_s=50.0)[0]
            item = PendingRequest.wrap(request)
            fake.advance(6.0)
            service.scheduler._process([item])
            reply = item.future.result(timeout=5)
        assert reply.ok


class TestServeDegradation:
    def test_fuse_fault_retried_bitwise_identical(self, scenario):
        net, sniffers = scenario
        requests = _requests(net, sniffers, 3, seed=4)

        def run(plan):
            service = LocalizationService(
                net.field, net.positions[sniffers], max_batch=4,
                retry_policy=_FAST_RETRIES,
            )
            with injected(plan), service:
                return [service.submit(r).result(timeout=30)
                        for r in requests]

        baseline = run(None)
        plan = FaultPlan([FaultSpec("serve.batch.fuse", times=2)], seed=1)
        faulted = run(plan)
        assert plan.fired("serve.batch.fuse") == 2
        assert all(r.ok for r in faulted)
        for a, b in zip(baseline, faulted):
            for fa, fb in zip(a.result.fits, b.result.fits):
                np.testing.assert_array_equal(fa.positions, fb.positions)
                np.testing.assert_array_equal(fa.thetas, fb.thetas)
                assert fa.objective == fb.objective

    def test_persistent_faults_degrade_then_reescalate(self, scenario):
        net, sniffers = scenario
        eng = Engine(workers=2, chunk_size=16)
        metrics = ServerMetrics()
        service = LocalizationService(
            net.field, net.positions[sniffers], engine=eng,
            max_batch=2, metrics=metrics,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0,
                                     max_delay_s=0.0),
            fault_threshold=2, cooldown_s=30.0,
        )
        scheduler = service.scheduler
        fake = FakeClock(start=0.0)
        plan = FaultPlan([FaultSpec("serve.batch.fuse", times=None)], seed=2)
        try:
            with clock.installed(fake):
                with injected(plan):
                    # Each batch exhausts its retry budget (the fault is
                    # unlimited), counts one governor fault, and answers
                    # via the serial fallback... which also faults, so
                    # replies come back as typed internal errors — but
                    # exactly one reply each, none lost.
                    for seed in (10, 11):
                        item = PendingRequest.wrap(
                            _requests(net, sniffers, 1, seed=seed)[0]
                        )
                        scheduler._process([item])
                        assert item.future.result(timeout=5) is not None
                    assert scheduler.governor.degraded
                    assert metrics.backend_fallbacks == 1
                # Disarmed + cooled down: the backend comes back.
                fake.advance(31.0)
                item = PendingRequest.wrap(
                    _requests(net, sniffers, 1, seed=12)[0]
                )
                scheduler._process([item])
                assert item.future.result(timeout=5).ok
                assert not scheduler.governor.degraded
                assert metrics.backend_reescalations == 1
        finally:
            eng.close()
        snapshot = metrics.snapshot()
        assert snapshot["retries_total"] >= 2
        assert snapshot["backend_fallbacks"] == 1

    def test_metrics_snapshot_has_resilience_keys(self):
        snapshot = ServerMetrics().snapshot()
        for key in ("retries", "retries_total", "backend_fallbacks",
                    "backend_reescalations", "internal_faults",
                    "internal_faults_total"):
            assert key in snapshot


# ----------------------------------------------------------------------
# Stream: observable step failures.
# ----------------------------------------------------------------------
class TestSessionStepObserved:
    def test_raising_tracker_is_counted(self, scenario):
        net, sniffers = scenario
        gen = np.random.default_rng(6)
        measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
        truth = net.field.sample_uniform(1, gen)
        flux = simulate_flux(net, list(truth), [1.5], rng=gen)
        obs = measure.observe(flux)

        session = TrackingSession("obs", _tracker(net, sniffers))

        def exploding(observation):
            raise RuntimeError("solver diverged")

        session.tracker.step = exploding
        step = session.process(obs)
        assert step is None  # never-raise contract intact
        assert session.step_errors == {"RuntimeError": 1}
        assert session.last_error == "RuntimeError: solver diverged"
        summary = session.summary()
        assert summary["step_errors"] == {"RuntimeError": 1}
        assert summary["last_error"] == "RuntimeError: solver diverged"
        assert session.metrics.windows_skipped["step_failed"] == 1

    def test_clean_session_reports_empty_errors(self, scenario):
        net, sniffers = scenario
        session = TrackingSession("clean", _tracker(net, sniffers))
        assert session.summary()["step_errors"] == {}
        assert session.summary()["last_error"] is None


# ----------------------------------------------------------------------
# Checkpoints: atomicity, typed corruption, retryable writes.
# ----------------------------------------------------------------------
class TestCheckpointAtomicity:
    def _session(self, scenario, seed=7):
        net, sniffers = scenario
        return TrackingSession("ckpt", _tracker(net, sniffers, rng=seed))

    def test_partial_write_leaves_no_file(self, scenario, tmp_path):
        session = self._session(scenario)
        path = tmp_path / "a.ckpt.npz"
        plan = FaultPlan([FaultSpec("checkpoint.partial_write", times=1)])
        with injected(plan):
            with pytest.raises(FaultInjected):
                save_checkpoint(session, path)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []  # temp cleaned up too

    def test_partial_write_preserves_previous_checkpoint(
        self, scenario, tmp_path
    ):
        session = self._session(scenario)
        path = tmp_path / "b.ckpt.npz"
        save_checkpoint(session, path)
        before = path.read_bytes()
        plan = FaultPlan([FaultSpec("checkpoint.partial_write", times=1)])
        with injected(plan):
            with pytest.raises(FaultInjected):
                save_checkpoint(session, path)
        assert path.read_bytes() == before  # old one untouched, loadable
        assert load_checkpoint(path).session_id == "ckpt"

    def test_retry_absorbs_torn_write_bitwise(self, scenario, tmp_path):
        session = self._session(scenario)
        clean = tmp_path / "clean.ckpt.npz"
        save_checkpoint(session, clean)
        faulted = tmp_path / "faulted.ckpt.npz"
        plan = FaultPlan([
            FaultSpec("checkpoint.partial_write", times=1),
            FaultSpec("checkpoint.fsync", times=1),
        ])
        with injected(plan):
            save_checkpoint(session, faulted, retry_policy=_FAST_RETRIES)
        assert plan.fired("checkpoint.partial_write") == 1
        assert plan.fired("checkpoint.fsync") == 1
        assert faulted.read_bytes() == clean.read_bytes()

    def test_fsync_fault_is_oserror_hence_transient(self, scenario, tmp_path):
        session = self._session(scenario)
        path = tmp_path / "c.ckpt.npz"
        plan = FaultPlan([FaultSpec("checkpoint.fsync", times=1)])
        with injected(plan):
            with pytest.raises(OSError):
                save_checkpoint(session, path)
        assert not path.exists()

    def test_truncated_checkpoint_is_typed(self, scenario, tmp_path):
        session = self._session(scenario)
        path = tmp_path / "t.ckpt.npz"
        save_checkpoint(session, path)
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(ConfigurationError, match="corrupt or truncated"):
            load_checkpoint(path)

    def test_garbage_checkpoint_is_typed_with_path(self, scenario, tmp_path):
        path = tmp_path / "g.ckpt.npz"
        path.write_bytes(b"not a zip archive at all")
        with pytest.raises(ConfigurationError, match=str(path)):
            load_checkpoint(path)

    def test_missing_checkpoint_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "absent.ckpt.npz")

    def test_concurrent_writers_unique_temps(self, scenario, tmp_path):
        """Two saves of the same path from different threads never
        corrupt each other (pid-unique temp + atomic publish)."""
        session = self._session(scenario)
        path = tmp_path / "race.ckpt.npz"
        errors = []

        def write():
            try:
                for _ in range(5):
                    save_checkpoint(session, path)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=write) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert load_checkpoint(path).session_id == "ckpt"
