"""Scaled-down smoke tests for the tracking and trace-driven runners."""

import numpy as np
import pytest

from repro.experiments import (
    PaperDefaults,
    run_fig7,
    run_fig8a,
    run_fig8b,
    run_fig10a,
    run_fig10b,
)

_TINY = PaperDefaults().scaled(10)  # N=100 predictions, 1000 candidates


@pytest.mark.slow
class TestTrackingRunners:
    def test_fig7_rows_and_metadata(self):
        r = run_fig7(defaults=_TINY, rng=1)
        cases = [row["case"] for row in r.rows]
        assert cases == [
            "one user",
            "two users",
            "three users",
            "two users (crossing)",
        ]
        for row in r.rows:
            assert row["final_error"] >= 0
            assert 0 <= row["identity_consistency"] <= 1
        assert "one user" in r.metadata
        errors = r.metadata["one user"]["errors"]
        assert errors.shape[0] == _TINY.tracking_rounds

    def test_fig8a_shape(self):
        r = run_fig8a(
            user_counts=(1,),
            percentages=(20.0, 10.0),
            repetitions=1,
            defaults=_TINY,
            rng=2,
        )
        assert [row["percentage"] for row in r.rows] == [20.0, 10.0]
        assert all(row["1_user"] >= 0 for row in r.rows)

    def test_fig8b_shape(self):
        r = run_fig8b(
            user_counts=(1,),
            node_counts=(900,),
            repetitions=1,
            defaults=_TINY,
            rng=3,
        )
        assert r.rows[0]["node_count"] == 900

    def test_fig8_repetitions_validated(self):
        import pytest as _pytest

        from repro.errors import ConfigurationError

        with _pytest.raises(ConfigurationError):
            run_fig8a(repetitions=0, defaults=_TINY)


@pytest.mark.slow
class TestTraceRunners:
    def test_fig10a_paired_rows(self):
        r = run_fig10a(
            percentages=(20.0, 10.0),
            deployments=("perturbed_grid",),
            runs=1,
            users_per_run=3,
            defaults=_TINY,
            rng=4,
        )
        assert [row["percentage"] for row in r.rows] == [20.0, 10.0]
        assert all(row["perturbed_grid"] >= 0 for row in r.rows)

    def test_fig10b_radii_rows(self):
        r = run_fig10b(
            radii=(6.0, 10.0),
            deployments=("perturbed_grid",),
            runs=1,
            users_per_run=3,
            defaults=_TINY,
            rng=5,
        )
        assert [row["resampling_radius"] for row in r.rows] == [6.0, 10.0]
