"""NLS objective tests: theta solving, weighting, NaN masking."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FittingError
from repro.fingerprint.objective import (
    FluxObjective,
    solve_thetas,
    solve_thetas_batched,
)
from repro.fluxmodel.discrete import DiscreteFluxModel
from repro.geometry import RectangularField
from repro.traffic.measurement import FluxObservation


def _model(n=40, seed=0):
    field = RectangularField(10, 10)
    nodes = field.sample_uniform(n, np.random.default_rng(seed))
    return field, nodes, DiscreteFluxModel(field, nodes, d_floor=0.5)


class TestSolveThetas:
    def test_exact_recovery_single(self):
        field, nodes, model = _model()
        g = model.geometry_kernel(np.array([3.0, 4.0]))
        target = 2.5 * g
        thetas, obj = solve_thetas(g[None, :], target)
        assert thetas[0] == pytest.approx(2.5)
        assert obj == pytest.approx(0.0, abs=1e-8)

    def test_exact_recovery_two_users(self):
        field, nodes, model = _model()
        g1 = model.geometry_kernel(np.array([2.0, 2.0]))
        g2 = model.geometry_kernel(np.array([8.0, 7.0]))
        target = 1.5 * g1 + 0.5 * g2
        thetas, obj = solve_thetas(np.stack([g1, g2]), target)
        np.testing.assert_allclose(thetas, [1.5, 0.5], atol=1e-6)
        assert obj < 1e-6

    def test_nonnegativity(self):
        field, nodes, model = _model()
        g1 = model.geometry_kernel(np.array([2.0, 2.0]))
        # Target orthogonal-ish to g1: pure noise
        target = -g1
        thetas, _ = solve_thetas(g1[None, :], target)
        assert thetas[0] == 0.0

    def test_shape_check(self):
        with pytest.raises(ConfigurationError):
            solve_thetas(np.ones((2, 5)), np.ones(4))


class TestSolveThetasBatched:
    def test_matches_single(self):
        field, nodes, model = _model()
        g1 = model.geometry_kernel(np.array([2.0, 2.0]))
        g2 = model.geometry_kernel(np.array([8.0, 7.0]))
        target = 1.2 * g1 + 0.8 * g2
        stacks = np.stack([np.stack([g1, g2]), np.stack([g2, g1])])
        thetas, objs = solve_thetas_batched(stacks, target)
        np.testing.assert_allclose(thetas[0], [1.2, 0.8], atol=1e-6)
        np.testing.assert_allclose(thetas[1], [0.8, 1.2], atol=1e-6)
        np.testing.assert_allclose(objs, 0.0, atol=1e-6)

    def test_nnls_fallback_on_negative(self):
        field, nodes, model = _model()
        g1 = model.geometry_kernel(np.array([2.0, 2.0]))
        g2 = 0.95 * g1 + 0.05 * model.geometry_kernel(np.array([2.5, 2.2]))
        # Nearly collinear kernels force a negative unconstrained solution
        target = g1 - 0.5 * g2
        thetas, _ = solve_thetas_batched(np.stack([np.stack([g1, g2])]), target)
        assert np.all(thetas >= 0)

    def test_objective_is_residual_norm(self):
        field, nodes, model = _model()
        g = model.geometry_kernel(np.array([5.0, 5.0]))
        target = 2.0 * g + 1.0  # constant offset cannot be fitted
        thetas, objs = solve_thetas_batched(g[None, None, :], target)
        predicted = thetas[0, 0] * g
        assert objs[0] == pytest.approx(np.linalg.norm(predicted - target))

    def test_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            solve_thetas_batched(np.ones((2, 3)), np.ones(3))
        with pytest.raises(ConfigurationError):
            solve_thetas_batched(np.ones((2, 1, 3)), np.ones(4))

    def test_degenerate_zero_kernels(self):
        # All-zero kernels: solution must still be finite.
        thetas, objs = solve_thetas_batched(np.zeros((1, 2, 5)), np.ones(5))
        assert np.all(np.isfinite(thetas))
        assert objs[0] == pytest.approx(np.sqrt(5))


class TestFluxObjective:
    def _observation(self, model, values):
        return FluxObservation(
            time=0.0,
            sniffers=np.arange(model.node_count),
            values=np.asarray(values, dtype=float),
        )

    def test_from_observation_plain(self):
        _, _, model = _model()
        g = model.geometry_kernel(np.array([5.0, 5.0]))
        obs = self._observation(model, 2.0 * g)
        objective = FluxObjective.from_observation(model, obs)
        thetas, obj = objective.evaluate(np.array([[5.0, 5.0]]))
        assert thetas[0] == pytest.approx(2.0)
        assert obj < 1e-8

    def test_nan_masking(self):
        _, _, model = _model()
        g = model.geometry_kernel(np.array([5.0, 5.0]))
        values = 2.0 * g
        values[3] = np.nan
        obs = self._observation(model, values)
        objective = FluxObjective.from_observation(model, obs)
        assert objective.sniffer_count == model.node_count - 1
        thetas, obj = objective.evaluate(np.array([[5.0, 5.0]]))
        assert thetas[0] == pytest.approx(2.0)

    def test_all_nan_raises(self):
        _, _, model = _model()
        obs = self._observation(model, np.full(model.node_count, np.nan))
        with pytest.raises(FittingError):
            FluxObjective.from_observation(model, obs)

    def test_count_mismatch_raises(self):
        _, _, model = _model()
        obs = FluxObservation(
            time=0.0, sniffers=np.arange(3), values=np.ones(3)
        )
        with pytest.raises(ConfigurationError):
            FluxObjective.from_observation(model, obs)

    def test_relative_weighting_changes_objective(self):
        _, _, model = _model()
        g = model.geometry_kernel(np.array([5.0, 5.0]))
        obs = self._observation(model, 2.0 * g + 1.0)
        abs_obj = FluxObjective.from_observation(model, obs, weighting="absolute")
        rel_obj = FluxObjective.from_observation(model, obs, weighting="relative")
        _, a = abs_obj.evaluate(np.array([[5.0, 5.0]]))
        _, r = rel_obj.evaluate(np.array([[5.0, 5.0]]))
        assert a != pytest.approx(r)

    def test_unknown_weighting_raises(self):
        _, _, model = _model()
        obs = self._observation(model, np.ones(model.node_count))
        with pytest.raises(ConfigurationError):
            FluxObjective.from_observation(model, obs, weighting="exotic")

    def test_evaluate_batch_single_user(self):
        _, _, model = _model()
        true_pos = np.array([3.0, 6.0])
        g = model.geometry_kernel(true_pos)
        obs = self._observation(model, 1.7 * g)
        objective = FluxObjective.from_observation(model, obs)
        candidates = np.array([[3.0, 6.0], [8.0, 1.0], [1.0, 9.0]])
        kernels = model.geometry_kernels(candidates)
        thetas, objs = objective.evaluate_batch(kernels)
        assert int(np.argmin(objs)) == 0
        assert thetas[0, 0] == pytest.approx(1.7, rel=1e-5)

    def test_evaluate_batch_with_fixed(self):
        _, _, model = _model()
        p1, p2 = np.array([2.0, 2.0]), np.array([8.0, 7.0])
        g1, g2 = model.geometry_kernel(p1), model.geometry_kernel(p2)
        obs = self._observation(model, g1 + 2.0 * g2)
        objective = FluxObjective.from_observation(model, obs)
        candidates = np.array([[2.0, 2.0], [5.0, 9.0]])
        kernels = model.geometry_kernels(candidates)
        thetas, objs = objective.evaluate_batch(kernels, fixed_kernels=g2[None, :])
        assert int(np.argmin(objs)) == 0
        # Swept user first, fixed second.
        np.testing.assert_allclose(thetas[0], [1.0, 2.0], atol=1e-5)

    def test_weights_must_be_positive(self):
        _, _, model = _model()
        with pytest.raises(ConfigurationError):
            FluxObjective(
                model=model,
                target=np.ones(model.node_count),
                weights=np.zeros(model.node_count),
            )
