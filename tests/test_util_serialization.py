"""Result serialization tests."""

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.util.serialization import results_to_json, save_results_json


@dataclasses.dataclass
class _Sample:
    name: str
    values: np.ndarray


def test_numpy_arrays_become_lists():
    out = json.loads(results_to_json({"a": np.array([1.0, 2.0])}))
    assert out["a"] == [1.0, 2.0]


def test_numpy_scalars_become_python():
    out = json.loads(
        results_to_json({"i": np.int64(3), "f": np.float64(1.5), "b": np.bool_(True)})
    )
    assert out == {"i": 3, "f": 1.5, "b": True}


def test_dataclasses_become_dicts():
    out = json.loads(results_to_json(_Sample(name="x", values=np.zeros(2))))
    assert out == {"name": "x", "values": [0.0, 0.0]}


def test_nested_structures():
    nested = {"rows": [{"v": np.arange(2)}, {"v": (np.float32(1.0),)}]}
    out = json.loads(results_to_json(nested))
    assert out["rows"][0]["v"] == [0, 1]
    assert out["rows"][1]["v"] == [1.0]


def test_paths_become_strings(tmp_path):
    out = json.loads(results_to_json({"p": tmp_path}))
    assert out["p"] == str(tmp_path)


def test_save_results_json_roundtrip(tmp_path):
    target = tmp_path / "sub" / "results.json"
    path = save_results_json({"x": np.array([3.0])}, target)
    assert path == target
    assert json.loads(target.read_text()) == {"x": [3.0]}


def test_sorted_keys_stable():
    a = results_to_json({"b": 1, "a": 2})
    assert a.index('"a"') < a.index('"b"')
