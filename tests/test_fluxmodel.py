"""Flux-model tests: continuous/discrete formulas, calibration, accuracy."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fluxmodel import (
    DiscreteFluxModel,
    continuous_flux,
    estimate_hop_distance,
    model_flux,
)
from repro.fluxmodel.accuracy import (
    approximation_error_rates,
    flux_by_hops,
    model_accuracy_report,
)
from repro.geometry import RectangularField
from repro.routing import build_collection_tree


class TestContinuousFlux:
    def test_formula(self):
        # F = s (l^2 - d^2) / (2 d)
        assert continuous_flux(2.0, 4.0, stretch=1.0) == pytest.approx(3.0)

    def test_stretch_scales(self):
        assert continuous_flux(2.0, 4.0, stretch=3.0) == pytest.approx(9.0)

    def test_zero_at_boundary(self):
        assert continuous_flux(4.0, 4.0) == pytest.approx(0.0)

    def test_beyond_boundary_clamped(self):
        assert continuous_flux(5.0, 4.0) == 0.0

    def test_d_floor_prevents_blowup(self):
        v = continuous_flux(0.0, 4.0, d_floor=0.5)
        assert np.isfinite(v)
        assert v == pytest.approx((16 - 0.25) / 1.0)

    def test_monotone_decreasing_in_d(self):
        d = np.linspace(0.5, 3.9, 30)
        f = continuous_flux(d, np.full_like(d, 4.0))
        assert np.all(np.diff(f) < 0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            continuous_flux(np.ones(3), np.ones(4))

    def test_negative_stretch_raises(self):
        with pytest.raises(ConfigurationError):
            continuous_flux(1.0, 2.0, stretch=-1.0)


class TestDiscreteFluxModel:
    def _model(self, n=30, d_floor=1.0):
        field = RectangularField(10, 10)
        nodes = field.sample_uniform(n, np.random.default_rng(0))
        return field, nodes, DiscreteFluxModel(field, nodes, d_floor=d_floor)

    def test_kernel_nonnegative(self):
        _, _, model = self._model()
        g = model.geometry_kernel(np.array([5.0, 5.0]))
        assert np.all(g >= 0)

    def test_kernel_formula_center(self):
        field = RectangularField(10, 10)
        nodes = np.array([[7.0, 5.0]])  # d=2, l=5 along +x from center
        model = DiscreteFluxModel(field, nodes, d_floor=0.1)
        g = model.geometry_kernel(np.array([5.0, 5.0]))
        assert g[0] == pytest.approx((25 - 4) / 4)

    def test_kernels_match_kernel(self):
        _, _, model = self._model()
        sinks = np.array([[2.0, 3.0], [8.0, 8.0]])
        batch = model.geometry_kernels(sinks)
        for j in range(2):
            np.testing.assert_allclose(
                batch[j], model.geometry_kernel(sinks[j]), atol=1e-9
            )

    def test_kernels_clip_outside_sinks(self):
        _, _, model = self._model()
        out = model.geometry_kernels(np.array([[-5.0, 5.0]]))
        clipped = model.geometry_kernel(np.array([0.0, 5.0]))
        np.testing.assert_allclose(out[0], clipped, atol=1e-9)

    def test_d_floor_applied(self):
        field = RectangularField(10, 10)
        nodes = np.array([[5.0, 5.0]])  # node at the sink
        model = DiscreteFluxModel(field, nodes, d_floor=1.0)
        g = model.geometry_kernel(np.array([5.0, 5.0]))
        assert np.isfinite(g[0]) and g[0] > 0

    def test_predict_linear_in_theta(self):
        _, _, model = self._model()
        sinks = np.array([[3.0, 3.0], [7.0, 7.0]])
        f1 = model.predict(sinks, [1.0, 0.0])
        f2 = model.predict(sinks, [0.0, 2.0])
        f12 = model.predict(sinks, [1.0, 2.0])
        np.testing.assert_allclose(f12, f1 + f2, atol=1e-9)

    def test_predict_rejects_negative_theta(self):
        _, _, model = self._model()
        with pytest.raises(ConfigurationError):
            model.predict(np.array([[5.0, 5.0]]), [-1.0])

    def test_predict_theta_count_checked(self):
        _, _, model = self._model()
        with pytest.raises(ConfigurationError):
            model.predict(np.array([[5.0, 5.0]]), [1.0, 2.0])

    def test_restrict_to(self):
        _, nodes, model = self._model()
        sub = model.restrict_to(np.array([0, 2, 4]))
        assert sub.node_count == 3
        g_full = model.geometry_kernel(np.array([5.0, 5.0]))
        g_sub = sub.geometry_kernel(np.array([5.0, 5.0]))
        np.testing.assert_allclose(g_sub, g_full[[0, 2, 4]])

    def test_model_flux_wrapper(self, small_network):
        flux = model_flux(
            small_network, np.array([7.0, 7.0]), stretch=2.0, hop_distance=1.5
        )
        assert flux.shape == (small_network.node_count,)
        assert np.all(flux >= 0)

    def test_model_flux_decreases_with_distance_same_ray(self):
        field = RectangularField(20, 20)
        nodes = np.column_stack([np.linspace(11, 18, 8), np.full(8, 10.0)])
        from repro.network.graph import UnitDiskGraph
        from repro.network.topology import Network

        net = Network(field=field, positions=nodes, graph=UnitDiskGraph(nodes, 2.0))
        flux = model_flux(net, np.array([10.0, 10.0]), stretch=1.0, hop_distance=1.0)
        assert np.all(np.diff(flux) < 0)


class TestCalibration:
    def test_edge_based_bounded_by_radius(self, small_network):
        r = estimate_hop_distance(small_network)
        assert 0 < r <= small_network.radius

    def test_tree_based_close_to_edge_based(self, small_network):
        tree = build_collection_tree(small_network, np.array([7.0, 7.0]), rng=0)
        r_tree = estimate_hop_distance(small_network, tree)
        r_edge = estimate_hop_distance(small_network)
        assert 0.4 * r_edge <= r_tree <= 1.6 * r_edge

    def test_min_hops_checked(self, small_network):
        tree = build_collection_tree(small_network, np.array([7.0, 7.0]), rng=0)
        with pytest.raises(ConfigurationError):
            estimate_hop_distance(small_network, tree, min_hops=0)


class TestAccuracy:
    def test_error_rates_reasonable(self, small_network):
        rates = approximation_error_rates(
            small_network, np.array([7.0, 7.0]), rng=0
        )
        assert rates.size > 100
        assert np.all(rates >= 0)
        # The model should be a decent fit on a healthy network.
        assert np.median(rates) < 0.6

    def test_min_hops_shrinks_sample(self, small_network):
        all_nodes = approximation_error_rates(
            small_network, np.array([7.0, 7.0]), min_hops=1, rng=0
        )
        far_nodes = approximation_error_rates(
            small_network, np.array([7.0, 7.0]), min_hops=3, rng=0
        )
        assert far_nodes.size < all_nodes.size

    def test_flux_by_hops_keys(self, small_network):
        data = flux_by_hops(small_network, np.array([7.0, 7.0]), rng=0)
        assert set(data) == {
            "hops",
            "measured",
            "modeled",
            "flux_fraction_beyond",
        }
        assert data["hops"].shape == data["measured"].shape

    def test_flux_fraction_monotone(self, small_network):
        data = flux_by_hops(small_network, np.array([7.0, 7.0]), rng=0)
        frac = data["flux_fraction_beyond"]
        assert frac[0] == pytest.approx(1.0)
        assert np.all(np.diff(frac) <= 1e-12)

    def test_report(self, small_network):
        report = model_accuracy_report(small_network, sink_count=2, rng=0)
        assert 0 <= report.fraction_below_04 <= 1
        assert 0 <= report.flux_fraction_beyond_3_hops <= 1
        assert report.cdf_y[-1] == pytest.approx(1.0)
        assert "degree" in report.row()

    def test_report_bad_sink_count(self, small_network):
        with pytest.raises(ConfigurationError):
            model_accuracy_report(small_network, sink_count=0)
