"""Additional fingerprint-path tests: generators in localize, dropout
through the full pipeline, enumeration edge cases."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fingerprint import (
    DiscCandidates,
    GridCandidates,
    NLSLocalizer,
)
from repro.fingerprint.nls import enumerate_compositions
from repro.fingerprint.objective import FluxObjective
from repro.fluxmodel.discrete import DiscreteFluxModel
from repro.geometry import RectangularField
from repro.network import sample_sniffers_percentage
from repro.traffic import DropoutNoise, MeasurementModel, simulate_flux
from repro.traffic.measurement import FluxObservation


class TestLocalizeWithGenerators:
    def _observation(self, small_network, gen):
        truth = np.array([[5.0, 10.0]])
        flux = simulate_flux(small_network, list(truth), [2.0], rng=gen)
        sniffers = sample_sniffers_percentage(small_network, 20, rng=gen)
        obs = MeasurementModel(
            small_network, sniffers, smooth=True, rng=gen
        ).observe(flux)
        return truth, sniffers, obs

    def test_grid_candidates(self, small_network):
        gen = np.random.default_rng(1)
        truth, sniffers, obs = self._observation(small_network, gen)
        loc = NLSLocalizer(small_network.field, small_network.positions[sniffers])
        result = loc.localize(
            obs,
            user_count=1,
            candidate_count=400,
            generator=GridCandidates(small_network.field, jitter=0.2),
            rng=gen,
        )
        assert float(result.errors_to(truth)[0]) < 4.0

    def test_disc_candidates_focus_search(self, small_network):
        gen = np.random.default_rng(2)
        truth, sniffers, obs = self._observation(small_network, gen)
        loc = NLSLocalizer(small_network.field, small_network.positions[sniffers])
        generator = DiscCandidates(
            small_network.field, truth, radius=2.0
        )  # oracle prior around truth
        result = loc.localize(
            obs, user_count=1, candidate_count=300, generator=generator, rng=gen
        )
        assert float(result.errors_to(truth)[0]) < 2.0

    def test_dropout_flows_through_localize(self, small_network):
        gen = np.random.default_rng(3)
        truth = np.array([[5.0, 10.0]])
        flux = simulate_flux(small_network, list(truth), [2.0], rng=gen)
        sniffers = sample_sniffers_percentage(small_network, 30, rng=gen)
        obs = MeasurementModel(
            small_network,
            sniffers,
            noise=DropoutNoise(0.4),
            smooth=True,
            rng=gen,
        ).observe(flux)
        assert np.any(np.isnan(obs.values))
        loc = NLSLocalizer(small_network.field, small_network.positions[sniffers])
        result = loc.localize(
            obs, user_count=1, candidate_count=400, rng=gen
        )
        assert float(result.errors_to(truth)[0]) < 5.0


class TestEnumerationEdges:
    def _objective(self):
        field = RectangularField(10, 10)
        gen = np.random.default_rng(0)
        nodes = field.sample_uniform(25, gen)
        model = DiscreteFluxModel(field, nodes, d_floor=0.5)
        truth = np.array([[3.0, 3.0]])
        values = model.predict(truth, [1.0])
        obs = FluxObservation(time=0.0, sniffers=np.arange(25), values=values)
        return field, FluxObjective.from_observation(model, obs)

    def test_top_m_larger_than_pool(self):
        field, objective = self._objective()
        pools = [field.sample_uniform(4, np.random.default_rng(1))]
        fits = enumerate_compositions(objective, pools, top_m=10)
        assert len(fits) == 4

    def test_single_candidate(self):
        field, objective = self._objective()
        pools = [np.array([[3.0, 3.0]])]
        fits = enumerate_compositions(objective, pools, top_m=1)
        assert len(fits) == 1
        assert fits[0].objective < 1e-6

    def test_three_user_enumeration(self):
        field, objective = self._objective()
        gen = np.random.default_rng(2)
        pools = [field.sample_uniform(5, gen) for _ in range(3)]
        fits = enumerate_compositions(objective, pools, top_m=3)
        assert len(fits) == 3
        assert all(f.user_count == 3 for f in fits)


class TestObjectiveForApi:
    def test_objective_for_masks_dropout(self, small_network):
        sniffers = np.arange(40)
        values = np.ones(40)
        values[::4] = np.nan
        obs = FluxObservation(time=0.0, sniffers=sniffers, values=values)
        loc = NLSLocalizer(small_network.field, small_network.positions[sniffers])
        objective = loc.objective_for(obs)
        assert objective.sniffer_count == 30
