"""Micro-batching scheduler: fused evaluation is invisible to results.

The load-bearing contract: a request's reply is bitwise-identical
(float64) whether it was solved alone or fused into a batch with
arbitrary other requests — per-request dispatch *is* the same
scheduler with ``max_batch=1``. Plus the failure surface: expired and
crashed work always gets a typed error reply.
"""

import numpy as np
import pytest

from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage
from repro.serve import (
    ERROR_DEADLINE_EXPIRED,
    ERROR_INTERNAL,
    LocalizationService,
    LocalizeRequest,
)
from repro.traffic import MeasurementModel, simulate_flux
from repro.traffic.measurement import FluxObservation


@pytest.fixture(scope="module")
def scenario():
    net = build_network(
        field=RectangularField(10, 10), node_count=100, radius=2.0, rng=5
    )
    gen = np.random.default_rng(2)
    sniffers = sample_sniffers_percentage(net, 20, rng=gen)
    from repro.fpmap import build_fingerprint_map

    fmap = build_fingerprint_map(net.field, net.positions[sniffers],
                                 resolution=2.0)
    return net, sniffers, fmap


def _observations(net, sniffers, count, users=1, seed=0):
    gen = np.random.default_rng(seed)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    out = []
    for _ in range(count):
        truth = net.field.sample_uniform(users, gen)
        flux = simulate_flux(
            net, list(truth), list(gen.uniform(1.0, 3.0, users)), rng=gen
        )
        out.append(measure.observe(flux))
    return out


def _mixed_requests(net, sniffers):
    """K=1/K=2, map/no-map, clean/dropout — one of everything."""
    requests = []
    for i, obs in enumerate(_observations(net, sniffers, 4, users=1, seed=10)):
        requests.append(LocalizeRequest(
            request_id=f"k1-map-{i}", client_id=f"c{i % 2}", observation=obs,
            candidate_count=32, seed=100 + i,
        ))
    for i, obs in enumerate(_observations(net, sniffers, 2, users=1, seed=11)):
        requests.append(LocalizeRequest(
            request_id=f"k1-uniform-{i}", client_id="c2", observation=obs,
            candidate_count=32, seed=200 + i, use_map=False,
        ))
    for i, obs in enumerate(_observations(net, sniffers, 2, users=2, seed=12)):
        requests.append(LocalizeRequest(
            request_id=f"k2-{i}", client_id="c3", observation=obs,
            user_count=2, candidate_count=32, sweeps=2, seed=300 + i,
        ))
    dropout = _observations(net, sniffers, 1, users=1, seed=13)[0]
    values = dropout.values.copy()
    values[:3] = np.nan
    requests.append(LocalizeRequest(
        request_id="k1-dropout", client_id="c4",
        observation=FluxObservation(
            time=dropout.time, sniffers=dropout.sniffers, values=values
        ),
        candidate_count=32, seed=400,
    ))
    return requests


def _service(net, sniffers, fmap, max_batch):
    return LocalizationService(
        net.field,
        net.positions[sniffers],
        fingerprint_map=fmap,
        max_batch=max_batch,
        max_wait_s=0.002,
    )


def _replies(service, requests):
    """Submit everything *before* the scheduler starts: max_batch>=len
    then provably evaluates one fused batch."""
    futures = [service.submit(r) for r in requests]
    with service:
        return {f.result().request_id: f.result() for f in futures}


def _payload(reply):
    return [
        (fit.positions.tobytes(), fit.thetas.tobytes(), float(fit.objective))
        for fit in reply.result.fits
    ]


class TestBitwiseIdentity:
    def test_batched_equals_per_request(self, scenario):
        net, sniffers, fmap = scenario
        requests = _mixed_requests(net, sniffers)
        batched = _replies(_service(net, sniffers, fmap, 16), requests)
        single = _replies(_service(net, sniffers, fmap, 1), requests)
        assert set(batched) == {r.request_id for r in requests}
        for request_id in batched:
            assert batched[request_id].ok, request_id
            assert _payload(batched[request_id]) == _payload(
                single[request_id]
            ), request_id

    def test_batch_actually_formed(self, scenario):
        net, sniffers, fmap = scenario
        requests = _mixed_requests(net, sniffers)
        service = _service(net, sniffers, fmap, 16)
        _replies(service, requests)
        sizes = service.metrics.batch_sizes
        assert max(sizes) > 1  # fusion really happened

    def test_composition_independence(self, scenario):
        """Same request, different batch mates -> same bits."""
        net, sniffers, fmap = scenario
        probe = _mixed_requests(net, sniffers)[0]
        mates = _mixed_requests(net, sniffers)[4:]
        alone = _replies(_service(net, sniffers, fmap, 16), [probe])
        crowded = _replies(_service(net, sniffers, fmap, 16), [probe] + mates)
        assert _payload(alone[probe.request_id]) == _payload(
            crowded[probe.request_id]
        )


class TestTypedFailures:
    def test_deadline_expired_requests_get_typed_replies(self, scenario):
        net, sniffers, fmap = scenario
        requests = [
            LocalizeRequest(
                request_id=f"late-{i}", client_id="c0",
                observation=obs, candidate_count=32, deadline_s=0.0,
            )
            for i, obs in enumerate(_observations(net, sniffers, 3, seed=20))
        ]
        replies = _replies(_service(net, sniffers, fmap, 16), requests)
        assert len(replies) == len(requests)  # never silently dropped
        for reply in replies.values():
            assert not reply.ok
            assert reply.code == ERROR_DEADLINE_EXPIRED

    def test_unplannable_request_gets_internal_error(self, scenario):
        net, sniffers, fmap = scenario
        broken = LocalizeRequest(
            request_id="broken", client_id="c0",
            observation=FluxObservation(
                time=0.0, sniffers=np.arange(3), values=np.ones(3)
            ),
            candidate_count=32,
        )
        good = _mixed_requests(net, sniffers)[0]
        replies = _replies(_service(net, sniffers, fmap, 16), [broken, good])
        assert replies["broken"].code == ERROR_INTERNAL
        assert replies[good.request_id].ok  # batch mates unaffected

    def test_expiry_counted_in_metrics(self, scenario):
        net, sniffers, fmap = scenario
        obs = _observations(net, sniffers, 1, seed=21)[0]
        service = _service(net, sniffers, fmap, 4)
        _replies(service, [LocalizeRequest(
            request_id="late", client_id="c0", observation=obs,
            candidate_count=32, deadline_s=0.0,
        )])
        assert service.metrics.deadline_expiries == 1


class TestFusedMapMatching:
    def test_match_many_is_batch_size_invariant(self, scenario):
        """An observation's matches are bitwise-independent of its
        batch mates — the property the serve bitwise contract rests on
        (both serve modes route through match_many)."""
        net, sniffers, fmap = scenario
        observations = _observations(net, sniffers, 5, seed=30)
        values = np.stack([obs.values for obs in observations])
        fused = fmap.match_many(values, [4] * len(observations))
        for row, match in zip(values, fused):
            alone = fmap.match_many(row[None, :], [4])[0]
            assert np.array_equal(match.indices, alone.indices)
            assert np.array_equal(match.thetas, alone.thetas)
            assert np.array_equal(match.residuals, alone.residuals)
            assert np.array_equal(match.positions, alone.positions)

    def test_match_many_agrees_with_match(self, scenario):
        """Same math as the single-observation path; only the BLAS
        kernel differs (einsum vs gemv), so agreement is allclose, not
        bitwise."""
        net, sniffers, fmap = scenario
        observations = _observations(net, sniffers, 5, seed=31)
        values = np.stack([obs.values for obs in observations])
        fused = fmap.match_many(values, [4] * len(observations))
        for row, match in zip(values, fused):
            alone = fmap.match(row, k=4)
            assert np.array_equal(match.indices, alone.indices)
            np.testing.assert_allclose(
                match.thetas, alone.thetas, rtol=1e-9, atol=1e-9
            )
            np.testing.assert_allclose(
                match.residuals, alone.residuals, rtol=1e-9, atol=1e-9
            )

    def test_index_batch_is_column_local(self, scenario):
        """Each target's scores are bitwise-identical whether computed
        in a batch of one or sliced out of a larger batch (einsum
        reduces per output element), and agree with the gemv-based
        single path to rounding."""
        _, _, fmap = scenario
        targets = np.abs(fmap.signatures[:4]) + 0.1
        many = fmap.index.knn_by_signature_batch(targets, [6] * 4)
        for b in range(4):
            one = fmap.index.knn_by_signature_batch(targets[b:b + 1], [6])[0]
            for fused, alone in zip(many[b], one):
                assert np.array_equal(fused, alone)
            idx_s, th_s, res_s = fmap.index.knn_by_signature(targets[b], 6)
            assert np.array_equal(many[b][0], idx_s)
            np.testing.assert_allclose(many[b][1], th_s, rtol=1e-9, atol=1e-9)
            np.testing.assert_allclose(many[b][2], res_s, rtol=1e-9, atol=1e-9)

    def test_signature_norm_cache_changes_no_bits(self, scenario):
        _, _, fmap = scenario
        target = np.abs(fmap.signatures[0]) + 0.5
        cold = fmap.index.knn_by_signature(target, 5)
        assert fmap.index._sig_norms is not None  # cache populated
        warm = fmap.index.knn_by_signature(target, 5)
        for a, b in zip(cold, warm):
            assert np.array_equal(a, b)

    def test_match_many_rejects_nonfinite(self, scenario):
        from repro.errors import ConfigurationError

        _, _, fmap = scenario
        values = np.ones((2, fmap.sniffer_count))
        values[1, 0] = np.nan
        with pytest.raises(ConfigurationError):
            fmap.match_many(values, [3, 3])


class TestSingletonFastPath:
    """A drained batch of one dispatches through _process_one."""

    def test_lone_request_records_a_size_one_batch(self, scenario):
        net, sniffers, fmap = scenario
        probe = _mixed_requests(net, sniffers)[0]
        service = _service(net, sniffers, fmap, 16)
        with service:
            reply = service.call(probe, timeout=60)
        assert reply.ok and reply.batch_size == 1
        assert service.metrics.batch_sizes.get(1) == 1

    def test_fast_path_is_bitwise_the_batched_path(self, scenario):
        # Sequential calls against an idle eager service each drain a
        # singleton; the same requests fused into one big batch must
        # produce the same bits (the fast path reuses the exact batched
        # functions over lists of one).
        net, sniffers, fmap = scenario
        requests = _mixed_requests(net, sniffers)
        service = _service(net, sniffers, fmap, 16)
        with service:
            lone = {
                r.request_id: service.call(r, timeout=60) for r in requests
            }
        fused = _replies(_service(net, sniffers, fmap, 16), requests)
        for request_id, reply in lone.items():
            assert reply.batch_size == 1, request_id
            assert _payload(reply) == _payload(fused[request_id]), request_id

    def test_fast_path_handles_track_steps(self, scenario):
        from repro.serve import TrackStepRequest

        net, sniffers, fmap = scenario
        obs = _observations(net, sniffers, 3, users=2, seed=40)
        service = _service(net, sniffers, fmap, 16)
        with service:
            service.open_session("s0", 2, rng=3)
            replies = [
                service.call(TrackStepRequest(
                    request_id=f"t{i}", client_id="tracker",
                    session_id="s0",
                    observation=FluxObservation(
                        time=float(i), sniffers=o.sniffers, values=o.values
                    ),
                ), timeout=60)
                for i, o in enumerate(obs)
            ]
        assert all(r.ok and r.batch_size == 1 for r in replies)
        assert all(r.step is not None for r in replies)
