"""Observation sources: replay, synthetic live, JSONL tail."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, StreamError
from repro.network import sample_sniffers_percentage
from repro.stream import (
    JsonlTailSource,
    ObservationSource,
    ReplaySource,
    SyntheticLiveSource,
    observation_to_jsonl,
)
from repro.traffic.measurement import FluxObservation
from repro.util.persistence import save_observations


def _observations(n=4, sniffer_count=5):
    sniffers = np.arange(sniffer_count)
    return [
        FluxObservation(
            time=float(t),
            sniffers=sniffers,
            values=np.linspace(0.5, 2.0, sniffer_count) + t,
        )
        for t in range(n)
    ]


class TestReplaySource:
    def test_replays_in_order(self):
        obs = _observations()
        out = list(ReplaySource(obs))
        assert [o.time for o in out] == [0.0, 1.0, 2.0, 3.0]

    def test_start_index_skips(self):
        source = ReplaySource(_observations(), start_index=2)
        assert len(source) == 2
        assert [o.time for o in source] == [2.0, 3.0]

    def test_start_index_beyond_end(self):
        source = ReplaySource(_observations(), start_index=10)
        assert len(source) == 0
        assert list(source) == []

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplaySource(_observations(), start_index=-1)

    def test_from_npz(self, tmp_path):
        obs = _observations()
        path = save_observations(obs, tmp_path / "log.npz")
        source = ReplaySource.from_npz(path)
        assert len(source) == len(obs)
        loaded = list(source)
        np.testing.assert_allclose(loaded[1].values, obs[1].values)

    def test_satisfies_protocol(self):
        assert isinstance(ReplaySource([]), ObservationSource)


class TestSyntheticLiveSource:
    def test_yields_monotonic_windows(self, small_network):
        sniffers = sample_sniffers_percentage(small_network, 20, rng=1)
        source = SyntheticLiveSource(
            small_network, sniffers, user_count=2, rounds=5, rng=2
        )
        obs = list(source)
        assert len(obs) == 5
        times = [o.time for o in obs]
        assert times == sorted(times)
        assert all(o.values.shape == sniffers.shape for o in obs)

    def test_truth_recorded_per_window(self, small_network):
        sniffers = sample_sniffers_percentage(small_network, 20, rng=1)
        source = SyntheticLiveSource(
            small_network, sniffers, user_count=3, rounds=4, rng=2
        )
        assert source.truth_at(0.0) is None  # not generated yet
        first = next(iter(source))
        truth = source.truth_at(first.time)
        assert truth.shape == (3, 2)

    def test_validation(self, small_network):
        sniffers = sample_sniffers_percentage(small_network, 20, rng=1)
        with pytest.raises(ConfigurationError):
            SyntheticLiveSource(small_network, sniffers, user_count=0)
        with pytest.raises(ConfigurationError):
            SyntheticLiveSource(small_network, sniffers, rounds=0)


class TestJsonlTailSource:
    def test_reads_existing_lines(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        obs = _observations(3)
        path.write_text(
            "\n".join(observation_to_jsonl(o) for o in obs) + "\n"
        )
        source = JsonlTailSource(path)
        out = list(source)
        assert [o.time for o in out] == [0.0, 1.0, 2.0]
        assert source.parse_errors == 0

    def test_malformed_lines_counted_not_fatal(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        good = observation_to_jsonl(_observations(1)[0])
        lines = [
            good,
            "this is not json",
            '{"time": 1.0}',  # missing keys
            '{"time": 2.0, "sniffers": [0, 1], "values": [1.0]}',  # arity
            good,
        ]
        path.write_text("\n".join(lines) + "\n")
        source = JsonlTailSource(path)
        out = list(source)
        assert len(out) == 2
        assert source.parse_errors == 3

    def test_nan_values_roundtrip(self, tmp_path):
        sniffers = np.arange(3)
        obs = FluxObservation(
            time=0.0, sniffers=sniffers,
            values=np.array([1.0, np.nan, 3.0]),
        )
        path = tmp_path / "feed.jsonl"
        path.write_text(observation_to_jsonl(obs) + "\n")
        out = list(JsonlTailSource(path))
        assert np.isnan(out[0].values[1])

    def test_trailing_partial_line_salvaged(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text(observation_to_jsonl(_observations(1)[0]))  # no \n
        out = list(JsonlTailSource(path))
        assert len(out) == 1

    def test_raw_values_roundtrip(self, tmp_path):
        sniffers = np.arange(3)
        obs = FluxObservation(
            time=0.0,
            sniffers=sniffers,
            values=np.array([1.0, 2.0, 3.0]),
            raw_values=np.array([1.5, 2.5, 3.5]),
        )
        path = tmp_path / "feed.jsonl"
        path.write_text(observation_to_jsonl(obs) + "\n")
        out = list(JsonlTailSource(path))
        np.testing.assert_allclose(out[0].raw_values, [1.5, 2.5, 3.5])

    def test_missing_file_raises_stream_error(self, tmp_path):
        source = JsonlTailSource(tmp_path / "absent.jsonl")
        with pytest.raises(StreamError):
            list(source)

    def test_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            JsonlTailSource(tmp_path / "x", poll_interval=0.0)
        with pytest.raises(ConfigurationError):
            JsonlTailSource(tmp_path / "x", idle_timeout=-1.0)
