"""Statistics helper tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.util.stats import (
    cdf_at,
    empirical_cdf,
    mean_confidence_interval,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.median == 2.0

    def test_std(self):
        s = summarize([0.0, 2.0])
        assert s.std == pytest.approx(1.0)

    def test_flattens(self):
        assert summarize(np.ones((2, 3))).count == 6

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_str_contains_mean(self):
        assert "mean" in str(summarize([1.0]))


class TestEmpiricalCdf:
    def test_sorted_output(self):
        xs, ys = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(xs, [1.0, 2.0, 3.0])

    def test_fractions(self):
        _, ys = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_allclose(ys, [1 / 3, 2 / 3, 1.0])

    def test_last_fraction_is_one(self):
        _, ys = empirical_cdf(np.random.default_rng(0).uniform(size=50))
        assert ys[-1] == 1.0

    def test_monotone(self):
        xs, ys = empirical_cdf(np.random.default_rng(0).normal(size=100))
        assert np.all(np.diff(xs) >= 0)
        assert np.all(np.diff(ys) > 0)

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            empirical_cdf([])


class TestCdfAt:
    def test_half(self):
        assert cdf_at([1, 2, 3, 4], 2) == 0.5

    def test_all(self):
        assert cdf_at([1, 2], 10) == 1.0

    def test_none(self):
        assert cdf_at([1, 2], 0) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            cdf_at([], 1)


class TestMeanConfidenceInterval:
    def test_contains_mean(self):
        mean, lo, hi = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert lo <= mean <= hi

    def test_single_sample_degenerate(self):
        mean, lo, hi = mean_confidence_interval([2.0])
        assert mean == lo == hi == 2.0

    def test_wider_at_higher_confidence(self):
        data = np.random.default_rng(0).normal(size=30)
        _, lo95, hi95 = mean_confidence_interval(data, 0.95)
        _, lo99, hi99 = mean_confidence_interval(data, 0.99)
        assert (hi99 - lo99) > (hi95 - lo95)

    def test_bad_confidence_raises(self):
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([1.0, 2.0], confidence=1.5)

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([])
