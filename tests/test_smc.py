"""Sequential Monte Carlo tests: samples, prediction, weighting, tracker."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TrackingError
from repro.geometry import RectangularField
from repro.smc import (
    SequentialMonteCarloTracker,
    TrackerConfig,
    UserSamples,
    effective_sample_size,
    importance_weights,
    predict_samples,
)
from repro.smc.association import (
    assignment_errors,
    identity_consistency,
    tracking_errors_over_time,
)


class TestUserSamples:
    def _samples(self):
        return UserSamples(
            positions=np.array([[0.0, 0.0], [2.0, 0.0]]),
            weights=np.array([1.0, 3.0]),
            t_last=0.0,
        )

    def test_weights_normalized(self):
        s = self._samples()
        np.testing.assert_allclose(s.weights, [0.25, 0.75])

    def test_estimate_weighted_mean(self):
        s = self._samples()
        np.testing.assert_allclose(s.estimate(), [1.5, 0.0])

    def test_spread(self):
        s = self._samples()
        assert s.spread() == pytest.approx(np.sqrt(0.25 * 2.25 + 0.75 * 0.25))

    def test_zero_weights_raise(self):
        with pytest.raises(ConfigurationError):
            UserSamples(
                positions=np.zeros((2, 2)), weights=np.zeros(2), t_last=0.0
            )

    def test_negative_weights_raise(self):
        with pytest.raises(ConfigurationError):
            UserSamples(
                positions=np.zeros((2, 2)),
                weights=np.array([1.0, -0.5]),
                t_last=0.0,
            )

    def test_uniform_prior(self):
        field = RectangularField(10, 10)
        s = UserSamples.uniform_prior(field, 20, np.random.default_rng(0), t0=5.0)
        assert s.count == 20
        assert s.t_last == 5.0
        np.testing.assert_allclose(s.weights, 1 / 20)
        assert field.contains(s.positions).all()


class TestPrediction:
    def test_within_radius_of_some_parent(self):
        field = RectangularField(20, 20)
        samples = UserSamples(
            positions=np.array([[5.0, 5.0], [15.0, 15.0]]),
            weights=np.array([0.5, 0.5]),
            t_last=0.0,
        )
        positions, parents = predict_samples(
            field, samples, radius=2.0, count=300, rng=np.random.default_rng(0)
        )
        d = np.linalg.norm(positions - samples.positions[parents], axis=1)
        assert np.all(d <= 2.0 + 1e-9)

    def test_clipped_to_field(self):
        field = RectangularField(10, 10)
        samples = UserSamples(
            positions=np.array([[0.1, 0.1]]), weights=np.array([1.0]), t_last=0.0
        )
        positions, _ = predict_samples(
            field, samples, radius=5.0, count=200, rng=np.random.default_rng(0)
        )
        assert field.contains(positions).all()

    def test_heavy_parent_seeds_more(self):
        field = RectangularField(20, 20)
        samples = UserSamples(
            positions=np.array([[5.0, 5.0], [15.0, 15.0]]),
            weights=np.array([0.9, 0.1]),
            t_last=0.0,
        )
        _, parents = predict_samples(
            field, samples, radius=1.0, count=1000, rng=np.random.default_rng(0)
        )
        assert (parents == 0).sum() > 700

    def test_bad_radius_raises(self):
        field = RectangularField(10, 10)
        samples = UserSamples.uniform_prior(field, 5, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            predict_samples(field, samples, radius=0.0, count=10,
                            rng=np.random.default_rng(0))


class TestWeighting:
    def test_formula(self):
        w = importance_weights(
            parent_weights=np.array([0.5, 0.5]),
            parents=np.array([0, 1]),
            objectives=np.array([1.0, 3.0]),
        )
        np.testing.assert_allclose(w, [0.75, 0.25], rtol=1e-6)

    def test_normalized(self):
        gen = np.random.default_rng(0)
        w = importance_weights(
            gen.uniform(size=10), gen.integers(0, 10, 50), gen.uniform(0.1, 5, 50)
        )
        assert w.sum() == pytest.approx(1.0)

    def test_zero_objective_handled(self):
        w = importance_weights(
            np.array([1.0]), np.array([0, 0]), np.array([0.0, 1.0])
        )
        assert np.isfinite(w).all()
        assert w[0] > w[1]

    def test_degenerate_parents_fall_back(self):
        # Parent weights all zero would zero everything: falls back to
        # likelihood-only weights.
        w = importance_weights(
            np.array([0.0, 0.0]), np.array([0, 1]), np.array([1.0, 1.0])
        )
        np.testing.assert_allclose(w, [0.5, 0.5])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            importance_weights(np.ones(2), np.zeros(3, int), np.ones(4))

    def test_effective_sample_size(self):
        assert effective_sample_size(np.ones(8)) == pytest.approx(8.0)
        assert effective_sample_size(np.array([1.0, 0.0])) == pytest.approx(1.0)


class TestTrackerConfig:
    def test_defaults_paper(self):
        cfg = TrackerConfig()
        assert cfg.prediction_count == 1000
        assert cfg.keep_count == 10
        assert cfg.max_speed == 5.0

    def test_keep_le_predictions(self):
        with pytest.raises(ConfigurationError):
            TrackerConfig(prediction_count=5, keep_count=10)

    def test_bad_speed(self):
        with pytest.raises(ConfigurationError):
            TrackerConfig(max_speed=0.0)


class TestTracker:
    def _setup(self, small_network, user_count=1, pct=20):
        from repro.network import sample_sniffers_percentage

        gen = np.random.default_rng(11)
        sniffers = sample_sniffers_percentage(small_network, pct, rng=gen)
        tracker = SequentialMonteCarloTracker(
            small_network.field,
            small_network.positions[sniffers],
            user_count=user_count,
            config=TrackerConfig(prediction_count=300, keep_count=10, max_speed=3.0),
            rng=gen,
        )
        return sniffers, tracker

    def test_stationary_user_converges(self, small_network):
        from repro.traffic import MeasurementModel, simulate_flux

        sniffers, tracker = self._setup(small_network)
        truth = np.array([4.0, 11.0])
        mm = MeasurementModel(small_network, sniffers, smooth=True, rng=1)
        errors = []
        for t in range(6):
            flux = simulate_flux(small_network, [truth], [2.0], rng=t)
            step = tracker.step(mm.observe(flux, time=float(t)))
            errors.append(np.linalg.norm(step.estimates[0] - truth))
        assert errors[-1] < 2.5
        assert errors[-1] <= errors[0]

    def test_silent_window_updates_nobody(self, small_network):
        sniffers, tracker = self._setup(small_network)
        from repro.traffic.measurement import FluxObservation

        before = tracker.samples[0].positions.copy()
        obs = FluxObservation(
            time=1.0, sniffers=sniffers, values=np.zeros(sniffers.size)
        )
        step = tracker.step(obs)
        assert not step.active.any()
        assert np.isnan(step.objective)
        np.testing.assert_array_equal(tracker.samples[0].positions, before)

    def test_inactive_user_keeps_t_last(self, small_network):
        from repro.traffic import MeasurementModel, simulate_flux
        from repro.traffic.measurement import FluxObservation

        sniffers, tracker = self._setup(small_network, user_count=1)
        obs = FluxObservation(
            time=4.0, sniffers=sniffers, values=np.zeros(sniffers.size)
        )
        tracker.step(obs)
        assert tracker.samples[0].t_last == 0.0  # unchanged

    def test_active_user_advances_t_last(self, small_network):
        from repro.traffic import MeasurementModel, simulate_flux

        sniffers, tracker = self._setup(small_network)
        mm = MeasurementModel(small_network, sniffers, smooth=True, rng=1)
        flux = simulate_flux(small_network, [np.array([7.0, 7.0])], [2.0], rng=0)
        step = tracker.step(mm.observe(flux, time=2.5))
        if step.active[0]:
            assert tracker.samples[0].t_last == 2.5

    def test_run_requires_ordered_observations(self, small_network):
        from repro.traffic.measurement import FluxObservation

        sniffers, tracker = self._setup(small_network)
        obs = [
            FluxObservation(time=2.0, sniffers=sniffers, values=np.ones(sniffers.size)),
            FluxObservation(time=1.0, sniffers=sniffers, values=np.ones(sniffers.size)),
        ]
        with pytest.raises(TrackingError):
            tracker.run(obs)

    def test_run_empty_raises(self, small_network):
        sniffers, tracker = self._setup(small_network)
        with pytest.raises(TrackingError):
            tracker.run([])

    def test_history_recorded(self, small_network):
        from repro.traffic import MeasurementModel, simulate_flux

        sniffers, tracker = self._setup(small_network)
        mm = MeasurementModel(small_network, sniffers, rng=1)
        for t in range(3):
            flux = simulate_flux(small_network, [np.array([7.0, 7.0])], [2.0], rng=t)
            tracker.step(mm.observe(flux, time=float(t)))
        assert len(tracker.history) == 3

    def test_user_count_validated(self, small_network):
        with pytest.raises(ConfigurationError):
            SequentialMonteCarloTracker(
                small_network.field, small_network.positions[:10], user_count=0
            )


class TestAssociation:
    def test_assignment_errors_permutation(self):
        est = np.array([[0.0, 0.0], [5.0, 5.0]])
        truth = np.array([[5.0, 5.0], [0.0, 0.0]])
        errors, perm = assignment_errors(est, truth)
        np.testing.assert_allclose(errors, 0.0)
        np.testing.assert_array_equal(perm, [1, 0])

    def test_assignment_errors_shape_checked(self):
        with pytest.raises(ConfigurationError):
            assignment_errors(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_identity_consistency_stable(self):
        perms = [np.array([0, 1])] * 5
        assert identity_consistency(perms) == 1.0

    def test_identity_consistency_one_swap(self):
        perms = [np.array([0, 1])] * 3 + [np.array([1, 0])] * 3
        assert identity_consistency(perms) == pytest.approx(4 / 5)

    def test_identity_consistency_short(self):
        assert identity_consistency([np.array([0])]) == 1.0

    def test_tracking_errors_over_time_shapes(self, small_network):
        from repro.smc.tracker import TrackerStep

        steps = [
            TrackerStep(
                time=float(t),
                estimates=np.array([[1.0, 1.0], [5.0, 5.0]]),
                active=np.array([True, True]),
                objective=1.0,
                sample_sets=[],
            )
            for t in range(3)
        ]
        trajectories = [np.ones((3, 2)), np.full((3, 2), 5.0)]
        errors = tracking_errors_over_time(steps, trajectories)
        assert errors.shape == (3, 2)
        np.testing.assert_allclose(errors, 0.0)

    def test_tracking_errors_interpolated(self):
        from repro.smc.tracker import TrackerStep

        steps = [
            TrackerStep(
                time=0.5,
                estimates=np.array([[0.5, 0.0]]),
                active=np.array([True]),
                objective=1.0,
                sample_sets=[],
            )
        ]
        trajectories = [np.array([[0.0, 0.0], [1.0, 0.0]])]
        errors = tracking_errors_over_time(steps, trajectories, times=[0.0, 1.0])
        np.testing.assert_allclose(errors, 0.0, atol=1e-12)
