"""Public-API stability tests: exports, docstring example, version."""

import numpy as np
import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_subpackage_all_names_resolve(self):
        import repro.fingerprint
        import repro.fluxmodel
        import repro.geometry
        import repro.network
        import repro.routing
        import repro.smc
        import repro.stream
        import repro.traces
        import repro.traffic

        for module in (
            repro.geometry,
            repro.network,
            repro.routing,
            repro.traffic,
            repro.fluxmodel,
            repro.fingerprint,
            repro.smc,
            repro.stream,
            repro.traces,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestDocstringExample:
    def test_quickstart_example_runs(self):
        """The example in repro's module docstring must actually work."""
        net = repro.build_network(rng=1)
        truth = net.field.sample_uniform(2, np.random.default_rng(2))
        flux = repro.simulate_flux(net, list(truth), [2.0, 1.5], rng=3)
        sniffers = repro.sample_sniffers_percentage(net, 10, rng=4)
        obs = repro.MeasurementModel(net, sniffers, smooth=True, rng=5).observe(
            flux
        )
        localizer = repro.NLSLocalizer(net.field, net.positions[sniffers])
        result = localizer.localize(
            obs, user_count=2, candidate_count=1500, rng=6
        )
        estimates = result.position_estimates()
        errors = result.errors_to(truth)
        assert estimates.shape == (2, 2)
        assert errors.shape == (2,)
        assert errors.mean() < net.field.diameter / 3


class TestProxyDefenseEndToEnd:
    @pytest.mark.slow
    def test_attack_localizes_proxy_not_user(self, paper_network):
        """The proxy defense redirects the fit to the proxy position."""
        from repro.countermeasures import proxy_collection_flux
        from repro.experiments.ablations import single_user_attack_error

        gen = np.random.default_rng(3)
        hits_proxy = 0
        runs = 4
        for rep in range(runs):
            user = np.array([4.0, 4.0])
            proxy = paper_network.nearest_node(np.array([25.0, 25.0]))
            flux, _ = proxy_collection_flux(
                paper_network, user, 2.0, rng=gen, proxy=proxy
            )
            proxy_pos = paper_network.positions[proxy]
            err_to_user = single_user_attack_error(
                paper_network, flux, user, np.random.default_rng(rep),
                candidate_count=1500,
            )
            err_to_proxy = single_user_attack_error(
                paper_network, flux, proxy_pos, np.random.default_rng(rep),
                candidate_count=1500,
            )
            if err_to_proxy < err_to_user:
                hits_proxy += 1
        assert hits_proxy >= runs - 1
