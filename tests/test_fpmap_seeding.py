"""Map-seeded search wiring: NLS seeding, SMC recovery, resume, CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.fingerprint import MapSeededCandidates, NLSLocalizer
from repro.fpmap import build_fingerprint_map
from repro.network import sample_sniffers_percentage
from repro.smc import SequentialMonteCarloTracker, TrackerConfig
from repro.stream import (
    ReplaySource,
    SyntheticLiveSource,
    TrackingSession,
    load_checkpoint,
    resume_or_create,
    run_stream,
    save_checkpoint,
)
from repro.traffic import MeasurementModel, simulate_flux


@pytest.fixture(scope="module")
def sniffers(small_network):
    return sample_sniffers_percentage(small_network, 20, rng=42)


@pytest.fixture(scope="module")
def fpmap(small_network, sniffers):
    return build_fingerprint_map(
        small_network.field,
        small_network.positions[sniffers],
        resolution=0.75,
        d_floor=1.0,
        sniffer_ids=sniffers,
    )


@pytest.fixture(scope="module")
def stale_map(small_network):
    other = sample_sniffers_percentage(small_network, 20, rng=777)
    return build_fingerprint_map(
        small_network.field,
        small_network.positions[other],
        resolution=1.5,
        sniffer_ids=other,
    )


class TestMapSeededCandidates:
    def test_seeds_come_first_then_disc_refinement(self, small_field, rng):
        seeds = np.array([[3.0, 3.0], [12.0, 12.0]])
        gen = MapSeededCandidates(
            small_field, seeds, refine_radius=1.0, explore_fraction=0.0
        )
        pts = gen.generate(30, rng)
        assert pts.shape == (30, 2)
        np.testing.assert_array_equal(pts[:2], seeds)
        d = np.linalg.norm(
            pts[2:, None, :] - seeds[None, :, :], axis=2
        ).min(axis=1)
        assert np.all(d <= 1.0 + 1e-9)
        assert np.all(small_field.contains(pts))

    def test_explore_fraction_blends_uniform_draws(self, small_field, rng):
        seeds = np.array([[3.0, 3.0]])
        gen = MapSeededCandidates(
            small_field, seeds, refine_radius=1.0, explore_fraction=0.25
        )
        pts = gen.generate(401, rng)
        assert pts.shape == (401, 2)
        np.testing.assert_array_equal(pts[:1], seeds)
        d = np.linalg.norm(pts[1:] - seeds[0][None, :], axis=1)
        refined = int((d <= 1.0 + 1e-9).sum())
        # 100 of the 400 non-seed draws explore the whole field; a
        # uniform draw rarely lands inside the unit refinement disc
        assert 280 <= refined <= 320
        assert d.max() > 5.0
        with pytest.raises(ConfigurationError):
            MapSeededCandidates(
                small_field, seeds, 1.0, explore_fraction=1.0
            )

    def test_count_smaller_than_seed_set(self, small_field, rng):
        seeds = np.array([[3.0, 3.0], [12.0, 12.0], [7.0, 7.0]])
        gen = MapSeededCandidates(small_field, seeds, refine_radius=1.0)
        assert gen.seed_count(2) == 2
        pts = gen.generate(2, rng)
        np.testing.assert_array_equal(pts, seeds[:2])

    def test_from_match_carries_indices(self, small_network, sniffers, fpmap, rng):
        flux = simulate_flux(small_network, [np.array([10.0, 5.0])], [2.0], rng=9)
        obs = MeasurementModel(
            small_network, sniffers, smooth=False, rng=10
        ).observe(flux)
        match = fpmap.match(obs.values, k=4)
        gen = MapSeededCandidates.from_match(
            small_network.field, match, refine_radius=1.5
        )
        np.testing.assert_array_equal(gen.seed_indices, match.indices)
        np.testing.assert_array_equal(gen.generate(4, rng), match.positions)

    def test_validation_errors(self, small_field):
        with pytest.raises(ConfigurationError):
            MapSeededCandidates(small_field, np.empty((0, 2)), 1.0)
        with pytest.raises(ConfigurationError):
            MapSeededCandidates(
                small_field, np.zeros((2, 2)), 1.0, seed_indices=np.zeros(3)
            )


class TestSeededNLS:
    def test_seeded_matches_unseeded_quality_at_quarter_budget(
        self, small_network, sniffers, fpmap
    ):
        truth = np.array([[4.0, 11.0], [10.0, 5.0]])
        flux = simulate_flux(small_network, list(truth), [2.5, 2.0], rng=21)
        obs = MeasurementModel(
            small_network, sniffers, smooth=True, rng=22
        ).observe(flux)
        localizer = NLSLocalizer(
            small_network.field, small_network.positions[sniffers]
        )
        unseeded = localizer.localize(
            obs, user_count=2, candidate_count=2000, restarts=2, rng=31
        )
        seeded = localizer.localize(
            obs, user_count=2, candidate_count=500, restarts=2, rng=31,
            fingerprint_map=fpmap,
        )
        unseeded_err = unseeded.errors_to(truth).mean()
        seeded_err = seeded.errors_to(truth).mean()
        # quarter of the evaluation budget, no worse than 1.5x the error
        # (on single scenarios seeded usually wins; the benchmark checks
        # the median claim across many scenarios)
        assert seeded_err <= max(1.5 * unseeded_err, 1.5)

    def test_seeded_uses_map_kernel_cache(self, small_network, sniffers, fpmap):
        flux = simulate_flux(small_network, [np.array([10.0, 5.0])], [2.0], rng=9)
        obs = MeasurementModel(
            small_network, sniffers, smooth=True, rng=10
        ).observe(flux)
        localizer = NLSLocalizer(
            small_network.field, small_network.positions[sniffers]
        )
        fpmap.cache.clear()
        fpmap.cache.hits = fpmap.cache.misses = 0
        localizer.localize(
            obs, user_count=1, candidate_count=200, restarts=3, rng=5,
            fingerprint_map=fpmap,
        )
        # restarts after the first re-request the same seed blocks
        assert fpmap.cache.hits > 0

    def test_mismatched_map_rejected(self, small_network, sniffers, stale_map):
        flux = simulate_flux(small_network, [np.array([7.0, 7.0])], [2.0], rng=3)
        obs = MeasurementModel(
            small_network, sniffers, smooth=True, rng=4
        ).observe(flux)
        localizer = NLSLocalizer(
            small_network.field, small_network.positions[sniffers]
        )
        with pytest.raises(ConfigurationError, match="different deployment"):
            localizer.localize(
                obs, user_count=1, candidate_count=100, rng=5,
                fingerprint_map=stale_map,
            )

    def test_seeding_survives_nan_dropout(self, small_network, sniffers, fpmap):
        from repro.traffic.measurement import FluxObservation

        flux = simulate_flux(small_network, [np.array([4.0, 11.0])], [2.0], rng=7)
        obs = MeasurementModel(
            small_network, sniffers, smooth=False, rng=8
        ).observe(flux)
        values = obs.values.copy()
        values[::5] = np.nan
        dropped = FluxObservation(
            time=obs.time, sniffers=obs.sniffers, values=values
        )
        localizer = NLSLocalizer(
            small_network.field, small_network.positions[sniffers]
        )
        seeded = localizer.localize(
            dropped, user_count=1, candidate_count=300, restarts=2, rng=5,
            fingerprint_map=fpmap,
        )
        unseeded = localizer.localize(
            dropped, user_count=1, candidate_count=1200, restarts=2, rng=5,
        )
        # Dropout can genuinely shift the objective's optimum; the claim
        # here is that the restricted-column seeding path works and lands
        # where the (cheaper) unrestricted search would.
        seeded_err = seeded.errors_to(np.array([[4.0, 11.0]]))[0]
        unseeded_err = unseeded.errors_to(np.array([[4.0, 11.0]]))[0]
        assert np.isfinite(seeded_err)
        assert seeded_err <= unseeded_err + 1.0


class TestTrackerRecovery:
    def test_phantom_user_reseeded_after_misses(self, small_network, sniffers, fpmap):
        cfg = TrackerConfig(
            prediction_count=200, keep_count=8, max_speed=1.5,
            reseed_after_misses=3,
        )
        tracker = SequentialMonteCarloTracker(
            small_network.field,
            small_network.positions[sniffers],
            user_count=2,  # one phantom: only one real user emits flux
            config=cfg,
            rng=5,
            fingerprint_map=fpmap,
        )
        gen = np.random.default_rng(7)
        pos = np.array([4.0, 4.0])
        reseeds = 0
        for t in range(1, 10):
            pos = np.clip(pos + gen.uniform(-1, 1, 2), 0.5, 14.5)
            flux = simulate_flux(small_network, [pos], [2.0], rng=100 + t)
            obs = MeasurementModel(
                small_network, sniffers, smooth=False, rng=200 + t
            ).observe(flux, time=float(t))
            step = tracker.step(obs)
            assert step.reseeded is not None
            reseeds += int(step.reseeded.sum())
        assert reseeds > 0
        # reseeded counter resets: never reaches 2x the threshold
        assert np.all(tracker.miss_counts < 2 * cfg.reseed_after_misses)

    def test_no_reseed_without_map(self, small_network, sniffers):
        cfg = TrackerConfig(
            prediction_count=150, keep_count=8, reseed_after_misses=2
        )
        tracker = SequentialMonteCarloTracker(
            small_network.field,
            small_network.positions[sniffers],
            user_count=2,
            config=cfg,
            rng=5,
        )
        for t in range(1, 6):
            flux = simulate_flux(
                small_network, [np.array([7.0, 7.0])], [2.0], rng=50 + t
            )
            obs = MeasurementModel(
                small_network, sniffers, smooth=False, rng=60 + t
            ).observe(flux, time=float(t))
            step = tracker.step(obs)
            assert not step.reseeded.any()

    def test_miss_counts_ignore_silent_windows(self, small_network, sniffers, fpmap):
        from repro.traffic.measurement import FluxObservation

        tracker = SequentialMonteCarloTracker(
            small_network.field,
            small_network.positions[sniffers],
            user_count=1,
            config=TrackerConfig(
                prediction_count=100, keep_count=5, reseed_after_misses=1
            ),
            rng=5,
            fingerprint_map=fpmap,
        )
        silent = FluxObservation(
            time=1.0,
            sniffers=np.asarray(sniffers),
            values=np.zeros(sniffers.size),
        )
        step = tracker.step(silent)
        assert not step.active.any()
        assert not step.reseeded.any()
        assert np.all(tracker.miss_counts == 0)

    def test_stale_map_rejected_at_construction(
        self, small_network, sniffers, stale_map
    ):
        with pytest.raises(ConfigurationError, match="different deployment"):
            SequentialMonteCarloTracker(
                small_network.field,
                small_network.positions[sniffers],
                user_count=1,
                fingerprint_map=stale_map,
            )

    def test_attach_and_detach(self, small_network, sniffers, fpmap):
        tracker = SequentialMonteCarloTracker(
            small_network.field,
            small_network.positions[sniffers],
            user_count=1,
            rng=3,
        )
        assert tracker.fingerprint_map is None
        tracker.attach_map(fpmap)
        assert tracker.fingerprint_map is fpmap
        tracker.attach_map(None)
        assert tracker.fingerprint_map is None


class TestCheckpointReattach:
    @pytest.fixture()
    def scenario(self, small_network, sniffers, fpmap):
        observations = list(
            SyntheticLiveSource(
                small_network, sniffers, user_count=2, rounds=6, rng=2
            )
        )

        def make_session(with_map=True):
            tracker = SequentialMonteCarloTracker(
                small_network.field,
                small_network.positions[sniffers],
                user_count=2,
                config=TrackerConfig(
                    prediction_count=140, keep_count=9,
                    reseed_after_misses=2,
                ),
                rng=41,
                fingerprint_map=fpmap if with_map else None,
            )
            return TrackingSession("fp-ckpt", tracker)

        return observations, make_session

    def test_miss_counts_round_trip(self, scenario, tmp_path):
        observations, make_session = scenario
        session = make_session()
        run_stream(ReplaySource(observations), session, max_windows=4)
        session.tracker.miss_counts[:] = [1, 2]
        path = tmp_path / "fp.ckpt.npz"
        save_checkpoint(session, path)
        resumed = load_checkpoint(path)
        np.testing.assert_array_equal(resumed.tracker.miss_counts, [1, 2])
        assert resumed.tracker.config.reseed_after_misses == 2

    def test_map_reattached_and_validated(self, scenario, tmp_path, fpmap, stale_map):
        observations, make_session = scenario
        session = make_session()
        run_stream(ReplaySource(observations), session, max_windows=3)
        path = tmp_path / "fp.ckpt.npz"
        save_checkpoint(session, path)

        resumed = load_checkpoint(path, fingerprint_map=fpmap)
        assert resumed.tracker.fingerprint_map is fpmap
        # maps are never serialized: a plain load comes back map-less
        assert load_checkpoint(path).tracker.fingerprint_map is None
        with pytest.raises(ConfigurationError, match="different deployment"):
            load_checkpoint(path, fingerprint_map=stale_map)

    def test_resume_or_create_attaches_map_to_fresh_session(
        self, scenario, tmp_path, fpmap
    ):
        _, make_session = scenario
        session = resume_or_create(
            tmp_path / "absent.npz",
            lambda: make_session(with_map=False),
            fingerprint_map=fpmap,
        )
        assert session.tracker.fingerprint_map is fpmap

    def test_legacy_checkpoint_without_miss_counts_loads(self, scenario, tmp_path):
        observations, make_session = scenario
        session = make_session()
        run_stream(ReplaySource(observations), session, max_windows=2)
        path = tmp_path / "fp.ckpt.npz"
        save_checkpoint(session, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files if k != "miss_counts"}
        np.savez(path, **arrays)
        resumed = load_checkpoint(path)
        np.testing.assert_array_equal(resumed.tracker.miss_counts, [0, 0])


_SMALL = ["--nodes", "225", "--field", "15", "--radius", "2.0"]


class TestCli:
    @pytest.fixture(scope="class")
    def map_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("fpmap") / "map.npz"
        rc = main(
            ["--seed", "3", "build-map", *_SMALL, "--percentage", "20",
             "--resolution", "1.0", "--output", str(path)]
        )
        assert rc == 0
        return path

    def test_build_map_then_seeded_localize(self, map_path, capsys):
        rc = main(
            ["--seed", "3", "localize", *_SMALL, "--users", "2",
             "--candidates", "400", "--restarts", "2",
             "--map", str(map_path)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "map-seeded" in out

    def test_localize_with_stale_map_exits_1(self, map_path, capsys):
        rc = main(
            ["--seed", "4", "localize", *_SMALL, "--users", "1",
             "--candidates", "200", "--map", str(map_path)]
        )
        err = capsys.readouterr().err
        assert rc == 1
        assert "different deployment" in err

    def test_localize_with_missing_map_exits_1(self, tmp_path, capsys):
        rc = main(
            ["--seed", "3", "localize", *_SMALL,
             "--map", str(tmp_path / "absent.npz")]
        )
        assert rc == 1
        assert "build-map" in capsys.readouterr().err

    def test_track_stream_with_map(self, map_path, tmp_path, capsys):
        rc = main(
            ["--seed", "3", "track-stream", *_SMALL, "--users", "2",
             "--rounds", "4", "--predictions", "150",
             "--map", str(map_path), "--reseed-after-misses", "2",
             "--checkpoint", str(tmp_path / "ck.npz")]
        )
        assert rc == 0
        assert "final estimates" in capsys.readouterr().out
