"""Unit-disk graph tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GeometryError
from repro.network.graph import UnitDiskGraph


def _line_graph(n=5, spacing=1.0, radius=1.2):
    pts = np.column_stack([np.arange(n) * spacing, np.zeros(n)])
    return UnitDiskGraph(pts, radius)


class TestConstruction:
    def test_line_graph_edges(self):
        g = _line_graph()
        assert g.edge_count == 4

    def test_neighbors_of_interior_node(self):
        g = _line_graph()
        assert set(g.neighbors(2).tolist()) == {1, 3}

    def test_neighbors_of_end_node(self):
        g = _line_graph()
        assert set(g.neighbors(0).tolist()) == {1}

    def test_degrees(self):
        g = _line_graph()
        np.testing.assert_array_equal(g.degrees(), [1, 2, 2, 2, 1])

    def test_average_degree(self):
        assert _line_graph().average_degree() == pytest.approx(8 / 5)

    def test_no_self_loops(self):
        g = _line_graph()
        for i in range(g.node_count):
            assert i not in g.neighbors(i)

    def test_symmetry(self):
        gen = np.random.default_rng(0)
        g = UnitDiskGraph(gen.uniform(0, 10, (60, 2)), 2.0)
        for u in range(g.node_count):
            for v in g.neighbors(u):
                assert u in g.neighbors(int(v))

    def test_radius_threshold_inclusive(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert UnitDiskGraph(pts, 1.0).edge_count == 1
        assert UnitDiskGraph(pts, 0.99).edge_count == 0

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            UnitDiskGraph(np.zeros((0, 2)), 1.0)

    def test_bad_shape_raises(self):
        with pytest.raises(GeometryError):
            UnitDiskGraph(np.zeros((3, 3)), 1.0)

    def test_bad_radius_raises(self):
        with pytest.raises(ConfigurationError):
            UnitDiskGraph(np.zeros((3, 2)), 0.0)

    def test_neighbors_out_of_range_raises(self):
        with pytest.raises(ConfigurationError):
            _line_graph().neighbors(100)


class TestTraversals:
    def test_bfs_hops_line(self):
        g = _line_graph()
        np.testing.assert_array_equal(g.bfs_hops(0), [0, 1, 2, 3, 4])

    def test_bfs_from_middle(self):
        g = _line_graph()
        np.testing.assert_array_equal(g.bfs_hops(2), [2, 1, 0, 1, 2])

    def test_bfs_unreachable(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [50.0, 0.0]])
        g = UnitDiskGraph(pts, 1.5)
        hops = g.bfs_hops(0)
        assert hops[2] == -1

    def test_is_connected(self):
        assert _line_graph().is_connected()
        pts = np.array([[0.0, 0.0], [10.0, 0.0]])
        assert not UnitDiskGraph(pts, 1.0).is_connected()

    def test_connected_components(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [50.0, 0.0], [51.0, 0.0]])
        labels = UnitDiskGraph(pts, 1.5).connected_components()
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_largest_component(self):
        pts = np.array(
            [[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [50.0, 0.0], [51.0, 0.0]]
        )
        g = UnitDiskGraph(pts, 1.5)
        assert set(g.largest_component_nodes().tolist()) == {0, 1, 2}

    def test_bfs_bad_source_raises(self):
        with pytest.raises(ConfigurationError):
            _line_graph().bfs_hops(-1)


class TestMetrics:
    def test_edge_lengths_line(self):
        g = _line_graph(spacing=0.7, radius=1.0)
        lengths = g.edge_lengths()
        assert lengths.size == 8  # directed entries
        np.testing.assert_allclose(lengths, 0.7)

    def test_to_networkx(self):
        g = _line_graph()
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 5
        assert nxg.number_of_edges() == 4

    def test_matches_networkx_bfs(self):
        import networkx as nx

        gen = np.random.default_rng(1)
        g = UnitDiskGraph(gen.uniform(0, 8, (50, 2)), 2.0)
        nxg = g.to_networkx()
        ours = g.bfs_hops(0)
        theirs = nx.single_source_shortest_path_length(nxg, 0)
        for node in range(50):
            if node in theirs:
                assert ours[node] == theirs[node]
            else:
                assert ours[node] == -1
