"""Consistent hash ring: stability, bounded remapping, affinity."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet import ConsistentHashRing

KEYS = [f"session-{i}" for i in range(2000)]


def _assignments(nodes, replicas=64):
    ring = ConsistentHashRing(nodes, replicas=replicas)
    return ring.assignments(KEYS)


class TestDeterminism:
    def test_owner_is_stable_across_ring_instances(self):
        # SHA-1 placement, not hash(): two independently built rings
        # (as in router + external client) agree on every key.
        assert _assignments(range(4)) == _assignments(range(4))

    def test_insertion_order_does_not_matter(self):
        forward = _assignments([0, 1, 2, 3])
        backward = _assignments([3, 2, 1, 0])
        assert forward == backward

    def test_all_nodes_receive_keys(self):
        owners = set(_assignments(range(8)).values())
        assert owners == set(range(8))

    def test_shares_are_roughly_even(self):
        counts = {}
        for owner in _assignments(range(4)).values():
            counts[owner] = counts.get(owner, 0) + 1
        for owner, count in counts.items():
            share = count / len(KEYS)
            assert 0.10 <= share <= 0.45, (owner, share)


class TestBoundedRemapping:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_add_one_node_remaps_about_one_over_n(self, n):
        before = _assignments(range(n))
        after = _assignments(range(n + 1))
        moved = sum(before[k] != after[k] for k in KEYS)
        fraction = moved / len(KEYS)
        # Expect ~1/(n+1); allow generous slack for 64-replica variance.
        assert fraction <= 2.2 / (n + 1), fraction
        assert fraction > 0  # the new node actually took keys

    def test_every_moved_key_lands_on_the_new_node(self):
        before = _assignments(range(4))
        after = _assignments(range(5))
        for key in KEYS:
            if before[key] != after[key]:
                assert after[key] == 4

    def test_remove_one_node_only_moves_its_own_keys(self):
        before = _assignments(range(5))
        ring = ConsistentHashRing(range(5))
        ring.remove(2)
        after = ring.assignments(KEYS)
        for key in KEYS:
            if before[key] == 2:
                assert after[key] != 2
            else:
                # Affinity: survivors keep every session they owned.
                assert after[key] == before[key]

    def test_add_then_remove_restores_original_placement(self):
        ring = ConsistentHashRing(range(4))
        before = ring.assignments(KEYS)
        ring.add(4)
        ring.remove(4)
        assert ring.assignments(KEYS) == before


class TestErrors:
    def test_empty_ring_refuses_lookup(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing().owner("key")

    def test_duplicate_node_refused(self):
        ring = ConsistentHashRing([0])
        with pytest.raises(ConfigurationError):
            ring.add(0)

    def test_remove_unknown_node_refused(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing([0]).remove(1)

    def test_replicas_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(replicas=0)

    def test_len_and_contains(self):
        ring = ConsistentHashRing(range(3))
        assert len(ring) == 3
        assert 2 in ring and 5 not in ring
        assert sorted(ring.nodes) == [0, 1, 2]
