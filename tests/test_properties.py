"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.fluxmodel.continuous import continuous_flux
from repro.geometry import CircularField, RectangularField
from repro.geometry.grid import SpatialHashGrid
from repro.routing.tree import CollectionTree
from repro.smc.weighting import effective_sample_size, importance_weights
from repro.util.stats import empirical_cdf


# ----------------------------------------------------------------------
# Geometry
# ----------------------------------------------------------------------
points_inside = st.tuples(
    st.floats(0.01, 9.99), st.floats(0.01, 9.99)
).map(lambda p: np.array(p))

unit_angles = st.floats(0.0, 2 * np.pi - 1e-9)


@given(origin=points_inside, angle=unit_angles)
@settings(max_examples=200, deadline=None)
def test_rect_ray_exit_lands_on_boundary(origin, angle):
    field = RectangularField(10, 10)
    direction = np.array([np.cos(angle), np.sin(angle)])
    t = field.ray_exit_distance(origin[None, :], direction[None, :])[0]
    exit_point = origin + t * direction
    on_x = min(abs(exit_point[0] - 0), abs(exit_point[0] - 10))
    on_y = min(abs(exit_point[1] - 0), abs(exit_point[1] - 10))
    assert min(on_x, on_y) < 1e-6
    assert field.contains(exit_point[None, :])[0]


@given(origin=points_inside, angle=unit_angles)
@settings(max_examples=100, deadline=None)
def test_rect_ray_exit_positive_and_bounded(origin, angle):
    field = RectangularField(10, 10)
    direction = np.array([np.cos(angle), np.sin(angle)])
    t = field.ray_exit_distance(origin[None, :], direction[None, :])[0]
    assert 0 < t <= field.diameter + 1e-9


@given(
    cx=st.floats(-3, 3),
    cy=st.floats(-3, 3),
    radius=st.floats(0.5, 5.0),
    angle=unit_angles,
    rho=st.floats(0.0, 0.95),
)
@settings(max_examples=150, deadline=None)
def test_circle_ray_exit_lands_on_circle(cx, cy, radius, angle, rho):
    field = CircularField(radius, center=(cx, cy))
    origin = np.array([cx + rho * radius * np.cos(angle + 1.0),
                       cy + rho * radius * np.sin(angle + 1.0)])
    direction = np.array([np.cos(angle), np.sin(angle)])
    t = field.ray_exit_distance(origin[None, :], direction[None, :])[0]
    exit_point = origin + t * direction
    dist = np.hypot(exit_point[0] - cx, exit_point[1] - cy)
    assert dist == pytest.approx(radius, abs=1e-6)


@given(
    pts=hnp.arrays(
        float, st.tuples(st.integers(2, 40), st.just(2)),
        elements=st.floats(-20, 20),
    ),
    radius=st.floats(0.5, 10.0),
)
@settings(max_examples=50, deadline=None)
def test_grid_pairs_symmetric_against_bruteforce(pts, radius):
    grid = SpatialHashGrid(pts, cell_size=max(radius / 2, 0.1))
    rows, cols = grid.all_pairs_within(radius)
    got = set(zip(rows.tolist(), cols.tolist()))
    n = pts.shape[0]
    want = {
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if np.hypot(*(pts[i] - pts[j])) <= radius
    }
    assert got == want


# ----------------------------------------------------------------------
# Flux model
# ----------------------------------------------------------------------
@given(
    d=st.floats(0.01, 10.0),
    extra=st.floats(0.0, 10.0),
    s=st.floats(0.0, 5.0),
)
@settings(max_examples=200, deadline=None)
def test_continuous_flux_nonnegative_and_scales(d, extra, s):
    l = d + extra
    f1 = continuous_flux(d, l, stretch=1.0)
    fs = continuous_flux(d, l, stretch=s)
    assert f1 >= 0
    assert fs == pytest.approx(s * f1, rel=1e-9, abs=1e-12)


@given(d1=st.floats(0.5, 5.0), d2=st.floats(0.5, 5.0))
@settings(max_examples=100, deadline=None)
def test_continuous_flux_monotone_in_d(d1, d2):
    assume(abs(d1 - d2) > 1e-9)
    l = 6.0
    lo, hi = min(d1, d2), max(d1, d2)
    assert continuous_flux(lo, l) >= continuous_flux(hi, l)


# ----------------------------------------------------------------------
# Trees: random parent arrays form valid trees with conserved mass
# ----------------------------------------------------------------------
@st.composite
def random_trees(draw):
    n = draw(st.integers(2, 30))
    parents = np.zeros(n, dtype=np.int64)
    hops = np.zeros(n, dtype=np.int64)
    for i in range(1, n):
        p = draw(st.integers(0, i - 1))
        parents[i] = p
        hops[i] = hops[p] + 1
    return CollectionTree(root=0, parents=parents, hops=hops)


@given(tree=random_trees(), w=st.floats(0.1, 5.0))
@settings(max_examples=100, deadline=None)
def test_tree_root_aggregate_conserves_mass(tree, w):
    weights = np.full(tree.node_count, w)
    agg = tree.subtree_aggregate(weights)
    assert agg[tree.root] == pytest.approx(w * tree.node_count, rel=1e-9)


@given(tree=random_trees())
@settings(max_examples=100, deadline=None)
def test_tree_parent_aggregate_at_least_child(tree):
    agg = tree.subtree_aggregate()
    for node in range(tree.node_count):
        if tree.hops[node] > 0:
            assert agg[tree.parents[node]] >= agg[node]


@given(tree=random_trees())
@settings(max_examples=50, deadline=None)
def test_tree_paths_terminate_at_root(tree):
    for node in range(tree.node_count):
        path = tree.path_to_root(node)
        assert path[-1] == tree.root
        assert len(path) == tree.hops[node] + 1


# ----------------------------------------------------------------------
# SMC weighting
# ----------------------------------------------------------------------
@given(
    parent_weights=hnp.arrays(
        float, st.integers(1, 20), elements=st.floats(0.01, 10.0)
    ),
    data=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_importance_weights_normalized_and_nonnegative(parent_weights, data):
    m = parent_weights.shape[0]
    n = data.draw(st.integers(1, 30))
    parents = data.draw(
        hnp.arrays(np.int64, n, elements=st.integers(0, m - 1))
    )
    objectives = data.draw(
        hnp.arrays(float, n, elements=st.floats(0.0, 100.0))
    )
    w = importance_weights(parent_weights, parents, objectives)
    assert w.shape == (n,)
    assert np.all(w >= 0)
    assert w.sum() == pytest.approx(1.0)


@given(
    weights=hnp.arrays(float, st.integers(1, 50), elements=st.floats(0.001, 10.0))
)
@settings(max_examples=100, deadline=None)
def test_effective_sample_size_bounds(weights):
    ess = effective_sample_size(weights)
    assert 1.0 - 1e-9 <= ess <= weights.size + 1e-9


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------
@given(
    values=hnp.arrays(
        float, st.integers(1, 100), elements=st.floats(-1e6, 1e6)
    )
)
@settings(max_examples=100, deadline=None)
def test_empirical_cdf_properties(values):
    xs, ys = empirical_cdf(values)
    assert xs.size == values.size
    assert np.all(np.diff(xs) >= 0)
    assert np.all(np.diff(ys) > 0)
    assert ys[-1] == pytest.approx(1.0)
