"""CompositionFit/LocalizationResult and briefing tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fingerprint import CompositionFit, LocalizationResult, brief_flux_map
from repro.traffic import simulate_flux


def _fit(positions, objective, thetas=None):
    positions = np.asarray(positions, dtype=float)
    if thetas is None:
        thetas = np.ones(positions.shape[0])
    return CompositionFit(
        positions=positions, thetas=np.asarray(thetas, dtype=float),
        objective=float(objective),
    )


class TestCompositionFit:
    def test_valid(self):
        f = _fit([[1, 2]], 0.5)
        assert f.user_count == 1

    def test_rejects_bad_positions(self):
        with pytest.raises(ConfigurationError):
            CompositionFit(
                positions=np.zeros(2), thetas=np.ones(1), objective=1.0
            )

    def test_rejects_theta_mismatch(self):
        with pytest.raises(ConfigurationError):
            _fit([[1, 2], [3, 4]], 1.0, thetas=[1.0])

    def test_rejects_negative_objective(self):
        with pytest.raises(ConfigurationError):
            _fit([[1, 2]], -1.0)

    def test_active_users(self):
        f = _fit([[1, 2], [3, 4], [5, 6]], 1.0, thetas=[1.0, 1e-9, 0.5])
        np.testing.assert_array_equal(f.active_users(), [0, 2])


class TestLocalizationResult:
    def test_sorted_by_objective(self):
        result = LocalizationResult(
            fits=[_fit([[5, 5]], 3.0), _fit([[1, 1]], 1.0)]
        )
        assert result.best.objective == 1.0

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            LocalizationResult(fits=[])

    def test_position_estimates_weighted_towards_best(self):
        result = LocalizationResult(
            fits=[_fit([[0.0, 0.0]], 0.1), _fit([[10.0, 10.0]], 0.14)]
        )
        est = result.position_estimates()[0]
        assert est[0] < 5.0  # best fit weighs more

    def test_position_estimates_excludes_bad_fits(self):
        result = LocalizationResult(
            fits=[_fit([[0.0, 0.0]], 0.1), _fit([[10.0, 10.0]], 50.0)]
        )
        est = result.position_estimates(objective_ratio=1.5)[0]
        np.testing.assert_allclose(est, [0.0, 0.0], atol=1e-9)

    def test_position_estimates_ratio_validated(self):
        result = LocalizationResult(fits=[_fit([[0.0, 0.0]], 0.1)])
        with pytest.raises(ConfigurationError):
            result.position_estimates(objective_ratio=0.5)

    def test_errors_to_handles_permutation(self):
        result = LocalizationResult(
            fits=[_fit([[0.0, 0.0], [9.0, 9.0]], 0.1)]
        )
        truth = np.array([[9.0, 9.0], [0.0, 0.0]])  # swapped order
        errors = result.errors_to(truth)
        np.testing.assert_allclose(errors, 0.0, atol=1e-9)

    def test_errors_to_shape_checked(self):
        result = LocalizationResult(fits=[_fit([[0.0, 0.0]], 0.1)])
        with pytest.raises(ConfigurationError):
            result.errors_to(np.zeros((2, 2)))


class TestBriefing:
    def test_single_user_peak_found(self, small_network):
        truth = np.array([10.0, 4.0])
        flux = simulate_flux(small_network, [truth], [2.0], rng=0)
        result = brief_flux_map(small_network, flux, max_users=1)
        assert len(result.users) == 1
        err = np.linalg.norm(result.users[0].position - truth)
        assert err < 2.0

    def test_multi_user_detection_order_by_dominance(self, small_network):
        strong, weak = np.array([3.0, 3.0]), np.array([12.0, 12.0])
        flux = simulate_flux(small_network, [strong, weak], [3.0, 1.0], rng=0)
        result = brief_flux_map(small_network, flux, max_users=2)
        assert len(result.users) == 2
        # Dominant user detected first.
        assert np.linalg.norm(result.users[0].position - strong) < np.linalg.norm(
            result.users[0].position - weak
        )

    def test_residual_energy_decreases(self, small_network):
        users = [np.array([3.0, 3.0]), np.array([12.0, 12.0]), np.array([3.0, 12.0])]
        flux = simulate_flux(small_network, users, [2.0, 2.0, 2.0], rng=0)
        result = brief_flux_map(small_network, flux, max_users=3)
        energies = [u.residual_energy for u in result.users]
        assert all(b <= a for a, b in zip(energies, energies[1:]))

    def test_stops_early_on_clean_map(self, small_network):
        truth = np.array([7.0, 7.0])
        flux = simulate_flux(small_network, [truth], [2.0], rng=0)
        result = brief_flux_map(small_network, flux, max_users=5)
        assert len(result.users) < 5

    def test_residual_maps_recorded(self, small_network):
        flux = simulate_flux(small_network, [np.array([7.0, 7.0])], [2.0], rng=0)
        result = brief_flux_map(small_network, flux, max_users=1)
        assert len(result.residual_maps) == len(result.users)
        assert result.residual_maps[0].shape == (small_network.node_count,)

    def test_positions_property(self, small_network):
        flux = simulate_flux(small_network, [np.array([7.0, 7.0])], [2.0], rng=0)
        result = brief_flux_map(small_network, flux, max_users=1)
        assert result.positions.shape == (1, 2)

    def test_zero_map_raises(self, small_network):
        with pytest.raises(ConfigurationError):
            brief_flux_map(
                small_network, np.zeros(small_network.node_count), max_users=1
            )

    def test_shape_checked(self, small_network):
        with pytest.raises(ConfigurationError):
            brief_flux_map(small_network, np.ones(5), max_users=1)

    def test_theta_estimates_positive(self, small_network):
        flux = simulate_flux(small_network, [np.array([7.0, 7.0])], [2.0], rng=0)
        result = brief_flux_map(small_network, flux, max_users=1)
        assert result.users[0].theta > 0
