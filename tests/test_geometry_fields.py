"""Field boundary tests: rectangle, circle, polygon."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GeometryError
from repro.geometry import CircularField, PolygonField, RectangularField


class TestRectangularField:
    def test_area(self):
        assert RectangularField(3, 4).area == 12.0

    def test_bounding_box_with_origin(self):
        f = RectangularField(2, 3, origin=(1, -1))
        assert f.bounding_box == (1, -1, 3, 2)

    def test_diameter(self):
        assert RectangularField(3, 4).diameter == pytest.approx(5.0)

    def test_contains_inside(self):
        f = RectangularField(10, 10)
        assert f.contains(np.array([[5.0, 5.0]]))[0]

    def test_contains_boundary(self):
        f = RectangularField(10, 10)
        assert f.contains(np.array([[0.0, 0.0], [10.0, 10.0]])).all()

    def test_contains_outside(self):
        f = RectangularField(10, 10)
        assert not f.contains(np.array([[11.0, 5.0]]))[0]

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ConfigurationError):
            RectangularField(0, 5)

    def test_ray_exit_cardinal(self):
        f = RectangularField(10, 10)
        origins = np.array([[2.0, 5.0]])
        d = f.ray_exit_distance(origins, np.array([[1.0, 0.0]]))
        assert d[0] == pytest.approx(8.0)
        d = f.ray_exit_distance(origins, np.array([[-1.0, 0.0]]))
        assert d[0] == pytest.approx(2.0)
        d = f.ray_exit_distance(origins, np.array([[0.0, 1.0]]))
        assert d[0] == pytest.approx(5.0)

    def test_ray_exit_diagonal(self):
        f = RectangularField(10, 10)
        u = np.array([[1.0, 1.0]]) / np.sqrt(2)
        d = f.ray_exit_distance(np.array([[5.0, 5.0]]), u)
        assert d[0] == pytest.approx(5 * np.sqrt(2))

    def test_ray_from_outside_raises(self):
        f = RectangularField(10, 10)
        with pytest.raises(GeometryError):
            f.ray_exit_distance(np.array([[20.0, 5.0]]), np.array([[1.0, 0.0]]))

    def test_zero_direction_raises(self):
        f = RectangularField(10, 10)
        with pytest.raises(GeometryError):
            f.ray_exit_distance(np.array([[5.0, 5.0]]), np.array([[0.0, 0.0]]))

    def test_shape_mismatch_raises(self):
        f = RectangularField(10, 10)
        with pytest.raises(GeometryError):
            f.ray_exit_distance(np.zeros((2, 2)) + 5, np.array([[1.0, 0.0]]))

    def test_sample_uniform_inside(self):
        f = RectangularField(10, 10, origin=(5, 5))
        pts = f.sample_uniform(200, np.random.default_rng(0))
        assert pts.shape == (200, 2)
        assert f.contains(pts).all()

    def test_sample_zero(self):
        f = RectangularField(10, 10)
        assert f.sample_uniform(0, np.random.default_rng(0)).shape == (0, 2)

    def test_clip(self):
        f = RectangularField(10, 10)
        out = f.clip(np.array([[-5.0, 3.0], [12.0, 15.0]]))
        np.testing.assert_array_equal(out, [[0.0, 3.0], [10.0, 10.0]])


class TestCircularField:
    def test_area(self):
        assert CircularField(2.0).area == pytest.approx(4 * np.pi)

    def test_bounding_box(self):
        f = CircularField(1.0, center=(2, 3))
        assert f.bounding_box == (1, 2, 3, 4)

    def test_contains(self):
        f = CircularField(1.0)
        assert f.contains(np.array([[0.5, 0.5]]))[0]
        assert not f.contains(np.array([[1.0, 1.0]]))[0]

    def test_ray_exit_from_center(self):
        f = CircularField(3.0)
        d = f.ray_exit_distance(np.array([[0.0, 0.0]]), np.array([[1.0, 0.0]]))
        assert d[0] == pytest.approx(3.0)

    def test_ray_exit_off_center(self):
        f = CircularField(3.0)
        d = f.ray_exit_distance(np.array([[1.0, 0.0]]), np.array([[1.0, 0.0]]))
        assert d[0] == pytest.approx(2.0)
        d = f.ray_exit_distance(np.array([[1.0, 0.0]]), np.array([[-1.0, 0.0]]))
        assert d[0] == pytest.approx(4.0)

    def test_ray_from_outside_raises(self):
        f = CircularField(1.0)
        with pytest.raises(GeometryError):
            f.ray_exit_distance(np.array([[2.0, 0.0]]), np.array([[1.0, 0.0]]))

    def test_sample_uniform_inside(self):
        f = CircularField(2.0, center=(1, 1))
        pts = f.sample_uniform(300, np.random.default_rng(0))
        assert f.contains(pts).all()

    def test_clip_projects_onto_disc(self):
        f = CircularField(1.0)
        out = f.clip(np.array([[3.0, 0.0]]))
        assert np.hypot(*out[0]) == pytest.approx(1.0)

    def test_bad_center_raises(self):
        with pytest.raises(ConfigurationError):
            CircularField(1.0, center=(1, 2, 3))


class TestPolygonField:
    def _square(self):
        return PolygonField([(0, 0), (4, 0), (4, 4), (0, 4)])

    def test_area(self):
        assert self._square().area == pytest.approx(16.0)

    def test_clockwise_vertices_normalized(self):
        f = PolygonField([(0, 0), (0, 4), (4, 4), (4, 0)])
        assert f.area == pytest.approx(16.0)

    def test_contains(self):
        f = self._square()
        assert f.contains(np.array([[2.0, 2.0]]))[0]
        assert not f.contains(np.array([[5.0, 2.0]]))[0]

    def test_ray_exit_matches_rectangle(self):
        poly = self._square()
        rect = RectangularField(4, 4)
        origins = np.array([[1.0, 2.0], [3.0, 1.0]])
        dirs = np.array([[1.0, 0.0], [0.0, 1.0]])
        np.testing.assert_allclose(
            poly.ray_exit_distance(origins, dirs),
            rect.ray_exit_distance(origins, dirs),
        )

    def test_triangle(self):
        f = PolygonField([(0, 0), (4, 0), (0, 4)])
        assert f.area == pytest.approx(8.0)
        d = f.ray_exit_distance(np.array([[1.0, 1.0]]), np.array([[1.0, 0.0]]))
        assert d[0] == pytest.approx(2.0)

    def test_degenerate_raises(self):
        with pytest.raises(ConfigurationError):
            PolygonField([(0, 0), (1, 1), (2, 2)])

    def test_too_few_vertices_raises(self):
        with pytest.raises(ConfigurationError):
            PolygonField([(0, 0), (1, 0)])

    def test_nonconvex_raises(self):
        with pytest.raises(ConfigurationError):
            PolygonField([(0, 0), (4, 0), (1, 1), (0, 4)])

    def test_sample_uniform_inside(self):
        f = PolygonField([(0, 0), (4, 0), (0, 4)])
        pts = f.sample_uniform(200, np.random.default_rng(0))
        assert pts.shape == (200, 2)
        assert f.contains(pts).all()
