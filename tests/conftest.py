"""Shared fixtures: small, connected networks reused across test modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import RectangularField
from repro.network import build_network


@pytest.fixture(scope="session")
def small_field():
    return RectangularField(15.0, 15.0)


@pytest.fixture(scope="session")
def small_network(small_field):
    """225 nodes on a 15x15 field — fast but structurally realistic."""
    return build_network(
        field=small_field, node_count=225, radius=2.0, rng=1234
    )


@pytest.fixture(scope="session")
def paper_network():
    """The paper's 900-node default network (session-scoped: built once)."""
    return build_network(rng=99)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)
