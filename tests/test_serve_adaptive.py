"""Adaptive micro-batching: controller policy, hot-path fixed costs,
and the bitwise parity sweep.

Three layers under test:

* :class:`~repro.serve.AdaptiveBatchController` policy unit tests —
  depth-k bypass, EWMA window sizing, the SLO cap, settle-early drain
  — plus the :class:`~repro.serve.BatchArena` / :class:`~repro.serve.
  EnvelopePool` fixed-cost machinery.
* Admission-queue behavior the controller plugs into: the
  ``wait_timeout=0`` busy-spin clamp (regression test) and the
  SLO-aware earliest-deadline-first urgent drain.
* End-to-end parity: sweeping client counts, the adaptive scheduler,
  the fixed-window scheduler, and per-request dispatch
  (``max_batch=1``) must produce float64-bitwise-identical replies —
  including NaN-dropout observations and a sharded fingerprint map.
"""

import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fleet import partition_map
from repro.fpmap import build_fingerprint_map
from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage
from repro.serve import (
    AdaptiveBatchController,
    BatchArena,
    EnvelopePool,
    LocalizationService,
    LocalizeRequest,
    MetricsServer,
)
from repro.serve.admission import MIN_IDLE_WAIT_S, AdmissionQueue, PendingRequest
from repro.traffic import FluxObservation, MeasurementModel, simulate_flux


# ----------------------------------------------------------------------
# Controller policy
# ----------------------------------------------------------------------
class TestAdaptiveBatchController:
    def test_bypass_below_fusion_min_depth(self):
        ctl = AdaptiveBatchController(max_wait_s=0.002, fusion_min_depth=2)
        # Fresh controller: batch EWMA is 1.0 < 2, depth 1 < 2 -> bypass.
        assert ctl.linger_window_s(1, 0.0, 16) == 0.0
        assert ctl.bypasses == 1

    def test_depth_at_threshold_lingers(self):
        ctl = AdaptiveBatchController(max_wait_s=0.002, fusion_min_depth=2)
        window = ctl.linger_window_s(2, 0.0, 16)
        assert 0.0 < window <= 0.002
        assert ctl.windows == 1

    def test_full_batch_dispatches_immediately(self):
        ctl = AdaptiveBatchController(max_wait_s=0.002)
        assert ctl.linger_window_s(16, 0.0, 16) == 0.0

    def test_batch_ewma_releases_bypass(self):
        # Sustained large drains mean fusion is paying; even a
        # momentarily shallow queue should linger for the batch.
        ctl = AdaptiveBatchController(max_wait_s=0.002, fusion_min_depth=4)
        for _ in range(20):
            ctl.observe_drain(8)
        assert ctl.batch_ewma > 4
        assert ctl.linger_window_s(1, 0.0, 16) > 0.0

    def test_lone_client_drains_keep_bypass_engaged(self):
        # The closed-loop trap: a single client's drains are size 1
        # forever, so the bypass must stay on no matter the gap EWMA.
        ctl = AdaptiveBatchController(max_wait_s=0.002, fusion_min_depth=2)
        now = 100.0
        for _ in range(50):
            ctl.observe_arrival(now)
            ctl.observe_drain(1)
            now += 1e-4  # gaps far shorter than max_wait_s
        assert ctl.linger_window_s(1, 0.0, 16) == 0.0

    def test_gap_ewma_tracks_arrivals_and_skips_idle(self):
        ctl = AdaptiveBatchController(max_wait_s=0.01, ewma_alpha=0.5)
        now = 10.0
        for _ in range(20):
            ctl.observe_arrival(now)
            now += 1e-3
        assert ctl.gap_ewma_s == pytest.approx(1e-3, rel=0.1)
        before = ctl.gap_ewma_s
        ctl.observe_arrival(now + 60.0)  # coffee break: gap is idle time
        assert ctl.gap_ewma_s == before

    def test_window_predicts_fill_time(self):
        ctl = AdaptiveBatchController(max_wait_s=1.0, ewma_alpha=0.5)
        now = 10.0
        for _ in range(20):
            ctl.observe_arrival(now)
            now += 1e-3
        # 12 more arrivals expected to fill 16 from depth 4.
        window = ctl.linger_window_s(4, 0.0, 16)
        assert window == pytest.approx(12 * ctl.gap_ewma_s)

    def test_target_p95_caps_window_by_oldest_age(self):
        ctl = AdaptiveBatchController(max_wait_s=1.0, target_p95_s=0.1)
        capped = ctl.linger_window_s(4, oldest_age_s=0.04, max_items=16)
        assert capped <= 0.5 * 0.1 - 0.04 + 1e-12
        # Oldest request already past half the SLO: dispatch now.
        assert ctl.linger_window_s(4, oldest_age_s=0.06, max_items=16) == 0.0

    def test_settle_bounded_by_max_wait(self):
        ctl = AdaptiveBatchController(max_wait_s=0.002)
        assert 0.0 < ctl.settle_s() <= 0.002

    def test_snapshot_keys(self):
        ctl = AdaptiveBatchController(max_wait_s=0.002, fusion_min_depth=3)
        ctl.linger_window_s(1, 0.0, 16)
        snap = ctl.snapshot()
        for key in ("adaptive", "fusion_min_depth", "target_p95_s",
                    "gap_ewma_s", "batch_ewma", "bypasses", "windows",
                    "last_window_s", "window_mean_s"):
            assert key in snap
        assert snap["fusion_min_depth"] == 3
        assert snap["bypasses"] == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveBatchController(max_wait_s=-1.0)
        with pytest.raises(ConfigurationError):
            AdaptiveBatchController(max_wait_s=0.002, fusion_min_depth=0)
        with pytest.raises(ConfigurationError):
            AdaptiveBatchController(max_wait_s=0.002, target_p95_s=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveBatchController(max_wait_s=0.002, ewma_alpha=0.0)


# ----------------------------------------------------------------------
# Fixed-cost machinery: arena and envelope pool
# ----------------------------------------------------------------------
class TestBatchArena:
    def test_reuse_hits_same_storage(self):
        arena = BatchArena()
        first = arena.take("k", (8, 4))
        second = arena.take("k", (8, 4))
        assert arena.grows == 1 and arena.hits == 1
        assert first.base is second.base
        assert second.shape == (8, 4)

    def test_growth_is_geometric(self):
        arena = BatchArena()
        arena.take("k", 10)
        buf = arena._buffers["k"]
        assert buf.size == 64  # the minimum power-of-two capacity
        arena.take("k", 100)
        assert arena._buffers["k"].size == 128
        arena.take("k", 100)  # same size again: no realloc
        assert arena.grows == 2 and arena.hits == 1

    def test_dtype_change_reallocates(self):
        arena = BatchArena()
        arena.take("k", 8, dtype=np.float64)
        out = arena.take("k", 8, dtype=np.int64)
        assert out.dtype == np.int64
        assert arena.grows == 2

    def test_snapshot(self):
        arena = BatchArena()
        arena.take("a", 8)
        arena.take("a", 8)
        snap = arena.snapshot()
        assert snap["hits"] == 1 and snap["grows"] == 1
        assert snap["buffers"] == 1 and snap["bytes"] == 64 * 8


class TestEnvelopePool:
    def test_reuse_cycle(self):
        pool = EnvelopePool(capacity=4)
        req_a = SimpleNamespace(client_id="a", deadline_s=None)
        item = pool.acquire(req_a)
        assert pool.allocations == 1 and pool.reuses == 0
        first_future = item.future
        pool.release(item)
        assert item.request is None and item.future is None
        recycled = pool.acquire(SimpleNamespace(client_id="b", deadline_s=0.5))
        assert recycled is item
        assert pool.reuses == 1
        assert recycled.future is not first_future  # futures never reused
        assert recycled.expires_at is not None

    def test_capacity_bounds_freelist(self):
        pool = EnvelopePool(capacity=1)
        items = [pool.acquire(SimpleNamespace(client_id=str(i),
                                              deadline_s=None))
                 for i in range(3)]
        for item in items:
            pool.release(item)
        assert len(pool) == 1


# ----------------------------------------------------------------------
# Admission-queue behavior
# ----------------------------------------------------------------------
class TestBusySpinRegression:
    def test_zero_wait_clamps_to_cv_sleep(self):
        # wait_timeout=0 used to return instantly on an empty queue,
        # turning the scheduler loop into a 100%-CPU poll.
        queue = AdmissionQueue()
        started = time.perf_counter()
        batch, expired = queue.take(8, wait_timeout=0.0)
        elapsed = time.perf_counter() - started
        assert batch == [] and expired == []
        assert elapsed >= 0.5 * MIN_IDLE_WAIT_S

    def test_negative_wait_clamps_too(self):
        queue = AdmissionQueue()
        started = time.perf_counter()
        queue.take(8, wait_timeout=-1.0)
        assert time.perf_counter() - started >= 0.5 * MIN_IDLE_WAIT_S

    def test_bounded_iterations_in_window(self):
        # The practical claim: an idle take-loop configured with zero
        # wait cannot spin more than window/MIN_IDLE_WAIT_S times.
        queue = AdmissionQueue()
        deadline = time.perf_counter() + 0.05
        spins = 0
        while time.perf_counter() < deadline:
            queue.take(8, wait_timeout=0.0)
            spins += 1
        assert spins <= 0.05 / MIN_IDLE_WAIT_S + 5


def _offer(queue, client_id, deadline_s=None):
    item = PendingRequest.wrap(
        SimpleNamespace(client_id=client_id, deadline_s=deadline_s)
    )
    assert queue.offer(item) == "admitted"
    return item


class TestUrgentDrain:
    def test_earliest_deadline_first_across_lanes(self):
        queue = AdmissionQueue(urgent_slack_s=60.0)
        a1 = _offer(queue, "a", deadline_s=50.0)
        a2 = _offer(queue, "a", deadline_s=0.5)  # tight but buried
        b1 = _offer(queue, "b", deadline_s=5.0)
        batch, expired = queue.take(8, wait_timeout=0.1)
        assert expired == []
        # b's head expires before a's head, so it jumps the rotation;
        # a2 is tighter than both but stays behind its lane mate a1.
        assert batch == [b1, a1, a2]

    def test_no_deadlines_keeps_round_robin(self):
        queue = AdmissionQueue(urgent_slack_s=60.0)
        a1 = _offer(queue, "a")
        a2 = _offer(queue, "a")
        b1 = _offer(queue, "b")
        batch, _ = queue.take(8, wait_timeout=0.1)
        assert batch == [a1, b1, a2]

    def test_loose_deadlines_outside_slack_keep_rotation(self):
        queue = AdmissionQueue(urgent_slack_s=0.001)
        a1 = _offer(queue, "a", deadline_s=100.0)
        b1 = _offer(queue, "b", deadline_s=50.0)
        batch, _ = queue.take(8, wait_timeout=0.1)
        assert batch == [a1, b1]  # nothing urgent: fair rotation order


# ----------------------------------------------------------------------
# End-to-end parity sweep
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def scenario():
    net = build_network(
        field=RectangularField(10, 10), node_count=100, radius=2.0, rng=5
    )
    sniffers = sample_sniffers_percentage(net, 20, rng=2)
    fmap = build_fingerprint_map(net.field, net.positions[sniffers],
                                 resolution=2.0)
    return net, sniffers, fmap


def _requests(scenario, clients, per_client, seed=0, dropout_every=None):
    """Per-client request lists; every ``dropout_every``-th request gets
    NaN readings (sniffer dropout) injected into its observation."""
    net, sniffers, _ = scenario
    gen = np.random.default_rng(seed)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    work = []
    index = 0
    for c in range(clients):
        batch = []
        for r in range(per_client):
            truth = net.field.sample_uniform(1, gen)
            flux = simulate_flux(
                net, list(truth), [float(gen.uniform(1.0, 3.0))], rng=gen
            )
            obs = measure.observe(flux)
            if dropout_every and index % dropout_every == 0:
                values = obs.values.copy()
                values[: max(1, values.shape[0] // 4)] = np.nan
                obs = FluxObservation(
                    time=obs.time, sniffers=obs.sniffers, values=values
                )
            batch.append(LocalizeRequest(
                request_id=f"c{c}-r{r}", client_id=f"client-{c}",
                observation=obs, candidate_count=16, seed_top_k=8,
                top_m=3, sweeps=2, seed=int(gen.integers(2**31)),
            ))
            index += 1
        work.append(batch)
    return work


def _fit_payload(result):
    return [
        (f.positions.tobytes(), f.thetas.tobytes(), float(f.objective))
        for f in result.fits
    ]


def _replies_for(scenario, work, fmap=None, **service_kwargs):
    net, sniffers, default_map = scenario
    service_kwargs.setdefault("fingerprint_map",
                              default_map if fmap is None else fmap)
    service_kwargs.setdefault("max_batch", 16)
    service_kwargs.setdefault("max_wait_s", 0.002)
    service_kwargs.setdefault("queue_capacity", 1024)
    with LocalizationService(
        net.field, net.positions[sniffers], **service_kwargs
    ) as service:
        futures = [service.submit(r) for batch in work for r in batch]
        return {
            f.result().request_id: _fit_payload(f.result().result)
            for f in futures
        }


class TestParitySweep:
    @pytest.mark.parametrize("clients", [1, 2, 4, 8, 16, 64])
    def test_adaptive_matches_per_request_dispatch(self, scenario, clients):
        work = _requests(scenario, clients, per_client=2, seed=clients,
                         dropout_every=3)
        adaptive = _replies_for(scenario, work, adaptive=True)
        oracle = _replies_for(scenario, work, max_batch=1)
        assert adaptive == oracle

    def test_adaptive_matches_fixed_window(self, scenario):
        work = _requests(scenario, clients=4, per_client=4, seed=77,
                         dropout_every=5)
        adaptive = _replies_for(scenario, work, adaptive=True)
        fixed = _replies_for(scenario, work, adaptive=False)
        assert adaptive == fixed

    def test_parity_with_sharded_map(self, scenario):
        _, _, fmap = scenario
        submaps, _cells = partition_map(fmap, 2)
        shard = submaps[0]
        work = _requests(scenario, clients=4, per_client=2, seed=88,
                         dropout_every=4)
        adaptive = _replies_for(scenario, work, fmap=shard, adaptive=True)
        fixed = _replies_for(scenario, work, fmap=shard, adaptive=False)
        oracle = _replies_for(scenario, work, fmap=shard, max_batch=1)
        assert adaptive == fixed == oracle

    def test_parity_with_slo_target(self, scenario):
        work = _requests(scenario, clients=4, per_client=2, seed=99)
        slo = _replies_for(scenario, work, adaptive=True, target_p95_s=0.05)
        oracle = _replies_for(scenario, work, max_batch=1)
        assert slo == oracle


# ----------------------------------------------------------------------
# Metrics exposure
# ----------------------------------------------------------------------
class TestMetricsExposure:
    def test_probe_sections_in_snapshot(self, scenario):
        work = _requests(scenario, clients=2, per_client=3, seed=11)
        net, sniffers, fmap = scenario
        with LocalizationService(
            net.field, net.positions[sniffers], fingerprint_map=fmap,
            max_batch=8, max_wait_s=0.002,
        ) as service:
            for batch in work:
                for request in batch:
                    service.call(request)
            snap = service.metrics.snapshot()
        cache = snap["kernel_cache"]
        assert cache["hits"] + cache["misses"] > 0
        assert 0.0 <= cache["hit_rate"] <= 1.0
        assert cache["size"] <= cache["capacity"]
        controller = snap["batch_controller"]
        assert controller["adaptive"] is True
        assert controller["bypasses"] + controller["windows"] > 0
        arena = snap["batch_arena"]
        assert arena["hits"] + arena["grows"] > 0
        pool = snap["envelope_pool"]
        # Sequential calls recycle the same envelope shell.
        assert pool["reuses"] >= 1
        assert pool["allocations"] >= 1

    def test_arena_hits_grow_across_batches(self, scenario):
        work = _requests(scenario, clients=1, per_client=6, seed=12)
        net, sniffers, fmap = scenario
        with LocalizationService(
            net.field, net.positions[sniffers], fingerprint_map=fmap,
            max_batch=8, max_wait_s=0.002,
        ) as service:
            for request in work[0]:
                service.call(request)
            arena = service.metrics.snapshot()["batch_arena"]
        # Steady-state batches hit preallocated storage; only the first
        # few batches should ever grow a buffer.
        assert arena["hits"] > 0

    def test_metrics_endpoint_serves_probes(self, scenario):
        import json
        import urllib.request

        work = _requests(scenario, clients=1, per_client=2, seed=13)
        net, sniffers, fmap = scenario
        with LocalizationService(
            net.field, net.positions[sniffers], fingerprint_map=fmap,
            max_batch=8, max_wait_s=0.002,
        ) as service:
            for request in work[0]:
                service.call(request)
            with MetricsServer(service.metrics, port=0) as endpoint:
                url = f"http://127.0.0.1:{endpoint.port}/metrics"
                payload = json.loads(urllib.request.urlopen(url).read())
        for section in ("kernel_cache", "batch_controller", "batch_arena",
                        "envelope_pool"):
            assert section in payload
        assert payload["kernel_cache"]["hits"] + \
            payload["kernel_cache"]["misses"] > 0
