"""The shared metrics module reports the exact pre-factoring numbers.

``repro.metrics`` absorbed two percentile implementations: the
benchrunner's pure-Python :func:`quantile` and the ``np.quantile``
ring buffer inside ``StreamMetrics``. These tests pin both against
verbatim copies of the pre-factoring code on fixed inputs — the
factoring must not change a single reported number — and cover the
reservoir semantics the serve layer now also relies on.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics import LatencyReservoir, quantile, quantile_labels
from repro.stream.metrics import StreamMetrics


# ----------------------------------------------------------------------
# Verbatim pre-factoring implementations (do not "fix" these).
# ----------------------------------------------------------------------
def _legacy_benchrunner_quantile(values, q):
    xs = sorted(float(v) for v in values)
    if not xs:
        raise ValueError("quantile of an empty sample")
    if len(xs) == 1:
        return xs[0]
    pos = q * (len(xs) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(xs) - 1)
    frac = pos - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


class _LegacyStreamReservoir:
    def __init__(self, latency_capacity=4096):
        self.latency_capacity = int(latency_capacity)
        self._latencies = np.empty(self.latency_capacity, dtype=float)
        self._latency_count = 0

    def record(self, latency_seconds):
        self._latencies[self._latency_count % self.latency_capacity] = float(
            latency_seconds
        )
        self._latency_count += 1

    def latency_quantiles(self):
        n = min(self._latency_count, self.latency_capacity)
        if n == 0:
            return {"p50": float("nan"), "p95": float("nan")}
        window = self._latencies[:n]
        return {
            "p50": float(np.quantile(window, 0.50)),
            "p95": float(np.quantile(window, 0.95)),
        }


def _fixed_samples(size, seed):
    return np.random.default_rng(seed).gamma(2.0, 0.01, size)


class TestQuantileRegression:
    @pytest.mark.parametrize("size", [1, 2, 3, 7, 20, 101])
    @pytest.mark.parametrize("q", [0.0, 0.25, 0.5, 0.95, 0.99, 1.0])
    def test_identical_to_legacy_benchrunner(self, size, q):
        values = list(_fixed_samples(size, seed=size))
        assert quantile(values, q) == _legacy_benchrunner_quantile(values, q)

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_benchrunner_reexports_the_shared_function(self):
        from repro.engine import benchrunner
        from repro import metrics

        assert benchrunner.quantile is metrics.quantile


class TestReservoirRegression:
    @pytest.mark.parametrize("capacity,count", [
        (8, 0), (8, 1), (8, 5), (8, 8), (8, 9), (8, 30), (4096, 1000),
    ])
    def test_identical_p50_p95(self, capacity, count):
        new = LatencyReservoir(capacity)
        old = _LegacyStreamReservoir(capacity)
        for value in _fixed_samples(count, seed=count + capacity):
            new.record(value)
            old.record(value)
        got = new.quantiles((0.50, 0.95))
        want = old.latency_quantiles()
        if count == 0:
            assert np.isnan(got["p50"]) and np.isnan(got["p95"])
            assert np.isnan(want["p50"]) and np.isnan(want["p95"])
        else:
            assert got == want  # bitwise: same np.quantile on same window

    def test_stream_metrics_identical_to_legacy(self):
        metrics = StreamMetrics(latency_capacity=16)
        old = _LegacyStreamReservoir(16)
        for value in _fixed_samples(40, seed=3):
            metrics.record_window(value)
            old.record(value)
        assert metrics.latency_quantiles() == old.latency_quantiles()

    def test_ring_retains_most_recent(self):
        reservoir = LatencyReservoir(4)
        for value in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]:
            reservoir.record(value)
        assert reservoir.count == 6
        assert reservoir.retained == 4
        assert sorted(reservoir.values()) == [3.0, 4.0, 5.0, 6.0]

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            LatencyReservoir(0)
        with pytest.raises(ConfigurationError):
            StreamMetrics(latency_capacity=0)

    def test_stream_metrics_capacity_property(self):
        assert StreamMetrics(latency_capacity=7).latency_capacity == 7


class TestQuantileLabels:
    def test_standard_labels(self):
        assert quantile_labels([0.5, 0.95, 0.99]) == ["p50", "p95", "p99"]

    def test_fractional_label(self):
        assert quantile_labels([0.999]) == ["p99.9"]

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            quantile_labels([1.5])

    def test_extra_quantiles_flow_through_reservoir(self):
        reservoir = LatencyReservoir(8)
        for value in range(1, 9):
            reservoir.record(float(value))
        out = reservoir.quantiles((0.5, 0.99))
        assert set(out) == {"p50", "p99"}
        assert out["p50"] == float(np.quantile(np.arange(1.0, 9.0), 0.5))
