"""Baseline localizer/tracker tests."""

import numpy as np
import pytest

from repro.baselines import (
    EKFTracker,
    PeakLocalizer,
    centroid_localize,
    refine_smooth_field,
)
from repro.errors import ConfigurationError
from repro.fingerprint.objective import FluxObjective
from repro.fluxmodel.discrete import DiscreteFluxModel
from repro.geometry import CircularField
from repro.traffic import simulate_flux
from repro.traffic.measurement import FluxObservation


class TestPeakLocalizer:
    def test_single_user(self, small_network):
        truth = np.array([11.0, 4.0])
        flux = simulate_flux(small_network, [truth], [2.0], rng=0)
        positions = PeakLocalizer(small_network).localize(flux, user_count=1)
        assert positions.shape == (1, 2)
        assert np.linalg.norm(positions[0] - truth) < 2.0

    def test_two_users(self, small_network):
        users = [np.array([3.0, 3.0]), np.array([12.0, 12.0])]
        flux = simulate_flux(small_network, users, [2.0, 2.0], rng=0)
        positions = PeakLocalizer(small_network).localize(flux, user_count=2)
        for truth in users:
            assert np.min(np.linalg.norm(positions - truth, axis=1)) < 2.5

    def test_pads_when_briefing_stops_early(self, small_network):
        flux = simulate_flux(small_network, [np.array([7.0, 7.0])], [2.0], rng=0)
        positions = PeakLocalizer(small_network).localize(flux, user_count=4)
        assert positions.shape == (4, 2)

    def test_bad_user_count(self, small_network):
        with pytest.raises(ConfigurationError):
            PeakLocalizer(small_network).localize(
                np.ones(small_network.node_count), user_count=0
            )


class TestCentroid:
    def test_peaked_flux_near_truth(self, small_network):
        truth = np.array([7.0, 7.0])  # central user: centroid works best here
        flux = simulate_flux(small_network, [truth], [2.0], rng=0)
        est = centroid_localize(small_network.positions, flux, power=4.0)
        assert np.linalg.norm(est - truth) < 3.0

    def test_boundary_bias(self, small_network):
        """The documented weakness: centroid biased inward for edge users."""
        truth = np.array([1.0, 1.0])
        flux = simulate_flux(small_network, [truth], [2.0], rng=0)
        est = centroid_localize(small_network.positions, flux, power=2.0)
        assert np.linalg.norm(est - truth) > 1.0  # visibly biased

    def test_zero_flux_raises(self, small_network):
        with pytest.raises(ConfigurationError):
            centroid_localize(
                small_network.positions, np.zeros(small_network.node_count)
            )

    def test_shape_checks(self):
        with pytest.raises(ConfigurationError):
            centroid_localize(np.zeros((3, 2)), np.ones(5))


class TestEKF:
    def test_stationary_convergence(self):
        ekf = EKFTracker(np.array([0.0, 0.0]), measurement_noise=0.5)
        gen = np.random.default_rng(0)
        truth = np.array([3.0, 4.0])
        for _ in range(30):
            ekf.step(1.0, truth + gen.normal(0, 0.5, 2))
        assert np.linalg.norm(ekf.position - truth) < 0.5

    def test_constant_velocity_tracking(self):
        ekf = EKFTracker(np.array([0.0, 0.0]), process_noise=0.5)
        for t in range(1, 20):
            ekf.step(1.0, np.array([float(t), 0.0]))
        assert ekf.velocity[0] == pytest.approx(1.0, abs=0.2)
        assert np.linalg.norm(ekf.position - [19.0, 0.0]) < 1.0

    def test_prediction_without_measurement(self):
        ekf = EKFTracker(np.array([0.0, 0.0]))
        for t in range(1, 10):
            ekf.step(1.0, np.array([float(t), 0.0]))
        pos_before = ekf.position.copy()
        ekf.step(1.0, None)  # coast
        assert ekf.position[0] > pos_before[0]

    def test_uncertainty_grows_while_coasting(self):
        ekf = EKFTracker(np.array([0.0, 0.0]))
        ekf.update(np.array([0.0, 0.0]))
        var_before = ekf.state.covariance[0, 0]
        ekf.predict(5.0)
        assert ekf.state.covariance[0, 0] > var_before

    def test_bad_measurement_raises(self):
        ekf = EKFTracker(np.array([0.0, 0.0]))
        with pytest.raises(ConfigurationError):
            ekf.update(np.array([np.nan, 0.0]))

    def test_bad_dt_raises(self):
        ekf = EKFTracker(np.array([0.0, 0.0]))
        with pytest.raises(ConfigurationError):
            ekf.predict(0.0)


class TestSmoothRefine:
    def test_improves_on_circular_field(self):
        field = CircularField(10.0, center=(10.0, 10.0))
        gen = np.random.default_rng(0)
        nodes = field.sample_uniform(60, gen)
        model = DiscreteFluxModel(field, nodes, d_floor=0.5)
        truth = np.array([[12.0, 9.0]])
        values = model.predict(truth, [2.0])
        obs = FluxObservation(time=0.0, sniffers=np.arange(60), values=values)
        objective = FluxObjective.from_observation(model, obs)

        start = truth + np.array([[1.5, -1.0]])
        _, obj0 = objective.evaluate(start)
        positions, thetas, obj1 = refine_smooth_field(
            objective, start, np.array([1.0])
        )
        assert obj1 < obj0
        assert np.linalg.norm(positions[0] - truth[0]) < 0.5
        assert thetas[0] == pytest.approx(2.0, rel=0.1)

    def test_shape_validation(self):
        field = CircularField(5.0)
        nodes = field.sample_uniform(10, np.random.default_rng(0))
        model = DiscreteFluxModel(field, nodes, d_floor=0.5)
        objective = FluxObjective(model=model, target=np.ones(10))
        with pytest.raises(ConfigurationError):
            refine_smooth_field(objective, np.zeros(2), np.ones(1))
        with pytest.raises(ConfigurationError):
            refine_smooth_field(objective, np.zeros((1, 2)), np.ones(2))
