"""Engine executor, batched solvers, and engine-aware call sites.

Covers the executor primitives (ordered ``map``, disjoint-span
``run_chunks``, lifecycle), the batched theta solvers' equivalence to
scipy's NNLS and to each other, and the bitwise parallel == serial
guarantee at every integration point (coordinate descent, fingerprint
map builder, stream manager).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.engine import Engine, EngineConfig
from repro.engine.executor import resolve_engine
from repro.errors import ConfigurationError
from repro.fingerprint.nls import coordinate_descent
from repro.fingerprint.objective import (
    EvalWorkspace,
    FluxObjective,
    _pinv_solve,
    solve_thetas_batched,
    solve_thetas_candidates,
)
from repro.fluxmodel.discrete import DiscreteFluxModel
from repro.fpmap import build_fingerprint_map
from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage
from repro.smc import SequentialMonteCarloTracker, TrackerConfig
from repro.stream import SessionManager, SyntheticLiveSource, TrackingSession
from repro.traffic import MeasurementModel, simulate_flux

# The solvers compare against scipy within the envelope the ridge
# regularization (1e-10 on the normal-equation diagonal) can introduce
# on ill-scaled systems.
_RIDGE_TOL = 1e-4


# ----------------------------------------------------------------------
# Config + executor primitives.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"workers": -1},
        {"chunk_size": 0},
        {"dtype": "float16"},
        {"backend": "mpi"},
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ConfigurationError):
        EngineConfig(**kwargs)


def test_config_np_dtype():
    assert EngineConfig(dtype="float32").np_dtype == np.float32
    assert EngineConfig().np_dtype == np.float64


def test_engine_rejects_config_plus_overrides():
    with pytest.raises(TypeError):
        Engine(EngineConfig(), workers=2)


def test_map_preserves_order_across_workers():
    with Engine(workers=4) as eng:
        assert eng.parallel
        got = eng.map(lambda x: x * x, range(50))
    assert got == [x * x for x in range(50)]


def test_map_serial_when_workers_zero():
    eng = Engine()
    assert not eng.parallel
    seen_threads = set()

    def fn(x):
        seen_threads.add(threading.current_thread().name)
        return x + 1

    assert eng.map(fn, [1, 2, 3]) == [2, 3, 4]
    assert seen_threads == {threading.main_thread().name}


def test_run_chunks_spans_cover_disjointly():
    with Engine(workers=3, chunk_size=7) as eng:
        out = np.zeros(50)

        def task(start, stop):
            out[start:stop] = np.arange(start, stop)

        spans = eng.run_chunks(50, task)
    assert spans[0] == (0, 7) and spans[-1] == (49, 50)
    assert sum(stop - start for start, stop in spans) == 50
    assert np.array_equal(out, np.arange(50.0))


def test_run_chunks_chunk_size_override_and_validation():
    eng = Engine(chunk_size=4096)
    spans = eng.run_chunks(10, lambda a, b: None, chunk_size=4)
    assert spans == [(0, 4), (4, 8), (8, 10)]
    with pytest.raises(ValueError):
        eng.run_chunks(10, lambda a, b: None, chunk_size=0)


def test_closed_engine_degrades_to_inline():
    eng = Engine(workers=4)
    eng.close()
    assert not eng.parallel
    assert eng.map(lambda x: -x, [1, 2]) == [-1, -2]


def test_resolve_engine_serial_default():
    eng = resolve_engine(None)
    assert eng.workers == 0 and not eng.parallel
    assert resolve_engine(eng) is eng


# ----------------------------------------------------------------------
# Batched solvers.
# ----------------------------------------------------------------------
def _random_problems(B, K, n, seed=0):
    gen = np.random.default_rng(seed)
    stacks = gen.uniform(0.0, 3.0, (B, K, n))
    # Correlated rows force negative unconstrained thetas, exercising
    # the NNLS path rather than the plain normal-equation fast path.
    stacks[B // 2 :, -1] = stacks[B // 2 :, 0] * 1.1 + gen.uniform(
        0, 0.05, (B - B // 2, n)
    )
    target = gen.uniform(0.0, 5.0, n)
    return stacks, target


@pytest.mark.parametrize("K", [1, 2, 3, 5])
def test_solve_thetas_batched_matches_scipy(K):
    from scipy.optimize import nnls

    stacks, target = _random_problems(60, K, 12, seed=K)
    thetas, objectives = solve_thetas_batched(stacks, target)
    assert np.all(thetas >= 0.0)
    for i in range(stacks.shape[0]):
        want_th, want_obj = nnls(stacks[i].T, target)
        assert objectives[i] <= want_obj + _RIDGE_TOL
        assert np.allclose(thetas[i], want_th, atol=1e-3 * (1 + want_th.max()))


def test_solve_thetas_batched_modes_agree():
    stacks, target = _random_problems(80, 3, 10, seed=9)
    th_auto, obj_auto = solve_thetas_batched(stacks, target, nnls_mode="auto")
    th_scipy, obj_scipy = solve_thetas_batched(stacks, target, nnls_mode="scipy")
    assert np.allclose(obj_auto, obj_scipy, atol=_RIDGE_TOL)
    assert np.allclose(th_auto, th_scipy, atol=1e-3)
    with pytest.raises(ConfigurationError):
        solve_thetas_batched(stacks, target, nnls_mode="newton")


def test_solve_thetas_batched_parallel_bitwise_equal_serial():
    # Above _SOLVE_PARALLEL_MIN_ROWS so the engine path actually splits.
    stacks, target = _random_problems(2500, 2, 8, seed=3)
    want_th, want_obj = solve_thetas_batched(stacks, target)
    with Engine(workers=4) as eng:
        got_th, got_obj = solve_thetas_batched(stacks, target, engine=eng)
    assert np.array_equal(want_th, got_th)
    assert np.array_equal(want_obj, got_obj)


@pytest.mark.parametrize("F", [0, 1, 3])
def test_solve_thetas_candidates_matches_batched(F):
    gen = np.random.default_rng(F)
    N, n = 120, 14
    cand = gen.uniform(0.0, 3.0, (N, n))
    fixed = gen.uniform(0.0, 3.0, (F, n)) if F else None
    target = gen.uniform(0.0, 5.0, n)
    th_fac, obj_fac = solve_thetas_candidates(cand, fixed, target)
    if F:
        stacks = np.concatenate(
            [cand[:, None, :], np.broadcast_to(fixed, (N, F, n))], axis=1
        )
    else:
        stacks = cand[:, None, :]
    th_ref, obj_ref = solve_thetas_batched(stacks, target)
    assert th_fac.shape == (N, 1 + F)
    assert np.allclose(obj_fac, obj_ref, rtol=1e-9, atol=1e-9)
    assert np.allclose(th_fac, th_ref, rtol=1e-7, atol=1e-7)


def test_solve_thetas_candidates_parallel_bitwise_equal_serial():
    gen = np.random.default_rng(11)
    N, n = 3000, 10
    cand = gen.uniform(0.0, 3.0, (N, n))
    fixed = gen.uniform(0.0, 3.0, (2, n))
    target = gen.uniform(0.0, 5.0, n)
    want_th, want_obj = solve_thetas_candidates(cand, fixed, target)
    with Engine(workers=4) as eng:
        got_th, got_obj = solve_thetas_candidates(cand, fixed, target, engine=eng)
    assert np.array_equal(want_th, got_th)
    assert np.array_equal(want_obj, got_obj)


def test_pinv_solve_batched_matches_per_row():
    gen = np.random.default_rng(5)
    A = gen.normal(size=(20, 3, 3))
    A[7] = 0.0  # singular row exercises the pseudo-inverse
    b = gen.normal(size=(20, 3))
    got = _pinv_solve(A, b)
    for i in range(20):
        want = np.linalg.pinv(A[i]) @ b[i]
        assert np.allclose(got[i], want, atol=1e-10)


# ----------------------------------------------------------------------
# Integration points: bitwise parallel == serial.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def deployment():
    net = build_network(
        field=RectangularField(12, 12), node_count=144, radius=2.0, rng=77
    )
    sniffers = sample_sniffers_percentage(net, 20, rng=1)
    return net, sniffers


def _objective(net, sniffers, users, seed=42, weighting="absolute"):
    gen = np.random.default_rng(seed)
    truth = net.field.sample_uniform(users, gen)
    flux = simulate_flux(net, list(truth), [2.0] * users, rng=gen)
    obs = MeasurementModel(net, sniffers, smooth=True, rng=gen).observe(flux)
    model = DiscreteFluxModel(net.field, net.positions[sniffers])
    return FluxObjective.from_observation(model, obs, weighting=weighting)


def test_evaluate_batch_single_user_uses_workspace_buffer(deployment):
    net, sniffers = deployment
    objective = _objective(net, sniffers, 1, weighting="relative")
    gen = np.random.default_rng(0)
    cand = objective.model.geometry_kernels(net.field.sample_uniform(50, gen))
    ws = EvalWorkspace()
    th1, obj1 = objective.evaluate_batch(cand, workspace=ws)
    weighted_buf = ws._buffers.get("cand")
    assert weighted_buf is not None  # weighting routed through the pool
    th2, obj2 = objective.evaluate_batch(cand, workspace=ws)
    assert ws._buffers["cand"] is weighted_buf  # reused, not reallocated
    assert np.array_equal(th1, th2) and np.array_equal(obj1, obj2)
    th3, obj3 = objective.evaluate_batch(cand)  # no workspace
    assert np.array_equal(th1, th3) and np.array_equal(obj1, obj3)


def test_coordinate_descent_parallel_bitwise_equal_serial(deployment):
    net, sniffers = deployment
    objective = _objective(net, sniffers, 3)
    gen = np.random.default_rng(8)
    pools = [net.field.sample_uniform(150, gen) for _ in range(3)]
    serial = coordinate_descent(
        objective, pools, rng=np.random.default_rng(1), sweeps=2
    )
    with Engine(workers=4) as eng:
        parallel = coordinate_descent(
            objective, pools, rng=np.random.default_rng(1), sweeps=2, engine=eng
        )
    assert np.array_equal(serial.best_indices, parallel.best_indices)
    assert np.array_equal(serial.best_thetas, parallel.best_thetas)
    assert serial.best_objective == parallel.best_objective
    for a, b in zip(serial.per_user_objectives, parallel.per_user_objectives):
        assert np.array_equal(a, b)


def test_fingerprint_map_builder_bitwise_equal_with_engine(deployment):
    net, sniffers = deployment
    positions = net.positions[sniffers]
    serial = build_fingerprint_map(net.field, positions, resolution=1.0)
    with Engine(workers=4) as eng:
        parallel = build_fingerprint_map(
            net.field, positions, resolution=1.0, block_size=16, engine=eng
        )
    assert np.array_equal(serial.signatures, parallel.signatures)
    assert np.array_equal(serial.cell_positions, parallel.cell_positions)


def test_smc_tracker_accepts_engine_bitwise(deployment):
    net, sniffers = deployment
    cfg = TrackerConfig(prediction_count=60, keep_count=5)
    observations = list(
        SyntheticLiveSource(net, sniffers, user_count=1, rounds=2, rng=3)
    )

    def run(engine):
        tracker = SequentialMonteCarloTracker(
            net.field, net.positions[sniffers], user_count=1, config=cfg,
            rng=5, engine=engine,
        )
        return [tracker.step(obs) for obs in observations]

    serial = run(None)
    with Engine(workers=4) as eng:
        parallel = run(eng)
    for a, b in zip(serial, parallel):
        assert np.array_equal(a.estimates, b.estimates)


def test_session_manager_engine_drain(deployment):
    net, sniffers = deployment
    cfg = TrackerConfig(prediction_count=60, keep_count=5)
    observations = list(
        SyntheticLiveSource(net, sniffers, user_count=1, rounds=2, rng=9)
    )

    def run(**kwargs):
        manager = SessionManager(queue_size=32, **kwargs)
        for index in range(3):
            tracker = SequentialMonteCarloTracker(
                net.field, net.positions[sniffers], user_count=1, config=cfg,
                rng=200 + index,
            )
            manager.add_session(TrackingSession(f"s{index}", tracker))
        for obs in observations:
            for sid in manager.session_ids:
                manager.submit(sid, obs)
        processed = manager.drain()
        estimates = {
            sid: manager.session(sid).last_step.estimates.copy()
            for sid in manager.session_ids
        }
        return processed, estimates

    want_processed, want = run()
    with Engine(workers=2) as eng:
        got_processed, got = run(engine=eng)
    assert want_processed == got_processed == 3 * len(observations)
    for sid in want:
        assert np.array_equal(want[sid], got[sid])
