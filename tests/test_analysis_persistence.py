"""Privacy analysis and npz persistence tests."""

import numpy as np
import pytest

from repro.analysis import exposure_timeline, localization_privacy
from repro.errors import ConfigurationError
from repro.geometry import CircularField, PolygonField, RectangularField
from repro.traffic.measurement import FluxObservation
from repro.util.persistence import (
    load_network,
    load_observations,
    save_network,
    save_observations,
)


class TestLocalizationPrivacy:
    def _field(self):
        return RectangularField(30, 30)

    def test_pinning_probabilities(self):
        errors = np.array([0.5, 1.5, 2.5, 10.0])
        report = localization_privacy(errors, self._field(), radii=(1.0, 3.0))
        assert report.pinning[1.0] == 0.25
        assert report.pinning[3.0] == 0.75

    def test_anonymity_radius_quantile(self):
        errors = np.linspace(0.0, 10.0, 101)
        report = localization_privacy(errors, self._field(), confidence=0.9)
        assert report.anonymity_radius == pytest.approx(9.0, abs=0.2)

    def test_privacy_loss_bounds(self):
        tight = localization_privacy(
            np.full(20, 0.5), self._field(), confidence=0.9
        )
        loose = localization_privacy(
            np.full(20, 25.0), self._field(), confidence=0.9
        )
        assert tight.privacy_loss > 0.99
        assert loose.privacy_loss == 0.0  # clipped: area exceeds field

    def test_summary_text(self):
        report = localization_privacy(np.array([1.0, 2.0]), self._field())
        text = report.summary()
        assert "privacy loss" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            localization_privacy(np.array([]), self._field())
        with pytest.raises(ConfigurationError):
            localization_privacy(np.array([-1.0]), self._field())
        with pytest.raises(ConfigurationError):
            localization_privacy(
                np.array([1.0]), self._field(), confidence=1.0
            )
        with pytest.raises(ConfigurationError):
            localization_privacy(np.array([1.0]), self._field(), radii=())


class TestExposureTimeline:
    def test_fully_exposed(self):
        errors = np.full((10, 2), 1.0)
        out = exposure_timeline(errors, exposure_radius=3.0)
        assert out["exposed_fraction"] == 1.0
        assert out["fully_exposed_users"] == 1.0
        assert out["mean_exposed_streak"] == 10.0

    def test_never_exposed(self):
        errors = np.full((10, 2), 9.0)
        out = exposure_timeline(errors, exposure_radius=3.0)
        assert out["exposed_fraction"] == 0.0
        assert out["mean_exposed_streak"] == 0.0

    def test_streaks_counted(self):
        errors = np.array([[1.0], [1.0], [9.0], [1.0]])
        out = exposure_timeline(errors, exposure_radius=3.0)
        assert out["mean_exposed_streak"] == pytest.approx(1.5)

    def test_burn_in_excluded(self):
        errors = np.vstack([np.full((5, 1), 9.0), np.full((5, 1), 1.0)])
        out = exposure_timeline(errors, exposure_radius=3.0, burn_in=5)
        assert out["exposed_fraction"] == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            exposure_timeline(np.zeros((0, 2)))
        with pytest.raises(ConfigurationError):
            exposure_timeline(np.zeros((3, 2)), burn_in=3)


class TestNetworkPersistence:
    def test_rectangular_roundtrip(self, small_network, tmp_path):
        path = save_network(small_network, tmp_path / "net.npz")
        loaded = load_network(path)
        np.testing.assert_allclose(loaded.positions, small_network.positions)
        assert loaded.radius == small_network.radius
        assert loaded.field.bounding_box == small_network.field.bounding_box
        assert loaded.graph.edge_count == small_network.graph.edge_count

    def test_circular_roundtrip(self, tmp_path):
        from repro.network import build_network

        field = CircularField(8.0, center=(10.0, 10.0))
        net = build_network(
            field=field, node_count=150, radius=2.2,
            deployment="uniform_random", rng=1,
        )
        loaded = load_network(save_network(net, tmp_path / "c.npz"))
        assert isinstance(loaded.field, CircularField)
        assert loaded.field.radius == 8.0

    def test_polygon_rejected(self, tmp_path):
        from repro.network import Network
        from repro.network.graph import UnitDiskGraph

        field = PolygonField([(0, 0), (10, 0), (0, 10)])
        positions = field.sample_uniform(30, np.random.default_rng(0))
        net = Network(
            field=field,
            positions=positions,
            graph=UnitDiskGraph(positions, 3.0),
        )
        with pytest.raises(ConfigurationError):
            save_network(net, tmp_path / "p.npz")


class TestObservationPersistence:
    def _observations(self, n=3):
        sniffers = np.arange(5)
        return [
            FluxObservation(
                time=float(t),
                sniffers=sniffers,
                values=np.arange(5, dtype=float) + t,
            )
            for t in range(n)
        ]

    def test_roundtrip(self, tmp_path):
        obs = self._observations()
        loaded = load_observations(
            save_observations(obs, tmp_path / "obs.npz")
        )
        assert len(loaded) == 3
        for a, b in zip(obs, loaded):
            assert a.time == b.time
            np.testing.assert_allclose(a.values, b.values)
            np.testing.assert_array_equal(a.sniffers, b.sniffers)

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_observations([], tmp_path / "x.npz")

    def test_mismatched_sniffers_rejected(self, tmp_path):
        a = FluxObservation(time=0.0, sniffers=np.arange(3), values=np.ones(3))
        b = FluxObservation(
            time=1.0, sniffers=np.arange(1, 4), values=np.ones(3)
        )
        with pytest.raises(ConfigurationError):
            save_observations([a, b], tmp_path / "x.npz")

    def test_nan_values_survive(self, tmp_path):
        sniffers = np.arange(3)
        obs = [
            FluxObservation(
                time=0.0, sniffers=sniffers,
                values=np.array([1.0, np.nan, 3.0]),
            )
        ]
        loaded = load_observations(save_observations(obs, tmp_path / "n.npz"))
        assert np.isnan(loaded[0].values[1])

    def test_raw_values_roundtrip(self, tmp_path):
        """Smoothed/noisy observations keep their pre-noise readings."""
        sniffers = np.arange(3)
        obs = [
            FluxObservation(
                time=float(t),
                sniffers=sniffers,
                values=np.array([1.0, 2.0, 3.0]) * (t + 1),
                raw_values=np.array([1.5, 2.5, 3.5]) * (t + 1),
            )
            for t in range(3)
        ]
        loaded = load_observations(save_observations(obs, tmp_path / "r.npz"))
        for a, b in zip(obs, loaded):
            np.testing.assert_allclose(a.raw_values, b.raw_values)

    def test_without_raw_values_loads_none(self, tmp_path):
        obs = self._observations()
        loaded = load_observations(save_observations(obs, tmp_path / "p.npz"))
        assert all(o.raw_values is None for o in loaded)

    def test_mixed_raw_values_rejected(self, tmp_path):
        sniffers = np.arange(3)
        a = FluxObservation(
            time=0.0, sniffers=sniffers, values=np.ones(3),
            raw_values=np.ones(3),
        )
        b = FluxObservation(time=1.0, sniffers=sniffers, values=np.ones(3))
        with pytest.raises(ConfigurationError):
            save_observations([a, b], tmp_path / "m.npz")

    def test_measurement_model_populates_raw_values(self, small_network):
        from repro.network import sample_sniffers_percentage
        from repro.traffic.measurement import GaussianNoise, MeasurementModel

        sniffers = sample_sniffers_percentage(small_network, 20, rng=1)
        flux = np.abs(np.random.default_rng(0).normal(
            5.0, 1.0, small_network.node_count
        ))
        exact = MeasurementModel(small_network, sniffers).observe(flux)
        assert exact.raw_values is None  # the paper's exact-count setting
        noisy = MeasurementModel(
            small_network, sniffers, noise=GaussianNoise(0.2), rng=2
        ).observe(flux)
        np.testing.assert_allclose(noisy.raw_values, flux[sniffers])
        smoothed = MeasurementModel(
            small_network, sniffers, smooth=True, rng=2
        ).observe(flux)
        np.testing.assert_allclose(smoothed.raw_values, flux[sniffers])


class TestMissingKeys:
    def test_observations_missing_keys(self, tmp_path):
        path = tmp_path / "broken.npz"
        np.savez_compressed(path, times=np.arange(3.0))
        with pytest.raises(ConfigurationError, match="missing expected keys"):
            load_observations(path)

    def test_network_missing_keys(self, tmp_path):
        path = tmp_path / "broken.npz"
        np.savez_compressed(path, positions=np.zeros((3, 2)))
        with pytest.raises(ConfigurationError, match="missing expected keys"):
            load_network(path)

    def test_message_names_the_file_and_keys(self, tmp_path):
        path = tmp_path / "broken.npz"
        np.savez_compressed(path, sniffers=np.arange(3))
        with pytest.raises(ConfigurationError) as excinfo:
            load_observations(path)
        message = str(excinfo.value)
        assert "broken.npz" in message
        assert "times" in message and "values" in message
