"""SessionManager: multiplexing, backpressure policies, thread fan-out."""

import numpy as np
import pytest

from repro.errors import BackpressureTimeout, ConfigurationError, StreamError
from repro.network import sample_sniffers_percentage
from repro.smc import SequentialMonteCarloTracker, TrackerConfig
from repro.stream import SessionManager, SyntheticLiveSource, TrackingSession

_CFG = TrackerConfig(prediction_count=100, keep_count=8)


@pytest.fixture()
def fleet(small_network):
    """Three independent sessions plus a shared observation list."""
    sniffers = sample_sniffers_percentage(small_network, 20, rng=1)
    observations = list(
        SyntheticLiveSource(
            small_network, sniffers, user_count=1, rounds=5, rng=2
        )
    )

    def make_session(session_id, seed=11):
        tracker = SequentialMonteCarloTracker(
            small_network.field,
            small_network.positions[sniffers],
            user_count=1,
            config=_CFG,
            rng=seed,
        )
        return TrackingSession(session_id, tracker)

    return observations, make_session


class TestRegistration:
    def test_add_and_lookup(self, fleet):
        _, make_session = fleet
        manager = SessionManager()
        session = manager.add_session(make_session("a"))
        assert manager.session("a") is session
        assert manager.session_ids == ["a"]

    def test_duplicate_id_rejected(self, fleet):
        _, make_session = fleet
        manager = SessionManager()
        manager.add_session(make_session("a"))
        with pytest.raises(ConfigurationError):
            manager.add_session(make_session("a"))

    def test_unknown_session_rejected(self, fleet):
        observations, _ = fleet
        manager = SessionManager()
        with pytest.raises(ConfigurationError):
            manager.submit("ghost", observations[0])
        with pytest.raises(ConfigurationError):
            manager.session("ghost")
        with pytest.raises(ConfigurationError):
            manager.remove_session("ghost")

    def test_remove_discards_queue(self, fleet):
        observations, make_session = fleet
        manager = SessionManager()
        manager.add_session(make_session("a"))
        manager.submit("a", observations[0])
        manager.remove_session("a")
        assert manager.queued() == 0
        assert manager.session_ids == []


class TestProcessing:
    def test_multiplexes_sessions(self, fleet):
        observations, make_session = fleet
        manager = SessionManager()
        for sid in ("a", "b", "c"):
            manager.add_session(make_session(sid))
        for obs in observations:
            for sid in ("a", "b", "c"):
                manager.submit(sid, obs)
        processed = manager.drain()
        assert processed == 3 * len(observations)
        for sid in ("a", "b", "c"):
            assert (
                manager.session(sid).metrics.windows_processed
                == len(observations)
            )

    def test_threaded_drain_matches_serial(self, fleet):
        observations, make_session = fleet
        serial = SessionManager(workers=0)
        threaded = SessionManager(workers=4)
        for manager in (serial, threaded):
            for sid in ("a", "b", "c"):
                manager.add_session(make_session(sid, seed=23))
            for obs in observations:
                for sid in ("a", "b", "c"):
                    manager.submit(sid, obs)
            manager.drain()
        for sid in ("a", "b", "c"):
            np.testing.assert_array_equal(
                serial.session(sid).estimates(),
                threaded.session(sid).estimates(),
            )

    def test_fleet_summary(self, fleet):
        observations, make_session = fleet
        manager = SessionManager(workers=2)
        manager.add_session(make_session("a"))
        manager.add_session(make_session("b"))
        for obs in observations[:2]:
            manager.submit("a", obs)
            manager.submit("b", obs)
        manager.drain()
        summary = manager.fleet_summary()
        assert summary["sessions"] == 2
        assert summary["windows_processed"] == 4
        assert set(summary["per_session"]) == {"a", "b"}


class TestBackpressure:
    def test_drop_oldest_sheds_and_counts(self, fleet):
        observations, make_session = fleet
        manager = SessionManager(queue_size=2, policy="drop_oldest")
        manager.add_session(make_session("a"))
        assert manager.submit("a", observations[0])
        assert manager.submit("a", observations[1])
        assert not manager.submit("a", observations[2])  # sheds obs[0]
        assert manager.queued() == 2
        manager.drain()
        session = manager.session("a")
        assert session.metrics.windows_dropped == 1
        assert session.metrics.windows_processed == 2
        # the oldest window was the one shed
        assert session.last_time == observations[2].time

    def test_block_policy_loses_nothing(self, fleet):
        observations, make_session = fleet
        manager = SessionManager(queue_size=2, policy="block")
        manager.add_session(make_session("a"))
        for obs in observations:
            assert manager.submit("a", obs)
        manager.drain()
        session = manager.session("a")
        assert session.metrics.windows_dropped == 0
        assert session.metrics.windows_processed == len(observations)

    def test_closed_manager_refuses_submissions(self, fleet):
        observations, make_session = fleet
        manager = SessionManager()
        manager.add_session(make_session("a"))
        manager.submit("a", observations[0])
        assert manager.close() == 1
        with pytest.raises(StreamError):
            manager.submit("a", observations[1])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SessionManager(queue_size=0)
        with pytest.raises(ConfigurationError):
            SessionManager(policy="spill")
        with pytest.raises(ConfigurationError):
            SessionManager(workers=-1)
        with pytest.raises(ConfigurationError):
            SessionManager(policy="block", block_timeout=0.0)

    def test_block_timeout_raises_typed_error(self, fleet):
        observations, make_session = fleet
        manager = SessionManager(
            queue_size=1, policy="block", block_timeout=0.05
        )
        manager.add_session(make_session("a"))
        # Freeze the consumer: drain() makes no progress, so the full
        # queue can never make room and the block must time out.
        manager.drain = lambda: 0
        assert manager.submit("a", observations[0])
        with pytest.raises(BackpressureTimeout):
            manager.submit("a", observations[1])
        # The refused window was not enqueued.
        assert manager.queued() == 1

    def test_submit_timeout_overrides_manager_default(self, fleet):
        observations, make_session = fleet
        manager = SessionManager(queue_size=1, policy="block")
        manager.add_session(make_session("a"))
        manager.drain = lambda: 0
        manager.submit("a", observations[0])
        with pytest.raises(BackpressureTimeout):
            manager.submit("a", observations[1], timeout=0.05)

    def test_block_timeout_is_a_stream_error(self):
        # Producers already catching StreamError keep working.
        assert issubclass(BackpressureTimeout, StreamError)

    def test_block_with_timeout_still_admits_when_draining(self, fleet):
        observations, make_session = fleet
        manager = SessionManager(
            queue_size=2, policy="block", block_timeout=5.0
        )
        manager.add_session(make_session("a"))
        for obs in observations:
            assert manager.submit("a", obs)
        manager.drain()
        session = manager.session("a")
        assert session.metrics.windows_dropped == 0
        assert session.metrics.windows_processed == len(observations)
