"""Boundary-distance queries and spatial hash grid tests."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import (
    RectangularField,
    SpatialHashGrid,
    boundary_distances,
    distances_to_point,
    pairwise_boundary_distances,
    pairwise_distances,
)


class TestBoundaryDistances:
    def test_l_at_least_d_for_interior_nodes(self):
        field = RectangularField(10, 10)
        gen = np.random.default_rng(0)
        sink = np.array([4.0, 6.0])
        nodes = field.sample_uniform(100, gen)
        l = boundary_distances(field, sink, nodes)
        d = distances_to_point(nodes, sink)
        assert np.all(l >= d - 1e-9)

    def test_axis_aligned_case(self):
        field = RectangularField(10, 10)
        sink = np.array([2.0, 5.0])
        nodes = np.array([[6.0, 5.0]])  # due east; boundary at x=10
        l = boundary_distances(field, sink, nodes)
        assert l[0] == pytest.approx(8.0)

    def test_degenerate_node_at_sink(self):
        field = RectangularField(10, 10)
        sink = np.array([2.0, 5.0])
        nodes = np.array([[2.0, 5.0]])
        l = boundary_distances(field, sink, nodes, degenerate_direction=(1, 0))
        assert l[0] == pytest.approx(8.0)  # falls back to +x direction

    def test_bad_node_shape_raises(self):
        field = RectangularField(10, 10)
        with pytest.raises(GeometryError):
            boundary_distances(field, np.zeros(2) + 5, np.zeros((3, 3)))

    def test_pairwise_shape(self):
        field = RectangularField(10, 10)
        sinks = np.array([[2.0, 2.0], [5.0, 5.0], [8.0, 3.0]])
        nodes = field.sample_uniform(7, np.random.default_rng(1))
        out = pairwise_boundary_distances(field, sinks, nodes)
        assert out.shape == (3, 7)

    def test_pairwise_rows_match_single(self):
        field = RectangularField(10, 10)
        sinks = np.array([[2.0, 2.0], [5.0, 5.0]])
        nodes = field.sample_uniform(5, np.random.default_rng(1))
        out = pairwise_boundary_distances(field, sinks, nodes)
        for j in range(2):
            np.testing.assert_allclose(
                out[j], boundary_distances(field, sinks[j], nodes)
            )


class TestDistances:
    def test_distances_to_point(self):
        d = distances_to_point(np.array([[3.0, 4.0], [0.0, 0.0]]), np.zeros(2))
        np.testing.assert_allclose(d, [5.0, 0.0])

    def test_pairwise_distances(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 3.0]])
        d = pairwise_distances(a, b)
        np.testing.assert_allclose(d, [[3.0], [np.sqrt(10)]])

    def test_bad_shape_raises(self):
        with pytest.raises(GeometryError):
            distances_to_point(np.zeros((2, 3)), np.zeros(2))


class TestSpatialHashGrid:
    def test_query_radius_matches_bruteforce(self):
        gen = np.random.default_rng(3)
        pts = gen.uniform(0, 20, size=(300, 2))
        grid = SpatialHashGrid(pts, cell_size=2.0)
        center = np.array([10.0, 10.0])
        for radius in (0.5, 2.0, 5.0):
            got = set(grid.query_radius(center, radius).tolist())
            want = set(
                np.flatnonzero(
                    np.hypot(pts[:, 0] - 10, pts[:, 1] - 10) <= radius
                ).tolist()
            )
            assert got == want

    def test_query_radius_empty(self):
        grid = SpatialHashGrid(np.array([[0.0, 0.0]]), cell_size=1.0)
        assert grid.query_radius(np.array([50.0, 50.0]), 1.0).size == 0

    def test_all_pairs_within_matches_bruteforce(self):
        gen = np.random.default_rng(4)
        pts = gen.uniform(0, 10, size=(80, 2))
        grid = SpatialHashGrid(pts, cell_size=1.5)
        rows, cols = grid.all_pairs_within(1.5)
        got = set(zip(rows.tolist(), cols.tolist()))
        want = set()
        for i in range(80):
            for j in range(i + 1, 80):
                if np.hypot(*(pts[i] - pts[j])) <= 1.5:
                    want.add((i, j))
        assert got == want

    def test_all_pairs_i_less_than_j(self):
        gen = np.random.default_rng(5)
        pts = gen.uniform(0, 5, size=(40, 2))
        rows, cols = SpatialHashGrid(pts, cell_size=1.0).all_pairs_within(1.0)
        assert np.all(rows < cols)

    def test_negative_coordinates(self):
        pts = np.array([[-1.5, -1.5], [-1.0, -1.0], [5.0, 5.0]])
        grid = SpatialHashGrid(pts, cell_size=1.0)
        got = grid.query_radius(np.array([-1.2, -1.2]), 1.0)
        assert set(got.tolist()) == {0, 1}

    def test_len(self):
        assert len(SpatialHashGrid(np.zeros((4, 2)), 1.0)) == 4

    def test_bad_shape_raises(self):
        with pytest.raises(GeometryError):
            SpatialHashGrid(np.zeros((4, 3)), 1.0)
