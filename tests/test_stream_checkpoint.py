"""Checkpoint/resume: bitwise determinism and archive robustness."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network import sample_sniffers_percentage
from repro.smc import SequentialMonteCarloTracker, TrackerConfig
from repro.stream import (
    ReplaySource,
    SyntheticLiveSource,
    TrackingSession,
    load_checkpoint,
    run_stream,
    save_checkpoint,
)

_CFG = TrackerConfig(prediction_count=140, keep_count=9, max_speed=5.0)


@pytest.fixture()
def scenario(small_network):
    sniffers = sample_sniffers_percentage(small_network, 20, rng=1)
    observations = list(
        SyntheticLiveSource(
            small_network, sniffers, user_count=2, rounds=8, rng=2
        )
    )

    def make_session():
        tracker = SequentialMonteCarloTracker(
            small_network.field,
            small_network.positions[sniffers],
            user_count=2,
            config=_CFG,
            rng=41,
        )
        return TrackingSession("ckpt", tracker)

    return observations, make_session


class TestKillResumeDeterminism:
    @pytest.mark.parametrize("kill_at", [1, 3, 6])
    def test_resumed_run_is_bitwise_identical(
        self, scenario, tmp_path, kill_at
    ):
        """Same seed + same stream, killed at an arbitrary window, then
        resumed, must produce bitwise-identical final estimates."""
        observations, make_session = scenario
        path = tmp_path / "run.ckpt.npz"

        uninterrupted = make_session()
        run_stream(ReplaySource(observations), uninterrupted)

        killed = make_session()
        run_stream(
            ReplaySource(observations),
            killed,
            checkpoint_path=path,
            max_windows=kill_at,
        )
        assert killed.windows_consumed == kill_at

        resumed = load_checkpoint(path)
        run_stream(ReplaySource(observations), resumed, checkpoint_path=path)

        assert resumed.windows_consumed == len(observations)
        np.testing.assert_array_equal(
            resumed.estimates(), uninterrupted.estimates()
        )
        for restored, original in zip(
            resumed.tracker.samples, uninterrupted.tracker.samples
        ):
            np.testing.assert_array_equal(
                restored.positions, original.positions
            )
            np.testing.assert_array_equal(restored.weights, original.weights)
            assert restored.t_last == original.t_last

    def test_rng_stream_position_restored(self, scenario, tmp_path):
        observations, make_session = scenario
        session = make_session()
        run_stream(ReplaySource(observations), session, max_windows=3)
        path = save_checkpoint(session, tmp_path / "c.npz")
        resumed = load_checkpoint(path)
        np.testing.assert_array_equal(
            resumed.tracker._rng.integers(0, 2**31, 8),
            session.tracker._rng.integers(0, 2**31, 8),
        )


class TestCheckpointContents:
    def test_counters_roundtrip(self, scenario, tmp_path):
        observations, make_session = scenario
        session = make_session()
        session.process(observations[0])
        session.process("garbage")  # one skip
        session.metrics.record_drop(3)
        path = save_checkpoint(session, tmp_path / "c.npz")
        resumed = load_checkpoint(path)
        assert resumed.session_id == "ckpt"
        assert resumed.windows_consumed == 2
        assert resumed.last_time == observations[0].time
        assert resumed.metrics.windows_processed == 1
        assert resumed.metrics.windows_skipped["bad_type"] == 1
        assert resumed.metrics.windows_dropped == 3

    def test_config_roundtrip(self, scenario, tmp_path):
        observations, make_session = scenario
        session = make_session()
        session.process(observations[0])
        resumed = load_checkpoint(save_checkpoint(session, tmp_path / "c.npz"))
        assert resumed.tracker.config == _CFG

    def test_fresh_session_checkpointable(self, scenario, tmp_path):
        _, make_session = scenario
        session = make_session()
        resumed = load_checkpoint(save_checkpoint(session, tmp_path / "c.npz"))
        assert resumed.windows_consumed == 0
        assert resumed.last_time is None

    def test_truth_reattached_on_load(self, scenario, tmp_path):
        observations, make_session = scenario
        session = make_session()
        session.process(observations[0])
        path = save_checkpoint(session, tmp_path / "c.npz")
        calls = []

        def truth(time):
            calls.append(time)
            return None

        resumed = load_checkpoint(path, truth=truth)
        resumed.process(observations[1])
        assert calls  # provider consulted


class TestArchiveRobustness:
    def test_missing_keys_raise_configuration_error(
        self, scenario, tmp_path
    ):
        path = tmp_path / "broken.npz"
        np.savez_compressed(path, format=np.array([1]))
        with pytest.raises(ConfigurationError, match="missing expected keys"):
            load_checkpoint(path)

    def test_foreign_npz_rejected(self, scenario, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez_compressed(path, stuff=np.arange(3))
        with pytest.raises(ConfigurationError):
            load_checkpoint(path)

    def test_future_format_rejected(self, scenario, tmp_path):
        observations, make_session = scenario
        session = make_session()
        path = save_checkpoint(session, tmp_path / "c.npz")
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["format"] = np.array([999])
        np.savez_compressed(path, **arrays)
        with pytest.raises(ConfigurationError, match="format"):
            load_checkpoint(path)

    def test_no_tmp_file_left_behind(self, scenario, tmp_path):
        _, make_session = scenario
        save_checkpoint(make_session(), tmp_path / "c.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["c.npz"]
