"""User-count estimation tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fingerprint import NLSLocalizer
from repro.fingerprint.usercount import UserCountEstimate, estimate_user_count
from repro.network import sample_sniffers_percentage
from repro.traffic import MeasurementModel, simulate_flux
from repro.traffic.measurement import FluxObservation


def _setup(network, true_count, seed):
    gen = np.random.default_rng(seed)
    truth = network.field.sample_uniform(true_count, gen)
    # Keep users apart so the counting task is well-posed.
    for _ in range(40):
        d = np.linalg.norm(truth[:, None, :] - truth[None, :, :], axis=2)
        np.fill_diagonal(d, np.inf)
        if true_count == 1 or d.min() > network.field.diameter / 4:
            break
        truth = network.field.sample_uniform(true_count, gen)
    stretches = gen.uniform(1.5, 3.0, true_count)
    flux = simulate_flux(network, list(truth), list(stretches), rng=gen)
    sniffers = sample_sniffers_percentage(network, 20, rng=gen)
    obs = MeasurementModel(network, sniffers, smooth=True, rng=gen).observe(flux)
    loc = NLSLocalizer(network.field, network.positions[sniffers])
    return truth, obs, loc


class TestEstimateUserCount:
    @pytest.mark.parametrize("true_count", [1, 2])
    def test_count_close_to_truth(self, paper_network, true_count):
        hits = 0
        for seed in (1, 2, 3):
            truth, obs, loc = _setup(paper_network, true_count, seed)
            est = estimate_user_count(
                loc, obs, max_users=4, candidate_count=1200, rng=seed
            )
            if abs(est.count - true_count) <= 1:
                hits += 1
        assert hits >= 2  # within +-1 on most runs

    def test_zero_flux_counts_zero(self, small_network):
        sniffers = np.arange(40)
        obs = FluxObservation(
            time=0.0, sniffers=sniffers, values=np.zeros(40)
        )
        loc = NLSLocalizer(
            small_network.field, small_network.positions[sniffers]
        )
        est = estimate_user_count(
            loc, obs, max_users=3, candidate_count=200, rng=0
        )
        assert est.count == 0
        assert est.positions.shape == (0, 2)

    def test_positions_near_truth_single_user(self, paper_network):
        truth, obs, loc = _setup(paper_network, 1, 9)
        est = estimate_user_count(
            loc, obs, max_users=4, candidate_count=1500, rng=9
        )
        assert est.count >= 1
        best = min(
            np.linalg.norm(p - truth[0]) for p in est.positions
        )
        assert best < 4.0

    def test_thetas_positive_for_survivors(self, paper_network):
        truth, obs, loc = _setup(paper_network, 2, 4)
        est = estimate_user_count(
            loc, obs, max_users=4, candidate_count=1000, rng=4
        )
        assert np.all(est.thetas > 0)

    def test_max_users_validated(self, small_network):
        sniffers = np.arange(30)
        obs = FluxObservation(
            time=0.0, sniffers=sniffers, values=np.ones(30)
        )
        loc = NLSLocalizer(
            small_network.field, small_network.positions[sniffers]
        )
        with pytest.raises(ConfigurationError):
            estimate_user_count(loc, obs, max_users=0)


class TestClusterMerging:
    def test_merge_close_slots(self):
        from repro.fingerprint.usercount import _merge_clusters

        positions = np.array([[1.0, 1.0], [1.5, 1.0], [10.0, 10.0]])
        thetas = np.array([1.0, 3.0, 2.0])
        merged_pos, merged_theta = _merge_clusters(positions, thetas, 2.0)
        assert merged_pos.shape == (2, 2)
        # Theta-weighted center of the merged pair.
        pair = merged_pos[np.argmin(merged_pos[:, 0])]
        np.testing.assert_allclose(pair, [1.375, 1.0])
        assert sorted(merged_theta.tolist()) == [2.0, 4.0]

    def test_chained_merging_single_linkage(self):
        from repro.fingerprint.usercount import _merge_clusters

        # a-b close, b-c close, a-c far: single linkage merges all three.
        positions = np.array([[0.0, 0.0], [1.5, 0.0], [3.0, 0.0]])
        thetas = np.ones(3)
        merged_pos, _ = _merge_clusters(positions, thetas, 2.0)
        assert merged_pos.shape == (1, 2)

    def test_no_merging_when_far(self):
        from repro.fingerprint.usercount import _merge_clusters

        positions = np.array([[0.0, 0.0], [20.0, 20.0]])
        merged_pos, merged_theta = _merge_clusters(
            positions, np.array([1.0, 2.0]), 3.0
        )
        assert merged_pos.shape == (2, 2)
        assert merged_theta.shape == (2,)

    def test_custom_merge_radius(self, paper_network):
        from repro.fingerprint.usercount import estimate_user_count

        truth, obs, loc = _setup(paper_network, 1, 11)
        tiny = estimate_user_count(
            loc, obs, max_users=4, candidate_count=800,
            merge_radius=0.01, rng=11,
        )
        broad = estimate_user_count(
            loc, obs, max_users=4, candidate_count=800,
            merge_radius=10.0, rng=11,
        )
        assert broad.count <= tiny.count
