"""Ablation runner unit tests (small repetitions; shape checks)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.ablations import (
    run_ablation_aggregation,
    run_ablation_d_floor,
    run_ablation_kernel,
    run_ablation_routing,
    run_ablation_smoothing,
    run_ablation_weighting,
    run_robustness_holes,
    single_user_attack_error,
)
from repro.traffic import simulate_flux


class TestAttackPrimitive:
    def test_returns_error(self, paper_network):
        gen = np.random.default_rng(0)
        truth = paper_network.field.sample_uniform(1, gen)[0]
        flux = simulate_flux(paper_network, [truth], [2.0], rng=gen)
        err = single_user_attack_error(
            paper_network, flux, truth, np.random.default_rng(1),
            candidate_count=800,
        )
        assert 0 <= err < paper_network.field.diameter

    def test_custom_model_restricted(self, paper_network):
        from repro.fluxmodel.discrete import DiscreteFluxModel

        gen = np.random.default_rng(0)
        truth = paper_network.field.sample_uniform(1, gen)[0]
        flux = simulate_flux(paper_network, [truth], [2.0], rng=gen)
        full_model = DiscreteFluxModel(
            paper_network.field, paper_network.positions, d_floor=1.0
        )
        err = single_user_attack_error(
            paper_network, flux, truth, np.random.default_rng(1),
            candidate_count=800, model=full_model,
        )
        assert 0 <= err < paper_network.field.diameter


@pytest.mark.slow
class TestAblationRunners:
    def test_d_floor(self):
        r = run_ablation_d_floor(floors=(1.0, 2.4), repetitions=2, rng=0)
        assert len(r.rows) == 2
        assert all(row["error"] >= 0 for row in r.rows)

    def test_smoothing(self):
        r = run_ablation_smoothing(repetitions=2, rng=1)
        variants = {row["variant"] for row in r.rows}
        assert variants == {"smoothing=on", "smoothing=off"}

    def test_weighting(self):
        r = run_ablation_weighting(repetitions=2, rng=2)
        assert len(r.rows) == 2

    def test_routing(self):
        r = run_ablation_routing(repetitions=2, rng=3)
        variants = {row["variant"] for row in r.rows}
        assert variants == {"routing=bfs", "routing=geographic"}

    def test_aggregation_monotone(self):
        r = run_ablation_aggregation(
            factors=(1.0, 0.0), repetitions=3, rng=4
        )
        means = {row["variant"]: row["error"] for row in r.rows}
        assert means["aggregation=0"] > means["aggregation=1"] - 0.5

    def test_kernel(self):
        r = run_ablation_kernel(repetitions=2, probe_count=3, rng=5)
        variants = {row["variant"] for row in r.rows}
        assert variants == {"kernel=analytic", "kernel=calibrated"}

    def test_holes(self):
        r = run_robustness_holes(hole_radii=(0.0, 5.0), repetitions=2, rng=6)
        assert [row["hole_radius"] for row in r.rows] == [0.0, 5.0]
        assert all(row["runs"] >= 1 for row in r.rows)

    def test_repetitions_validated(self):
        with pytest.raises(ConfigurationError):
            run_ablation_smoothing(repetitions=0, rng=0)
