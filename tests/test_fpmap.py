"""Fingerprint-map subsystem: builder, persistence, index, cache, registry."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fluxmodel import DiscreteFluxModel
from repro.fpmap import (
    FingerprintMap,
    KernelLRUCache,
    MapRegistry,
    SpatialIndex,
    build_fingerprint_map,
    grid_cells,
    shared_registry,
)
from repro.fpmap.map import FPMAP_FORMAT
from repro.geometry import CircularField, RectangularField
from repro.network import sample_sniffers_percentage
from repro.traffic import MeasurementModel, simulate_flux
from repro.util.persistence import deployment_hash


@pytest.fixture(scope="module")
def sniffers(small_network):
    return sample_sniffers_percentage(small_network, 20, rng=42)


@pytest.fixture(scope="module")
def fpmap(small_network, sniffers):
    return build_fingerprint_map(
        small_network.field,
        small_network.positions[sniffers],
        resolution=0.75,
        d_floor=1.0,
        sniffer_ids=sniffers,
    )


class TestGridCells:
    def test_spacing_and_containment(self, small_field):
        cells = grid_cells(small_field, 1.0)
        assert cells.shape == (225, 2)
        assert np.all(small_field.contains(cells))
        xs = np.unique(cells[:, 0])
        assert np.allclose(np.diff(xs), 1.0)
        assert np.isclose(xs[0], 0.5)  # half-cell inset

    def test_circular_field_drops_corners(self):
        field = CircularField(5.0)
        cells = grid_cells(field, 1.0)
        assert np.all(field.contains(cells))
        box_cells = (5.0 * 2 / 1.0) ** 2
        assert cells.shape[0] < box_cells  # corners gone

    def test_resolution_exceeding_extent_rejected(self, small_field):
        with pytest.raises(ConfigurationError):
            grid_cells(small_field, 100.0)


class TestBuilder:
    def test_signatures_match_direct_kernels(self, small_network, sniffers, fpmap):
        model = DiscreteFluxModel(
            small_network.field, small_network.positions[sniffers], d_floor=1.0
        )
        direct = model.geometry_kernels(fpmap.cell_positions[:17])
        assert np.array_equal(fpmap.signatures[:17], direct)

    def test_block_size_does_not_change_result(self, small_network, sniffers, fpmap):
        small_blocks = build_fingerprint_map(
            small_network.field,
            small_network.positions[sniffers],
            resolution=0.75,
            sniffer_ids=sniffers,
            block_size=7,
        )
        assert np.array_equal(small_blocks.signatures, fpmap.signatures)

    def test_default_sniffer_ids(self, small_network, sniffers):
        fmap = build_fingerprint_map(
            small_network.field,
            small_network.positions[sniffers],
            resolution=3.0,
        )
        assert np.array_equal(fmap.sniffer_ids, np.arange(sniffers.size))

    def test_rejects_empty_sniffers(self, small_field):
        with pytest.raises(ConfigurationError):
            build_fingerprint_map(small_field, np.empty((0, 2)))


class TestMatching:
    def test_single_user_match_near_truth(self, small_network, sniffers, fpmap):
        truth = np.array([10.0, 5.0])
        flux = simulate_flux(small_network, [truth], [2.0], rng=9)
        obs = MeasurementModel(small_network, sniffers, smooth=False, rng=10).observe(flux)
        match = fpmap.match(obs.values, k=5)
        assert match.indices.shape == (5,)
        assert np.all(np.diff(match.residuals) >= 0)
        err = np.linalg.norm(match.positions[0] - truth)
        assert err < 2.0  # coarse seeding stage, still far under random ~7.8
        assert match.thetas[0] > 0

    def test_nan_dropout_masked(self, small_network, sniffers, fpmap):
        truth = np.array([4.0, 11.0])
        flux = simulate_flux(small_network, [truth], [2.0], rng=7)
        obs = MeasurementModel(small_network, sniffers, smooth=False, rng=8).observe(flux)
        values = obs.values.copy()
        values[::4] = np.nan
        match = fpmap.match(values, k=3)
        err = np.linalg.norm(match.positions[0] - truth)
        assert err < 2.5

    def test_all_nan_rejected(self, fpmap):
        with pytest.raises(ConfigurationError, match="NaN"):
            fpmap.match(np.full(fpmap.sniffer_count, np.nan))

    def test_wrong_width_rejected(self, fpmap):
        with pytest.raises(ConfigurationError):
            fpmap.match(np.ones(fpmap.sniffer_count + 1))

    def test_peel_matches_two_users(self, small_network, sniffers, fpmap):
        truth = np.array([[4.0, 4.0], [11.0, 11.0]])
        flux = simulate_flux(small_network, list(truth), [2.5, 2.0], rng=9)
        obs = MeasurementModel(small_network, sniffers, smooth=False, rng=10).observe(flux)
        matches = fpmap.peel_matches(obs.values, users=2, k=4)
        assert len(matches) == 2
        best = np.stack([m.positions[0] for m in matches])
        # each true position is near one of the peeled matches
        for t in truth:
            d = np.linalg.norm(best - t[None, :], axis=1).min()
            assert d < 5.0 * fpmap.resolution

    def test_peel_requires_positive_users(self, fpmap):
        with pytest.raises(ConfigurationError):
            fpmap.peel_matches(np.ones(fpmap.sniffer_count), users=0)


class TestPersistence:
    def test_bitwise_round_trip(self, fpmap, tmp_path):
        path = fpmap.save(tmp_path / "map.npz")
        loaded = FingerprintMap.load(path)
        assert np.array_equal(loaded.cell_positions, fpmap.cell_positions)
        assert np.array_equal(loaded.signatures, fpmap.signatures)
        assert np.array_equal(loaded.sniffer_positions, fpmap.sniffer_positions)
        assert np.array_equal(loaded.sniffer_ids, fpmap.sniffer_ids)
        assert loaded.resolution == fpmap.resolution
        assert loaded.d_floor == fpmap.d_floor
        assert loaded.deployment == fpmap.deployment

    def test_no_tmp_file_left_behind(self, fpmap, tmp_path):
        fpmap.save(tmp_path / "map.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["map.npz"]

    def test_missing_file_is_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="build-map"):
            FingerprintMap.load(tmp_path / "nope.npz")

    def test_unsupported_format_rejected(self, fpmap, tmp_path):
        path = fpmap.save(tmp_path / "map.npz")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["format"] = np.array([FPMAP_FORMAT + 1])
        np.savez(path, **arrays)
        with pytest.raises(ConfigurationError, match="format"):
            FingerprintMap.load(path)

    def test_missing_key_rejected(self, fpmap, tmp_path):
        path = fpmap.save(tmp_path / "map.npz")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        del arrays["signatures"]
        np.savez(path, **arrays)
        with pytest.raises(ConfigurationError, match="signatures"):
            FingerprintMap.load(path)

    def test_tampered_geometry_rejected(self, fpmap, tmp_path):
        path = fpmap.save(tmp_path / "map.npz")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["sniffer_positions"] = arrays["sniffer_positions"] + 0.5
        np.savez(path, **arrays)
        with pytest.raises(ConfigurationError, match="stale or corrupt"):
            FingerprintMap.load(path)


class TestValidation:
    def test_matching_deployment_accepted(self, small_network, sniffers, fpmap):
        fpmap.validate_against(
            small_network.field, small_network.positions[sniffers], 1.0
        )

    def test_changed_sniffers_rejected(self, small_network, fpmap):
        other = sample_sniffers_percentage(small_network, 20, rng=777)
        with pytest.raises(ConfigurationError, match="different deployment"):
            fpmap.validate_against(
                small_network.field, small_network.positions[other], 1.0
            )

    def test_changed_d_floor_rejected(self, small_network, sniffers, fpmap):
        with pytest.raises(ConfigurationError):
            fpmap.validate_against(
                small_network.field, small_network.positions[sniffers], 2.0
            )

    def test_deployment_hash_is_stable(self, small_network, sniffers, fpmap):
        again = deployment_hash(
            small_network.field, small_network.positions[sniffers], 1.0
        )
        assert again == fpmap.deployment


class TestSpatialIndex:
    @pytest.fixture(scope="class")
    def points(self):
        rng = np.random.default_rng(11)
        return rng.uniform(0, 15, size=(300, 2))

    def test_range_matches_brute_force(self, points):
        index = SpatialIndex(points)
        center = np.array([7.0, 7.0])
        got = np.sort(index.range_by_position(center, 2.5))
        want = np.flatnonzero(
            np.linalg.norm(points - center[None, :], axis=1) <= 2.5
        )
        assert np.array_equal(got, np.sort(want))

    @pytest.mark.parametrize("backend", ["grid", "kdtree"])
    def test_knn_by_position(self, points, backend):
        index = SpatialIndex(points, backend=backend)
        assert index.backend == backend
        got = index.knn_by_position([3.0, 12.0], 8)
        d = np.linalg.norm(points - np.array([3.0, 12.0]), axis=1)
        want = np.argsort(d)[:8]
        assert set(got.tolist()) == set(want.tolist())
        assert got[0] == want[0]

    def test_knn_by_signature_matches_brute_force(self, fpmap):
        target = fpmap.signatures[37] * 1.7  # theta 1.7, exact match
        idx, thetas, residuals = fpmap.index.knn_by_signature(target, 3)
        assert idx[0] == 37
        assert thetas[0] == pytest.approx(1.7)
        assert residuals[0] == pytest.approx(0.0, abs=1e-9)
        # brute force over all cells
        sig = fpmap.signatures
        th = np.maximum((sig @ target) / np.einsum("cn,cn->c", sig, sig), 0.0)
        res = np.linalg.norm(target[None, :] - th[:, None] * sig, axis=1)
        assert np.argmin(res) == idx[0]
        assert residuals[1] == pytest.approx(np.sort(res)[1], rel=1e-9)

    def test_negative_theta_clamped(self):
        positions = np.array([[0.0, 0.0], [1.0, 1.0]])
        signatures = np.array([[1.0, 1.0], [-1.0, -1.0]])
        index = SpatialIndex(positions, signatures=signatures)
        idx, thetas, _ = index.knn_by_signature(np.array([-2.0, -2.0]), 2)
        assert np.all(thetas >= 0)
        assert idx[0] == 1  # negative kernel fits a negative target

    def test_signature_query_needs_signatures(self, points):
        with pytest.raises(ConfigurationError, match="signatures"):
            SpatialIndex(points).knn_by_signature(np.ones(3), 1)

    def test_coincident_points_fall_back_to_kdtree(self):
        points = np.zeros((5, 2))
        index = SpatialIndex(points, backend="auto")
        assert index.backend == "kdtree"
        assert index.knn_by_position([0.0, 0.0], 2).shape == (2,)

    def test_bad_backend_rejected(self, points):
        with pytest.raises(ConfigurationError):
            SpatialIndex(points, backend="octree")


class TestKernelLRUCache:
    def test_hit_miss_accounting(self):
        cache = KernelLRUCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", np.ones(3))
        assert cache.get("a") is not None
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = KernelLRUCache(capacity=2)
        cache.put("a", np.zeros(1))
        cache.put("b", np.ones(1))
        cache.get("a")  # refresh a; b is now stalest
        cache.put("c", np.full(1, 2.0))
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert len(cache) == 2

    def test_blocks_are_write_protected(self):
        cache = KernelLRUCache()
        block = cache.put("k", np.arange(4.0))
        with pytest.raises(ValueError):
            block[0] = 99.0

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            KernelLRUCache(capacity=0)

    def test_kernels_for_served_from_cache(self, fpmap):
        fpmap.cache.clear()
        fpmap.cache.hits = fpmap.cache.misses = 0
        cells = np.array([3, 17, 42], dtype=np.int64)
        cols = np.array([0, 2, 5], dtype=np.int64)
        first = fpmap.kernels_for(cells, columns=cols)
        second = fpmap.kernels_for(cells, columns=cols)
        assert second is first
        assert fpmap.cache.hits == 1 and fpmap.cache.misses == 1
        assert np.array_equal(first, fpmap.signatures[cells][:, cols])
        full = fpmap.kernels_for(cells)
        assert np.array_equal(full, fpmap.signatures[cells])


class TestMapRegistry:
    def test_get_or_build_shares_one_instance(self, small_network, sniffers):
        registry = MapRegistry()
        a = registry.get_or_build(
            small_network.field, small_network.positions[sniffers],
            resolution=3.0, sniffer_ids=sniffers,
        )
        b = registry.get_or_build(
            small_network.field, small_network.positions[sniffers],
            resolution=3.0, sniffer_ids=sniffers,
        )
        assert b is a
        assert registry.builds == 1
        assert registry.get(a.deployment) is a

    def test_changed_sniffer_set_invalidates(self, small_network, sniffers):
        registry = MapRegistry()
        a = registry.get_or_build(
            small_network.field, small_network.positions[sniffers],
            resolution=3.0,
        )
        other = sample_sniffers_percentage(small_network, 20, rng=777)
        b = registry.get_or_build(
            small_network.field, small_network.positions[other],
            resolution=3.0,
        )
        assert b is not a
        assert registry.builds == 2
        assert registry.invalidate(a.deployment)
        assert registry.get(a.deployment) is None
        assert not registry.invalidate(a.deployment)

    def test_register_adopts_loaded_map(self, fpmap):
        registry = MapRegistry()
        key = registry.register(fpmap)
        assert key == fpmap.deployment
        assert registry.get(key) is fpmap

    def test_capacity_evicts_lru(self, small_field):
        registry = MapRegistry(capacity=2)
        maps = []
        for i in range(3):
            pos = np.array([[1.0 + i, 1.0], [5.0, 5.0 + i]])
            maps.append(registry.get_or_build(small_field, pos, resolution=3.0))
        assert len(registry) == 2
        assert registry.get(maps[0].deployment) is None
        assert registry.get(maps[2].deployment) is maps[2]

    def test_concurrent_same_deployment_builds_once(self, small_network, sniffers):
        registry = MapRegistry()
        results = []

        def worker():
            results.append(
                registry.get_or_build(
                    small_network.field,
                    small_network.positions[sniffers],
                    resolution=3.0,
                )
            )

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.builds == 1
        assert all(r is results[0] for r in results)

    def test_shared_registry_is_singleton(self):
        assert shared_registry() is shared_registry()


class TestPublicExports:
    def test_top_level_names(self):
        import repro

        for name in (
            "FingerprintMap", "MapRegistry", "SpatialIndex",
            "build_fingerprint_map",
        ):
            assert hasattr(repro, name)
            assert name in repro.__all__
