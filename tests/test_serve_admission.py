"""Admission queue: bounded, client-fair, deadline-aware."""

import threading
import time
from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError
from repro.serve import (
    ADMITTED,
    CLOSED,
    REJECTED,
    TIMED_OUT,
    AdmissionQueue,
    PendingRequest,
)


def _item(client="c", request_id="r", deadline_s=None, now=None):
    request = SimpleNamespace(
        client_id=client, request_id=request_id, deadline_s=deadline_s
    )
    return PendingRequest.wrap(request, now=now)


class TestPendingRequest:
    def test_expiry_from_relative_deadline(self):
        item = _item(deadline_s=2.0, now=100.0)
        assert item.expires_at == 102.0
        assert not item.expired(now=101.9)
        assert item.expired(now=102.0)

    def test_no_deadline_never_expires(self):
        assert not _item(now=0.0).expired(now=1e12)

    def test_latency_measured_from_submission(self):
        assert _item(now=10.0).latency(now=10.5) == pytest.approx(0.5)


class TestFairness:
    def test_round_robin_across_clients(self):
        queue = AdmissionQueue(capacity=16)
        for i in range(4):
            queue.offer(_item("flooder", f"f{i}"))
        queue.offer(_item("meek", "m0"))
        batch, expired = queue.take(3, wait_timeout=0)
        assert not expired
        # One item per client per turn: the meek client is served in
        # the first rotation despite submitting last.
        assert [i.request.request_id for i in batch] == ["f0", "m0", "f1"]

    def test_per_client_fifo_preserved(self):
        queue = AdmissionQueue(capacity=16)
        for i in range(3):
            queue.offer(_item("a", f"a{i}"))
        batch, _ = queue.take(3, wait_timeout=0)
        assert [i.request.request_id for i in batch] == ["a0", "a1", "a2"]

    def test_per_client_limit_rejects_only_the_flooder(self):
        queue = AdmissionQueue(capacity=16, per_client_limit=2)
        assert queue.offer(_item("flooder", "f0")) == ADMITTED
        assert queue.offer(_item("flooder", "f1")) == ADMITTED
        assert queue.offer(_item("flooder", "f2")) == REJECTED
        assert queue.offer(_item("meek", "m0")) == ADMITTED


class TestPolicies:
    def test_reject_when_full(self):
        queue = AdmissionQueue(capacity=2, policy="reject")
        assert queue.offer(_item("a", "0")) == ADMITTED
        assert queue.offer(_item("a", "1")) == ADMITTED
        assert queue.offer(_item("a", "2")) == REJECTED
        assert queue.depth() == 2

    def test_block_waits_for_room(self):
        queue = AdmissionQueue(capacity=1, policy="block", block_timeout_s=5.0)
        queue.offer(_item("a", "0"))
        outcomes = []

        def producer():
            outcomes.append(queue.offer(_item("a", "1")))

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        assert not outcomes  # still blocked on the full queue
        batch, _ = queue.take(1, wait_timeout=0)
        thread.join(timeout=5.0)
        assert outcomes == [ADMITTED]
        assert [i.request.request_id for i in batch] == ["0"]

    def test_block_times_out(self):
        queue = AdmissionQueue(capacity=1, policy="block", block_timeout_s=0.05)
        queue.offer(_item("a", "0"))
        started = time.monotonic()
        assert queue.offer(_item("a", "1")) == TIMED_OUT
        assert time.monotonic() - started >= 0.05
        assert queue.depth() == 1

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            AdmissionQueue(capacity=0)
        with pytest.raises(ConfigurationError):
            AdmissionQueue(policy="balk")
        with pytest.raises(ConfigurationError):
            AdmissionQueue(block_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            AdmissionQueue(per_client_limit=0)


class TestDeadlines:
    def test_expired_work_is_purged_not_batched(self):
        queue = AdmissionQueue(capacity=8)
        queue.offer(_item("a", "fresh"))
        queue.offer(_item("a", "stale", deadline_s=0.0))
        time.sleep(0.005)
        batch, expired = queue.take(8, wait_timeout=0)
        assert [i.request.request_id for i in batch] == ["fresh"]
        assert [i.request.request_id for i in expired] == ["stale"]
        assert queue.depth() == 0


class TestBatchingAndShutdown:
    def test_take_lingers_to_fill_the_batch(self):
        queue = AdmissionQueue(capacity=8)
        queue.offer(_item("a", "0"))

        def late_producer():
            time.sleep(0.02)
            queue.offer(_item("b", "1"))

        thread = threading.Thread(target=late_producer)
        thread.start()
        batch, _ = queue.take(2, wait_timeout=0.5, batch_wait=0.5)
        thread.join()
        assert len(batch) == 2

    def test_take_returns_partial_after_batch_wait(self):
        queue = AdmissionQueue(capacity=8)
        queue.offer(_item("a", "0"))
        started = time.monotonic()
        batch, _ = queue.take(4, wait_timeout=0.5, batch_wait=0.02)
        assert len(batch) == 1
        assert time.monotonic() - started < 0.4

    def test_take_empty_times_out(self):
        queue = AdmissionQueue(capacity=8)
        batch, expired = queue.take(4, wait_timeout=0.01)
        assert batch == [] and expired == []

    def test_close_refuses_offers_and_wakes_takers(self):
        queue = AdmissionQueue(capacity=8)
        queue.offer(_item("a", "0"))
        queue.close()
        assert queue.closed
        assert queue.offer(_item("a", "1")) == CLOSED
        # What was admitted before close stays drainable.
        leftovers = queue.drain_all()
        assert [i.request.request_id for i in leftovers] == ["0"]

    def test_drain_all_returns_everything(self):
        queue = AdmissionQueue(capacity=8)
        for i in range(3):
            queue.offer(_item("a", f"{i}"))
        queue.offer(_item("a", "late", deadline_s=0.0))
        time.sleep(0.005)
        assert len(queue.drain_all()) == 4
        assert queue.depth() == 0


class TestEagerSingle:
    def test_lone_item_skips_the_linger(self):
        queue = AdmissionQueue(capacity=8, eager_single=True)
        queue.offer(_item("a", "0"))
        started = time.monotonic()
        batch, _ = queue.take(4, wait_timeout=0.5, batch_wait=0.25)
        # The 0.25s batch-fill linger is bypassed at depth 1.
        assert time.monotonic() - started < 0.2
        assert [i.request.request_id for i in batch] == ["0"]

    def test_two_queued_items_still_linger_and_fuse(self):
        queue = AdmissionQueue(capacity=8, eager_single=True)
        queue.offer(_item("a", "0"))
        queue.offer(_item("b", "1"))

        late = threading.Timer(0.03, lambda: queue.offer(_item("c", "2")))
        late.start()
        try:
            batch, _ = queue.take(4, wait_timeout=0.5, batch_wait=0.5)
        finally:
            late.join()
        # Depth was 2 at take time, so the linger ran and picked up
        # the third request — fusion under load is unchanged.
        assert len(batch) == 3

    def test_off_by_default_at_the_queue(self):
        queue = AdmissionQueue(capacity=8)
        assert queue.eager_single is False
        queue.offer(_item("a", "0"))

        late = threading.Timer(0.02, lambda: queue.offer(_item("b", "1")))
        late.start()
        try:
            batch, _ = queue.take(4, wait_timeout=0.5, batch_wait=0.5)
        finally:
            late.join()
        # Without eager_single a lone item lingers for company.
        assert len(batch) == 2
