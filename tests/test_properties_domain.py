"""Property-based tests on the domain layer: schedules, trajectories,
flux simulation invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry import RectangularField
from repro.mobility.trajectory import Trajectory
from repro.traffic.events import CollectionEvent, CollectionSchedule


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
@st.composite
def schedules(draw):
    n = draw(st.integers(1, 30))
    events = []
    for i in range(n):
        events.append(
            CollectionEvent(
                user=draw(st.integers(0, 4)),
                time=draw(st.floats(0.0, 100.0)),
                position=(draw(st.floats(0, 10)), draw(st.floats(0, 10))),
                stretch=draw(st.floats(0.1, 3.0)),
            )
        )
    return CollectionSchedule(events)


@given(schedule=schedules(), delta=st.floats(0.5, 20.0))
@settings(max_examples=100, deadline=None)
def test_windows_partition_all_events(schedule, delta):
    """Every event lands in exactly one window."""
    windows = schedule.windows(delta)
    total = sum(len(events) for _, events in windows)
    assert total == len(schedule)


@given(schedule=schedules(), delta=st.floats(0.5, 20.0))
@settings(max_examples=100, deadline=None)
def test_windows_events_within_bounds(schedule, delta):
    for start, events in schedule.windows(delta):
        for e in events:
            assert start <= e.time < start + delta + 1e-9


@given(schedule=schedules())
@settings(max_examples=50, deadline=None)
def test_schedule_time_sorted(schedule):
    times = [e.time for e in schedule]
    assert times == sorted(times)


@given(schedule=schedules(), a=st.floats(0, 50), b=st.floats(50, 120))
@settings(max_examples=50, deadline=None)
def test_events_in_window_subset(schedule, a, b):
    got = schedule.events_in_window(a, b)
    assert all(a <= e.time < b for e in got)
    want = [e for e in schedule if a <= e.time < b]
    assert len(got) == len(want)


# ----------------------------------------------------------------------
# Trajectories
# ----------------------------------------------------------------------
@st.composite
def trajectories(draw):
    n = draw(st.integers(2, 20))
    gaps = draw(
        st.lists(st.floats(0.1, 5.0), min_size=n - 1, max_size=n - 1)
    )
    times = np.concatenate([[0.0], np.cumsum(gaps)])
    xs = draw(st.lists(st.floats(0, 30), min_size=n, max_size=n))
    ys = draw(st.lists(st.floats(0, 30), min_size=n, max_size=n))
    return Trajectory(times=times, positions=np.column_stack([xs, ys]))


@given(traj=trajectories(), factor=st.floats(1.1, 100.0))
@settings(max_examples=100, deadline=None)
def test_compression_scales_speed(traj, factor):
    compressed = traj.compress_time(factor)
    assert compressed.duration == pytest.approx(traj.duration / factor)
    assert compressed.length == pytest.approx(traj.length)
    if traj.max_speed() > 0:
        assert compressed.max_speed() == pytest.approx(
            traj.max_speed() * factor, rel=1e-6
        )


@given(traj=trajectories(), frac=st.floats(0.0, 1.0))
@settings(max_examples=100, deadline=None)
def test_interpolation_stays_on_segment_hull(traj, frac):
    t = traj.times[0] + frac * traj.duration
    p = traj.at(t)
    assert traj.positions[:, 0].min() - 1e-9 <= p[0] <= traj.positions[:, 0].max() + 1e-9
    assert traj.positions[:, 1].min() - 1e-9 <= p[1] <= traj.positions[:, 1].max() + 1e-9


@given(traj=trajectories(), lo=st.floats(0.05, 0.45), hi=st.floats(0.55, 0.95))
@settings(max_examples=60, deadline=None)
def test_segment_endpoints_interpolate(traj, lo, hi):
    start = traj.times[0] + lo * traj.duration
    end = traj.times[0] + hi * traj.duration
    assume(end - start > 1e-6)
    seg = traj.segment(float(start), float(end))
    np.testing.assert_allclose(seg.positions[0], traj.at(start), atol=1e-7)
    np.testing.assert_allclose(seg.positions[-1], traj.at(end), atol=1e-7)
    assert seg.times[0] == pytest.approx(start)
    assert seg.times[-1] == pytest.approx(end)


@given(traj=trajectories(), offset=st.floats(-50, 50))
@settings(max_examples=60, deadline=None)
def test_shift_preserves_geometry(traj, offset):
    shifted = traj.shift_time(offset)
    assert shifted.duration == pytest.approx(traj.duration)
    np.testing.assert_allclose(shifted.positions, traj.positions)


# ----------------------------------------------------------------------
# Flux simulation invariants on a tiny fixed network
# ----------------------------------------------------------------------
@given(
    sink=st.tuples(st.floats(0.5, 14.5), st.floats(0.5, 14.5)),
    stretch=st.floats(0.1, 5.0),
    seed=st.integers(0, 100),
)
@settings(max_examples=40, deadline=None)
def test_flux_conservation_property(small_network, sink, stretch, seed):
    from repro.traffic import simulate_flux

    flux = simulate_flux(
        small_network, [np.asarray(sink)], [stretch], rng=seed
    )
    # Root carries everything; every node at least its own data.
    assert flux.max() == pytest.approx(stretch * small_network.node_count)
    assert np.all(flux >= stretch - 1e-9)
    # Total relayed volume is bounded by depth * total generated.
    assert flux.sum() <= stretch * small_network.node_count**2
