"""Property-based tests on the fitting layer (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fingerprint.objective import solve_thetas_batched
from repro.fluxmodel.discrete import DiscreteFluxModel
from repro.geometry import RectangularField
from repro.smc.resampling import systematic_resample

_FIELD = RectangularField(10, 10)
_GEN = np.random.default_rng(12345)
_NODES = _FIELD.sample_uniform(30, _GEN)
_MODEL = DiscreteFluxModel(_FIELD, _NODES, d_floor=0.5)

positions = st.tuples(st.floats(0.2, 9.8), st.floats(0.2, 9.8))


@given(p=positions, scale=st.floats(0.1, 10.0))
@settings(max_examples=100, deadline=None)
def test_theta_recovery_scales_linearly(p, scale):
    """Scaling the target scales the fitted theta, not the objective shape."""
    g = _MODEL.geometry_kernel(np.array(p))
    target = scale * g
    thetas, objs = solve_thetas_batched(g[None, None, :], target)
    assert thetas[0, 0] == pytest.approx(scale, rel=1e-6)
    assert objs[0] == pytest.approx(0.0, abs=1e-6 * max(scale, 1.0))


@given(p1=positions, p2=positions, t1=st.floats(0.1, 3.0), t2=st.floats(0.1, 3.0))
@settings(max_examples=60, deadline=None)
def test_adding_true_user_never_hurts_fit(p1, p2, t1, t2):
    """The 2-user fit objective <= the best 1-user fit objective."""
    g1 = _MODEL.geometry_kernel(np.array(p1))
    g2 = _MODEL.geometry_kernel(np.array(p2))
    target = t1 * g1 + t2 * g2
    _, obj_single = solve_thetas_batched(g1[None, None, :], target)
    _, obj_joint = solve_thetas_batched(
        np.stack([g1, g2])[None, :, :], target
    )
    assert obj_joint[0] <= obj_single[0] + 1e-6


@given(p=positions)
@settings(max_examples=100, deadline=None)
def test_kernel_respects_domination_order(p):
    """Closer node with a longer boundary run never has a smaller kernel.

    ``g = (l^2 - d^2) / (2 d)`` is decreasing in the clamped distance
    ``d`` and increasing in the boundary run ``l``, so whenever node
    ``i`` dominates node ``j`` (``d_i <= d_j`` and ``l_i >= l_j``) the
    kernel must order ``g_i >= g_j``. (The earlier "argmax is among the
    30% nearest nodes" form was not a true property: a far node near the
    field center can carry a longer boundary run than every nearby node
    and legitimately host the peak.)
    """
    from repro.geometry.rays import boundary_distances

    sink = np.array(p)
    g = _MODEL.geometry_kernel(sink)
    d = np.hypot(_NODES[:, 0] - sink[0], _NODES[:, 1] - sink[1])
    dd = np.maximum(d, _MODEL.d_floor)
    length = boundary_distances(_FIELD, sink, _NODES)
    dominates = (dd[:, None] <= dd[None, :]) & (length[:, None] >= length[None, :])
    ordered = g[:, None] >= g[None, :] - 1e-9
    assert np.all(ordered[dominates])


@given(
    weights=st.lists(st.floats(0.01, 1.0), min_size=2, max_size=15),
    count=st.integers(10, 200),
    seed=st.integers(0, 1000),
)
@settings(max_examples=100, deadline=None)
def test_systematic_resample_floor_ceil(weights, count, seed):
    """Each parent is drawn floor(w*n) or ceil(w*n) times."""
    w = np.asarray(weights)
    w = w / w.sum()
    out = systematic_resample(w, count, np.random.default_rng(seed))
    counts = np.bincount(out, minlength=w.size)
    expected = w * count
    assert np.all(counts >= np.floor(expected) - 1e-9)
    assert np.all(counts <= np.ceil(expected) + 1e-9)


@given(p=positions)
@settings(max_examples=60, deadline=None)
def test_kernel_nonnegative_and_finite(p):
    g = _MODEL.geometry_kernel(np.array(p))
    assert np.all(g >= 0)
    assert np.all(np.isfinite(g))
