"""Network bundle and sniffer sampling tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ConnectivityError
from repro.geometry import RectangularField
from repro.network import (
    Network,
    build_network,
    sample_sniffers_percentage,
    sample_sniffers_random,
    sample_sniffers_stratified,
)
from repro.network.graph import UnitDiskGraph


class TestBuildNetwork:
    def test_paper_defaults(self, paper_network):
        assert paper_network.node_count == 900
        assert paper_network.radius == 2.4
        assert 14 <= paper_network.average_degree() <= 22

    def test_connected_by_default(self, paper_network):
        assert paper_network.graph.is_connected()

    def test_uniform_random_deployment(self):
        net = build_network(
            node_count=300, radius=2.5, deployment="uniform_random", rng=3
        )
        assert net.node_count == 300

    def test_unknown_deployment_raises(self):
        with pytest.raises(ConfigurationError):
            build_network(deployment="hexagonal")

    def test_impossible_connectivity_raises(self):
        with pytest.raises(ConnectivityError):
            build_network(node_count=20, radius=0.5, max_attempts=2, rng=0)

    def test_custom_field(self):
        field = RectangularField(12, 12)
        net = build_network(field=field, node_count=144, radius=2.0, rng=1)
        assert net.field is field

    def test_reproducible(self):
        field = RectangularField(12, 12)
        a = build_network(field=field, node_count=100, radius=3.0, rng=7)
        b = build_network(field=field, node_count=100, radius=3.0, rng=7)
        np.testing.assert_array_equal(a.positions, b.positions)


class TestNetwork:
    def test_mismatched_graph_raises(self, small_field):
        positions = small_field.sample_uniform(10, np.random.default_rng(0))
        graph = UnitDiskGraph(positions[:5], 2.0)
        with pytest.raises(ConfigurationError):
            Network(field=small_field, positions=positions, graph=graph)

    def test_nearest_node(self, small_network):
        target = small_network.positions[17]
        assert small_network.nearest_node(target) == 17

    def test_nearest_node_off_grid(self, small_network):
        idx = small_network.nearest_node(np.array([7.5, 7.5]))
        d = np.hypot(
            small_network.positions[:, 0] - 7.5,
            small_network.positions[:, 1] - 7.5,
        )
        assert idx == int(np.argmin(d))

    def test_average_hop_distance_bounded_by_radius(self, small_network):
        r = small_network.average_hop_distance()
        assert 0 < r <= small_network.radius


class TestSniffers:
    def test_random_count(self, small_network):
        s = sample_sniffers_random(small_network, 30, rng=0)
        assert s.size == 30
        assert np.unique(s).size == 30

    def test_random_sorted(self, small_network):
        s = sample_sniffers_random(small_network, 10, rng=0)
        assert np.all(np.diff(s) > 0)

    def test_random_bounds(self, small_network):
        with pytest.raises(ConfigurationError):
            sample_sniffers_random(small_network, 0)
        with pytest.raises(ConfigurationError):
            sample_sniffers_random(small_network, small_network.node_count + 1)

    def test_percentage(self, small_network):
        s = sample_sniffers_percentage(small_network, 20.0, rng=0)
        assert s.size == round(small_network.node_count * 0.2)

    def test_percentage_at_least_one(self, small_network):
        s = sample_sniffers_percentage(small_network, 0.01, rng=0)
        assert s.size == 1

    def test_percentage_bounds(self, small_network):
        with pytest.raises(ConfigurationError):
            sample_sniffers_percentage(small_network, 0.0)
        with pytest.raises(ConfigurationError):
            sample_sniffers_percentage(small_network, 150.0)

    def test_stratified_count_and_distinct(self, small_network):
        s = sample_sniffers_stratified(small_network, 25, rng=0)
        assert s.size == 25
        assert np.unique(s).size == 25

    def test_stratified_covers_quadrants(self, small_network):
        s = sample_sniffers_stratified(small_network, 36, rng=0)
        pts = small_network.positions[s]
        for qx in (0, 7.5):
            for qy in (0, 7.5):
                inside = (
                    (pts[:, 0] >= qx)
                    & (pts[:, 0] < qx + 7.5)
                    & (pts[:, 1] >= qy)
                    & (pts[:, 1] < qy + 7.5)
                )
                assert inside.sum() >= 3

    def test_stratified_bounds(self, small_network):
        with pytest.raises(ConfigurationError):
            sample_sniffers_stratified(small_network, 0)
