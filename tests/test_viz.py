"""Text visualization tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry import RectangularField
from repro.traffic import simulate_flux
from repro.viz import render_cdf, render_flux_heatmap, render_positions, render_series


class TestHeatmap:
    def test_dimensions(self, small_network):
        flux = np.ones(small_network.node_count)
        out = render_flux_heatmap(small_network, flux, width=40, height=10)
        lines = out.splitlines()
        assert len(lines) == 12  # 10 rows + 2 borders
        assert all(len(line) == 42 for line in lines)

    def test_peak_is_darkest(self, small_network):
        truth = np.array([7.5, 7.5])
        flux = simulate_flux(small_network, [truth], [2.0], rng=0)
        out = render_flux_heatmap(
            small_network, flux, width=30, height=12, log_scale=True
        )
        # The darkest glyph '@' appears somewhere near the center rows.
        assert "@" in out

    def test_markers_drawn(self, small_network):
        flux = np.ones(small_network.node_count)
        out = render_flux_heatmap(
            small_network, flux, markers=np.array([[7.5, 7.5]])
        )
        assert "X" in out

    def test_marker_position_correct(self, small_network):
        flux = np.ones(small_network.node_count)
        out = render_flux_heatmap(
            small_network, flux, width=30, height=10,
            markers=np.array([[0.1, 0.1]]),
        )
        lines = out.splitlines()
        # Bottom-left corner (y grows upward): marker on the last body row.
        assert "X" in lines[-2][:4]

    def test_shape_checked(self, small_network):
        with pytest.raises(ConfigurationError):
            render_flux_heatmap(small_network, np.ones(3))

    def test_size_checked(self, small_network):
        with pytest.raises(ConfigurationError):
            render_flux_heatmap(
                small_network, np.ones(small_network.node_count), width=1
            )


class TestScatter:
    def test_layers_drawn(self):
        field = RectangularField(10, 10)
        out = render_positions(
            field,
            {"*": np.array([[5.0, 5.0]]), "o": np.array([[1.0, 9.0]])},
            width=20,
            height=10,
        )
        assert "*" in out and "o" in out

    def test_later_layer_wins(self):
        field = RectangularField(10, 10)
        out = render_positions(
            field,
            {"a": np.array([[5.0, 5.0]]), "b": np.array([[5.0, 5.0]])},
        )
        assert "b" in out and "a" not in out

    def test_empty_layer_ok(self):
        field = RectangularField(10, 10)
        out = render_positions(field, {"x": np.zeros((0, 2))})
        assert "x" not in out

    def test_multichar_glyph_rejected(self):
        field = RectangularField(10, 10)
        with pytest.raises(ConfigurationError):
            render_positions(field, {"ab": np.array([[1.0, 1.0]])})

    def test_bad_shape_rejected(self):
        field = RectangularField(10, 10)
        with pytest.raises(ConfigurationError):
            render_positions(field, {"a": np.zeros((2, 3))})


class TestCurves:
    def test_series_renders(self):
        xs = np.linspace(0, 10, 20)
        out = render_series({"alpha": (xs, xs**2)}, width=30, height=10)
        assert "a = alpha" in out

    def test_multiple_series(self):
        xs = np.linspace(0, 10, 20)
        out = render_series(
            {"up": (xs, xs), "down": (xs, 10 - xs)}, width=30, height=10
        )
        assert "u" in out and "d" in out

    def test_axis_labels_present(self):
        xs = np.array([0.0, 5.0])
        out = render_series({"s": (xs, np.array([1.0, 3.0]))})
        assert "3" in out  # y max label
        assert "5" in out  # x max label

    def test_cdf_monotone_rendering(self):
        out = render_cdf({"n": np.random.default_rng(0).normal(size=200)})
        assert "CDF" in out

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series({})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series({"s": (np.zeros(3), np.zeros(4))})
