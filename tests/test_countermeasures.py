"""Countermeasure tests: padding, dummy sinks, trade-off evaluation."""

import numpy as np
import pytest

from repro.countermeasures import (
    apply_uniform_padding,
    inject_dummy_sinks,
    padding_overhead,
)
from repro.countermeasures.evaluation import defense_tradeoff
from repro.errors import ConfigurationError
from repro.traffic import simulate_flux


class TestPadding:
    def test_zero_level_noop(self):
        flux = np.array([1.0, 5.0, 3.0])
        np.testing.assert_allclose(apply_uniform_padding(flux, 0.0), flux)

    def test_full_level_flattens(self):
        flux = np.array([1.0, 5.0, 3.0])
        np.testing.assert_allclose(apply_uniform_padding(flux, 1.0), 5.0)

    def test_padding_only_adds(self):
        flux = np.array([1.0, 5.0, 3.0])
        padded = apply_uniform_padding(flux, 0.5)
        assert np.all(padded >= flux)

    def test_max_unchanged(self):
        flux = np.array([1.0, 5.0, 3.0])
        assert apply_uniform_padding(flux, 0.7).max() == pytest.approx(5.0)

    def test_level_validated(self):
        with pytest.raises(ConfigurationError):
            apply_uniform_padding(np.ones(3), 1.5)

    def test_shape_validated(self):
        with pytest.raises(ConfigurationError):
            apply_uniform_padding(np.ones((2, 2)), 0.5)

    def test_overhead_monotone_in_level(self):
        flux = np.array([1.0, 5.0, 3.0])
        o1 = padding_overhead(flux, 0.3)
        o2 = padding_overhead(flux, 0.8)
        assert 0 < o1 < o2

    def test_overhead_zero_flux_raises(self):
        with pytest.raises(ConfigurationError):
            padding_overhead(np.zeros(3), 0.5)


class TestDummySinks:
    def test_adds_flux(self, small_network):
        flux = simulate_flux(small_network, [np.array([7.0, 7.0])], [1.0], rng=0)
        defended, positions = inject_dummy_sinks(small_network, flux, 2, rng=1)
        assert np.all(defended >= flux)
        assert positions.shape == (2, 2)
        assert small_network.field.contains(positions).all()

    def test_dummy_flux_realistic_scale(self, small_network):
        flux = simulate_flux(small_network, [np.array([7.0, 7.0])], [2.0], rng=0)
        defended, _ = inject_dummy_sinks(
            small_network, flux, 1, dummy_stretch=2.0, rng=1
        )
        added = defended - flux
        # A dummy tree moves a full network's worth of data.
        assert added.max() == pytest.approx(2.0 * small_network.node_count)

    def test_validation(self, small_network):
        flux = np.ones(small_network.node_count)
        with pytest.raises(ConfigurationError):
            inject_dummy_sinks(small_network, flux, 0)
        with pytest.raises(ConfigurationError):
            inject_dummy_sinks(small_network, np.ones(3), 1)


class TestDefenseTradeoff:
    def test_smoke(self, small_network):
        points = defense_tradeoff(
            small_network,
            user_count=1,
            padding_levels=(0.0, 0.5),
            dummy_counts=(1,),
            repetitions=1,
            candidate_count=300,
            rng=0,
        )
        assert len(points) == 3
        kinds = {(p.defense, p.parameter) for p in points}
        assert ("padding", 0.0) in kinds
        assert ("dummy_sinks", 1.0) in kinds
        for p in points:
            assert p.attack_error >= 0
            assert p.overhead >= 0

    def test_padding_degrades_attack(self, small_network):
        points = defense_tradeoff(
            small_network,
            user_count=1,
            padding_levels=(0.0, 0.9),
            dummy_counts=(),
            repetitions=2,
            candidate_count=400,
            rng=3,
        )
        base = next(p for p in points if p.parameter == 0.0)
        heavy = next(p for p in points if p.parameter == 0.9)
        assert heavy.attack_error > base.attack_error

    def test_repetitions_validated(self, small_network):
        with pytest.raises(ConfigurationError):
            defense_tradeoff(small_network, repetitions=0)
