"""Per-stage latency decomposition through the serve path itself.

No gateway here: the scheduler stamps admission/fuse/solve/reply on
every request it completes, ServerMetrics aggregates them into the
snapshot and the bounded trace ring, and the MetricsServer exposes
both at ``/trace``. The gateway tests cover the two extra legs.
"""

import json
import urllib.request

import numpy as np
import pytest

from repro.fpmap import build_fingerprint_map
from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage
from repro.serve import (
    LocalizationService,
    LocalizeRequest,
    MetricsServer,
)
from repro.serve.metrics import ServerMetrics
from repro.traffic import MeasurementModel, simulate_flux


@pytest.fixture(scope="module")
def scenario():
    net = build_network(
        field=RectangularField(10, 10), node_count=100, radius=2.0, rng=5
    )
    sniffers = sample_sniffers_percentage(net, 20, rng=2)
    fmap = build_fingerprint_map(net.field, net.positions[sniffers],
                                 resolution=2.0)
    return net, sniffers, fmap


def _requests(scenario, count, seed=0, **knobs):
    net, sniffers, _ = scenario
    gen = np.random.default_rng(seed)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    out = []
    for r in range(count):
        truth = net.field.sample_uniform(1, gen)
        flux = simulate_flux(
            net, list(truth), [float(gen.uniform(1.0, 3.0))], rng=gen
        )
        out.append(LocalizeRequest(
            request_id=f"r{r}", client_id="t",
            observation=measure.observe(flux), candidate_count=24,
            seed=int(gen.integers(2**31)), **knobs,
        ))
    return out


@pytest.fixture()
def served(scenario):
    net, sniffers, fmap = scenario
    with LocalizationService(
        net.field, net.positions[sniffers], fingerprint_map=fmap,
        max_batch=8, max_wait_s=0.002,
    ) as service:
        requests = _requests(scenario, 6)
        requests[0] = LocalizeRequest(
            request_id=requests[0].request_id, client_id="t",
            observation=requests[0].observation, candidate_count=24,
            seed=requests[0].seed, span_id="custom-span-0",
        )
        replies = [
            service.submit(r).result(timeout=30) for r in requests
        ]
        yield service, requests, replies


class TestStageDecomposition:
    def test_snapshot_reports_request_path_stages(self, served):
        service, _, replies = served
        assert all(r.ok for r in replies)
        stages = service.metrics.snapshot()["stages"]
        for stage in ("admission", "solve", "reply"):
            assert stage in stages, f"missing stage {stage!r}"
            assert stages[stage]["count"] >= len(replies)
            assert stages[stage]["p95_s"] >= 0.0
        # No gateway in front: its legs must NOT appear.
        assert "gateway_in" not in stages
        assert "gateway_out" not in stages

    def test_trace_durations_sum_to_the_total(self, served):
        service, requests, _ = served
        traces = service.metrics.recent_traces()
        assert len(traces) == len(requests)
        for trace in traces:
            assert trace["ok"] is True
            assert trace["total_s"] == pytest.approx(
                sum(trace["stages"].values())
            )
            assert trace["stages"]["reply"] >= 0.0

    def test_span_id_defaults_to_request_id_and_propagates(self, served):
        service, requests, _ = served
        by_request = {
            t["request_id"]: t for t in service.metrics.recent_traces()
        }
        assert by_request["r0"]["span_id"] == "custom-span-0"
        assert by_request["r1"]["span_id"] == "r1"  # no span set: falls back

    def test_traces_recorded_counter(self, served):
        service, requests, _ = served
        assert service.metrics.traces_recorded == len(requests)


class TestTraceRing:
    def test_ring_is_bounded(self):
        metrics = ServerMetrics(trace_capacity=4)
        for i in range(10):
            metrics.record_trace(f"s{i}", f"r{i}", [("solve", 0.01)])
        traces = metrics.recent_traces()
        assert len(traces) == 4
        assert traces[-1]["request_id"] == "r9"  # newest last
        assert metrics.traces_recorded == 10  # the counter never truncates

    def test_limit_edge_cases(self):
        metrics = ServerMetrics()
        for i in range(3):
            metrics.record_trace(f"s{i}", f"r{i}", [("solve", 0.01)])
        assert metrics.recent_traces(0) == []
        assert len(metrics.recent_traces(2)) == 2
        assert len(metrics.recent_traces(99)) == 3
        assert len(metrics.recent_traces(-1)) == 0

    def test_error_traces_are_marked(self):
        metrics = ServerMetrics()
        metrics.record_trace("s", "r", [("admission", 0.01)], ok=False)
        assert metrics.recent_traces()[0]["ok"] is False


class TestTraceEndpoint:
    def test_http_trace_dump(self, served):
        service, requests, _ = served
        with MetricsServer(metrics=service.metrics, port=0) as endpoint:
            url = f"http://127.0.0.1:{endpoint.port}/trace?limit=3"
            payload = json.loads(
                urllib.request.urlopen(url, timeout=10).read()
            )
            assert len(payload["traces"]) == 3
            assert "solve" in payload["stages"]
            # Ephemeral bind is published in the service snapshot too.
            snap = service.metrics.snapshot()
            assert snap["metrics_endpoint"]["port"] == endpoint.port
        bad = f"http://127.0.0.1:{endpoint.port}/trace"
        with pytest.raises(Exception):
            urllib.request.urlopen(bad, timeout=2)

    def test_trace_404_in_fleet_mode(self, scenario):
        class _FakeFleet:
            def fleet_snapshot(self):
                return {"workers": {}}

            def worker_snapshot(self, worker_id):
                return None

        with MetricsServer(fleet=_FakeFleet(), port=0) as endpoint:
            url = f"http://127.0.0.1:{endpoint.port}/trace"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(url, timeout=10)
