"""Experiment harness and (scaled-down) per-figure runner smoke tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ExperimentResult,
    PaperDefaults,
    format_table,
    run_fig3a,
    run_fig3b,
    run_fig4,
    run_fig5,
    run_fig6a,
    run_fig6b,
    run_fig9,
)


class TestHarness:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_ragged_rows(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "a" in text and "b" in text

    def test_experiment_result_render(self):
        r = ExperimentResult(
            figure="Fig X",
            title="demo",
            rows=[{"v": 1.0}],
            paper_reference="ref text",
        )
        out = r.render()
        assert "Fig X" in out and "ref text" in out

    def test_column_names_ordered(self):
        r = ExperimentResult(
            figure="f", title="t", rows=[{"a": 1, "b": 2}, {"c": 3}]
        )
        assert r.column_names() == ["a", "b", "c"]


class TestPaperDefaults:
    def test_paper_values(self):
        d = PaperDefaults()
        assert d.node_count == 900
        assert d.radius == 2.4
        assert d.candidate_count == 10_000
        assert d.percentages == (40.0, 20.0, 10.0, 5.0)
        assert d.density_node_counts == (900, 1200, 1500, 1800)

    def test_scaled_reduces_budgets(self):
        d = PaperDefaults().scaled(10)
        assert d.candidate_count == 1000
        assert d.prediction_count == 100
        assert d.node_count == 900  # topology unchanged

    def test_scaled_validates(self):
        with pytest.raises(ConfigurationError):
            PaperDefaults().scaled(0.5)


@pytest.mark.slow
class TestRunners:
    """Scaled-down runs of each figure runner (shape checks only)."""

    def test_fig3a(self):
        r = run_fig3a(
            degrees=(12.0,), node_count=900, field_size=30.0, sink_count=1, rng=0
        )
        assert len(r.rows) == 1
        assert 0 <= r.rows[0]["P[err<=0.4]"] <= 1

    def test_fig3b(self):
        r = run_fig3b(node_count=900, field_size=30.0, rng=0)
        assert r.rows
        assert 0 <= r.metadata["flux_fraction_beyond_3_hops"] <= 1

    def test_fig4(self):
        r = run_fig4(user_count=2, node_count=400, rng=1)
        assert 1 <= len(r.rows) <= 2
        for row in r.rows:
            assert row["position_error"] >= 0

    def test_fig5(self):
        defaults = PaperDefaults().scaled(20)
        r = run_fig5(user_counts=(1,), defaults=defaults, rng=2)
        assert r.rows[0]["users"] == 1
        assert r.rows[0]["avg_error"] < 10

    def test_fig6a(self):
        defaults = PaperDefaults().scaled(20)
        r = run_fig6a(
            user_counts=(1,),
            percentages=(20.0,),
            repetitions=1,
            defaults=defaults,
            rng=3,
        )
        assert r.rows[0]["percentage"] == 20.0
        assert "1_user" in r.rows[0]

    def test_fig6b(self):
        defaults = PaperDefaults().scaled(20)
        r = run_fig6b(
            user_counts=(1,),
            node_counts=(900,),
            repetitions=1,
            defaults=defaults,
            rng=4,
        )
        assert r.rows[0]["node_count"] == 900

    def test_fig9(self):
        r = run_fig9(ap_count=200, landmark_count=30, rng=5)
        assert r.rows[0]["landmark_aps"] == 30
        assert r.metadata["landmark_positions"].shape == (30, 2)
