"""NLS search tests: candidates, coordinate descent, pruning, localizer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FittingError
from repro.fingerprint import (
    DiscCandidates,
    GridCandidates,
    NLSLocalizer,
    UniformCandidates,
)
from repro.fingerprint.nls import (
    coordinate_descent,
    enumerate_compositions,
    forward_select_active,
    prune_inactive_users,
)
from repro.fingerprint.objective import FluxObjective
from repro.fluxmodel.discrete import DiscreteFluxModel
from repro.geometry import RectangularField
from repro.traffic.measurement import FluxObservation


@pytest.fixture()
def synthetic_setup():
    """A model + noiseless synthetic observation with 2 known users."""
    field = RectangularField(10, 10)
    gen = np.random.default_rng(5)
    nodes = field.sample_uniform(50, gen)
    model = DiscreteFluxModel(field, nodes, d_floor=0.5)
    truth = np.array([[2.5, 3.0], [7.5, 8.0]])
    thetas = np.array([1.5, 2.5])
    g = model.geometry_kernels(truth)
    values = thetas @ g
    obs = FluxObservation(time=0.0, sniffers=np.arange(50), values=values)
    objective = FluxObjective.from_observation(model, obs)
    return field, model, truth, thetas, objective


class TestCandidateGenerators:
    def test_uniform_inside_field(self):
        field = RectangularField(10, 10)
        pts = UniformCandidates(field).generate(100, np.random.default_rng(0))
        assert pts.shape == (100, 2)
        assert field.contains(pts).all()

    def test_grid_deterministic(self):
        field = RectangularField(10, 10)
        a = GridCandidates(field).generate(49, np.random.default_rng(0))
        b = GridCandidates(field).generate(49, np.random.default_rng(99))
        np.testing.assert_array_equal(a, b)

    def test_grid_jitter_varies(self):
        field = RectangularField(10, 10)
        a = GridCandidates(field, jitter=0.5).generate(49, np.random.default_rng(0))
        b = GridCandidates(field, jitter=0.5).generate(49, np.random.default_rng(1))
        assert not np.array_equal(a, b)

    def test_disc_within_radius(self):
        field = RectangularField(10, 10)
        centers = np.array([[5.0, 5.0]])
        pts = DiscCandidates(field, centers, radius=1.5).generate(
            200, np.random.default_rng(0)
        )
        d = np.hypot(pts[:, 0] - 5, pts[:, 1] - 5)
        assert np.all(d <= 1.5 + 1e-9)

    def test_disc_clipped_to_field(self):
        field = RectangularField(10, 10)
        centers = np.array([[0.2, 0.2]])
        pts = DiscCandidates(field, centers, radius=3.0).generate(
            200, np.random.default_rng(0)
        )
        assert field.contains(pts).all()

    def test_disc_cycles_centers(self):
        field = RectangularField(10, 10)
        centers = np.array([[1.0, 1.0], [9.0, 9.0]])
        pts = DiscCandidates(field, centers, radius=0.1).generate(
            100, np.random.default_rng(0)
        )
        near_a = np.hypot(pts[:, 0] - 1, pts[:, 1] - 1) < 0.2
        near_b = np.hypot(pts[:, 0] - 9, pts[:, 1] - 9) < 0.2
        assert near_a.sum() == 50 and near_b.sum() == 50

    def test_zero_count_raises(self):
        field = RectangularField(10, 10)
        with pytest.raises(ConfigurationError):
            UniformCandidates(field).generate(0, np.random.default_rng(0))


class TestCoordinateDescent:
    def test_finds_users_with_candidates_on_truth(self, synthetic_setup):
        field, model, truth, thetas, objective = synthetic_setup
        gen = np.random.default_rng(2)
        pools = [
            np.vstack([field.sample_uniform(50, gen), truth[j][None, :]])
            for j in range(2)
        ]
        outcome = coordinate_descent(objective, pools, rng=gen)
        found = np.stack(
            [pools[j][outcome.best_indices[j]] for j in range(2)]
        )
        # Each true position found exactly (it is in the pool).
        for t in truth:
            assert np.min(np.linalg.norm(found - t, axis=1)) < 1e-9
        assert outcome.best_objective < 1e-6

    def test_per_user_rankings_have_pool_size(self, synthetic_setup):
        field, model, truth, thetas, objective = synthetic_setup
        gen = np.random.default_rng(3)
        pools = [field.sample_uniform(30, gen) for _ in range(2)]
        outcome = coordinate_descent(objective, pools, rng=gen)
        for j in range(2):
            assert outcome.per_user_objectives[j].shape == (30,)
            assert outcome.per_user_thetas[j].shape == (30,)

    def test_objective_decreases_with_more_candidates(self, synthetic_setup):
        field, model, truth, thetas, objective = synthetic_setup
        objs = []
        for n in (10, 400):
            gen = np.random.default_rng(4)
            pools = [field.sample_uniform(n, gen) for _ in range(2)]
            objs.append(
                coordinate_descent(objective, pools, rng=gen).best_objective
            )
        assert objs[1] <= objs[0]

    def test_init_indices_honored(self, synthetic_setup):
        field, model, truth, thetas, objective = synthetic_setup
        gen = np.random.default_rng(5)
        pools = [truth[j][None, :] for j in range(2)]  # single perfect candidate
        outcome = coordinate_descent(
            objective, pools, rng=gen, init_indices=np.array([0, 0])
        )
        assert outcome.best_objective < 1e-6

    def test_empty_pools_raise(self, synthetic_setup):
        *_, objective = synthetic_setup
        with pytest.raises(ConfigurationError):
            coordinate_descent(objective, [], rng=0)


class TestEnumerate:
    def test_matches_coordinate_descent_on_small_problem(self, synthetic_setup):
        field, model, truth, thetas, objective = synthetic_setup
        gen = np.random.default_rng(6)
        pools = [
            np.vstack([field.sample_uniform(8, gen), truth[j][None, :]])
            for j in range(2)
        ]
        fits = enumerate_compositions(objective, pools, top_m=5)
        assert fits[0].objective < 1e-6
        assert len(fits) == 5
        assert all(
            fits[i].objective <= fits[i + 1].objective for i in range(4)
        )

    def test_refuses_huge_enumerations(self, synthetic_setup):
        field, *_, objective = synthetic_setup
        pools = [np.zeros((2000, 2)) + 5.0 for _ in range(3)]
        with pytest.raises(FittingError):
            enumerate_compositions(objective, pools)


class TestActivitySelection:
    def test_prune_drops_redundant_user(self, synthetic_setup):
        field, model, truth, thetas, objective = synthetic_setup
        kernels = model.geometry_kernels(
            np.vstack([truth, truth[0][None, :]])  # third user duplicates first
        )
        mask, out_thetas, _ = prune_inactive_users(objective, kernels)
        assert mask.sum() == 2
        assert np.all(out_thetas[~mask] == 0)

    def test_prune_keeps_all_real_users(self, synthetic_setup):
        field, model, truth, thetas, objective = synthetic_setup
        kernels = model.geometry_kernels(truth)
        mask, out_thetas, obj = prune_inactive_users(objective, kernels)
        assert mask.all()
        np.testing.assert_allclose(out_thetas, thetas, atol=1e-5)
        assert obj < 1e-6

    def test_forward_select_exact_two_users(self, synthetic_setup):
        field, model, truth, thetas, objective = synthetic_setup
        extra = np.array([[5.0, 1.0], [1.0, 8.0]])
        kernels = model.geometry_kernels(np.vstack([truth, extra]))
        mask, out_thetas, _ = forward_select_active(objective, kernels)
        assert mask[0] and mask[1]
        assert not mask[2] and not mask[3]
        np.testing.assert_allclose(out_thetas[:2], thetas, atol=1e-4)

    def test_forward_select_nothing_on_zero_target(self, synthetic_setup):
        field, model, truth, thetas, objective = synthetic_setup
        zero_obj = FluxObjective(model=model, target=np.zeros(model.node_count))
        kernels = model.geometry_kernels(truth)
        mask, out_thetas, _ = forward_select_active(zero_obj, kernels)
        assert not mask.any()

    def test_bad_tolerances_raise(self, synthetic_setup):
        *_, objective = synthetic_setup
        kernels = np.ones((2, objective.sniffer_count))
        with pytest.raises(ConfigurationError):
            prune_inactive_users(objective, kernels, tolerance=-0.1)
        with pytest.raises(ConfigurationError):
            forward_select_active(objective, kernels, min_improvement=1.0)


class TestNLSLocalizer:
    def test_single_user_synthetic_exact_model(self):
        """On model-generated flux the localizer nails the position."""
        field = RectangularField(10, 10)
        gen = np.random.default_rng(8)
        nodes = field.sample_uniform(60, gen)
        model = DiscreteFluxModel(field, nodes, d_floor=0.5)
        truth = np.array([[4.0, 6.5]])
        values = model.predict(truth, [2.0])
        obs = FluxObservation(time=0.0, sniffers=np.arange(60), values=values)
        loc = NLSLocalizer(field, nodes, d_floor=0.5)
        result = loc.localize(
            obs, user_count=1, candidate_count=3000, restarts=2, rng=9
        )
        err = float(np.linalg.norm(result.best.positions[0] - truth[0]))
        assert err < 0.5

    def test_top_m_ordering(self, small_network):
        from repro.traffic import MeasurementModel, simulate_flux
        from repro.network import sample_sniffers_percentage

        flux = simulate_flux(small_network, [np.array([7.0, 7.0])], [2.0], rng=0)
        sniffers = sample_sniffers_percentage(small_network, 20, rng=1)
        obs = MeasurementModel(small_network, sniffers, smooth=True, rng=2).observe(
            flux
        )
        loc = NLSLocalizer(small_network.field, small_network.positions[sniffers])
        result = loc.localize(obs, user_count=1, candidate_count=500, rng=3)
        objs = [f.objective for f in result.fits]
        assert objs == sorted(objs)
        assert len(result.fits) <= 10

    def test_parameter_validation(self, small_network):
        loc = NLSLocalizer(small_network.field, small_network.positions[:30])
        from repro.traffic.measurement import FluxObservation

        obs = FluxObservation(
            time=0.0, sniffers=np.arange(30), values=np.ones(30)
        )
        with pytest.raises(ConfigurationError):
            loc.localize(obs, user_count=0)
        with pytest.raises(ConfigurationError):
            loc.localize(obs, user_count=1, candidate_count=0)
        with pytest.raises(ConfigurationError):
            loc.localize(obs, user_count=1, top_m=0)

    def test_real_flux_single_user_accuracy(self, paper_network):
        """End-to-end localization error within paper range (one seed)."""
        from repro.network import sample_sniffers_percentage
        from repro.traffic import MeasurementModel, simulate_flux

        gen = np.random.default_rng(33)
        truth = paper_network.field.sample_uniform(1, gen)
        flux = simulate_flux(paper_network, list(truth), [2.0], rng=gen)
        sniffers = sample_sniffers_percentage(paper_network, 10, rng=gen)
        obs = MeasurementModel(
            paper_network, sniffers, smooth=True, rng=gen
        ).observe(flux)
        loc = NLSLocalizer(paper_network.field, paper_network.positions[sniffers])
        result = loc.localize(
            obs, user_count=1, candidate_count=2000, restarts=2, rng=gen
        )
        assert float(result.errors_to(truth)[0]) < 4.0
