"""The gateway wire protocol, no sockets involved.

Frames must round-trip bitwise (JSON repr floats), carry non-finite
values as ``null`` exactly like the JSONL archive format, and turn
every malformed input into a :class:`~repro.errors.ProtocolError` —
the server's guarantee that garbage on the wire becomes a typed error
frame, never a crash.
"""

import json
import math

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.gateway import protocol
from repro.serve.requests import ErrorReply
from repro.traffic.measurement import FluxObservation


def _observation(values):
    return FluxObservation(
        time=1.5,
        sniffers=np.array([0, 3, 7], dtype=np.int64),
        values=np.asarray(values, dtype=float),
    )


class TestFraming:
    def test_encode_is_one_terminated_line(self):
        data = protocol.encode_frame({"type": "ping", "id": 1})
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1
        assert protocol.decode_frame(data) == {"type": "ping", "id": 1}

    def test_round_trip_preserves_floats_bitwise(self):
        values = [0.1 + 0.2, 1e-300, math.pi, -1.0 / 3.0]
        frame = {"type": "x", "values": values}
        decoded = protocol.decode_frame(protocol.encode_frame(frame))
        for sent, received in zip(values, decoded["values"]):
            assert sent == received
            assert math.copysign(1, sent) == math.copysign(1, received)

    def test_garbage_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"{not json\n")

    def test_non_object_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"[1, 2, 3]\n")

    def test_missing_type_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b'{"id": 1}\n')
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b'{"type": 7}\n')

    def test_overlong_frame_is_a_protocol_error(self):
        line = b" " * (protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError):
            protocol.decode_frame(line)


class TestObservationWire:
    def test_round_trip_is_bitwise(self):
        obs = _observation([1.25, -0.75, 3.0e-7])
        back = protocol.observation_from_wire(protocol.observation_to_wire(obs))
        assert back.time == obs.time
        assert np.array_equal(back.sniffers, obs.sniffers)
        assert np.array_equal(back.values, obs.values)

    def test_non_finite_values_travel_as_null(self):
        obs = _observation([1.0, float("nan"), float("inf")])
        wire = protocol.observation_to_wire(obs)
        # The wire dict must be strict-JSON serializable as-is.
        text = json.dumps(wire, allow_nan=False)
        assert "null" in text
        back = protocol.observation_from_wire(json.loads(text))
        assert back.values[0] == 1.0
        assert np.isnan(back.values[1]) and np.isnan(back.values[2])

    def test_bad_shapes_are_protocol_errors(self):
        with pytest.raises(ProtocolError):
            protocol.observation_from_wire(None)
        with pytest.raises(ProtocolError):
            protocol.observation_from_wire({"sniffers": [1]})  # no time
        with pytest.raises(ProtocolError):
            protocol.observation_from_wire(
                {"time": "soon", "sniffers": [1], "values": [1.0]}
            )


class TestRequestFrames:
    def _localize_frame(self, **extra):
        frame = {
            "type": "localize",
            "id": "r1",
            "observation": protocol.observation_to_wire(_observation([1, 2, 3])),
        }
        frame.update(extra)
        return frame

    def test_localize_knobs_pass_through(self):
        request = protocol.localize_request_from_frame(
            self._localize_frame(candidate_count=48, seed=9, use_map=False),
            client_id="conn-1",
            span_id="gw-1-r1",
        )
        assert request.request_id == "r1"
        assert request.client_id == "conn-1"
        assert request.candidate_count == 48
        assert request.seed == 9
        assert request.use_map is False
        assert request.span_id == "gw-1-r1"

    def test_frame_client_id_wins_over_connection(self):
        request = protocol.localize_request_from_frame(
            self._localize_frame(client_id="analyst"), client_id="conn-1"
        )
        assert request.client_id == "analyst"

    def test_missing_id_is_a_protocol_error(self):
        frame = self._localize_frame()
        del frame["id"]
        with pytest.raises(ProtocolError):
            protocol.localize_request_from_frame(frame, "conn-1")

    def test_missing_observation_is_a_protocol_error(self):
        frame = self._localize_frame()
        del frame["observation"]
        with pytest.raises(ProtocolError):
            protocol.localize_request_from_frame(frame, "conn-1")

    def test_bad_knob_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            protocol.localize_request_from_frame(
                self._localize_frame(candidate_count=-5), "conn-1"
            )

    def test_track_step_frame(self):
        frame = {
            "type": "track_step",
            "id": 7,  # numeric ids are accepted and stringified
            "session_id": "s",
            "observation": protocol.observation_to_wire(_observation([1, 2, 3])),
        }
        request = protocol.track_request_from_frame(frame, "conn-2")
        assert request.request_id == "7"
        assert request.session_id == "s"


class TestReplyFrames:
    def test_error_reply_becomes_typed_error_frame(self):
        frame = protocol.reply_to_frame(
            ErrorReply(request_id="r1", client_id="c",
                       code="admission_rejected", message="busy"),
            span_id="gw-1-r1",
        )
        assert frame["type"] == "error"
        assert frame["ok"] is False
        assert frame["code"] == "admission_rejected"
        assert frame["span_id"] == "gw-1-r1"
        assert frame["latency_s"] is None  # NaN travels as null

    def test_unframeable_reply_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            protocol.reply_to_frame(object())

    def test_wire_error_frame_shape(self):
        frame = protocol.error_frame("r9", protocol.ERROR_BAD_FRAME, "nope")
        assert frame == {
            "type": "error", "id": "r9", "ok": False,
            "code": "bad_frame", "message": "nope",
        }
