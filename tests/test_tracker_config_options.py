"""Tracker configuration options: resampling scheme, adaptive budgets."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network import sample_sniffers_percentage
from repro.smc import SequentialMonteCarloTracker, TrackerConfig
from repro.traffic import MeasurementModel, simulate_flux


def _track_once(small_network, config, rounds=3, seed=0):
    gen = np.random.default_rng(seed)
    sniffers = sample_sniffers_percentage(small_network, 20, rng=gen)
    tracker = SequentialMonteCarloTracker(
        small_network.field,
        small_network.positions[sniffers],
        user_count=1,
        config=config,
        rng=gen,
    )
    truth = np.array([5.0, 10.0])
    mm = MeasurementModel(small_network, sniffers, smooth=True, rng=gen)
    for t in range(rounds):
        flux = simulate_flux(small_network, [truth], [2.0], rng=t)
        tracker.step(mm.observe(flux, time=float(t)))
    return tracker, truth


class TestResamplingOption:
    @pytest.mark.parametrize("scheme", ["multinomial", "systematic", "residual"])
    def test_all_schemes_track(self, small_network, scheme):
        cfg = TrackerConfig(
            prediction_count=200, keep_count=10, max_speed=3.0,
            resampling=scheme,
        )
        tracker, truth = _track_once(small_network, cfg, rounds=4)
        err = np.linalg.norm(tracker.estimates()[0] - truth)
        assert err < 5.0

    def test_invalid_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            TrackerConfig(resampling="quantum")


class TestAdaptiveOption:
    def test_adaptive_uses_fewer_samples_when_converged(self, small_network):
        cfg = TrackerConfig(
            prediction_count=800, keep_count=10, max_speed=3.0,
            adaptive_predictions=True,
        )
        tracker, truth = _track_once(small_network, cfg, rounds=5, seed=3)
        # After convergence the posterior is tight; the adaptive budget
        # must be far below the 800 cap at least once.
        # (Indirect check: the tracker still works and estimates well.)
        err = np.linalg.norm(tracker.estimates()[0] - truth)
        assert err < 5.0

    def test_adaptive_flag_default_off(self):
        assert TrackerConfig().adaptive_predictions is False


class TestTrackerStepContents:
    def test_sample_sets_snapshot(self, small_network):
        cfg = TrackerConfig(prediction_count=150, keep_count=10, max_speed=3.0)
        tracker, _ = _track_once(small_network, cfg, rounds=2)
        step = tracker.history[-1]
        assert len(step.sample_sets) == 1
        assert step.sample_sets[0].count == 10

    def test_estimates_match_samples(self, small_network):
        cfg = TrackerConfig(prediction_count=150, keep_count=10, max_speed=3.0)
        tracker, _ = _track_once(small_network, cfg, rounds=2)
        step = tracker.history[-1]
        np.testing.assert_allclose(
            step.estimates[0], step.sample_sets[0].estimate()
        )

    def test_objective_finite_when_active(self, small_network):
        cfg = TrackerConfig(prediction_count=150, keep_count=10, max_speed=3.0)
        tracker, _ = _track_once(small_network, cfg, rounds=2)
        actives = [s for s in tracker.history if s.active.any()]
        assert actives
        assert all(np.isfinite(s.objective) for s in actives)
