"""Synthetic trace pipeline tests: APs, generation, parsing, conversion."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.geometry import RectangularField
from repro.mobility import Trajectory
from repro.traces import (
    SyntheticTraceConfig,
    build_synthetic_dataset,
    generate_campus_aps,
    generate_syslog_records,
    parse_syslog_records,
    select_rectangular_region,
    associations_to_trajectory,
    scale_to_field,
)
from repro.traces.mobility_convert import intercept_and_compress


class TestAps:
    def test_count_and_bounds(self):
        aps = generate_campus_aps(count=120, campus_extent=100.0, rng=0)
        assert len(aps) == 120
        pos = np.array([ap.position for ap in aps])
        assert np.all(pos >= 0) and np.all(pos <= 100)

    def test_names_unique(self):
        aps = generate_campus_aps(count=80, rng=0)
        assert len({ap.name for ap in aps}) == 80

    def test_clustered_by_building(self):
        aps = generate_campus_aps(count=200, building_count=10, rng=0)
        buildings = {ap.building for ap in aps}
        assert len(buildings) <= 10

    def test_select_region_count(self):
        aps = generate_campus_aps(count=300, rng=1)
        selected, rect = select_rectangular_region(aps, target_count=50)
        assert len(selected) == 50
        xmin, ymin, xmax, ymax = rect
        for ap in selected:
            assert xmin <= ap.position[0] <= xmax
            assert ymin <= ap.position[1] <= ymax

    def test_select_too_many_raises(self):
        aps = generate_campus_aps(count=10, rng=0)
        with pytest.raises(ConfigurationError):
            select_rectangular_region(aps, target_count=20)


class TestSyntheticRecords:
    def test_format(self):
        aps = generate_campus_aps(count=30, rng=0)
        lines = generate_syslog_records(aps, user_count=3, rng=1)
        assert lines
        for line in lines[:50]:
            parts = line.split("\t")
            assert len(parts) == 4
            int(parts[0])
            assert parts[3] in ("assoc", "reassoc", "disassoc")

    def test_time_sorted(self):
        aps = generate_campus_aps(count=30, rng=0)
        lines = generate_syslog_records(aps, user_count=3, rng=1)
        times = [int(l.split("\t")[0]) for l in lines]
        assert times == sorted(times)

    def test_user_count_macs(self):
        aps = generate_campus_aps(count=30, rng=0)
        lines = generate_syslog_records(aps, user_count=4, rng=1)
        macs = {l.split("\t")[1] for l in lines}
        assert len(macs) == 4

    def test_horizon_respected(self):
        aps = generate_campus_aps(count=30, rng=0)
        cfg = SyntheticTraceConfig(horizon=10_000.0)
        lines = generate_syslog_records(aps, user_count=2, config=cfg, rng=1)
        assert max(int(l.split("\t")[0]) for l in lines) <= 10_000

    def test_locality_of_hops(self):
        """Consecutive APs in a session are spatially close on average."""
        aps = generate_campus_aps(count=100, campus_extent=300.0, rng=0)
        positions = {ap.name: np.array(ap.position) for ap in aps}
        lines = generate_syslog_records(aps, user_count=2, rng=1)
        parsed = parse_syslog_records(lines)
        hop_dists = []
        for seq in parsed.values():
            for (t1, a1), (t2, a2) in zip(seq, seq[1:]):
                if t2 - t1 < 6 * 3600:  # same session
                    hop_dists.append(
                        np.linalg.norm(positions[a1] - positions[a2])
                    )
        assert np.median(hop_dists) < 150.0  # far below uniform expectation

    def test_bad_user_count_raises(self):
        aps = generate_campus_aps(count=10, rng=0)
        with pytest.raises(ConfigurationError):
            generate_syslog_records(aps, user_count=0)


class TestParser:
    def test_roundtrip(self):
        aps = generate_campus_aps(count=20, rng=0)
        lines = generate_syslog_records(aps, user_count=2, rng=1)
        parsed = parse_syslog_records(lines)
        assert len(parsed) == 2
        for seq in parsed.values():
            times = [t for t, _ in seq]
            assert times == sorted(times)

    def test_disassoc_excluded_by_default(self):
        lines = [
            "100\tmac1\tAP1\tassoc",
            "200\tmac1\tAP1\tdisassoc",
        ]
        parsed = parse_syslog_records(lines)
        assert len(parsed["mac1"]) == 1

    def test_blank_and_comment_lines_skipped(self):
        lines = ["", "# comment", "100\tm\tA\tassoc"]
        assert len(parse_syslog_records(lines)["m"]) == 1

    def test_malformed_line_raises_with_lineno(self):
        with pytest.raises(TraceError, match="line 2"):
            parse_syslog_records(["100\tm\tA\tassoc", "bad line"])

    def test_bad_timestamp_raises(self):
        with pytest.raises(TraceError):
            parse_syslog_records(["xx\tm\tA\tassoc"])

    def test_unknown_event_raises(self):
        with pytest.raises(TraceError):
            parse_syslog_records(["100\tm\tA\tteleport"])

    def test_empty_input_raises(self):
        with pytest.raises(TraceError):
            parse_syslog_records([])


class TestConversion:
    def test_associations_to_trajectory(self):
        positions = {"A": (0.0, 0.0), "B": (10.0, 0.0)}
        traj = associations_to_trajectory(
            [(0.0, "A"), (10.0, "B"), (20.0, "A")], positions
        )
        assert traj.times.size == 3
        np.testing.assert_allclose(traj.positions[1], [10.0, 0.0])

    def test_unknown_ap_dropped(self):
        positions = {"A": (0.0, 0.0), "B": (1.0, 1.0)}
        traj = associations_to_trajectory(
            [(0.0, "A"), (5.0, "X"), (10.0, "B")], positions
        )
        assert traj.times.size == 2

    def test_unknown_ap_raises_when_strict(self):
        with pytest.raises(TraceError):
            associations_to_trajectory(
                [(0.0, "X"), (1.0, "X")], {"A": (0.0, 0.0)}, drop_unknown=False
            )

    def test_too_few_points_raises(self):
        with pytest.raises(TraceError):
            associations_to_trajectory([(0.0, "A")], {"A": (0.0, 0.0)})

    def test_duplicate_timestamps_deduplicated(self):
        positions = {"A": (0.0, 0.0), "B": (1.0, 1.0)}
        traj = associations_to_trajectory(
            [(0.0, "A"), (0.0, "B"), (5.0, "A")], positions
        )
        assert traj.times.size == 2
        np.testing.assert_allclose(traj.positions[0], [1.0, 1.0])

    def test_scale_to_field(self):
        field = RectangularField(30, 30)
        traj = Trajectory(
            times=np.array([0.0, 1.0]),
            positions=np.array([[100.0, 200.0], [110.0, 220.0]]),
        )
        scaled = scale_to_field(traj, (100.0, 200.0, 110.0, 220.0), field)
        np.testing.assert_allclose(scaled.positions[0], [0.0, 0.0])
        np.testing.assert_allclose(scaled.positions[1], [30.0, 30.0])

    def test_scale_degenerate_rect_raises(self):
        field = RectangularField(30, 30)
        traj = Trajectory(
            times=np.array([0.0, 1.0]), positions=np.zeros((2, 2))
        )
        with pytest.raises(ConfigurationError):
            scale_to_field(traj, (0.0, 0.0, 0.0, 10.0), field)

    def test_intercept_and_compress(self):
        traj = Trajectory(
            times=np.linspace(0, 1000, 11),
            positions=np.column_stack([np.linspace(0, 10, 11), np.zeros(11)]),
        )
        out = intercept_and_compress(traj, segment_duration=500, compression=100)
        assert out.times[0] == 0.0
        assert out.duration == pytest.approx(5.0)

    def test_intercept_start_fraction(self):
        traj = Trajectory(
            times=np.linspace(0, 1000, 11),
            positions=np.column_stack([np.linspace(0, 10, 11), np.zeros(11)]),
        )
        early = intercept_and_compress(traj, 200, 100, start_fraction=0.0)
        late = intercept_and_compress(traj, 200, 100, start_fraction=1.0)
        assert early.positions[0, 0] == pytest.approx(0.0)
        assert late.positions[0, 0] == pytest.approx(8.0)


class TestDataset:
    def test_build_and_usable(self):
        ds = build_synthetic_dataset(user_count=10, ap_count=100, rng=0)
        assert len(ds.aps) == 50
        assert len(ds.associations) == 10
        macs = ds.usable_macs(min_in_region_events=2)
        assert len(macs) >= 5

    def test_trajectories_within_field(self):
        ds = build_synthetic_dataset(user_count=10, ap_count=100, rng=0)
        field = RectangularField(30, 30)
        macs = ds.usable_macs(min_in_region_events=4)[:3]
        trajs = ds.trajectories_for(macs, field, rng=1)
        assert len(trajs) == 3
        for tr in trajs:
            assert field.contains(tr.positions).all()
            assert tr.times[0] == pytest.approx(0.0)

    def test_unknown_mac_raises(self):
        ds = build_synthetic_dataset(user_count=4, ap_count=60, rng=0)
        field = RectangularField(30, 30)
        with pytest.raises(TraceError):
            ds.trajectories_for(["nope"], field)

    def test_empty_macs_raise(self):
        ds = build_synthetic_dataset(user_count=4, ap_count=60, rng=0)
        with pytest.raises(ConfigurationError):
            ds.trajectories_for([], RectangularField(30, 30))
