"""Unit tests of the repro.faults primitives: plans, clock, retries.

The chaos harness (tests/chaos/) exercises these against the full
pipeline; here each primitive's own contract is pinned down —
determinism, counting, JSON round-trips, bounded backoff, and the
zero-overhead-disarmed fast path.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FaultInjected, RetriesExhausted
from repro.faults import (
    KNOWN_SITES,
    FakeClock,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    active_plan,
    call_with_retry,
    clock,
    injected,
    should_fire,
    torn_observation,
    wrap_observation_stream,
)
from repro.traffic.measurement import FluxObservation

SITE = "engine.kernel.transient"


class TestFaultSpec:
    def test_defaults_are_single_transient(self):
        spec = FaultSpec(SITE)
        assert spec.times == 1
        assert spec.probability == 1.0
        assert spec.skip == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"times": 0},
            {"probability": 0.0},
            {"probability": 1.5},
            {"delay_s": -1.0},
            {"skip": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultSpec(SITE, **kwargs)

    def test_empty_site_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("")


class TestFaultPlan:
    def test_unknown_site_rejected_strict(self):
        with pytest.raises(ConfigurationError, match="unknown fault site"):
            FaultPlan([FaultSpec("no.such.site")])

    def test_unknown_site_allowed_lax(self):
        plan = FaultPlan([FaultSpec("custom.site")], strict=False)
        assert plan.should_fire("custom.site") is not None

    def test_duplicate_site_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            FaultPlan([FaultSpec(SITE), FaultSpec(SITE)])

    def test_times_budget(self):
        plan = FaultPlan([FaultSpec(SITE, times=2)])
        outcomes = [plan.should_fire(SITE) is not None for _ in range(5)]
        assert outcomes == [True, True, False, False, False]
        assert plan.fired(SITE) == 2
        assert plan.opportunities(SITE) == 5

    def test_skip_defers_firing(self):
        plan = FaultPlan([FaultSpec(SITE, times=1, skip=3)])
        outcomes = [plan.should_fire(SITE) is not None for _ in range(5)]
        assert outcomes == [False, False, False, True, False]

    def test_unlimited_times(self):
        plan = FaultPlan([FaultSpec(SITE, times=None)])
        assert all(plan.should_fire(SITE) is not None for _ in range(10))

    def test_unlisted_site_never_fires(self):
        plan = FaultPlan([FaultSpec(SITE)])
        assert plan.should_fire("serve.batch.fuse") is None
        assert plan.opportunities("serve.batch.fuse") == 0

    def test_probability_deterministic_per_seed(self):
        def firing_pattern(seed):
            plan = FaultPlan(
                [FaultSpec(SITE, times=None, probability=0.5)], seed=seed
            )
            return [plan.should_fire(SITE) is not None for _ in range(32)]

        assert firing_pattern(7) == firing_pattern(7)
        assert firing_pattern(7) != firing_pattern(8)
        assert any(firing_pattern(7))
        assert not all(firing_pattern(7))

    def test_sites_draw_independent_streams(self):
        plan = FaultPlan(
            [
                FaultSpec(SITE, times=None, probability=0.5),
                FaultSpec("serve.batch.fuse", times=None, probability=0.5),
            ],
            seed=3,
        )
        a = [plan.should_fire(SITE) is not None for _ in range(64)]
        b = [plan.should_fire("serve.batch.fuse") is not None
             for _ in range(64)]
        assert a != b  # crc32(site) separates the streams

    def test_json_round_trip(self):
        plan = FaultPlan(
            [FaultSpec(SITE, times=3, probability=0.25, delay_s=0.5, skip=2)],
            seed=99,
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.seed == 99
        assert restored.spec(SITE) == plan.spec(SITE)

    def test_save_load(self, tmp_path):
        path = tmp_path / "plan.json"
        FaultPlan([FaultSpec(SITE)], seed=4).save(path)
        assert FaultPlan.load(path).seed == 4

    def test_load_missing_is_typed(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            FaultPlan.load(tmp_path / "absent.json")

    def test_load_garbage_is_typed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match=str(path)):
            FaultPlan.load(path)

    def test_summary_is_json_ready(self):
        plan = FaultPlan([FaultSpec(SITE, times=1)])
        plan.should_fire(SITE)
        plan.should_fire(SITE)
        assert plan.summary() == {
            SITE: {"fired": 1, "opportunities": 2}
        }


class TestArming:
    def test_disarmed_by_default(self):
        assert active_plan() is None
        assert should_fire(SITE) is None

    def test_injected_scopes_the_plan(self):
        plan = FaultPlan([FaultSpec(SITE)])
        with injected(plan):
            assert active_plan() is plan
            assert should_fire(SITE) is not None
        assert active_plan() is None

    def test_injected_none_is_noop(self):
        with injected(None):
            assert active_plan() is None

    def test_injected_restores_on_error(self):
        plan = FaultPlan([FaultSpec(SITE)])
        with pytest.raises(RuntimeError):
            with injected(plan):
                raise RuntimeError("boom")
        assert active_plan() is None

    def test_all_known_sites_are_wired(self):
        # Every registry entry corresponds to a real call site; grepping
        # the source keeps the table and the code from drifting apart.
        import pathlib

        import repro

        root = pathlib.Path(repro.__file__).parent
        source = "\n".join(
            p.read_text()
            for p in root.rglob("*.py")
            if p.name != "plan.py"  # the registry itself doesn't count
        )
        for site in KNOWN_SITES:
            assert f'"{site}"' in source, f"{site} has no call site"


class TestClock:
    def test_system_clock_is_default(self):
        assert clock.current_clock() is clock.SYSTEM

    def test_fake_clock_advances_on_sleep(self):
        fake = FakeClock(start=100.0)
        fake.sleep(2.5)
        assert fake.monotonic() == 102.5
        assert fake.sleeps == [2.5]

    def test_installed_scopes_and_restores(self):
        fake = FakeClock()
        with clock.installed(fake):
            assert clock.monotonic() == 0.0
            fake.advance(5.0)
            assert clock.monotonic() == 5.0
        assert clock.current_clock() is clock.SYSTEM


class TestRetryPolicy:
    def test_backoff_curve_is_capped(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.01,
                             multiplier=2.0, max_delay_s=0.03, jitter=0.0)
        delays = [policy.delay_s(k) for k in range(4)]
        assert delays == [0.01, 0.02, 0.03, 0.03]

    def test_jitter_draws_from_given_rng_only(self):
        policy = RetryPolicy(jitter=0.5)
        assert policy.delay_s(0) == policy.base_delay_s  # no rng: exact
        rng = np.random.default_rng(0)
        jittered = policy.delay_s(0, rng)
        assert 0.5 * policy.base_delay_s <= jittered <= 1.5 * policy.base_delay_s

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -1.0},
            {"multiplier": 0.5},
            {"max_delay_s": 0.001, "base_delay_s": 0.01},
            {"jitter": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestCallWithRetry:
    def test_success_needs_no_clock(self):
        policy = RetryPolicy(max_attempts=3)
        assert call_with_retry(lambda: 42, policy) == 42

    def test_transient_absorbed(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise FaultInjected("transient")
            return "ok"

        fake = FakeClock()
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.01,
                             multiplier=2.0, max_delay_s=1.0, jitter=0.0)
        assert call_with_retry(flaky, policy, clock=fake) == "ok"
        assert len(attempts) == 3
        assert fake.sleeps == [0.01, 0.02]

    def test_exhaustion_is_typed_and_chained(self):
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0,
                             max_delay_s=0.0)
        with pytest.raises(RetriesExhausted, match="2 attempts") as info:
            call_with_retry(
                lambda: (_ for _ in ()).throw(FaultInjected("still down")),
                policy, clock=FakeClock(), label="unit op",
            )
        assert isinstance(info.value.__cause__, FaultInjected)
        assert "unit op" in str(info.value)

    def test_non_transient_propagates_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("a bug, not weather")

        with pytest.raises(ValueError):
            call_with_retry(broken, RetryPolicy(max_attempts=5),
                            clock=FakeClock())
        assert len(calls) == 1

    def test_on_retry_observer(self):
        seen = []

        def flaky():
            if not seen:
                raise FaultInjected("once")
            return 1

        call_with_retry(
            flaky, RetryPolicy(max_attempts=2, base_delay_s=0.0,
                               max_delay_s=0.0),
            clock=FakeClock(),
            on_retry=lambda attempt, exc: seen.append((attempt, type(exc))),
        )
        assert seen == [(0, FaultInjected)]

    def test_uses_installed_clock_by_default(self):
        fake = FakeClock()
        with clock.installed(fake):
            flag = []

            def flaky():
                if not flag:
                    flag.append(1)
                    raise FaultInjected("once")
                return 1

            call_with_retry(
                flaky,
                RetryPolicy(max_attempts=2, base_delay_s=3.0,
                            max_delay_s=3.0, jitter=0.0),
            )
        assert fake.sleeps == [3.0]


def _observation(t, n=6):
    values = np.linspace(1.0, 2.0, n)
    return FluxObservation(
        time=float(t), sniffers=np.arange(n), values=values,
        raw_values=values.copy(),
    )


class TestStreamInjection:
    def test_torn_observation_halves_readings(self):
        obs = _observation(1.0, n=6)
        torn = torn_observation(obs)
        assert torn.sniffers.shape == (3,)
        assert torn.values.shape == (3,)
        assert torn.time == obs.time
        assert obs.sniffers.shape == (6,)  # original untouched

    def test_wrap_is_identity_when_disarmed(self):
        source = [_observation(t) for t in range(3)]
        assert wrap_observation_stream(source) is source

    def test_duplicate_and_torn(self):
        source = [_observation(t) for t in range(1, 5)]
        plan = FaultPlan([
            FaultSpec("stream.source.duplicate", times=1),
            FaultSpec("stream.source.torn", times=1, skip=2),
        ])
        with injected(plan):
            out = list(wrap_observation_stream(source))
        # Window 1 duplicated; window 3 (skip=2) torn and the intact
        # copy lost; windows 2 and 4 untouched.
        times = [o.time for o in out]
        arities = [o.sniffers.shape[0] for o in out]
        assert times == [1.0, 1.0, 2.0, 3.0, 4.0]
        assert arities == [6, 6, 6, 3, 6]

    def test_stall_sleeps_on_faults_clock(self):
        fake = FakeClock()
        source = [_observation(1.0)]
        plan = FaultPlan(
            [FaultSpec("stream.source.stall", times=1, delay_s=4.0)]
        )
        with clock.installed(fake), injected(plan):
            out = list(wrap_observation_stream(source))
        assert len(out) == 1
        assert fake.sleeps == [4.0]
