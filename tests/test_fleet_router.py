"""Fleet router end-to-end: routing, parity, metrics, HTTP endpoint."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServeError
from repro.fleet import ServeFleet
from repro.fpmap import build_fingerprint_map
from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage
from repro.serve import (
    ERROR_SHUTDOWN,
    ERROR_UNKNOWN_SESSION,
    LocalizationService,
    LocalizeRequest,
    MetricsServer,
    ServerMetrics,
    TrackStepRequest,
)
from repro.traffic import MeasurementModel, simulate_flux

USERS = 2
STEPS = 4


@pytest.fixture(scope="module")
def scenario():
    net = build_network(
        field=RectangularField(8, 8), node_count=64, radius=2.0, rng=11
    )
    sniffers = sample_sniffers_percentage(net, 25, rng=3)
    fmap = build_fingerprint_map(
        net.field, net.positions[sniffers], resolution=1.0
    )
    gen = np.random.default_rng(17)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    localizes = []
    for r in range(6):
        truth = net.field.sample_uniform(1, gen)
        flux = simulate_flux(
            net, list(truth), [float(gen.uniform(1.0, 3.0))], rng=gen
        )
        localizes.append(LocalizeRequest(
            request_id=f"r{r}", client_id=f"c{r % 3}",
            observation=measure.observe(flux), candidate_count=24,
            seed=int(gen.integers(2**31)),
        ))
    truth = net.field.sample_uniform(USERS, gen)
    stream = [
        measure.observe(
            simulate_flux(net, list(truth), [1.5, 2.5], rng=gen),
            time=float(step),
        )
        for step in range(STEPS)
    ]
    return net, sniffers, fmap, localizes, stream


def _fleet(scenario, workers=2, **kwargs):
    net, sniffers, fmap, _, _ = scenario
    return ServeFleet(
        net.field, net.positions[sniffers], workers=workers,
        fingerprint_map=fmap, max_batch=8, max_wait_s=0.001, **kwargs
    )


def _steps(stream, session_id="s0"):
    return [
        TrackStepRequest(
            request_id=f"{session_id}-t{i}", client_id="tracker",
            session_id=session_id, observation=obs,
        )
        for i, obs in enumerate(stream)
    ]


def _fit_payload(reply):
    return [
        (f.positions.tobytes(), f.thetas.tobytes(), float(f.objective))
        for f in reply.result.fits
    ]


class TestEndToEnd:
    def test_two_workers_serve_localize_and_track(self, scenario):
        _, _, _, localizes, stream = scenario
        with _fleet(scenario) as fleet:
            assert sorted(fleet.worker_ids) == [0, 1]
            fleet.open_session("s0", USERS, seed=7)
            assert fleet.session_ids == ["s0"]
            futures = [fleet.submit(r) for r in localizes]
            replies = [f.result(timeout=120) for f in futures]
            track = [
                fleet.call(r, timeout=120) for r in _steps(stream)
            ]
        assert all(r.ok for r in replies)
        assert [r.request_id for r in replies] == [
            r.request_id for r in localizes
        ]
        assert all(r.ok and r.step is not None for r in track)

    def test_localize_affinity_follows_the_ring(self, scenario):
        from repro.fleet import ConsistentHashRing

        _, _, _, localizes, _ = scenario
        # The router places localize traffic by ring.owner(client_id);
        # an external ring with the same nodes predicts every route.
        ring = ConsistentHashRing([0, 1])
        expected = {}
        for request in localizes:
            owner = ring.owner(request.client_id)
            expected[owner] = expected.get(owner, 0) + 1
        with _fleet(scenario) as fleet:
            for request in localizes:
                fleet.call(request, timeout=120)
            snapshot = fleet.fleet_snapshot()
        routed = snapshot["router"]["routed"]
        assert {int(k): v for k, v in routed.items()} == expected


class TestSingleProcessParity:
    def test_localize_replies_bitwise_match_single_service(self, scenario):
        net, sniffers, fmap, localizes, _ = scenario
        with _fleet(scenario) as fleet:
            fleet_replies = [
                _fit_payload(fleet.call(r, timeout=120)) for r in localizes
            ]
        with LocalizationService(
            net.field, net.positions[sniffers], fingerprint_map=fmap,
            max_batch=8, max_wait_s=0.001,
        ) as service:
            solo_replies = [
                _fit_payload(service.call(r, timeout=120))
                for r in localizes
            ]
        assert fleet_replies == solo_replies

    def test_track_stream_bitwise_matches_single_service(self, scenario):
        net, sniffers, fmap, _, stream = scenario
        with _fleet(scenario) as fleet:
            fleet.open_session("s0", USERS, seed=7)
            fleet_estimates = [
                fleet.call(r, timeout=120).estimates.tobytes()
                for r in _steps(stream)
            ]
        with LocalizationService(
            net.field, net.positions[sniffers], fingerprint_map=fmap,
            max_batch=8, max_wait_s=0.001,
        ) as service:
            service.open_session("s0", USERS, rng=7)
            solo_estimates = [
                service.call(r, timeout=120).estimates.tobytes()
                for r in _steps(stream)
            ]
        assert fleet_estimates == solo_estimates


class TestSessionsAndErrors:
    def test_unknown_session_is_a_typed_error(self, scenario):
        _, _, _, _, stream = scenario
        with _fleet(scenario) as fleet:
            reply = fleet.submit(_steps(stream, "ghost")[0]).result(
                timeout=60
            )
        assert not reply.ok
        assert reply.code == ERROR_UNKNOWN_SESSION
        with pytest.raises(ServeError):
            raise reply.to_exception()

    def test_duplicate_session_refused(self, scenario):
        with _fleet(scenario) as fleet:
            fleet.open_session("s0", USERS)
            with pytest.raises(ConfigurationError):
                fleet.open_session("s0", USERS)

    def test_close_session_frees_the_id(self, scenario):
        with _fleet(scenario) as fleet:
            fleet.open_session("s0", USERS)
            fleet.close_session("s0")
            assert fleet.session_ids == []
            fleet.open_session("s0", USERS)

    def test_submit_after_stop_is_shutdown_error(self, scenario):
        _, _, _, localizes, _ = scenario
        fleet = _fleet(scenario)
        fleet.start()
        fleet.stop()
        reply = fleet.submit(localizes[0]).result(timeout=60)
        assert not reply.ok and reply.code == ERROR_SHUTDOWN

    def test_migrate_session_moves_ownership(self, scenario):
        _, _, _, _, stream = scenario
        with _fleet(scenario) as fleet:
            fleet.open_session("s0", USERS, seed=7)
            owner = fleet.session_owner("s0")
            target = next(w for w in fleet.worker_ids if w != owner)
            fleet.call(_steps(stream)[0], timeout=120)
            fleet.migrate_session("s0", target)
            assert fleet.session_owner("s0") == target
            reply = fleet.call(_steps(stream)[1], timeout=120)
            assert reply.ok
            assert fleet.fleet_snapshot()["router"]["migrations"] == 1


class TestMetricsAggregation:
    def test_fleet_snapshot_sums_worker_counters(self, scenario):
        import time

        _, _, _, localizes, _ = scenario
        with _fleet(scenario) as fleet:
            for request in localizes:
                fleet.call(request, timeout=120)
            # The worker records replies_ok just after resolving the
            # future that ships the reply, so give its counter a beat.
            deadline = time.monotonic() + 10.0
            while True:
                snapshot = fleet.fleet_snapshot()
                ok = snapshot["aggregate"]["replies_ok"]
                if ok == len(localizes) or time.monotonic() > deadline:
                    break
                time.sleep(0.05)
        workers = snapshot["workers"]
        aggregate = snapshot["aggregate"]
        assert aggregate["workers_reporting"] == 2
        assert aggregate["workers_unreachable"] == 0
        summed = sum(
            w["metrics"]["replies_ok"] for w in workers.values()
        )
        assert aggregate["replies_ok"] == summed == len(localizes)
        assert snapshot["router"]["replies_ok"] == len(localizes)

    def test_worker_snapshot_has_identity_and_sessions(self, scenario):
        with _fleet(scenario) as fleet:
            fleet.open_session("s0", USERS)
            owner = fleet.session_owner("s0")
            snap = fleet.worker_snapshot(owner)
        assert snap["worker_id"] == owner
        assert snap["pid"] > 0
        assert "s0" in snap["sessions"]

    def test_unknown_worker_snapshot_is_none(self, scenario):
        with _fleet(scenario) as fleet:
            assert fleet.worker_snapshot(99) is None


class TestMetricsServerFleetMode:
    def _get(self, port, path):
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=30
        ) as response:
            return json.loads(response.read())

    def test_fleet_endpoints(self, scenario):
        _, _, _, localizes, _ = scenario
        with _fleet(scenario) as fleet:
            fleet.call(localizes[0], timeout=120)
            with MetricsServer(fleet=fleet) as server:
                merged = self._get(server.port, "/metrics")
                per_worker = self._get(server.port, "/metrics?worker=0")
                with pytest.raises(urllib.error.HTTPError) as absent:
                    self._get(server.port, "/metrics?worker=99")
                with pytest.raises(urllib.error.HTTPError) as bad:
                    self._get(server.port, "/metrics?worker=abc")
        assert set(merged) == {"router", "workers", "aggregate"}
        assert merged["aggregate"]["workers_reporting"] == 2
        assert per_worker["worker_id"] == 0
        assert absent.value.code == 404
        assert bad.value.code == 400

    def test_single_service_mode_unchanged(self, scenario):
        metrics = ServerMetrics()
        metrics.record_submit()
        with MetricsServer(metrics) as server:
            flat = self._get(server.port, "/metrics")
            with pytest.raises(urllib.error.HTTPError) as refused:
                self._get(server.port, "/metrics?worker=0")
        assert flat["requests_submitted"] == 1
        assert refused.value.code == 404

    def test_requires_exactly_one_source(self):
        with pytest.raises(ConfigurationError):
            MetricsServer()
        with pytest.raises(ConfigurationError):
            MetricsServer(ServerMetrics(), fleet=object())


class TestRebalance:
    def test_add_worker_migrates_only_remapped_sessions(self, scenario):
        with _fleet(scenario) as fleet:
            for i in range(6):
                fleet.open_session(f"s{i}", USERS, seed=i)
            before = {
                sid: fleet.session_owner(sid) for sid in fleet.session_ids
            }
            new_id = fleet.add_worker()
            after = {
                sid: fleet.session_owner(sid) for sid in fleet.session_ids
            }
            moved = [sid for sid in before if before[sid] != after[sid]]
            # Affinity: every move lands on the new worker, the rest stay.
            assert all(after[sid] == new_id for sid in moved)
            assert len(moved) < len(before)
            assert (
                fleet.fleet_snapshot()["router"]["migrations"]
                == len(moved)
            )

    def test_remove_worker_rehomes_its_sessions(self, scenario):
        with _fleet(scenario, workers=3) as fleet:
            for i in range(6):
                fleet.open_session(f"s{i}", USERS, seed=i)
            victim = fleet.session_owner("s0")
            fleet.remove_worker(victim)
            assert victim not in fleet.worker_ids
            owners = {
                fleet.session_owner(sid) for sid in fleet.session_ids
            }
            assert victim not in owners
            # The rehomed sessions still serve steps.
            _, _, _, _, stream = scenario
            reply = fleet.call(_steps(stream, "s0")[0], timeout=120)
            assert reply.ok
