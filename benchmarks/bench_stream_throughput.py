"""Streaming service throughput: windows/sec and p95 step latency.

Measures the SessionManager pumping 1, 4, and 16 concurrent tracking
sessions over identical replayed streams — the scaling axis every later
PR (sharding, async backends, multi-process workers) moves. Runs under
pytest-benchmark like the rest of the suite, or standalone::

    PYTHONPATH=src python benchmarks/bench_stream_throughput.py

emitting one JSON record per fleet size into
``BENCH_stream_throughput.json`` via the shared runner
(:mod:`repro.engine.benchrunner`) for the perf trajectory.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage
from repro.smc import SequentialMonteCarloTracker, TrackerConfig
from repro.stream import SessionManager, SyntheticLiveSource, TrackingSession

SESSION_COUNTS = (1, 4, 16)
ROUNDS = 10
_CFG = TrackerConfig(prediction_count=150, keep_count=10)


def _scenario():
    net = build_network(
        field=RectangularField(15, 15), node_count=225, radius=2.0, rng=1234
    )
    sniffers = sample_sniffers_percentage(net, 20, rng=1)
    observations = list(
        SyntheticLiveSource(net, sniffers, user_count=2, rounds=ROUNDS, rng=2)
    )
    return net, sniffers, observations


def _run_fleet(net, sniffers, observations, session_count, workers):
    manager = SessionManager(
        queue_size=session_count * len(observations), workers=workers
    )
    for index in range(session_count):
        tracker = SequentialMonteCarloTracker(
            net.field,
            net.positions[sniffers],
            user_count=2,
            config=_CFG,
            rng=100 + index,
        )
        manager.add_session(TrackingSession(f"s{index}", tracker))
    started = time.perf_counter()
    for observation in observations:
        for session_id in manager.session_ids:
            manager.submit(session_id, observation)
    processed = manager.drain()
    elapsed = time.perf_counter() - started
    return manager, processed, elapsed


def _record(manager, processed, elapsed, session_count, workers):
    p95 = max(
        session.metrics.latency_quantiles()["p95"]
        for session in (manager.session(sid) for sid in manager.session_ids)
    )
    return {
        "benchmark": "stream_throughput",
        "sessions": session_count,
        "workers": workers,
        "windows": processed,
        "elapsed_s": elapsed,
        "windows_per_sec": processed / elapsed,
        "latency_p95_s": p95,
    }


@pytest.fixture(scope="module")
def stream_scenario():
    return _scenario()


@pytest.mark.parametrize("session_count", SESSION_COUNTS)
def test_stream_throughput(benchmark, stream_scenario, session_count):
    net, sniffers, observations = stream_scenario
    workers = min(session_count, 4)

    def run():
        return _run_fleet(net, sniffers, observations, session_count, workers)

    manager, processed, elapsed = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    record = _record(manager, processed, elapsed, session_count, workers)
    benchmark.extra_info.update(record)
    print("\n" + json.dumps(record))
    assert processed == session_count * len(observations)


def main() -> None:
    from repro.engine import write_bench_json

    net, sniffers, observations = _scenario()
    records = []
    for session_count in SESSION_COUNTS:
        workers = min(session_count, 4)
        manager, processed, elapsed = _run_fleet(
            net, sniffers, observations, session_count, workers
        )
        record = _record(manager, processed, elapsed, session_count, workers)
        records.append(record)
        print(json.dumps(record))
    path = write_bench_json(
        "stream_throughput", records, meta={"rounds": ROUNDS}
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
