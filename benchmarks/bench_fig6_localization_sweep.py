"""Fig. 6 — localization accuracy sweeps.

Paper: (a) error vs percentage of sampling nodes (40/20/10/5 %): at
10% the errors are 1.23 / 1.52 / 1.84 / 2.01 for 1-4 users and blow up
below 5%; (b) error vs node count (900-1800, 90 fixed reports):
density helps only mildly.
"""

import numpy as np

from benchmarks.conftest import report
from repro.experiments import PaperDefaults, run_fig6a, run_fig6b

_DEFAULTS = PaperDefaults().scaled(4)  # 2500 candidates per restart


def test_fig6a_error_vs_sampling_percentage(benchmark, bench_seed):
    result = benchmark.pedantic(
        lambda: run_fig6a(
            user_counts=(1, 2, 3, 4),
            repetitions=3,
            defaults=_DEFAULTS,
            rng=bench_seed,
        ),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result)
    by_pct = {row["percentage"]: row for row in result.rows}
    # Paper shape 1: error grows (weakly) as sampling drops 40 -> 5 %.
    for users in (1, 2):
        key = f"{users}_user"
        assert by_pct[5.0][key] >= by_pct[40.0][key] - 0.5
    # Paper shape 2: more users -> more error (at 10%).
    assert by_pct[10.0]["4_user"] >= by_pct[10.0]["1_user"] - 0.5
    # Paper magnitude: at 10% errors stay small relative to the field.
    assert by_pct[10.0]["1_user"] < 4.0


def test_fig6b_error_vs_density(benchmark, bench_seed):
    result = benchmark.pedantic(
        lambda: run_fig6b(
            user_counts=(1, 2),
            repetitions=3,
            defaults=_DEFAULTS,
            rng=bench_seed,
        ),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result)
    errors = [row["1_user"] for row in result.rows]
    # Paper shape: density's impact is "fairly limited" — no blow-up
    # across 900 -> 1800 nodes.
    assert max(errors) - min(errors) < 2.0
    assert all(e < 4.0 for e in errors)
