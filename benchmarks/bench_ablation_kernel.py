"""Ablation — analytic vs empirically calibrated flux kernel.

An adversary with probe access can learn a correction profile to the
closed-form kernel (Formula 3.4); this bench compares localization
accuracy with the analytic kernel vs the calibrated one, and also
checks the attack against *lossy* links (which the analytic model does
not account for — calibration learns the attenuation implicitly).
"""

import numpy as np

from repro.fingerprint.nls import coordinate_descent
from repro.fingerprint.objective import FluxObjective
from repro.fluxmodel import (
    CalibratedFluxModel,
    DiscreteFluxModel,
    fit_empirical_kernel,
)
from repro.network import build_network, sample_sniffers_percentage
from repro.routing import build_collection_tree
from repro.traffic import MeasurementModel, lossy_subtree_flux


def _localize(model_factory, net, flux, gen):
    sniffers = sample_sniffers_percentage(net, 10, rng=gen)
    obs = MeasurementModel(net, sniffers, smooth=True, rng=gen).observe(flux)
    model = model_factory(net.positions[sniffers])
    objective = FluxObjective.from_observation(model, obs)
    pool = [net.field.sample_uniform(2500, gen)]
    out = coordinate_descent(objective, pool, rng=gen, sweeps=1)
    return pool[0][out.best_indices[0]]


def test_ablation_empirical_kernel(benchmark):
    net = build_network(rng=9)
    kernel = fit_empirical_kernel(net, probe_count=6, rng=10)

    factories = {
        "analytic": lambda pos: DiscreteFluxModel(net.field, pos, d_floor=1.0),
        "calibrated": lambda pos: CalibratedFluxModel(
            net.field, pos, kernel=kernel, d_floor=1.0
        ),
    }

    def run():
        errors = {name: [] for name in factories}
        for rep in range(6):
            gen = np.random.default_rng(500 + rep)
            truth = net.field.sample_uniform(1, gen)[0]
            tree = build_collection_tree(net, truth, rng=gen)
            flux = 2.0 * tree.subtree_aggregate()
            for name, factory in factories.items():
                est = _localize(factory, net, flux, np.random.default_rng(rep))
                errors[name].append(float(np.linalg.norm(est - truth)))
        return {name: float(np.mean(v)) for name, v in errors.items()}

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nablation/kernel:", {k: round(v, 2) for k, v in means.items()})
    # Both kernels localize; calibration must not hurt.
    assert means["calibrated"] < means["analytic"] + 0.8
    assert means["analytic"] < 4.0


def test_robustness_lossy_links(benchmark):
    net = build_network(rng=11)

    def run():
        deliveries = (1.0, 0.9, 0.7)
        errors = {p: [] for p in deliveries}
        for rep in range(6):
            gen = np.random.default_rng(600 + rep)
            truth = net.field.sample_uniform(1, gen)[0]
            tree = build_collection_tree(net, truth, rng=gen)
            for p in deliveries:
                flux = lossy_subtree_flux(
                    tree, np.full(net.node_count, 2.0), p
                )
                est = _localize(
                    lambda pos: DiscreteFluxModel(net.field, pos, d_floor=1.0),
                    net,
                    flux,
                    np.random.default_rng(rep),
                )
                errors[p].append(float(np.linalg.norm(est - truth)))
        return {p: float(np.mean(v)) for p, v in errors.items()}

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nrobustness/lossy-links:", {k: round(v, 2) for k, v in means.items()})
    # Moderate loss barely moves the fingerprint shape: attack survives.
    assert means[0.9] < means[1.0] + 1.5
    assert means[0.7] < 6.0
