"""Fig. 5 — instant localization case studies.

Paper: with 10,000 candidate samples and top-10 compositions kept, the
average error over the top fits is ~0.97 / 1.27 / 1.63 for 1 / 2 / 3
users on the 30x30 field (worst cases 1.78 / 2.06). Error grows with
the user count because the users' fluxes superpose.
"""

from benchmarks.conftest import report
from repro.experiments import PaperDefaults, run_fig5


def test_fig5_instant_localization(benchmark, bench_seed):
    defaults = PaperDefaults().scaled(2)  # 5000 candidates
    result = benchmark.pedantic(
        lambda: run_fig5(
            user_counts=(1, 2, 3), defaults=defaults, rng=bench_seed
        ),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result)
    errors = {row["users"]: row["majority_error"] for row in result.rows}
    # Paper magnitudes are ~1-2 on a 42-diameter field; allow 2x slack
    # (our substrate is a simulator, shapes matter more than values).
    assert errors[1] < 4.0
    assert errors[2] < 5.0
    assert errors[3] < 6.0
