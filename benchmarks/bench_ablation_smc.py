"""Ablation — SMC machinery knobs.

* resampling scheme (multinomial as in the paper vs systematic);
* adaptive prediction budgets (KLD-style) vs the paper's fixed N=1000.

Both should preserve tracking accuracy; the adaptive variant should
also spend far fewer candidate evaluations once converged.
"""

import numpy as np

from repro.mobility import linear_trajectory
from repro.network import build_network, sample_sniffers_percentage
from repro.smc import SequentialMonteCarloTracker, TrackerConfig
from repro.traffic import FluxSimulator, MeasurementModel, synchronous_schedule


def _run(config: TrackerConfig, seed: int):
    gen = np.random.default_rng(seed)
    net = build_network(rng=gen)
    rounds = 8
    traj = linear_trajectory((5.0, 6.0), (24.0, 22.0), rounds)
    schedule = synchronous_schedule([traj.positions], [2.0])
    sim = FluxSimulator(net, rng=gen)
    sniffers = sample_sniffers_percentage(net, 10, rng=gen)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    tracker = SequentialMonteCarloTracker(
        net.field, net.positions[sniffers], 1, config, rng=gen
    )
    pool_sizes = []
    errors = []
    for k, (t, events) in enumerate(schedule.windows(1.0)):
        step = tracker.step(measure.observe(sim.window_flux(events).total, time=t))
        errors.append(float(np.linalg.norm(step.estimates[0] - traj.positions[k])))
        pool_sizes.append(step.sample_sets[0].count)
    return float(np.mean(errors[rounds // 2 :]))


def test_ablation_resampling_scheme(benchmark):
    def run():
        out = {}
        for scheme in ("multinomial", "systematic"):
            cfg = TrackerConfig(
                prediction_count=500, keep_count=10, max_speed=5.0,
                resampling=scheme,
            )
            out[scheme] = float(
                np.mean([_run(cfg, seed) for seed in (1, 2, 3)])
            )
        return out

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nablation/resampling:", {k: round(v, 2) for k, v in means.items()})
    # Systematic resampling must not degrade accuracy.
    assert means["systematic"] < means["multinomial"] + 1.0


def test_ablation_adaptive_budget(benchmark):
    def run():
        fixed = TrackerConfig(
            prediction_count=1000, keep_count=10, max_speed=5.0
        )
        adaptive = TrackerConfig(
            prediction_count=1000, keep_count=10, max_speed=5.0,
            adaptive_predictions=True,
        )
        return {
            "fixed_N1000": float(
                np.mean([_run(fixed, seed) for seed in (1, 2, 3)])
            ),
            "adaptive": float(
                np.mean([_run(adaptive, seed) for seed in (1, 2, 3)])
            ),
        }

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nablation/adaptive-budget:", {k: round(v, 2) for k, v in means.items()})
    # Adaptive budgets keep accuracy within a small margin of fixed N.
    assert means["adaptive"] < means["fixed_N1000"] + 1.5
