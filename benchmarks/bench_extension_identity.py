"""Extension bench — stretch-fingerprint identity maintenance.

The paper's Fig. 7(d) limitation: when trajectories cross, flux-only
tracking may swap user identities. Our extension exploits that the
traffic stretch ``s_j`` is a per-user invariant: the fitted
``theta = s/r`` acts as a fingerprint, and sample sets are re-labelled
when stretch history clearly disagrees with the current assignment.

Measured: fraction of crossing runs whose labels survive, base tracker
vs identity-aware tracker, at comparable location error.
"""

import numpy as np

from repro.mobility import crossing_trajectories
from repro.network import build_network, sample_sniffers_percentage
from repro.smc import SequentialMonteCarloTracker, TrackerConfig
from repro.smc.association import assignment_errors
from repro.smc.identity import IdentityAwareTracker
from repro.traffic import FluxSimulator, MeasurementModel, synchronous_schedule


def _run_crossing(tracker_cls, seed):
    gen = np.random.default_rng(seed)
    net = build_network(rng=gen)
    a, b = crossing_trajectories(net.field, 14)
    schedule = synchronous_schedule([a.positions, b.positions], [3.0, 1.0])
    sim = FluxSimulator(net, rng=gen)
    sniffers = sample_sniffers_percentage(net, 20, rng=gen)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    tracker = tracker_cls(
        net.field,
        net.positions[sniffers],
        2,
        TrackerConfig(prediction_count=500, keep_count=10, max_speed=5.0),
        rng=gen,
    )
    perms, errors = [], []
    for k, (t, events) in enumerate(schedule.windows(1.0)):
        step = tracker.step(measure.observe(sim.window_flux(events).total, time=t))
        truth = np.stack([a.positions[k], b.positions[k]])
        e, p = assignment_errors(step.estimates, truth)
        perms.append(p)
        errors.append(e.mean())
    label_kept = bool(np.array_equal(perms[-1], perms[2]))
    return label_kept, float(np.mean(errors[7:]))


def test_identity_aware_tracking(benchmark):
    seeds = range(1, 9)

    def run():
        base = [_run_crossing(SequentialMonteCarloTracker, s) for s in seeds]
        ident = [_run_crossing(IdentityAwareTracker, s) for s in seeds]
        return base, ident

    base, ident = benchmark.pedantic(run, rounds=1, iterations=1)
    base_kept = sum(k for k, _ in base)
    ident_kept = sum(k for k, _ in ident)
    base_err = float(np.mean([e for _, e in base]))
    ident_err = float(np.mean([e for _, e in ident]))
    print(
        f"\nidentity extension: labels kept {base_kept}/{len(base)} (base) "
        f"vs {ident_kept}/{len(ident)} (identity-aware); "
        f"location error {base_err:.2f} vs {ident_err:.2f}"
    )
    # The extension must preserve identities strictly more often...
    assert ident_kept > base_kept
    # ...without materially degrading location accuracy.
    assert ident_err < base_err + 1.0
