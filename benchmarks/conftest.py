"""Benchmark-suite helpers.

Every bench regenerates one of the paper's figures (at reduced
repetition counts so the suite stays minutes-scale) and prints the
measured rows next to what the paper reports. Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the paper-vs-measured tables inline; without it they are
still recorded in each benchmark's ``extra_info``.
"""

from __future__ import annotations

import pytest


def report(benchmark, result) -> None:
    """Print an ExperimentResult and attach it to the benchmark record."""
    text = result.render()
    print("\n" + text)
    benchmark.extra_info["figure"] = result.figure
    benchmark.extra_info["rows"] = result.rows
    benchmark.extra_info["paper_reference"] = result.paper_reference


@pytest.fixture(scope="session")
def bench_seed():
    return 20100621  # ICDCS 2010 start date
