"""Fleet scaling: aggregate RPS at 1/2/4/8 workers, failover gates.

Drives the :class:`repro.fleet.ServeFleet` front end with a fixed
closed-loop client population over identical pre-generated workloads
while the worker count sweeps 1 → 8. Each worker is a full forked
serve stack (admission queue + micro-batch scheduler + engine), so the
aggregate RPS column is the direct value of sharding by consistent
hashing — it should rise monotonically through 4 workers on a
multi-core runner, and honestly flatlines on a single core (the JSON
records the core count so readers can tell which they are looking at).

Two correctness gates ride along in ``meta``, mirroring the fleet's
core contracts rather than its throughput:

``kill_one_*``
    A 2-worker fleet tracking one session has its owner worker
    SIGKILLed between steps with two requests still in flight. Zero
    loss means every submitted request resolved to exactly one reply;
    bitwise means the resumed stream's per-step estimates equal the
    unkilled baseline's, byte for byte (checkpoint-bounded replay).
``migration_*``
    The same session is migrated to the other worker mid-stream via
    drain → checkpoint → reattach; the spliced stream must again be
    bitwise-identical to an unmigrated run.

Runs under pytest-benchmark like the rest of the suite, or
standalone::

    PYTHONPATH=src python benchmarks/bench_fleet.py [--quick]

emitting ``BENCH_fleet.json`` via the shared runner.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

import numpy as np
import pytest

from repro.fleet import ServeFleet
from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage
from repro.serve import LocalizeRequest, TrackStepRequest
from repro.traffic import MeasurementModel, simulate_flux

WORKER_COUNTS = (1, 2, 4, 8)
CLIENTS = 8
REQUESTS_PER_CLIENT = 16
CANDIDATES = 64
SEED_TOP_K = 16
TOP_M = 5
MAX_BATCH = 16
MAX_WAIT_S = 0.002
#: Tracking-session gate parameters.
TRACK_STEPS = 12
KILL_AFTER = 4  # completed steps before the owner worker dies
MIGRATE_AFTER = 5
SESSION_USERS = 2


def _scenario():
    net = build_network(
        field=RectangularField(10, 10), node_count=100, radius=2.2, rng=1234
    )
    sniffers = sample_sniffers_percentage(net, 25, rng=1)
    return net, sniffers


def _shared_map(net, sniffers):
    from repro.fpmap import build_fingerprint_map

    return build_fingerprint_map(
        net.field, net.positions[sniffers], resolution=1.0
    )


def _workload(net, sniffers, clients, per_client, seed=5):
    """Unique localize observations per request, grouped by client."""
    gen = np.random.default_rng(seed)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    work = []
    for c in range(clients):
        requests = []
        for r in range(per_client):
            truth = net.field.sample_uniform(1, gen)
            flux = simulate_flux(
                net, list(truth), [float(gen.uniform(1.0, 3.0))], rng=gen
            )
            requests.append(
                LocalizeRequest(
                    request_id=f"c{c}-r{r}",
                    client_id=f"client-{c}",
                    observation=measure.observe(flux),
                    candidate_count=CANDIDATES,
                    seed_top_k=SEED_TOP_K,
                    top_m=TOP_M,
                    seed=int(gen.integers(2**31)),
                )
            )
        work.append(requests)
    return work


def _track_stream(net, sniffers, steps, seed=21):
    """One deterministic observation stream (shared by every gate run)."""
    gen = np.random.default_rng(seed)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    truth = net.field.sample_uniform(SESSION_USERS, gen)
    return [
        measure.observe(
            simulate_flux(net, list(truth), [1.5, 2.5], rng=gen),
            time=float(step),
        )
        for step in range(steps)
    ]


def _fleet(net, sniffers, fmap, workers, **kwargs):
    kwargs.setdefault("max_batch", MAX_BATCH)
    kwargs.setdefault("max_wait_s", MAX_WAIT_S)
    return ServeFleet(
        net.field,
        net.positions[sniffers],
        workers=workers,
        fingerprint_map=fmap,
        **kwargs,
    )


def _drive(fleet, work):
    """Closed-loop clients; returns (replies, elapsed_s)."""
    replies = []
    lock = threading.Lock()

    def client(requests):
        mine = [fleet.submit(r).result(timeout=300) for r in requests]
        with lock:
            replies.extend(mine)

    threads = [
        threading.Thread(target=client, args=(requests,)) for requests in work
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    return replies, elapsed


def _run_workers(net, sniffers, fmap, work, workers):
    with _fleet(net, sniffers, fmap, workers) as fleet:
        # Warm every worker's caches outside the timed region: one
        # request per worker id lands on each via its own ring slot.
        for wid in fleet.worker_ids:
            fleet.call(
                LocalizeRequest(
                    request_id=f"warm-{wid}",
                    client_id=f"warm-{wid}",
                    observation=work[0][0].observation,
                    candidate_count=CANDIDATES,
                    seed_top_k=SEED_TOP_K,
                    top_m=TOP_M,
                    seed=1,
                ),
                timeout=300,
            )
        replies, elapsed = _drive(fleet, work)
        snapshot = fleet.fleet_snapshot()
    bad = [r for r in replies if not r.ok]
    total = sum(len(requests) for requests in work)
    if bad or len(replies) != total:
        raise AssertionError(
            f"lost/failed replies at {workers} workers: "
            f"{len(replies)}/{total} back, {len(bad)} errors"
        )
    return replies, elapsed, snapshot


def _record(workers, clients, per_client, replies, elapsed, snapshot):
    total = len(replies)
    aggregate = snapshot["aggregate"]
    return {
        "benchmark": "fleet_scaling",
        "workers": workers,
        "clients": clients,
        "requests_per_client": per_client,
        "requests": total,
        "elapsed_s": elapsed,
        "aggregate_rps": total / elapsed,
        "rps_per_worker": total / elapsed / workers,
        "worker_replies_ok": aggregate.get("replies_ok"),
        "worker_batches": aggregate.get("batches"),
        "worker_batch_size_mean": aggregate.get("batch_size_mean"),
        "workers_reporting": aggregate.get("workers_reporting"),
    }


# ----------------------------------------------------------------------
# Correctness gates (recorded in the JSON meta).
# ----------------------------------------------------------------------
def _step(index, observation):
    return TrackStepRequest(
        request_id=f"s0-t{index}",
        client_id="tracker",
        session_id="s0",
        observation=observation,
    )


def _run_session(net, sniffers, fmap, stream, kill_after=None,
                 migrate_after=None):
    """Drive one tracked session; returns (per-step estimate bytes, snapshot).

    ``kill_after=k`` SIGKILLs the session's owner worker after step k
    completes, with steps k and k+1 already submitted (in flight) — the
    redelivery path. ``migrate_after=k`` migrates the session to the
    other worker between steps k-1 and k.
    """
    estimates = []
    with _fleet(net, sniffers, fmap, workers=2, max_batch=8,
                max_wait_s=0.001) as fleet:
        fleet.open_session("s0", user_count=SESSION_USERS, seed=7)
        owner = fleet.session_owner("s0")
        i = 0
        while i < len(stream):
            if kill_after is not None and i == kill_after:
                kill_after = None
                in_flight = [
                    fleet.submit(_step(i + j, stream[i + j]))
                    for j in range(min(2, len(stream) - i))
                ]
                fleet.kill_worker(owner)
                for future in in_flight:
                    reply = future.result(timeout=300)
                    if not reply.ok:
                        raise AssertionError(
                            f"lost step across failover: {reply.code}"
                        )
                    estimates.append(reply.estimates.tobytes())
                    i += 1
                continue
            if migrate_after is not None and i == migrate_after:
                migrate_after = None
                target = next(
                    w for w in fleet.worker_ids if w != owner
                )
                fleet.migrate_session("s0", target)
            reply = fleet.call(_step(i, stream[i]), timeout=300)
            estimates.append(reply.estimates.tobytes())
            i += 1
        snapshot = fleet.fleet_snapshot()
    return estimates, snapshot


def check_kill_one(net, sniffers, fmap, stream):
    """Kill-one-worker chaos: zero loss + bitwise-continuous stream."""
    baseline, _ = _run_session(net, sniffers, fmap, stream)
    killed, snapshot = _run_session(
        net, sniffers, fmap, stream, kill_after=KILL_AFTER
    )
    router = snapshot["router"]
    return {
        "kill_one_zero_loss": len(killed) == len(stream),
        "kill_one_bitwise": killed == baseline,
        "kill_one_worker_deaths": router["worker_deaths"],
        "kill_one_redeliveries": router["redeliveries"],
        "kill_one_sessions_resumed": router["sessions_resumed"],
    }


def check_migration(net, sniffers, fmap, stream):
    """Mid-stream migration: bitwise-identical to the unmigrated run."""
    baseline, _ = _run_session(net, sniffers, fmap, stream)
    migrated, snapshot = _run_session(
        net, sniffers, fmap, stream, migrate_after=MIGRATE_AFTER
    )
    return {
        "migration_zero_loss": len(migrated) == len(stream),
        "migration_bitwise": migrated == baseline,
        "migrations": snapshot["router"]["migrations"],
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fleet_scenario():
    net, sniffers = _scenario()
    return net, sniffers, _shared_map(net, sniffers)


@pytest.mark.parametrize("workers", (1, 2))
def test_fleet_scaling(benchmark, fleet_scenario, workers):
    net, sniffers, fmap = fleet_scenario
    work = _workload(net, sniffers, CLIENTS, per_client=4)

    def run():
        return _run_workers(net, sniffers, fmap, work, workers)

    replies, elapsed, snapshot = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    record = _record(workers, CLIENTS, 4, replies, elapsed, snapshot)
    benchmark.extra_info.update(record)
    print("\n" + json.dumps(record))
    assert len(replies) == CLIENTS * 4


def test_fleet_kill_one_gate(fleet_scenario):
    net, sniffers, fmap = fleet_scenario
    stream = _track_stream(net, sniffers, steps=8)
    gate = check_kill_one(net, sniffers, fmap, stream)
    assert gate["kill_one_zero_loss"]
    assert gate["kill_one_bitwise"]
    assert gate["kill_one_worker_deaths"] >= 1


def test_fleet_migration_gate(fleet_scenario):
    net, sniffers, fmap = fleet_scenario
    stream = _track_stream(net, sniffers, steps=8)
    gate = check_migration(net, sniffers, fmap, stream)
    assert gate["migration_zero_loss"]
    assert gate["migration_bitwise"]
    assert gate["migrations"] >= 1


def main() -> None:
    from repro.engine import write_bench_json

    quick = "--quick" in sys.argv[1:]
    net, sniffers = _scenario()
    fmap = _shared_map(net, sniffers)
    per_client = 4 if quick else REQUESTS_PER_CLIENT
    records = []
    rps = {}
    for workers in WORKER_COUNTS:
        work = _workload(net, sniffers, CLIENTS, per_client)
        replies, elapsed, snapshot = _run_workers(
            net, sniffers, fmap, work, workers
        )
        record = _record(
            workers, CLIENTS, per_client, replies, elapsed, snapshot
        )
        rps[workers] = record["aggregate_rps"]
        records.append(record)
        print(json.dumps(record))

    stream = _track_stream(net, sniffers, steps=8 if quick else TRACK_STEPS)
    meta = {
        "worker_counts": list(WORKER_COUNTS),
        "clients": CLIENTS,
        "requests_per_client": per_client,
        "candidate_count": CANDIDATES,
        "max_batch": MAX_BATCH,
        "max_wait_s": MAX_WAIT_S,
        "map_resolution": 1.0,
        "quick": quick,
        "cpus": os.cpu_count(),
        "rps_monotonic_1_to_4": rps[1] <= rps[2] <= rps[4],
    }
    meta.update(check_kill_one(net, sniffers, fmap, stream))
    meta.update(check_migration(net, sniffers, fmap, stream))
    print(json.dumps({k: meta[k] for k in (
        "rps_monotonic_1_to_4",
        "kill_one_zero_loss", "kill_one_bitwise",
        "migration_zero_loss", "migration_bitwise",
    )}))
    path = write_bench_json("fleet", records, meta=meta)
    print(f"wrote {path}")

    failures = [
        gate
        for gate in ("kill_one_zero_loss", "kill_one_bitwise",
                     "migration_zero_loss", "migration_bitwise")
        if not meta[gate]
    ]
    # RPS only scales with real cores; on a 1–2 core box the sweep
    # still runs (and the JSON says so via meta.cpus) but the
    # monotonicity acceptance gate would measure the machine, not the
    # router, so it is enforced on multi-core runners only.
    if (os.cpu_count() or 1) >= 4 and not meta["rps_monotonic_1_to_4"]:
        failures.append("rps_monotonic_1_to_4")
    if failures:
        raise AssertionError(f"fleet gates failed: {', '.join(failures)}")


if __name__ == "__main__":
    main()
