"""Fingerprint-map seeding vs pure random NLS search.

The tentpole claim of the fpmap subsystem: seeding the sampling-based
NLS search from the precomputed fingerprint map reaches equal-or-better
median localization error at a quarter of the candidate-evaluation
budget. Each scenario places two users at random, simulates one flux
window, and localizes it twice — unseeded at the full budget and
map-seeded at 25% of it — over a shared offline-built map. Runs under
pytest-benchmark like the rest of the suite, or standalone::

    PYTHONPATH=src python benchmarks/bench_fpmap_seeding.py

emitting one JSON record with the median errors, wall-clock, and the
map's kernel-cache hit rate into ``BENCH_fpmap_seeding.json`` via the
shared runner (:mod:`repro.engine.benchrunner`).
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.fingerprint import NLSLocalizer
from repro.fpmap import build_fingerprint_map
from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage
from repro.traffic import MeasurementModel, simulate_flux

SCENARIOS = 12
USERS = 2
FULL_BUDGET = 2000  # candidates per user per restart, unseeded
SEEDED_FRACTION = 0.25
RESTARTS = 2
RESOLUTION = 0.5


def _deployment():
    net = build_network(
        field=RectangularField(15, 15), node_count=225, radius=2.0, rng=1234
    )
    sniffers = sample_sniffers_percentage(net, 20, rng=1)
    fmap = build_fingerprint_map(
        net.field,
        net.positions[sniffers],
        resolution=RESOLUTION,
        sniffer_ids=sniffers,
    )
    return net, sniffers, fmap


def _scenarios(net, sniffers):
    gen = np.random.default_rng(20100621)
    out = []
    for index in range(SCENARIOS):
        truth = net.field.sample_uniform(USERS, gen)
        stretches = gen.uniform(1.5, 2.5, USERS)
        flux = simulate_flux(net, list(truth), list(stretches), rng=gen)
        obs = MeasurementModel(net, sniffers, smooth=True, rng=gen).observe(
            flux
        )
        out.append((truth, obs))
    return out


def _run(net, sniffers, fmap, scenarios):
    localizer = NLSLocalizer(net.field, net.positions[sniffers])
    seeded_budget = int(FULL_BUDGET * SEEDED_FRACTION)
    unseeded_errors, seeded_errors = [], []
    t0 = time.perf_counter()
    for index, (truth, obs) in enumerate(scenarios):
        result = localizer.localize(
            obs, user_count=USERS, candidate_count=FULL_BUDGET,
            restarts=RESTARTS, rng=1000 + index,
        )
        unseeded_errors.extend(result.errors_to(truth).tolist())
    t_unseeded = time.perf_counter() - t0
    t0 = time.perf_counter()
    for index, (truth, obs) in enumerate(scenarios):
        result = localizer.localize(
            obs, user_count=USERS, candidate_count=seeded_budget,
            restarts=RESTARTS, rng=1000 + index, fingerprint_map=fmap,
        )
        seeded_errors.extend(result.errors_to(truth).tolist())
    t_seeded = time.perf_counter() - t0
    return {
        "benchmark": "fpmap_seeding",
        "scenarios": SCENARIOS,
        "users": USERS,
        "budget_unseeded": FULL_BUDGET,
        "budget_seeded": seeded_budget,
        "budget_fraction": SEEDED_FRACTION,
        "median_error_unseeded": float(np.median(unseeded_errors)),
        "median_error_seeded": float(np.median(seeded_errors)),
        "elapsed_unseeded_s": t_unseeded,
        "elapsed_seeded_s": t_seeded,
        "speedup": t_unseeded / max(t_seeded, 1e-9),
        "kernel_cache_hit_rate": fmap.cache.hit_rate,
        "map_cells": fmap.cell_count,
    }


@pytest.fixture(scope="module")
def fpmap_scenario():
    net, sniffers, fmap = _deployment()
    return net, sniffers, fmap, _scenarios(net, sniffers)


def test_fpmap_seeding_quarter_budget(benchmark, fpmap_scenario):
    net, sniffers, fmap, scenarios = fpmap_scenario

    record = benchmark.pedantic(
        lambda: _run(net, sniffers, fmap, scenarios), rounds=1, iterations=1
    )
    benchmark.extra_info.update(record)
    print("\n" + json.dumps(record))
    # The tentpole acceptance bar: equal-or-better median error at <=25%
    # of the candidate-evaluation budget.
    assert record["budget_seeded"] <= 0.25 * record["budget_unseeded"]
    assert (
        record["median_error_seeded"] <= record["median_error_unseeded"]
    )


def main() -> None:
    from repro.engine import write_bench_json

    net, sniffers, fmap = _deployment()
    record = _run(net, sniffers, fmap, _scenarios(net, sniffers))
    print(json.dumps(record))
    path = write_bench_json(
        "fpmap_seeding", [record], meta={"resolution": RESOLUTION}
    )
    print(f"wrote {path}")
    assert record["median_error_seeded"] <= record["median_error_unseeded"], (
        "map-seeded search must not lose accuracy at a quarter budget"
    )


if __name__ == "__main__":
    main()
