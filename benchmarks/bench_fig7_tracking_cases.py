"""Fig. 7 — SMC tracking case studies.

Paper: estimates converge from the initial uniform prior to the true
trajectories; final error below 2; with crossing trajectories the two
users' *locations* stay accurate while their *identities* may mix.
"""

from benchmarks.conftest import report
from repro.experiments import PaperDefaults, run_fig7


def test_fig7_tracking_cases(benchmark, bench_seed):
    defaults = PaperDefaults().scaled(2)  # N=500 predictions
    result = benchmark.pedantic(
        lambda: run_fig7(defaults=defaults, rng=bench_seed),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result)
    rows = {row["case"]: row for row in result.rows}
    # Convergence: late-half error far below the first-round error for
    # the single-user case (which starts from a uniform prior).
    one = rows["one user"]
    assert one["mean_error_last_half"] < max(one["first_round_error"], 4.0)
    # Magnitude: converged errors in the paper are < 2; allow 2x.
    for case in ("one user", "two users"):
        assert rows[case]["mean_error_last_half"] < 4.0
    # The crossing case still tracks locations.
    assert rows["two users (crossing)"]["mean_error_last_half"] < 5.0
