"""Serving throughput: micro-batched vs per-request dispatch.

Drives the :class:`repro.serve.LocalizationService` with 1, 8, and 64
closed-loop clients over identical pre-generated workloads, once with
adaptive micro-batching enabled (``max_batch=64``) and once degraded
to per-request dispatch (``max_batch=1`` — same scheduler, same code
path, no fusion). The speedup column is the direct value of fusing
each batch's candidate pools into one engine kernels call and its map
matches into one einsum. The adaptive controller's depth-k bypass is
what keeps the 1-client row from paying a linger penalty; the
64-client row shows the amortization. Each record also carries both
sides' p95 so the latency cost of batching is visible, not just the
throughput win.

Runs under pytest-benchmark like the rest of the suite, or
standalone::

    PYTHONPATH=src python benchmarks/bench_serve_batching.py [--quick] [--gate]

emitting ``BENCH_serve.json`` via the shared runner, with three
correctness gates in ``meta``: batched replies are bitwise-identical
(float64) to per-request replies, the adaptive controller's replies
are bitwise-identical to the fixed-window scheduler's, and
deadline-expired requests get typed error replies. ``--gate`` exits
nonzero if any client count's batched throughput falls below
unbatched or a correctness gate fails — the CI regression tripwire.
"""

from __future__ import annotations

import json
import sys
import threading
import time

import numpy as np
import pytest

from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage
from repro.serve import (
    ERROR_DEADLINE_EXPIRED,
    LocalizationService,
    LocalizeRequest,
)
from repro.traffic import MeasurementModel, simulate_flux

CLIENT_COUNTS = (1, 8, 64)
#: Closed-loop requests per client (total grows with the fleet, capped).
#: The 1-client row is the noisiest ratio (its true value is ~1.0 —
#: the adaptive bypass makes batched equal per-request dispatch), so
#: it gets the most samples.
REQUESTS_PER_CLIENT = {1: 128, 8: 32, 64: 8}
MAX_BATCH = 64
MAX_WAIT_S = 0.002
CANDIDATES = 64
SEED_TOP_K = 16
TOP_M = 5


def _scenario():
    net = build_network(
        field=RectangularField(15, 15), node_count=225, radius=2.4, rng=1234
    )
    sniffers = sample_sniffers_percentage(net, 20, rng=1)
    return net, sniffers


def _workload(net, sniffers, clients, per_client, seed=5):
    """Unique observations per request, grouped by client."""
    gen = np.random.default_rng(seed)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    work = []
    for c in range(clients):
        requests = []
        for r in range(per_client):
            truth = net.field.sample_uniform(1, gen)
            flux = simulate_flux(
                net, list(truth), [float(gen.uniform(1.0, 3.0))], rng=gen
            )
            requests.append(
                LocalizeRequest(
                    request_id=f"c{c}-r{r}",
                    client_id=f"client-{c}",
                    observation=measure.observe(flux),
                    candidate_count=CANDIDATES,
                    seed_top_k=SEED_TOP_K,
                    top_m=TOP_M,
                    seed=int(gen.integers(2**31)),
                )
            )
        work.append(requests)
    return work


def _service(net, sniffers, fingerprint_map, max_batch, adaptive=True):
    return LocalizationService(
        net.field,
        net.positions[sniffers],
        fingerprint_map=fingerprint_map,
        max_batch=max_batch,
        max_wait_s=MAX_WAIT_S,
        adaptive=adaptive,
        queue_capacity=1024,
    )


def _shared_map(net, sniffers):
    from repro.fpmap import build_fingerprint_map

    return build_fingerprint_map(
        net.field, net.positions[sniffers], resolution=1.0
    )


def _drive(service, work):
    """Closed-loop clients; returns (replies, elapsed_s)."""
    replies = []
    lock = threading.Lock()

    def client(requests):
        mine = [service.submit(r).result() for r in requests]
        with lock:
            replies.extend(mine)

    threads = [
        threading.Thread(target=client, args=(requests,)) for requests in work
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    return replies, elapsed


def _run_mode(net, sniffers, fmap, work, max_batch, warmup=4):
    with _service(net, sniffers, fmap, max_batch) as service:
        # Warm the shared caches (map signature norms, numpy dispatch,
        # arena/pool steady state) outside the timed region; both modes
        # get the same warmup.
        for request in work[0][:warmup]:
            service.call(request)
        replies, elapsed = _drive(service, work)
    bad = [r for r in replies if not r.ok]
    total = sum(len(requests) for requests in work)
    if bad or len(replies) != total:
        raise AssertionError(
            f"lost/failed replies: {len(replies)}/{total} back, "
            f"{len(bad)} errors"
        )
    return replies, elapsed, service.metrics


def _best_pair(net, sniffers, fmap, work, repeats):
    """Fastest-of-``repeats`` run per mode, modes interleaved.

    Best-of is the standard low-noise reduction for closed-loop
    throughput; interleaving the modes means drift on a busy runner
    biases neither side of the speedup ratio.
    """
    batched = unbatched = None
    for _ in range(repeats):
        run_b = _run_mode(net, sniffers, fmap, work, MAX_BATCH)
        run_u = _run_mode(net, sniffers, fmap, work, 1)
        if batched is None or run_b[1] < batched[1]:
            batched = run_b
        if unbatched is None or run_u[1] < unbatched[1]:
            unbatched = run_u
    return batched, unbatched


def _record(clients, per_client, batched, unbatched):
    replies_b, elapsed_b, metrics_b = batched
    replies_u, elapsed_u, metrics_u = unbatched
    total = len(replies_b)
    quantiles = metrics_b.latency_quantiles()
    quantiles_u = metrics_u.latency_quantiles()
    p95_ratio = (
        quantiles["p95"] / quantiles_u["p95"] if quantiles_u["p95"] else None
    )
    snap = metrics_b.snapshot()
    controller = snap.get("batch_controller", {})
    return {
        "benchmark": "serve_batching",
        "clients": clients,
        "requests_per_client": per_client,
        "requests": total,
        "batched_elapsed_s": elapsed_b,
        "unbatched_elapsed_s": elapsed_u,
        "batched_rps": total / elapsed_b,
        "unbatched_rps": total / elapsed_u,
        "speedup": elapsed_u / elapsed_b,
        "batched_mean_batch_size": metrics_b.mean_batch_size(),
        "batched_latency_p50_s": quantiles["p50"],
        "batched_latency_p95_s": quantiles["p95"],
        "batched_latency_p99_s": quantiles["p99"],
        "unbatched_latency_p50_s": quantiles_u["p50"],
        "unbatched_latency_p95_s": quantiles_u["p95"],
        "batched_p95_over_unbatched_p95": p95_ratio,
        "controller_bypasses": controller.get("bypasses"),
        "controller_windows": controller.get("windows"),
        "controller_window_mean_s": controller.get("window_mean_s"),
    }


# ----------------------------------------------------------------------
# Correctness gates (recorded in the JSON meta).
# ----------------------------------------------------------------------
def _fit_payload(result):
    return [
        (f.positions.tobytes(), f.thetas.tobytes(), float(f.objective))
        for f in result.fits
    ]


def check_bitwise_identity(net, sniffers, fmap) -> bool:
    """Batched replies == per-request replies, float64-bitwise."""
    work = _workload(net, sniffers, clients=1, per_client=16, seed=99)
    by_mode = {}
    for max_batch in (MAX_BATCH, 1):
        with _service(net, sniffers, fmap, max_batch) as service:
            futures = [service.submit(r) for r in work[0]]
            by_mode[max_batch] = {
                f.result().request_id: _fit_payload(f.result().result)
                for f in futures
            }
    return by_mode[MAX_BATCH] == by_mode[1]


def check_adaptive_fixed_parity(net, sniffers, fmap) -> bool:
    """Adaptive-controller replies == fixed-window replies, bitwise.

    The controller only decides *when* a batch drains and whether
    fusion is bypassed, never what a request computes — so the same
    workload through adaptive and fixed-window schedulers must agree
    on every float64 bit.
    """
    work = _workload(net, sniffers, clients=4, per_client=6, seed=97)
    by_mode = {}
    for adaptive in (True, False):
        with _service(
            net, sniffers, fmap, MAX_BATCH, adaptive=adaptive
        ) as service:
            futures = [
                service.submit(r) for requests in work for r in requests
            ]
            by_mode[adaptive] = {
                f.result().request_id: _fit_payload(f.result().result)
                for f in futures
            }
    return by_mode[True] == by_mode[False]


def check_deadline_typed_errors(net, sniffers, fmap) -> bool:
    """Expired requests get ``deadline_expired`` replies, none dropped."""
    work = _workload(net, sniffers, clients=1, per_client=8, seed=98)
    expired = [
        LocalizeRequest(
            request_id=r.request_id,
            client_id=r.client_id,
            observation=r.observation,
            candidate_count=r.candidate_count,
            deadline_s=0.0,
        )
        for r in work[0]
    ]
    with _service(net, sniffers, fmap, MAX_BATCH) as service:
        replies = [service.submit(r).result() for r in expired]
    return len(replies) == len(expired) and all(
        not r.ok and r.code == ERROR_DEADLINE_EXPIRED for r in replies
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serve_scenario():
    net, sniffers = _scenario()
    return net, sniffers, _shared_map(net, sniffers)


@pytest.mark.parametrize("clients", CLIENT_COUNTS)
def test_serve_batching(benchmark, serve_scenario, clients):
    net, sniffers, fmap = serve_scenario
    per_client = max(2, REQUESTS_PER_CLIENT[clients] // 4)
    work = _workload(net, sniffers, clients, per_client)

    def run():
        return (
            _run_mode(net, sniffers, fmap, work, MAX_BATCH),
            _run_mode(net, sniffers, fmap, work, 1),
        )

    batched, unbatched = benchmark.pedantic(run, rounds=1, iterations=1)
    record = _record(clients, per_client, batched, unbatched)
    benchmark.extra_info.update(record)
    print("\n" + json.dumps(record))
    assert len(batched[0]) == clients * per_client


def test_serve_bitwise_identity(serve_scenario):
    net, sniffers, fmap = serve_scenario
    assert check_bitwise_identity(net, sniffers, fmap)


def test_serve_adaptive_fixed_parity(serve_scenario):
    net, sniffers, fmap = serve_scenario
    assert check_adaptive_fixed_parity(net, sniffers, fmap)


def main() -> None:
    from repro.engine import write_bench_json

    quick = "--quick" in sys.argv[1:]
    gate = "--gate" in sys.argv[1:]
    net, sniffers = _scenario()
    fmap = _shared_map(net, sniffers)
    records = []
    for clients in CLIENT_COUNTS:
        per_client = REQUESTS_PER_CLIENT[clients]
        if quick:
            per_client = max(2, per_client // 8)
        work = _workload(net, sniffers, clients, per_client)
        batched, unbatched = _best_pair(
            net, sniffers, fmap, work, repeats=1 if quick else 5
        )
        record = _record(clients, per_client, batched, unbatched)
        records.append(record)
        print(json.dumps(record))
    meta = {
        "max_batch": MAX_BATCH,
        "max_wait_s": MAX_WAIT_S,
        "adaptive": True,
        "fusion_min_depth": 2,
        "target_p95_s": None,
        "candidate_count": CANDIDATES,
        "seed_top_k": SEED_TOP_K,
        "top_m": TOP_M,
        "map_resolution": 1.0,
        "quick": quick,
        "bitwise_identical": check_bitwise_identity(net, sniffers, fmap),
        "adaptive_fixed_parity": check_adaptive_fixed_parity(
            net, sniffers, fmap
        ),
        "deadline_typed_errors": check_deadline_typed_errors(
            net, sniffers, fmap
        ),
    }
    print(json.dumps({k: meta[k] for k in
                      ("bitwise_identical", "adaptive_fixed_parity",
                       "deadline_typed_errors")}))
    path = write_bench_json("serve", records, meta=meta)
    print(f"wrote {path}")
    if gate:
        # Strict batched >= unbatched wherever fusion actually engaged
        # (mean batch >= 2). Where the controller bypassed fusion the
        # batched path IS per-request dispatch — the true ratio is 1.0
        # — so those rows only need to sit within the measurement noise
        # floor of a shared-CPU runner.
        noise_floor = 0.97
        failures = []
        for r in records:
            fused = r["batched_mean_batch_size"] >= 2.0
            floor = 1.0 if fused else noise_floor
            if r["batched_rps"] < floor * r["unbatched_rps"]:
                failures.append(
                    f"clients={r['clients']}: batched_rps "
                    f"{r['batched_rps']:.1f} < {floor:g} * unbatched_rps "
                    f"{r['unbatched_rps']:.1f}"
                )
        failures += [
            f"correctness gate failed: {k}"
            for k in ("bitwise_identical", "adaptive_fixed_parity",
                      "deadline_typed_errors")
            if not meta[k]
        ]
        if failures:
            print("GATE FAILED:\n  " + "\n  ".join(failures))
            raise SystemExit(1)
        print("GATE PASSED: batched throughput holds at every client count")


if __name__ == "__main__":
    main()
