"""Fig. 9 — campus AP landmark layout.

Paper: ~500 APs are distributed within the Dartmouth campus; the 50 of
them inside a rectangular region serve as landmark references for the
locations of mobile users.
"""

from benchmarks.conftest import report
from repro.experiments import run_fig9


def test_fig9_ap_landmark_layout(benchmark, bench_seed):
    result = benchmark.pedantic(
        lambda: run_fig9(ap_count=500, landmark_count=50, rng=bench_seed),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result)
    row = result.rows[0]
    assert row["total_aps"] == 500
    assert row["landmark_aps"] == 50
    assert row["region_width"] > 0 and row["region_height"] > 0
    # Landmarks must be dense enough to act as position references.
    assert row["median_nearest_ap_spacing"] < row["region_width"] / 4
