"""Ablations — flux-model knobs called out in DESIGN.md.

* d_floor: the near-sink singularity clamp of Formula 3.4;
* smoothing: neighborhood flux averaging (paper Section III.B claims
  it mitigates routing randomness);
* objective weighting: absolute (paper) vs relative residuals.
"""

from benchmarks.conftest import report
from repro.experiments.ablations import (
    run_ablation_d_floor,
    run_ablation_smoothing,
    run_ablation_weighting,
)


def _by_variant(result):
    return {row["variant"]: row["error"] for row in result.rows}


def test_ablation_d_floor(benchmark):
    result = benchmark.pedantic(
        lambda: run_ablation_d_floor(repetitions=6, rng=1),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result)
    means = _by_variant(result)
    # The hop-scale clamp must be competitive with alternatives.
    assert means["d_floor=1"] < min(means.values()) + 1.5


def test_ablation_smoothing(benchmark):
    result = benchmark.pedantic(
        lambda: run_ablation_smoothing(repetitions=6, rng=2),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result)
    means = _by_variant(result)
    # Paper claim: neighborhood averaging mitigates routing randomness.
    assert means["smoothing=on"] <= means["smoothing=off"] + 0.8


def test_ablation_weighting(benchmark):
    result = benchmark.pedantic(
        lambda: run_ablation_weighting(repetitions=6, rng=3),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result)
    means = _by_variant(result)
    # Both residual weightings localize a single user.
    assert all(v < 4.0 for v in means.values())
