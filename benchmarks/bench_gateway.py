"""Gateway fan-in: wire RPS and p95 at 64 / 256 / 1024 connections.

Drives a :class:`repro.gateway.GatewayServer` fronting one
:class:`repro.serve.LocalizationService` with tiers of concurrent TCP
connections, every connection a real socket speaking the
newline-delimited JSON protocol. Each tier records over-the-wire RPS,
client-observed latency quantiles, and the server-side per-stage
decomposition (gateway_in → admission → fuse → solve → reply →
gateway_out) pulled from a ``trace_dump`` frame.

The acceptance gate mirrors the serve layer's core contract, extended
through the network: at **every** tier — including 1024 concurrent
connections — every request frame gets exactly one reply frame (none
lost, none duplicated, all ok). Connection counts are event-loop
state, so the gate exercises file-descriptor scale, not thread scale.

Runs under pytest like the rest of the suite, or standalone::

    PYTHONPATH=src python benchmarks/bench_gateway.py [--quick]

emitting ``BENCH_gateway.json`` via the shared runner.
"""

from __future__ import annotations

import asyncio
import json
import os
import resource
import sys
import time

import numpy as np
import pytest

from repro.fpmap import build_fingerprint_map
from repro.gateway import GatewayClient, GatewayServer
from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage
from repro.serve import LocalizationService
from repro.traffic import MeasurementModel, simulate_flux

CONNECTION_TIERS = (64, 256, 1024)
QUICK_TIERS = (16, 64)
#: Total request budget per tier, spread across its connections.
TOTAL_REQUESTS = 256
QUICK_TOTAL = 64
CANDIDATES = 16
MAX_BATCH = 32
QUEUE_CAPACITY = 2048
#: Concurrent dials while ramping a tier up (stays under the listen
#: backlog); once connected, all connections are live simultaneously.
DIAL_LIMIT = 100
OBSERVATION_POOL = 16


def _scenario():
    net = build_network(
        field=RectangularField(10, 10), node_count=100, radius=2.0, rng=5
    )
    sniffers = sample_sniffers_percentage(net, 20, rng=2)
    fmap = build_fingerprint_map(net.field, net.positions[sniffers],
                                 resolution=2.0)
    return net, sniffers, fmap


def _observations(net, sniffers, count=OBSERVATION_POOL, seed=9):
    gen = np.random.default_rng(seed)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    out = []
    for _ in range(count):
        truth = net.field.sample_uniform(1, gen)
        flux = simulate_flux(
            net, list(truth), [float(gen.uniform(1.0, 3.0))], rng=gen
        )
        out.append(measure.observe(flux))
    return out


async def _drive_tier(port, connections, observations, total_requests):
    """``connections`` live sockets, ``total_requests`` spread across."""
    per_connection = [total_requests // connections] * connections
    for i in range(total_requests % connections):
        per_connection[i] += 1
    dial_gate = asyncio.Semaphore(DIAL_LIMIT)
    ready = asyncio.Barrier(connections) if hasattr(asyncio, "Barrier") \
        else None

    async def one_connection(c, budget):
        async with dial_gate:
            client = GatewayClient(
                "127.0.0.1", port, f"bench-{c}", timeout_s=300.0
            )
            await client.connect()
        try:
            if ready is not None:
                await ready.wait()  # measure with all sockets live
            results = []
            for r in range(budget):
                obs = observations[(c + r) % len(observations)]
                started = time.monotonic()
                reply = await client.localize(
                    obs, id=f"b{c}-r{r}",
                    candidate_count=CANDIDATES, seed=c * 10_000 + r,
                )
                results.append((
                    reply["id"], bool(reply.get("ok")),
                    time.monotonic() - started,
                ))
            return results
        finally:
            await client.close()

    started = time.monotonic()
    batches = await asyncio.gather(*(
        one_connection(c, budget)
        for c, budget in enumerate(per_connection)
    ))
    elapsed = time.monotonic() - started
    return [r for batch in batches for r in batch], elapsed


async def _stage_dump(port):
    async with GatewayClient("127.0.0.1", port, "probe") as client:
        return await client.trace_dump(limit=0)


def _run_tier(service, gateway, observations, connections, total_requests):
    results, elapsed = asyncio.run(_drive_tier(
        gateway.port, connections, observations, total_requests
    ))
    stages = asyncio.run(_stage_dump(gateway.port)).get("stages", {})
    latencies = np.array([latency for _, _, latency in results])
    ids = [reply_id for reply_id, _, _ in results]
    record = {
        "connections": connections,
        "requests": total_requests,
        "replies": len(results),
        "replies_ok": sum(1 for _, ok, _ in results if ok),
        "unique_reply_ids": len(set(ids)),
        "elapsed_s": elapsed,
        "wire_rps": len(results) / elapsed if elapsed > 0 else float("nan"),
        "wire_latency_p50_s": float(np.quantile(latencies, 0.50)),
        "wire_latency_p95_s": float(np.quantile(latencies, 0.95)),
        "stages_p95_s": {
            stage: info["p95_s"] for stage, info in sorted(stages.items())
        },
        "replies_dropped": gateway.metrics.replies_dropped,
        "zero_lost": len(results) == total_requests,
        "zero_duplicated": len(set(ids)) == len(ids),
    }
    return record


def _gateway_stack(net, sniffers, fmap):
    service = LocalizationService(
        net.field, net.positions[sniffers], fingerprint_map=fmap,
        max_batch=MAX_BATCH, max_wait_s=0.002,
        queue_capacity=QUEUE_CAPACITY,
    )
    return service, GatewayServer(service, name="bench")


def _check_fd_headroom(connections):
    soft, _ = resource.getrlimit(resource.RLIMIT_NOFILE)
    # Client + server side of every connection lives in this process.
    needed = 2 * connections + 64
    return soft >= needed, soft, needed


# ----------------------------------------------------------------------
# pytest entry points (smallest tier only: CI-speed).
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def gateway_scenario():
    return _scenario()


def test_gateway_tier_zero_lost_zero_dup(benchmark, gateway_scenario):
    net, sniffers, fmap = gateway_scenario
    observations = _observations(net, sniffers)
    service, gateway = _gateway_stack(net, sniffers, fmap)

    with service, gateway:
        def run():
            return _run_tier(service, gateway, observations,
                             connections=16, total_requests=64)

        record = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(record)
    print("\n" + json.dumps(record))
    assert record["zero_lost"] and record["zero_duplicated"]
    assert record["replies_ok"] == record["requests"]


def main() -> None:
    from repro.engine import write_bench_json

    quick = "--quick" in sys.argv[1:]
    tiers = QUICK_TIERS if quick else CONNECTION_TIERS
    total = QUICK_TOTAL if quick else TOTAL_REQUESTS
    net, sniffers, fmap = _scenario()
    observations = _observations(net, sniffers)
    records = []
    skipped = []
    for connections in tiers:
        enough, soft, needed = _check_fd_headroom(connections)
        if not enough:
            skipped.append({"connections": connections,
                            "rlimit_nofile": soft, "needed": needed})
            print(json.dumps(skipped[-1] | {"skipped": True}))
            continue
        service, gateway = _gateway_stack(net, sniffers, fmap)
        with service, gateway:
            record = _run_tier(
                service, gateway, observations, connections,
                total_requests=max(total, connections),
            )
        records.append(record)
        print(json.dumps(record))

    meta = {
        "tiers": list(tiers),
        "candidate_count": CANDIDATES,
        "max_batch": MAX_BATCH,
        "queue_capacity": QUEUE_CAPACITY,
        "map_resolution": 2.0,
        "quick": quick,
        "cpus": os.cpu_count(),
        "fd_skipped_tiers": skipped,
        "zero_lost_all_tiers": all(r["zero_lost"] for r in records),
        "zero_duplicated_all_tiers": all(
            r["zero_duplicated"] for r in records
        ),
        "all_ok_all_tiers": all(
            r["replies_ok"] == r["requests"] for r in records
        ),
        "max_connections_sustained": max(
            (r["connections"] for r in records), default=0
        ),
    }
    path = write_bench_json("gateway", records, meta=meta)
    print(f"wrote {path}")

    failures = [
        gate for gate in ("zero_lost_all_tiers", "zero_duplicated_all_tiers",
                          "all_ok_all_tiers")
        if not meta[gate]
    ]
    if not records:
        failures.append("no_tier_had_fd_headroom")
    if failures:
        raise AssertionError(f"gateway gates failed: {', '.join(failures)}")


if __name__ == "__main__":
    main()
