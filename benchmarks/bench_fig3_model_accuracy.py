"""Fig. 3 — flux-model approximation accuracy.

Paper: (a) 80%+ of nodes approximated within 0.4 error rate on
2500-node uniform-random networks, improving as the average degree
grows 12 -> 16 -> 27; (b) the approximation error falls with hop count
and nodes >= 3 hops out still carry >70% of the network flux.
"""

from benchmarks.conftest import report
from repro.experiments import run_fig3a, run_fig3b


def test_fig3a_error_rate_cdf(benchmark, bench_seed):
    result = benchmark.pedantic(
        lambda: run_fig3a(
            degrees=(12.0, 16.0, 27.0),
            node_count=2500,
            field_size=50.0,
            sink_count=3,
            rng=bench_seed,
        ),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result)
    fractions = [row["P[err<=0.4]"] for row in result.rows]
    # Paper shape: most nodes under 0.4 error, improving with density.
    assert all(f > 0.6 for f in fractions)
    assert fractions[-1] >= fractions[0] - 0.05


def test_fig3b_flux_by_hops(benchmark, bench_seed):
    result = benchmark.pedantic(
        lambda: run_fig3b(
            node_count=2500, field_size=50.0, degree=12.0, rng=bench_seed
        ),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result)
    # Paper shape: >= 3-hop nodes preserve well over half the flux.
    assert result.metadata["flux_fraction_beyond_3_hops"] > 0.6
    # Near-sink rows are the worst-modeled ones.
    near = [r for r in result.rows if r["hops"] <= 2]
    mid = [r for r in result.rows if 3 <= r["hops"] <= 8]
    if near and mid:
        near_err = sum(r["median_err_rate"] for r in near) / len(near)
        mid_err = sum(r["median_err_rate"] for r in mid) / len(mid)
        assert mid_err <= near_err + 0.1
