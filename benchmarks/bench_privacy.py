"""Extension bench — privacy quantification of the attack.

Turns the paper's headline ("most existing systems are vulnerable")
into numbers: the probability a user is pinned within 2 field units,
and the privacy loss (1 - anonymity-area / field-area), as a function
of the sniffing percentage.
"""

import numpy as np

from repro.analysis import localization_privacy
from repro.experiments.ablations import single_user_attack_error
from repro.network import build_network
from repro.routing import build_collection_tree


def test_privacy_vs_sniffing_budget(benchmark):
    net = build_network(rng=13)

    def run():
        reports = {}
        for pct in (20.0, 10.0, 5.0):
            errors = []
            for rep in range(8):
                gen = np.random.default_rng(700 + rep)
                truth = net.field.sample_uniform(1, gen)[0]
                tree = build_collection_tree(net, truth, rng=gen)
                flux = 2.0 * tree.subtree_aggregate()
                errors.append(
                    single_user_attack_error(
                        net,
                        flux,
                        truth,
                        np.random.default_rng(rep),
                        sniffer_percentage=pct,
                        candidate_count=2000,
                    )
                )
            reports[pct] = localization_privacy(
                np.asarray(errors), net.field, radii=(2.0, 5.0)
            )
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nprivacy vs sniffing budget:")
    for pct, report in sorted(reports.items(), reverse=True):
        print(f"  {pct:5.1f}% sniffers: {report.summary()}")
    # Headline claim: sniffing 10% of nodes pins users within 5 units
    # most of the time and destroys most of their location privacy.
    r10 = reports[10.0]
    assert r10.pinning[5.0] >= 0.6
    assert r10.privacy_loss >= 0.5
