"""Extension bench — SMC tracker vs EKF-over-NLS-fixes baseline.

The related work ([9, 23]) tracks remote objects with (extended)
Kalman filters over per-round position fixes. This bench compares the
paper's Sequential Monte Carlo tracker against a constant-velocity
Kalman filter fed with instant NLS fixes on the same observations.
"""

import numpy as np

from repro.baselines import EKFTracker
from repro.fingerprint import NLSLocalizer
from repro.mobility import linear_trajectory
from repro.network import build_network, sample_sniffers_percentage
from repro.smc import SequentialMonteCarloTracker, TrackerConfig
from repro.traffic import FluxSimulator, MeasurementModel, synchronous_schedule


def _run_comparison(seed: int):
    gen = np.random.default_rng(seed)
    net = build_network(rng=gen)
    rounds = 10
    traj = linear_trajectory((4.0, 5.0), (26.0, 22.0), rounds)
    schedule = synchronous_schedule([traj.positions], [2.0])
    sim = FluxSimulator(net, rng=gen)
    sniffers = sample_sniffers_percentage(net, 10, rng=gen)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)

    smc = SequentialMonteCarloTracker(
        net.field,
        net.positions[sniffers],
        user_count=1,
        config=TrackerConfig(prediction_count=500, keep_count=10, max_speed=5.0),
        rng=gen,
    )
    localizer = NLSLocalizer(net.field, net.positions[sniffers])
    ekf = None
    smc_errors, ekf_errors = [], []
    for k, (t, events) in enumerate(schedule.windows(1.0)):
        flux = sim.window_flux(events).total
        obs = measure.observe(flux, time=t)
        truth = traj.positions[k]

        step = smc.step(obs)
        smc_errors.append(float(np.linalg.norm(step.estimates[0] - truth)))

        fix = localizer.localize(
            obs, user_count=1, candidate_count=1500, restarts=1, rng=gen
        ).best.positions[0]
        if ekf is None:
            ekf = EKFTracker(fix)
            ekf_pos = fix
        else:
            ekf_pos = ekf.step(1.0, fix)
        ekf_errors.append(float(np.linalg.norm(ekf_pos - truth)))
    half = rounds // 2
    return (
        float(np.mean(smc_errors[half:])),
        float(np.mean(ekf_errors[half:])),
    )


def test_smc_vs_ekf(benchmark):
    def run():
        results = [_run_comparison(seed) for seed in (1, 2, 3)]
        return (
            float(np.mean([r[0] for r in results])),
            float(np.mean([r[1] for r in results])),
        )

    smc_err, ekf_err = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nbaseline trackers: SMC={smc_err:.2f}  EKF-over-NLS={ekf_err:.2f}")
    # Both track; the SMC tracker must be at least competitive — its
    # speed-bounded multi-sample posterior is the paper's contribution.
    assert smc_err < 4.0
    assert smc_err < ekf_err + 1.0
