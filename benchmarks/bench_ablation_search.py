"""Ablation — composition search strategies.

DESIGN.md decision: the paper's pseudocode ranks all N^K compositions,
which is infeasible at N=1000, K>=3. We use coordinate descent. This
bench validates the substitution: on problems small enough to
enumerate exactly, coordinate descent finds (near-)optimal objectives,
and the smooth-field scipy refinement illustrates why the paper's
rectangular field forces sampling search (LM-style refinement only
helps where the boundary is differentiable).
"""

import numpy as np

from repro.baselines import refine_smooth_field
from repro.fingerprint.nls import coordinate_descent, enumerate_compositions
from repro.fingerprint.objective import FluxObjective
from repro.fluxmodel.discrete import DiscreteFluxModel
from repro.geometry import CircularField, RectangularField
from repro.traffic.measurement import FluxObservation


def _setup(field, seed, n_nodes=60):
    gen = np.random.default_rng(seed)
    nodes = field.sample_uniform(n_nodes, gen)
    model = DiscreteFluxModel(field, nodes, d_floor=0.5)
    truth = np.stack(
        [field.sample_uniform(1, gen)[0], field.sample_uniform(1, gen)[0]]
    )
    thetas = gen.uniform(1.0, 3.0, 2)
    values = model.predict(truth, thetas)
    obs = FluxObservation(
        time=0.0, sniffers=np.arange(n_nodes), values=values
    )
    return model, truth, FluxObjective.from_observation(model, obs), gen


def test_coordinate_descent_matches_exact_enumeration(benchmark):
    field = RectangularField(20, 20)
    gaps = []

    def run():
        gaps.clear()
        for seed in range(5):
            model, truth, objective, gen = _setup(field, seed)
            pools = [field.sample_uniform(40, gen) for _ in range(2)]
            exact = enumerate_compositions(objective, pools, top_m=1)[0]
            # Restarted coordinate descent, as the localizer runs it.
            cd_best = min(
                coordinate_descent(objective, pools, rng=gen, sweeps=4).best_objective
                for _ in range(3)
            )
            denom = max(exact.objective, 1e-9)
            gaps.append((cd_best - exact.objective) / denom)
        return gaps

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation/search: CD-vs-exact relative gaps = {np.round(gaps, 4)}")
    # Restarted coordinate descent matches exact enumeration on most
    # instances and never degrades the objective materially.
    assert np.median(gaps) < 1e-6
    assert max(gaps) < 0.5


def test_smooth_refinement_only_helps_on_smooth_fields(benchmark):
    circle = CircularField(10.0, center=(10.0, 10.0))

    def run():
        improvements = []
        for seed in range(5):
            model, truth, objective, gen = _setup(circle, 100 + seed)
            start = truth + gen.normal(0, 1.0, truth.shape)
            start = circle.clip(start)
            _, obj0 = objective.evaluate(start)
            _, _, obj1 = refine_smooth_field(
                objective, start, np.array([1.0, 1.0])
            )
            improvements.append(obj0 - obj1)
        return improvements

    improvements = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation/search: smooth-field LM improvements = {np.round(improvements, 3)}")
    # Gradient refinement consistently reduces the objective on the
    # differentiable circular boundary.
    assert np.median(improvements) > 0
