"""Ablation — routing family and in-network aggregation robustness.

The flux model (Formula 3.4) is derived for shortest-path convergecast
but only assumes traffic concentrates toward the sink. This bench
checks the attack against (a) greedy *geographic* routing trees and
(b) TAG-style in-network aggregation, which breaks the raw-convergecast
assumption and acts as an implicit defense.
"""

from benchmarks.conftest import report
from repro.experiments.ablations import (
    run_ablation_aggregation,
    run_ablation_routing,
    run_robustness_holes,
)


def test_ablation_routing_family(benchmark):
    result = benchmark.pedantic(
        lambda: run_ablation_routing(repetitions=6, rng=7),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result)
    means = {row["variant"]: row["error"] for row in result.rows}
    # The attack transfers across routing families.
    assert means["routing=geographic"] < means["routing=bfs"] + 1.5
    assert all(v < 4.5 for v in means.values())


def test_ablation_aggregation(benchmark):
    result = benchmark.pedantic(
        lambda: run_ablation_aggregation(repetitions=6, rng=8),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result)
    means = {row["variant"]: row["error"] for row in result.rows}
    # Raw convergecast (factor 1) is the paper's setting and must work.
    assert means["aggregation=1"] < 4.0
    # Full aggregation flattens the fingerprint: accuracy degrades.
    assert means["aggregation=0"] > means["aggregation=1"]


def test_robustness_coverage_holes(benchmark):
    result = benchmark.pedantic(
        lambda: run_robustness_holes(
            hole_radii=(0.0, 4.0, 7.0), repetitions=5, rng=9
        ),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result)
    by_radius = {row["hole_radius"]: row["error"] for row in result.rows}
    # Small holes are tolerated; a large central hole adds model
    # mismatch and degrades accuracy.
    assert by_radius[4.0] < by_radius[0.0] + 1.5
    assert by_radius[7.0] >= by_radius[0.0] - 0.5
