"""Fig. 8 — tracking accuracy sweeps.

Paper: (a) tracking error stays stable until the sampling percentage
drops below 5% (10% is already acceptable); (b) network density
(900-1800 nodes, 90 reports) does not significantly affect accuracy.
"""

from benchmarks.conftest import report
from repro.experiments import PaperDefaults, run_fig8a, run_fig8b

_DEFAULTS = PaperDefaults().scaled(4)  # N=250 predictions


def test_fig8a_tracking_vs_sampling_percentage(benchmark, bench_seed):
    result = benchmark.pedantic(
        lambda: run_fig8a(
            user_counts=(1, 2),
            repetitions=2,
            defaults=_DEFAULTS,
            rng=bench_seed,
        ),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result)
    by_pct = {row["percentage"]: row for row in result.rows}
    # Paper shape: 40 -> 10 % roughly stable for the single user...
    assert by_pct[10.0]["1_user"] < by_pct[40.0]["1_user"] + 2.5
    # ...and accuracy still useful at 10%.
    assert by_pct[10.0]["1_user"] < 5.0


def test_fig8b_tracking_vs_density(benchmark, bench_seed):
    result = benchmark.pedantic(
        lambda: run_fig8b(
            user_counts=(1, 2),
            repetitions=2,
            defaults=_DEFAULTS,
            rng=bench_seed,
        ),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result)
    errors = [row["1_user"] for row in result.rows]
    # Paper shape: density does not significantly affect accuracy.
    assert max(errors) - min(errors) < 3.0
