"""Extension bench — traffic-reshaping defenses (paper Section VI).

The paper's future work proposes "reshaping the network traffics to
prevent malicious detection". This bench quantifies the trade-off:
attack error vs traffic overhead for uniform padding and dummy-sink
injection.
"""

import numpy as np

from repro.countermeasures import defense_tradeoff
from repro.network import build_network


def test_defense_tradeoff(benchmark):
    net = build_network(rng=4)
    points = benchmark.pedantic(
        lambda: defense_tradeoff(
            net,
            user_count=2,
            padding_levels=(0.0, 0.5, 0.9),
            dummy_counts=(2, 4),
            repetitions=3,
            candidate_count=1200,
            rng=11,
        ),
        rounds=1,
        iterations=1,
    )
    print("\ncountermeasures trade-off:")
    for p in points:
        print(
            f"  {p.defense:<12} param={p.parameter:<5g} "
            f"attack_error={p.attack_error:6.2f} overhead={p.overhead:7.1%}"
        )
    base = next(p for p in points if p.defense == "padding" and p.parameter == 0)
    heavy_pad = next(
        p for p in points if p.defense == "padding" and p.parameter == 0.9
    )
    # Strong padding must blind the attack (error grows a lot)...
    assert heavy_pad.attack_error > 2 * base.attack_error
    # ...at substantial traffic overhead.
    assert heavy_pad.overhead > 1.0
    # Dummy sinks cost less but confuse the attacker measurably.
    dummies = [p for p in points if p.defense == "dummy_sinks"]
    assert all(p.attack_error > base.attack_error for p in dummies)
