"""Fig. 4 — recursive briefing of the network flux.

Paper: with three users' traffic superposed, each briefing round
detects the dominant user, subtracts its modeled flux, and reveals the
next; the reduced maps match real observations.
"""

from benchmarks.conftest import report
from repro.experiments import run_fig4


def test_fig4_recursive_briefing(benchmark, bench_seed):
    result = benchmark.pedantic(
        lambda: run_fig4(user_count=3, node_count=900, rng=bench_seed),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result)
    assert len(result.rows) == 3
    # Every detected user lands near a true user.
    for row in result.rows:
        assert row["position_error"] < 4.0
    # Residual flux energy shrinks monotonically.
    fracs = [row["residual_energy_fraction"] for row in result.rows]
    assert all(b <= a for a, b in zip(fracs, fracs[1:]))
    assert fracs[-1] < 0.5
