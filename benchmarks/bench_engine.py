"""Engine benchmark trajectory: kernel evaluation + parallel filtering.

Two cases, both emitted into ``BENCH_engine.json`` through the shared
runner (:mod:`repro.engine.benchrunner`):

``kernel_pool``
    A large candidate pool evaluated through the legacy pair-grid
    implementation (:func:`reference_geometry_kernels`, the pre-engine
    code kept verbatim as oracle/baseline) vs the chunked broadcast
    evaluator, plus its float32 mode. Records the traced Python-level
    peak allocation of both — the evidence that the chunked evaluator's
    working set stays bounded while the reference materializes the
    ``(m*n, 2)`` grid.

``filtering``
    The acceptance case: one 4-user / 1000-candidate / 3-sweep
    coordinate-descent filtering round. The serial baseline reproduces
    the *pre-engine* implementation bench-locally (reference kernels,
    per-row scipy NNLS fallback, unconditional final re-rank); the
    engine run is the shipped path with 4 workers. The run also asserts
    that the engine's float64 output with workers is bitwise-identical
    to its serial output.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine.py [--quick] [--output P]

or under pytest (one fast correctness test, no timing loops).
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

import numpy as np

from repro.engine import Engine, measure, reference_geometry_kernels, write_bench_json
from repro.engine.kernels import evaluate_geometry_kernels
from repro.fingerprint.nls import coordinate_descent
from repro.fingerprint.objective import (
    EvalWorkspace,
    FluxObjective,
    solve_thetas_batched,
)
from repro.fluxmodel.discrete import DiscreteFluxModel
from repro.geometry import RectangularField
from repro.network import build_network, sample_sniffers_percentage
from repro.traffic import MeasurementModel, simulate_flux

WORKERS = 4
SEED = 20100621


# ----------------------------------------------------------------------
# Scenario.
# ----------------------------------------------------------------------
def _deployment(quick: bool):
    if quick:
        net = build_network(
            field=RectangularField(15, 15), node_count=225, radius=2.0, rng=1234
        )
    else:
        net = build_network(
            field=RectangularField(30, 30), node_count=900, radius=2.4, rng=1234
        )
    sniffers = sample_sniffers_percentage(net, 10, rng=1)
    return net, sniffers


def _observation(net, sniffers, users: int):
    gen = np.random.default_rng(SEED)
    truth = net.field.sample_uniform(users, gen)
    stretches = gen.uniform(1.5, 2.5, users)
    flux = simulate_flux(net, list(truth), list(stretches), rng=gen)
    return MeasurementModel(net, sniffers, smooth=True, rng=gen).observe(flux)


# ----------------------------------------------------------------------
# Bench-local reproduction of the pre-engine filtering round.
# ----------------------------------------------------------------------
def _legacy_evaluate_batch(objective, candidate_kernels, fixed_kernels, ws):
    """The pre-engine ``FluxObjective.evaluate_batch`` body (preweighted)."""
    N, n = candidate_kernels.shape
    fixed_count = 0 if fixed_kernels is None else fixed_kernels.shape[0]
    if fixed_count == 0:
        stacks = candidate_kernels[:, None, :]
    else:
        stacks = ws.buffer("stacks", (N, 1 + fixed_count, n))
        stacks[:, 0, :] = candidate_kernels
        stacks[:, 1:, :] = fixed_kernels[None, :, :]
    return solve_thetas_batched(
        stacks, objective._weighted_target, workspace=ws, nnls_mode="scipy"
    )


def legacy_filtering_round(objective, pools, seed: int, sweeps: int):
    """The pre-engine coordinate-descent filtering round, reproduced.

    Reference pair-grid kernels, per-row scipy NNLS for every
    negative-theta composition, and the unconditional final re-rank of
    every user — the code path this PR replaced, timed as the honest
    serial baseline.
    """
    gen = np.random.default_rng(seed)
    K = len(pools)
    model = objective.model
    kernels = [
        objective._weight_kernels(
            reference_geometry_kernels(
                model.field, model.node_positions, np.asarray(p, float),
                model.d_floor,
            )
        )
        for p in pools
    ]
    workspaces = [EvalWorkspace() for _ in range(K)]
    order = np.arange(K)
    gen.shuffle(order)
    incumbents = np.zeros(K, dtype=np.int64)
    fixed_stack: List[np.ndarray] = []
    for j in order:
        fixed = np.asarray(fixed_stack) if fixed_stack else None
        _, objs = _legacy_evaluate_batch(objective, kernels[j], fixed, workspaces[j])
        best = int(np.argmin(objs))
        incumbents[j] = best
        fixed_stack.append(kernels[j][best])
    best_objective = np.inf
    for _ in range(max(1, sweeps)):
        improved = False
        gen.shuffle(order)
        for j in order:
            others = [k for k in range(K) if k != j]
            fixed = (
                np.stack([kernels[k][incumbents[k]] for k in others])
                if others
                else None
            )
            _, objs = _legacy_evaluate_batch(
                objective, kernels[j], fixed, workspaces[j]
            )
            best = int(np.argmin(objs))
            if objs[best] < best_objective - 1e-9:
                improved = True
                best_objective = float(objs[best])
                incumbents[j] = best
        if not improved:
            break
    rankings = []
    for j in range(K):
        others = [k for k in range(K) if k != j]
        fixed = (
            np.stack([kernels[k][incumbents[k]] for k in others]) if others else None
        )
        _, objs = _legacy_evaluate_batch(objective, kernels[j], fixed, workspaces[j])
        rankings.append(objs)
    return incumbents, best_objective, rankings


def engine_filtering_round(objective, pools, seed: int, sweeps: int, engine):
    outcome = coordinate_descent(
        objective, pools, rng=np.random.default_rng(seed), sweeps=sweeps,
        engine=engine,
    )
    return outcome


def check_parallel_equals_serial(objective, pools, sweeps: int, workers: int):
    """Assert the engine's parallel float64 outputs are bitwise serial."""
    serial = engine_filtering_round(objective, pools, SEED, sweeps, engine=None)
    with Engine(workers=workers) as eng:
        parallel = engine_filtering_round(objective, pools, SEED, sweeps, eng)
    assert np.array_equal(serial.best_indices, parallel.best_indices)
    assert np.array_equal(serial.best_thetas, parallel.best_thetas)
    assert serial.best_objective == parallel.best_objective
    for a, b in zip(serial.per_user_objectives, parallel.per_user_objectives):
        assert np.array_equal(a, b), "parallel ranking diverged from serial"
    for a, b in zip(serial.per_user_thetas, parallel.per_user_thetas):
        assert np.array_equal(a, b)
    return True


# ----------------------------------------------------------------------
# Cases.
# ----------------------------------------------------------------------
def case_kernel_pool(quick: bool, repeats: int):
    sinks_count = 2000 if quick else 10000
    net, sniffers = _deployment(quick)
    model = DiscreteFluxModel(net.field, net.positions[sniffers])
    gen = np.random.default_rng(SEED)
    sinks = net.field.sample_uniform(sinks_count, gen)

    reference = measure(
        lambda: reference_geometry_kernels(
            model.field, model.node_positions, sinks, model.d_floor
        ),
        repeats=repeats,
        trace_memory=True,
    )
    chunked = measure(
        lambda: model.geometry_kernels(sinks), repeats=repeats, trace_memory=True
    )
    with Engine(dtype="float32") as eng32:
        f32 = measure(
            lambda: model.geometry_kernels(sinks, engine=eng32),
            repeats=repeats,
            trace_memory=True,
        )
        got32 = model.geometry_kernels(sinks, engine=eng32)

    want = reference_geometry_kernels(
        model.field, model.node_positions, sinks, model.d_floor
    )
    got = model.geometry_kernels(sinks)
    bitwise = bool(np.array_equal(want, got))
    scale = np.maximum(np.abs(want), 1.0)
    f32_err = float(np.max(np.abs(got32.astype(float) - want) / scale))
    return {
        "case": "kernel_pool",
        "sinks": int(sinks_count),
        "nodes": int(model.node_count),
        "reference": reference,
        "chunked": chunked,
        "float32": f32,
        "speedup": reference["median_s"] / chunked["median_s"],
        "bitwise_equal_reference": bitwise,
        "float32_max_rel_err": f32_err,
        "traced_peak_ratio": (
            reference["traced_peak_bytes"] / max(chunked["traced_peak_bytes"], 1)
        ),
    }


def case_filtering(quick: bool, repeats: int):
    users = 4
    candidates = 300 if quick else 1000
    sweeps = 2 if quick else 3
    net, sniffers = _deployment(quick)
    obs = _observation(net, sniffers, users)
    model = DiscreteFluxModel(net.field, net.positions[sniffers])
    objective = FluxObjective.from_observation(model, obs)
    gen = np.random.default_rng(SEED)
    pools = [net.field.sample_uniform(candidates, gen) for _ in range(users)]

    serial = measure(
        lambda: legacy_filtering_round(objective, pools, SEED, sweeps),
        repeats=repeats,
    )
    with Engine(workers=WORKERS) as eng:
        parallel = measure(
            lambda: engine_filtering_round(objective, pools, SEED, sweeps, eng),
            repeats=repeats,
        )
    equal = check_parallel_equals_serial(objective, pools, sweeps, WORKERS)
    return {
        "case": "filtering",
        "users": users,
        "candidates_per_user": candidates,
        "sweeps": sweeps,
        "workers": WORKERS,
        "serial_baseline": "pre-engine implementation (reference pair-grid "
        "kernels, per-row scipy NNLS, unconditional final re-rank)",
        "serial": serial,
        "parallel": parallel,
        "speedup": serial["median_s"] / parallel["median_s"],
        "parallel_equals_serial": equal,
    }


def run(quick: bool = False, output: Optional[str] = None):
    repeats = 2 if quick else 5
    records = [case_kernel_pool(quick, repeats), case_filtering(quick, repeats)]
    path = write_bench_json(
        "engine", records, path=output, meta={"quick": quick, "seed": SEED}
    )
    return path, records


# ----------------------------------------------------------------------
# Pytest entry (correctness only, no timing loops).
# ----------------------------------------------------------------------
def test_engine_filtering_parallel_equals_serial():
    net, sniffers = _deployment(quick=True)
    obs = _observation(net, sniffers, 3)
    model = DiscreteFluxModel(net.field, net.positions[sniffers])
    objective = FluxObjective.from_observation(model, obs)
    gen = np.random.default_rng(SEED)
    pools = [net.field.sample_uniform(200, gen) for _ in range(3)]
    assert check_parallel_equals_serial(objective, pools, sweeps=2, workers=4)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small scenario, 2 repeats (CI smoke)",
    )
    parser.add_argument(
        "--output", default=None, help="output path (default BENCH_engine.json)"
    )
    args = parser.parse_args(argv)
    path, records = run(quick=args.quick, output=args.output)
    for record in records:
        print(json.dumps(
            {k: v for k, v in record.items() if not isinstance(v, dict)}
        ))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
