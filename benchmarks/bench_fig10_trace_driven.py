"""Fig. 10 — trace-driven tracking (synthetic Dartmouth substitution).

Paper: (a) with perturbed-grid deployment the tracking error stays
below 3 when >= 10% of nodes report (< 5% of the field diameter);
purely random deployment gives ~1.5x the grid error; (b) the error is
roughly stable in the resampling radius (max speed) 4 -> 12, with a
slight increase.

Paper scale is 10 runs x 20 users; the bench uses reduced counts —
pass runs=10, users_per_run=20 to the runners for the full experiment.
"""

import numpy as np

from benchmarks.conftest import report
from repro.experiments import PaperDefaults, run_fig10a, run_fig10b

_DEFAULTS = PaperDefaults().scaled(3)


def test_fig10a_trace_error_vs_percentage(benchmark, bench_seed):
    result = benchmark.pedantic(
        lambda: run_fig10a(
            percentages=(40.0, 20.0, 10.0, 5.0),
            runs=2,
            users_per_run=6,
            defaults=_DEFAULTS,
            rng=bench_seed,
        ),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result)
    by_pct = {row["percentage"]: row for row in result.rows}
    # Paper magnitude: grid error limited (<3, i.e. <5% of diameter)
    # at >= 10% reports; we allow 2x slack on the synthetic traces.
    assert by_pct[10.0]["perturbed_grid"] < 6.0
    # Shape: dropping to 5% reports does not improve accuracy.
    assert by_pct[5.0]["perturbed_grid"] >= by_pct[40.0]["perturbed_grid"] - 1.5


def test_fig10b_trace_error_vs_resampling_radius(benchmark, bench_seed):
    result = benchmark.pedantic(
        lambda: run_fig10b(
            radii=(4.0, 8.0, 12.0),
            runs=2,
            users_per_run=6,
            defaults=_DEFAULTS,
            rng=bench_seed,
        ),
        rounds=1,
        iterations=1,
    )
    report(benchmark, result)
    errors = [row["perturbed_grid"] for row in result.rows]
    # Paper shape: robust to the enlarged resampling disc — roughly
    # stable across radius 4 -> 12.
    assert max(errors) - min(errors) < 4.0
