"""Extension bench — user-count estimation (paper §IV.A claim).

"The number of mobile users K is not necessarily preknown ... we can
conservatively choose a K large enough, and after the optimization
process the K coordinates will converge at the actual positions."
This bench turns that claim into a measurement: estimate K with 6
conservative slots over true K = 1..3 and report the hit rate.
"""

import numpy as np

from repro.fingerprint import NLSLocalizer
from repro.fingerprint.usercount import estimate_user_count
from repro.network import build_network, sample_sniffers_percentage
from repro.traffic import MeasurementModel, simulate_flux


def test_user_count_estimation(benchmark):
    net = build_network(rng=21)

    def run():
        results = {k: [] for k in (1, 2, 3)}
        for true_k in results:
            for rep in range(4):
                gen = np.random.default_rng(800 + 10 * true_k + rep)
                truth = net.field.sample_uniform(true_k, gen)
                for _ in range(40):
                    d = np.linalg.norm(
                        truth[:, None, :] - truth[None, :, :], axis=2
                    )
                    np.fill_diagonal(d, np.inf)
                    if true_k == 1 or d.min() > net.field.diameter / 4:
                        break
                    truth = net.field.sample_uniform(true_k, gen)
                stretches = gen.uniform(1.5, 3.0, true_k)
                flux = simulate_flux(net, list(truth), list(stretches), rng=gen)
                sniffers = sample_sniffers_percentage(net, 20, rng=gen)
                obs = MeasurementModel(
                    net, sniffers, smooth=True, rng=gen
                ).observe(flux)
                loc = NLSLocalizer(net.field, net.positions[sniffers])
                est = estimate_user_count(
                    loc, obs, max_users=6, candidate_count=1500, rng=rep
                )
                results[true_k].append(est.count)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nuser-count estimation (true K -> estimates):")
    within_one = 0
    total = 0
    for true_k, estimates in sorted(results.items()):
        print(f"  K={true_k}: estimates {estimates}")
        within_one += sum(1 for e in estimates if abs(e - true_k) <= 1)
        total += len(estimates)
    # The conservative-K claim holds: estimates land within +-1 of the
    # truth in the large majority of runs.
    assert within_one / total >= 0.7
