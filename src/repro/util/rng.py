"""Random-number-generator discipline.

Every stochastic component in the library accepts a ``rng`` argument
that may be ``None`` (fresh entropy), an integer seed, or an existing
:class:`numpy.random.Generator`. :func:`as_generator` normalizes all
three. Components that run concurrent sub-experiments derive
independent child generators via :func:`spawn_generators` so that
experiment repetitions are statistically independent yet reproducible
from a single seed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

#: The union of accepted RNG specifications throughout the library.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(rng: RandomState = None) -> np.random.Generator:
    """Normalize ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed, a ``SeedSequence``, or
        an existing ``Generator`` (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    raise TypeError(
        f"rng must be None, int, SeedSequence or numpy Generator, got {type(rng)!r}"
    )


def spawn_generators(rng: RandomState, count: int) -> list:
    """Derive ``count`` statistically independent child generators.

    The children are derived through ``SeedSequence.spawn`` semantics:
    reproducible when ``rng`` is a seed, independent of each other, and
    independent of subsequent draws from the parent.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    parent = as_generator(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(np.random.SeedSequence(int(s))) for s in seeds]
