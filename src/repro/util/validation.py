"""Argument-validation helpers with uniform error messages.

Validation failures raise :class:`repro.errors.ConfigurationError` so
that user-facing APIs reject bad inputs early with actionable messages
instead of failing deep inside numpy broadcasting.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


def check_positive(name: str, value: float, strict: bool = True) -> float:
    """Validate that ``value`` is positive (``> 0``; ``>= 0`` if not strict)."""
    value = float(value)
    if not np.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value}")
    if strict and value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    inclusive: Tuple[bool, bool] = (True, True),
) -> float:
    """Validate ``low <= value <= high`` (bounds open/closed per ``inclusive``)."""
    value = float(value)
    lo_ok = value >= low if inclusive[0] else value > low
    hi_ok = value <= high if inclusive[1] else value < high
    if not (np.isfinite(value) and lo_ok and hi_ok):
        lo_b = "[" if inclusive[0] else "("
        hi_b = "]" if inclusive[1] else ")"
        raise ConfigurationError(
            f"{name} must be in {lo_b}{low}, {high}{hi_b}, got {value}"
        )
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0)


def check_finite_array(name: str, array: np.ndarray) -> np.ndarray:
    """Validate that every element of ``array`` is finite; returns it as ndarray."""
    array = np.asarray(array, dtype=float)
    if array.size and not np.all(np.isfinite(array)):
        bad = int(np.count_nonzero(~np.isfinite(array)))
        raise ConfigurationError(f"{name} contains {bad} non-finite element(s)")
    return array


def check_shape(
    name: str, array: np.ndarray, shape: Sequence[Optional[int]]
) -> np.ndarray:
    """Validate the shape of ``array``; ``None`` entries match any extent."""
    array = np.asarray(array)
    if array.ndim != len(shape):
        raise ConfigurationError(
            f"{name} must have {len(shape)} dimension(s), got {array.ndim}"
        )
    for axis, want in enumerate(shape):
        if want is not None and array.shape[axis] != want:
            raise ConfigurationError(
                f"{name} must have shape {tuple(shape)}, got {array.shape}"
            )
    return array
