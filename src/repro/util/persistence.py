"""Binary persistence of networks and observations (npz).

Experiments that sweep many attack configurations over the *same*
deployment can save the network once and reload it; observation logs
can be archived for offline re-analysis or replayed through the
streaming service (:mod:`repro.stream`).

All loaders raise :class:`repro.errors.ConfigurationError` on archives
missing expected keys, so a truncated or foreign ``.npz`` fails with an
actionable message instead of a raw numpy ``KeyError``. Versioned
archives (checkpoints, fingerprint maps) share :func:`require_format`
for the format gate and :func:`deployment_hash` for detecting stale
artifacts built against a different deployment.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.field import CircularField, Field, RectangularField
from repro.network.graph import UnitDiskGraph
from repro.network.topology import Network
from repro.traffic.measurement import FluxObservation

_PathLike = Union[str, Path]


def field_to_arrays(field: Field) -> Tuple[str, np.ndarray]:
    """Flatten a field into ``(kind, params)`` arrays for npz storage.

    Only rectangular and circular fields are supported (polygon fields
    would need vertex serialization; add when needed).
    """
    if isinstance(field, RectangularField):
        return "rectangular", np.array(
            [field.width, field.height, field.xmin, field.ymin]
        )
    if isinstance(field, CircularField):
        return "circular", np.array(
            [field.radius, field.center[0], field.center[1], 0.0]
        )
    raise ConfigurationError(
        f"cannot serialize field type {type(field).__name__}"
    )


def field_from_arrays(kind: str, params: np.ndarray) -> Field:
    """Rebuild a field from :func:`field_to_arrays` output."""
    if kind == "rectangular":
        return RectangularField(
            float(params[0]), float(params[1]),
            origin=(float(params[2]), float(params[3])),
        )
    if kind == "circular":
        return CircularField(
            float(params[0]), center=(float(params[1]), float(params[2]))
        )
    raise ConfigurationError(f"unknown field kind {kind!r}")


def require_keys(data, keys, path: _PathLike) -> None:
    """Check that a loaded npz has every expected key."""
    missing = [k for k in keys if k not in getattr(data, "files", data)]
    if missing:
        raise ConfigurationError(
            f"{Path(path)} is missing expected keys {missing}; "
            "was it saved by a different repro version or tool?"
        )


def require_format(data, expected: int, path: _PathLike, kind: str = "archive") -> int:
    """Check a versioned archive's ``format`` key against ``expected``.

    Shared by every versioned ``.npz`` family (stream checkpoints,
    fingerprint maps) so stale files fail with the same actionable
    :class:`~repro.errors.ConfigurationError` everywhere.
    """
    require_keys(data, ("format",), path)
    fmt = int(np.asarray(data["format"]).ravel()[0])
    if fmt != expected:
        raise ConfigurationError(
            f"{Path(path)}: {kind} format {fmt} unsupported (expected "
            f"{expected}); rebuild it with this repro version"
        )
    return fmt


def deployment_hash(
    field: Field, sniffer_positions: np.ndarray, d_floor: float = 1.0
) -> str:
    """Stable hex digest identifying a (field, sniffer set, d_floor) deployment.

    Artifacts derived from a deployment (fingerprint maps, seeded
    caches) store this hash so loaders can refuse files built against a
    different field geometry, sniffer placement, or flux-model clamp.
    The hash covers exact float64 bytes — any numeric drift counts as a
    different deployment.
    """
    kind, params = field_to_arrays(field)
    positions = np.ascontiguousarray(
        np.asarray(sniffer_positions, dtype=np.float64)
    )
    digest = hashlib.sha256()
    digest.update(kind.encode("utf-8"))
    digest.update(np.ascontiguousarray(params, dtype=np.float64).tobytes())
    digest.update(np.asarray([float(d_floor)], dtype=np.float64).tobytes())
    digest.update(positions.tobytes())
    return digest.hexdigest()


def save_network(network: Network, path: _PathLike) -> Path:
    """Serialize a network (field + positions + radius) to ``.npz``."""
    field_kind, field_params = field_to_arrays(network.field)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        field_kind=np.array(field_kind),
        field_params=field_params,
        positions=network.positions,
        radius=np.array([network.radius]),
    )
    return path


def load_network(path: _PathLike) -> Network:
    """Load a network saved by :func:`save_network` (graph is rebuilt)."""
    with np.load(Path(path), allow_pickle=False) as data:
        require_keys(
            data, ("field_kind", "field_params", "positions", "radius"), path
        )
        kind = str(data["field_kind"])
        params = data["field_params"]
        positions = data["positions"]
        radius = float(data["radius"][0])
    field = field_from_arrays(kind, params)
    return Network(
        field=field, positions=positions, graph=UnitDiskGraph(positions, radius)
    )


def save_observations(
    observations: List[FluxObservation], path: _PathLike
) -> Path:
    """Archive an observation stream to ``.npz``.

    All observations must share the same sniffer set (the normal case:
    one adversary deployment). Observations carrying pre-noise
    ``raw_values`` (smoothed / noisy measurement pipelines) round-trip
    those too, provided every observation in the list carries them.
    """
    if not observations:
        raise ConfigurationError("need at least one observation")
    sniffers = observations[0].sniffers
    for obs in observations[1:]:
        if not np.array_equal(obs.sniffers, sniffers):
            raise ConfigurationError(
                "all observations must share one sniffer set"
            )
    with_raw = [obs.raw_values is not None for obs in observations]
    if any(with_raw) and not all(with_raw):
        raise ConfigurationError(
            "either every observation carries raw_values or none does"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = dict(
        sniffers=sniffers,
        times=np.array([obs.time for obs in observations]),
        values=np.stack([obs.values for obs in observations]),
    )
    if all(with_raw):
        arrays["raw_values"] = np.stack(
            [obs.raw_values for obs in observations]
        )
    np.savez_compressed(path, **arrays)
    return path


def load_observations(path: _PathLike) -> List[FluxObservation]:
    """Load an observation stream saved by :func:`save_observations`."""
    with np.load(Path(path), allow_pickle=False) as data:
        require_keys(data, ("sniffers", "times", "values"), path)
        sniffers = data["sniffers"]
        times = data["times"]
        values = data["values"]
        raw = data["raw_values"] if "raw_values" in data.files else None
    return [
        FluxObservation(
            time=float(times[i]),
            sniffers=sniffers.copy(),
            values=values[i],
            raw_values=None if raw is None else raw[i],
        )
        for i in range(times.shape[0])
    ]
