"""Binary persistence of networks and observations (npz).

Experiments that sweep many attack configurations over the *same*
deployment can save the network once and reload it; observation logs
can be archived for offline re-analysis.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.field import CircularField, Field, RectangularField
from repro.network.graph import UnitDiskGraph
from repro.network.topology import Network
from repro.traffic.measurement import FluxObservation

_PathLike = Union[str, Path]


def save_network(network: Network, path: _PathLike) -> Path:
    """Serialize a network (field + positions + radius) to ``.npz``.

    Only rectangular and circular fields are supported (polygon fields
    would need vertex serialization; add when needed).
    """
    field = network.field
    if isinstance(field, RectangularField):
        field_kind = "rectangular"
        field_params = np.array(
            [field.width, field.height, field.xmin, field.ymin]
        )
    elif isinstance(field, CircularField):
        field_kind = "circular"
        field_params = np.array(
            [field.radius, field.center[0], field.center[1], 0.0]
        )
    else:
        raise ConfigurationError(
            f"cannot serialize field type {type(field).__name__}"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        field_kind=np.array(field_kind),
        field_params=field_params,
        positions=network.positions,
        radius=np.array([network.radius]),
    )
    return path


def load_network(path: _PathLike) -> Network:
    """Load a network saved by :func:`save_network` (graph is rebuilt)."""
    with np.load(Path(path), allow_pickle=False) as data:
        kind = str(data["field_kind"])
        params = data["field_params"]
        positions = data["positions"]
        radius = float(data["radius"][0])
    if kind == "rectangular":
        field: Field = RectangularField(
            float(params[0]), float(params[1]),
            origin=(float(params[2]), float(params[3])),
        )
    elif kind == "circular":
        field = CircularField(
            float(params[0]), center=(float(params[1]), float(params[2]))
        )
    else:
        raise ConfigurationError(f"unknown field kind {kind!r} in {path}")
    return Network(
        field=field, positions=positions, graph=UnitDiskGraph(positions, radius)
    )


def save_observations(
    observations: List[FluxObservation], path: _PathLike
) -> Path:
    """Archive an observation stream to ``.npz``.

    All observations must share the same sniffer set (the normal case:
    one adversary deployment).
    """
    if not observations:
        raise ConfigurationError("need at least one observation")
    sniffers = observations[0].sniffers
    for obs in observations[1:]:
        if not np.array_equal(obs.sniffers, sniffers):
            raise ConfigurationError(
                "all observations must share one sniffer set"
            )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        sniffers=sniffers,
        times=np.array([obs.time for obs in observations]),
        values=np.stack([obs.values for obs in observations]),
    )
    return path


def load_observations(path: _PathLike) -> List[FluxObservation]:
    """Load an observation stream saved by :func:`save_observations`."""
    with np.load(Path(path), allow_pickle=False) as data:
        sniffers = data["sniffers"]
        times = data["times"]
        values = data["values"]
    return [
        FluxObservation(
            time=float(times[i]), sniffers=sniffers.copy(), values=values[i]
        )
        for i in range(times.shape[0])
    ]
