"""Statistics helpers used by the evaluation harness.

The paper reports empirical CDFs of model approximation error
(Fig. 3a) and mean localization/tracking errors across repeated runs
(Figs. 5-8, 10); these helpers compute exactly those aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-plus summary of a sample of scalar measurements."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} med={self.median:.4g} max={self.maximum:.4g}"
        )


def summarize(values: np.ndarray) -> SummaryStats:
    """Summarize a 1-D sample into :class:`SummaryStats`."""
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise ConfigurationError("cannot summarize an empty sample")
    return SummaryStats(
        count=int(values.size),
        mean=float(np.mean(values)),
        std=float(np.std(values)),
        minimum=float(np.min(values)),
        median=float(np.median(values)),
        maximum=float(np.max(values)),
    )


def empirical_cdf(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_fraction)`` for a 1-D sample.

    ``cumulative_fraction[i]`` is the fraction of samples ``<=
    sorted_values[i]`` — the standard right-continuous empirical CDF
    plotted in the paper's Fig. 3(a).
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise ConfigurationError("cannot compute the CDF of an empty sample")
    xs = np.sort(values)
    fractions = np.arange(1, xs.size + 1, dtype=float) / xs.size
    return xs, fractions


def cdf_at(values: np.ndarray, threshold: float) -> float:
    """Fraction of ``values`` that are ``<= threshold``."""
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise ConfigurationError("cannot evaluate the CDF of an empty sample")
    return float(np.count_nonzero(values <= threshold)) / values.size


def mean_confidence_interval(
    values: np.ndarray, confidence: float = 0.95
) -> Tuple[float, float, float]:
    """Return ``(mean, low, high)`` — a normal-approximation CI on the mean."""
    from scipy import stats as sps

    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise ConfigurationError("cannot compute a CI on an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0,1), got {confidence}")
    mean = float(np.mean(values))
    if values.size == 1:
        return mean, mean, mean
    sem = float(sps.sem(values))
    half = sem * float(sps.t.ppf((1.0 + confidence) / 2.0, values.size - 1))
    return mean, mean - half, mean + half
