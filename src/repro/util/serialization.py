"""Serialization of experiment results.

Experiment runners produce nested dicts/dataclasses containing numpy
scalars and arrays; these helpers turn them into plain-JSON structures
so results can be archived next to EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Union


def _to_jsonable(obj: Any) -> Any:
    import numpy as np

    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): _to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_to_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return _to_jsonable(obj.tolist())
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, Path):
        return str(obj)
    return obj


def results_to_json(results: Any, indent: int = 2) -> str:
    """Render ``results`` (dicts/dataclasses/arrays) as a JSON string."""
    return json.dumps(_to_jsonable(results), indent=indent, sort_keys=True)


def save_results_json(results: Any, path: Union[str, Path]) -> Path:
    """Write ``results`` as JSON to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(results_to_json(results) + "\n")
    return path
