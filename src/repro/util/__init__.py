"""Shared utilities: RNG discipline, validation, statistics, result I/O.

These helpers deliberately contain no domain logic; every other
subpackage builds on them.
"""

from repro.util.rng import RandomState, as_generator, spawn_generators
from repro.util.validation import (
    check_finite_array,
    check_in_range,
    check_positive,
    check_probability,
    check_shape,
)
from repro.util.stats import (
    SummaryStats,
    empirical_cdf,
    mean_confidence_interval,
    summarize,
)
from repro.util.serialization import results_to_json, save_results_json

__all__ = [
    "RandomState",
    "as_generator",
    "spawn_generators",
    "check_finite_array",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_shape",
    "SummaryStats",
    "empirical_cdf",
    "mean_confidence_interval",
    "summarize",
    "results_to_json",
    "save_results_json",
]
