"""Figs. 7 & 8 — Sequential Monte Carlo tracking.

Fig. 7: tracking case studies (one, two, three users, and a crossing
pair); estimates converge to the true trajectories, final error below
2; crossing users keep accurate *locations* but may swap *identities*.
Fig. 8(a): final-round tracking error vs sampling percentage (stable
until below 5%). Fig. 8(b): vs node count at 90 reports (mild effect).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.config import PaperDefaults
from repro.experiments.harness import ExperimentResult
from repro.mobility.models import crossing_trajectories, random_waypoint_trajectory
from repro.mobility.trajectory import Trajectory
from repro.network.sampling import (
    sample_sniffers_percentage,
    sample_sniffers_random,
)
from repro.network.topology import Network, build_network
from repro.smc.association import assignment_errors, identity_consistency
from repro.smc.tracker import SequentialMonteCarloTracker, TrackerConfig
from repro.traffic.events import synchronous_schedule
from repro.traffic.flux import FluxSimulator
from repro.traffic.measurement import MeasurementModel
from repro.util.rng import RandomState, as_generator, spawn_generators


def _track_once(
    net: Network,
    trajectories: Sequence[Trajectory],
    sniffers: np.ndarray,
    defaults: PaperDefaults,
    gen: np.random.Generator,
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Run the tracker over a synchronous schedule.

    Returns ``(errors, permutations)``: per-round per-user assignment
    errors ``(rounds, K)`` and the per-round assignment permutations
    (for identity-mixing analysis).
    """
    K = len(trajectories)
    stretches = list(gen.uniform(defaults.stretch_low, defaults.stretch_high, K))
    schedule = synchronous_schedule(
        [t.positions for t in trajectories], stretches
    )
    sim = FluxSimulator(net, rng=gen)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    tracker = SequentialMonteCarloTracker(
        net.field,
        net.positions[sniffers],
        user_count=K,
        config=TrackerConfig(
            prediction_count=defaults.prediction_count,
            keep_count=defaults.keep_count,
            max_speed=defaults.max_speed,
        ),
        rng=gen,
    )
    errors = []
    permutations = []
    for round_idx, (t, events) in enumerate(schedule.windows(1.0)):
        flux = sim.window_flux(events).total
        step = tracker.step(measure.observe(flux, time=t))
        truth = np.stack([tr.positions[round_idx] for tr in trajectories])
        errs, perm = assignment_errors(step.estimates, truth)
        errors.append(errs)
        permutations.append(perm)
    return np.stack(errors), permutations


def _waypoint_users(
    net: Network, count: int, defaults: PaperDefaults, gen: np.random.Generator
) -> List[Trajectory]:
    return [
        random_waypoint_trajectory(
            net.field,
            rounds=defaults.tracking_rounds,
            speed=gen.uniform(defaults.max_speed * 0.4, defaults.max_speed * 0.9),
            rng=gen,
        )
        for _ in range(count)
    ]


def run_fig7(
    defaults: Optional[PaperDefaults] = None,
    sniffer_percentage: float = 10.0,
    rng: RandomState = None,
) -> ExperimentResult:
    """Tracking case studies: 1 / 2 / 3 users and a crossing pair."""
    defaults = defaults if defaults is not None else PaperDefaults()
    gens = spawn_generators(rng, 5)
    net = build_network(
        node_count=defaults.node_count, radius=defaults.radius, rng=gens[-1]
    )
    rows = []
    metadata = {}
    cases = [
        ("one user", 1, None),
        ("two users", 2, None),
        ("three users", 3, None),
        ("two users (crossing)", 2, "crossing"),
    ]
    for (label, K, special), gen in zip(cases, gens):
        if special == "crossing":
            a, b = crossing_trajectories(net.field, defaults.tracking_rounds)
            trajectories: List[Trajectory] = [a, b]
        else:
            trajectories = _waypoint_users(net, K, defaults, gen)
        sniffers = sample_sniffers_percentage(net, sniffer_percentage, rng=gen)
        errors, perms = _track_once(net, trajectories, sniffers, defaults, gen)
        rows.append(
            {
                "case": label,
                "first_round_error": float(errors[0].mean()),
                "final_error": float(errors[-1].mean()),
                "mean_error_last_half": float(
                    errors[errors.shape[0] // 2 :].mean()
                ),
                "identity_consistency": identity_consistency(perms),
            }
        )
        metadata[label] = {"errors": errors}
    return ExperimentResult(
        figure="Fig 7",
        title="Tracking case studies (SMC, N=1000, M=10)",
        rows=rows,
        paper_reference=(
            "estimates converge from initial deviation; final error "
            "below 2; crossing users keep locations but may swap "
            "identities"
        ),
        metadata=metadata,
    )


def run_fig8a(
    user_counts: Sequence[int] = (1, 2, 3, 4),
    percentages: Optional[Sequence[float]] = None,
    repetitions: int = 3,
    defaults: Optional[PaperDefaults] = None,
    rng: RandomState = None,
) -> ExperimentResult:
    """Final-round tracking error vs percentage of sampling nodes."""
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    defaults = defaults if defaults is not None else PaperDefaults()
    percentages = (
        tuple(percentages) if percentages is not None else defaults.percentages
    )
    gen = as_generator(rng)
    net = build_network(
        node_count=defaults.node_count, radius=defaults.radius, rng=gen
    )
    rows = []
    for pct in percentages:
        row = {"percentage": pct}
        for K in user_counts:
            finals = []
            for _ in range(repetitions):
                trajectories = _waypoint_users(net, K, defaults, gen)
                sniffers = sample_sniffers_percentage(net, pct, rng=gen)
                errors, _ = _track_once(net, trajectories, sniffers, defaults, gen)
                finals.append(float(errors[-1].mean()))
            row[f"{K}_user"] = float(np.mean(finals))
        rows.append(row)
    return ExperimentResult(
        figure="Fig 8a",
        title="Tracking error vs percentage of sampling nodes",
        rows=rows,
        paper_reference=(
            "accuracy stable until the sampling percentage drops below "
            "5%; 10% of nodes already acceptable"
        ),
    )


def run_fig8b(
    user_counts: Sequence[int] = (1, 2, 3, 4),
    node_counts: Optional[Sequence[int]] = None,
    repetitions: int = 3,
    defaults: Optional[PaperDefaults] = None,
    rng: RandomState = None,
) -> ExperimentResult:
    """Final-round tracking error vs network density (90 reports)."""
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    defaults = defaults if defaults is not None else PaperDefaults()
    node_counts = (
        tuple(node_counts) if node_counts is not None else defaults.density_node_counts
    )
    gen = as_generator(rng)
    rows = []
    for n in node_counts:
        net = build_network(node_count=n, radius=defaults.radius, rng=gen)
        row = {"node_count": n}
        for K in user_counts:
            finals = []
            for _ in range(repetitions):
                trajectories = _waypoint_users(net, K, defaults, gen)
                sniffers = sample_sniffers_random(
                    net, defaults.density_report_count, rng=gen
                )
                errors, _ = _track_once(net, trajectories, sniffers, defaults, gen)
                finals.append(float(errors[-1].mean()))
            row[f"{K}_user"] = float(np.mean(finals))
        rows.append(row)
    return ExperimentResult(
        figure="Fig 8b",
        title="Tracking error vs network density (90 reports)",
        rows=rows,
        paper_reference=(
            "density does not significantly affect tracking accuracy"
        ),
    )
