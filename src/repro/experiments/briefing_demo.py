"""Fig. 4 — recursive briefing of the network flux.

Three users collect simultaneously; briefing detects the dominant
traffic peak, subtracts its modeled flux, and repeats. The paper shows
the reduced flux maps after one and two subtractions; we report, per
round, the detected position error and how much flux energy the
subtraction removed.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.fingerprint.briefing import brief_flux_map
from repro.network.topology import build_network
from repro.traffic.flux import simulate_flux
from repro.util.rng import RandomState, spawn_generators


def run_fig4(
    user_count: int = 3,
    node_count: int = 900,
    rng: RandomState = None,
) -> ExperimentResult:
    """Run recursive briefing on a multi-user flux map."""
    (gen,) = spawn_generators(rng, 1)
    net = build_network(node_count=node_count, rng=gen)
    truth = net.field.sample_uniform(user_count, gen)
    # Spread users apart so the demo matches the paper's figure (three
    # clearly separated collection trees).
    for _ in range(50):
        d = np.linalg.norm(truth[:, None, :] - truth[None, :, :], axis=2)
        np.fill_diagonal(d, np.inf)
        if d.min() > net.field.diameter / 4:
            break
        truth = net.field.sample_uniform(user_count, gen)
    stretches = gen.uniform(1.0, 3.0, user_count)
    flux = simulate_flux(net, list(truth), list(stretches), rng=gen)
    total_energy = float(flux @ flux)

    result = brief_flux_map(net, flux, max_users=user_count)
    rows = []
    remaining = list(range(user_count))
    for round_idx, user in enumerate(result.users):
        dists = np.linalg.norm(truth[remaining] - user.position[None, :], axis=1)
        nearest = int(np.argmin(dists))
        matched_error = float(dists[nearest])
        remaining.pop(nearest)
        rows.append(
            {
                "round": round_idx + 1,
                "position_error": matched_error,
                "fitted_theta": user.theta,
                "residual_energy_fraction": user.residual_energy / total_energy,
            }
        )
    return ExperimentResult(
        figure="Fig 4",
        title="Recursive briefing of the network flux",
        rows=rows,
        paper_reference=(
            "each subtraction reveals the next user; the model-based "
            "reduction matches real observations"
        ),
        metadata={
            "true_positions": truth,
            "detected_positions": result.positions,
            "stretches": stretches,
        },
    )
