"""Fig. 3 — flux-model approximation accuracy.

Fig. 3(a): CDFs of the per-node approximation error rate on
2500-node uniform-random networks at average degrees ~12/16/27; the
paper reports 80%+ of nodes under 0.4 error rate, improving with
density. Fig. 3(b): measured vs modeled flux by hop count at degree
12; >=3-hop nodes keep >70% of the flux energy at much lower error.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.harness import ExperimentResult
from repro.fluxmodel.accuracy import flux_by_hops, model_accuracy_report
from repro.geometry.field import RectangularField
from repro.network.topology import build_network
from repro.util.rng import RandomState, spawn_generators


def _radius_for_degree(degree: float, node_count: int, field_size: float) -> float:
    """Radius giving an expected average degree on a uniform field.

    ``degree ~= rho * pi * radius^2`` with density ``rho = n / area``
    (boundary effects lower the realized value slightly).
    """
    if degree <= 0:
        raise ConfigurationError(f"degree must be > 0, got {degree}")
    rho = node_count / (field_size * field_size)
    return float(np.sqrt(degree / (np.pi * rho)))


def run_fig3a(
    degrees: Sequence[float] = (12.0, 16.0, 27.0),
    node_count: int = 2500,
    field_size: float = 50.0,
    sink_count: int = 4,
    rng: RandomState = None,
) -> ExperimentResult:
    """CDF of the approximation error rate per target degree."""
    gens = spawn_generators(rng, len(degrees))
    rows = []
    metadata = {}
    for degree, gen in zip(degrees, gens):
        field = RectangularField(field_size, field_size)
        net = build_network(
            field=field,
            node_count=node_count,
            radius=_radius_for_degree(degree, node_count, field_size),
            deployment="uniform_random",
            rng=gen,
        )
        report = model_accuracy_report(net, sink_count=sink_count, rng=gen)
        rows.append(
            {
                "target_degree": degree,
                "realized_degree": report.average_degree,
                "P[err<=0.4]": report.fraction_below_04,
                "median_err": float(np.median(report.error_rates)),
                "p90_err": float(np.quantile(report.error_rates, 0.9)),
            }
        )
        metadata[f"cdf_degree_{degree:g}"] = {
            "x": report.cdf_x,
            "y": report.cdf_y,
        }
    return ExperimentResult(
        figure="Fig 3a",
        title="CDF of flux-model approximation error rate vs density",
        rows=rows,
        paper_reference=(
            "80%+ of nodes under 0.4 error rate; error shrinks as the "
            "degree grows from 12 to 27"
        ),
        metadata=metadata,
    )


def run_fig3b(
    node_count: int = 2500,
    field_size: float = 50.0,
    degree: float = 12.0,
    rng: RandomState = None,
) -> ExperimentResult:
    """Measured vs modeled flux by hop count (degree-12 network)."""
    (gen,) = spawn_generators(rng, 1)
    field = RectangularField(field_size, field_size)
    net = build_network(
        field=field,
        node_count=node_count,
        radius=_radius_for_degree(degree, node_count, field_size),
        deployment="uniform_random",
        rng=gen,
    )
    sink = field.sample_uniform(1, gen)[0]
    data = flux_by_hops(net, sink, rng=gen)
    hops = data["hops"]
    rows = []
    for k in range(1, int(hops.max()) + 1):
        mask = hops == k
        if not np.any(mask):
            continue
        measured = data["measured"][mask]
        modeled = data["modeled"][mask]
        nonzero = measured > 0
        err = (
            float(
                np.median(
                    np.abs(measured[nonzero] - modeled[nonzero]) / measured[nonzero]
                )
            )
            if np.any(nonzero)
            else float("nan")
        )
        rows.append(
            {
                "hops": k,
                "nodes": int(mask.sum()),
                "mean_measured": float(measured.mean()),
                "mean_modeled": float(modeled.mean()),
                "median_err_rate": err,
            }
        )
    beyond = data["flux_fraction_beyond"]
    return ExperimentResult(
        figure="Fig 3b",
        title="Measured vs modeled flux by hop count",
        rows=rows,
        paper_reference=(
            "approximation error decreases with hops; nodes >=3 hops "
            "out preserve >70% of the network flux"
        ),
        metadata={
            "flux_fraction_beyond": beyond,
            "flux_fraction_beyond_3_hops": float(
                beyond[min(3, beyond.size - 1)]
            ),
        },
    )
