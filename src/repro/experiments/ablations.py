"""Ablation experiment runners (the design decisions DESIGN.md §6 lists).

Each runner mirrors a figure runner's contract: returns an
:class:`~repro.experiments.harness.ExperimentResult` whose rows are
the ablation table. The benchmark files call these; they are also
reachable from the CLI (``repro experiment`` ablation ids).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.harness import ExperimentResult
from repro.fingerprint.nls import coordinate_descent
from repro.fingerprint.objective import FluxObjective
from repro.fluxmodel.discrete import DiscreteFluxModel
from repro.network.sampling import sample_sniffers_percentage
from repro.network.topology import Network, build_network
from repro.routing.spt import build_collection_tree
from repro.traffic.measurement import MeasurementModel
from repro.util.rng import RandomState, as_generator


def single_user_attack_error(
    network: Network,
    flux: np.ndarray,
    truth: np.ndarray,
    gen: np.random.Generator,
    d_floor: float = 1.0,
    smooth: bool = True,
    weighting: str = "absolute",
    sniffer_percentage: float = 10.0,
    candidate_count: int = 2500,
    model: Optional[DiscreteFluxModel] = None,
) -> float:
    """One single-user NLS attack; returns the localization error.

    The shared primitive all ablation runners sweep. ``model`` may
    override the flux model (e.g. a calibrated kernel); when given, it
    must cover the full node set and is restricted to the sniffers.
    """
    sniffers = sample_sniffers_percentage(network, sniffer_percentage, rng=gen)
    obs = MeasurementModel(network, sniffers, smooth=smooth, rng=gen).observe(flux)
    if model is None:
        attack_model = DiscreteFluxModel(
            network.field, network.positions[sniffers], d_floor=d_floor
        )
    else:
        attack_model = model.restrict_to(sniffers)
    objective = FluxObjective.from_observation(
        attack_model, obs, weighting=weighting
    )
    pool = [network.field.sample_uniform(candidate_count, gen)]
    out = coordinate_descent(objective, pool, rng=gen, sweeps=1)
    best = pool[0][out.best_indices[0]]
    return float(np.linalg.norm(best - np.asarray(truth, dtype=float)))


def _sweep_variants(
    network: Network,
    variants: Dict[str, dict],
    repetitions: int,
    rng: RandomState,
    flux_builder=None,
) -> Dict[str, float]:
    """Paired sweep: the same (user, flux, attack seed) per repetition
    is evaluated under every variant's kwargs."""
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    gen = as_generator(rng)
    errors: Dict[str, List[float]] = {name: [] for name in variants}
    for rep in range(repetitions):
        truth = network.field.sample_uniform(1, gen)[0]
        if flux_builder is None:
            tree = build_collection_tree(network, truth, rng=gen)
            flux_map = 2.0 * tree.subtree_aggregate()
            flux_by_variant = {name: flux_map for name in variants}
        else:
            flux_by_variant = flux_builder(network, truth, gen, variants)
        attack_seed = int(gen.integers(2**31))
        for name, kwargs in variants.items():
            errors[name].append(
                single_user_attack_error(
                    network,
                    flux_by_variant[name],
                    truth,
                    np.random.default_rng(attack_seed),
                    **kwargs,
                )
            )
    return {name: float(np.mean(v)) for name, v in errors.items()}


def run_ablation_d_floor(
    floors: Sequence[float] = (0.1, 1.0, 2.4),
    repetitions: int = 6,
    rng: RandomState = None,
) -> ExperimentResult:
    """Near-sink clamp sweep (Formula 3.4 singularity handling)."""
    gen = as_generator(rng)
    net = build_network(rng=gen)
    variants = {f"d_floor={v:g}": {"d_floor": float(v)} for v in floors}
    means = _sweep_variants(net, variants, repetitions, gen)
    rows = [{"variant": k, "error": v} for k, v in means.items()]
    return ExperimentResult(
        figure="Ablation/d_floor",
        title="Localization error vs near-sink clamp",
        rows=rows,
        paper_reference=(
            "Fig 3b motivates discounting near-sink nodes; a ~hop-scale "
            "clamp should be competitive"
        ),
    )


def run_ablation_smoothing(
    repetitions: int = 6, rng: RandomState = None
) -> ExperimentResult:
    """Neighborhood flux smoothing on/off (paper §III.B claim)."""
    gen = as_generator(rng)
    net = build_network(rng=gen)
    variants = {
        "smoothing=on": {"smooth": True},
        "smoothing=off": {"smooth": False},
    }
    means = _sweep_variants(net, variants, repetitions, gen)
    rows = [{"variant": k, "error": v} for k, v in means.items()]
    return ExperimentResult(
        figure="Ablation/smoothing",
        title="Localization error with/without neighborhood averaging",
        rows=rows,
        paper_reference=(
            "smoothing 'mitigates the randomness of routing tree "
            "construction' (Section III.B)"
        ),
    )


def run_ablation_weighting(
    repetitions: int = 6, rng: RandomState = None
) -> ExperimentResult:
    """Absolute (paper) vs relative residual weighting."""
    gen = as_generator(rng)
    net = build_network(rng=gen)
    variants = {
        "weighting=absolute": {"weighting": "absolute"},
        "weighting=relative": {"weighting": "relative"},
    }
    means = _sweep_variants(net, variants, repetitions, gen)
    rows = [{"variant": k, "error": v} for k, v in means.items()]
    return ExperimentResult(
        figure="Ablation/weighting",
        title="Localization error vs residual weighting",
        rows=rows,
        paper_reference="the paper uses plain (absolute) LS residuals",
    )


def run_ablation_routing(
    repetitions: int = 6, rng: RandomState = None
) -> ExperimentResult:
    """BFS vs greedy-geographic collection trees."""
    from repro.routing.geographic import build_geographic_tree

    gen = as_generator(rng)
    net = build_network(rng=gen)

    def flux_builder(network, truth, g, variants):
        out = {}
        for name in variants:
            builder = (
                build_geographic_tree if "geographic" in name else build_collection_tree
            )
            tree = builder(network, truth, rng=g)
            out[name] = 2.0 * tree.subtree_aggregate()
        return out

    variants = {"routing=bfs": {}, "routing=geographic": {}}
    means = _sweep_variants(
        net, variants, repetitions, gen, flux_builder=flux_builder
    )
    rows = [{"variant": k, "error": v} for k, v in means.items()]
    return ExperimentResult(
        figure="Ablation/routing",
        title="Attack accuracy across routing families",
        rows=rows,
        paper_reference=(
            "the flux model only assumes sink-oriented concentration; "
            "the attack should transfer to geographic routing"
        ),
    )


def run_ablation_aggregation(
    factors: Sequence[float] = (1.0, 0.5, 0.0),
    repetitions: int = 6,
    rng: RandomState = None,
) -> ExperimentResult:
    """In-network aggregation (TAG-style) as an implicit defense."""
    from repro.traffic.aggregation import aggregated_subtree_flux

    gen = as_generator(rng)
    net = build_network(rng=gen)

    def flux_builder(network, truth, g, variants):
        tree = build_collection_tree(network, truth, rng=g)
        weights = np.full(network.node_count, 2.0)
        return {
            name: aggregated_subtree_flux(tree, weights, kw["_factor"])
            for name, kw in _factors.items()
        }

    _factors = {f"aggregation={f:g}": {"_factor": float(f)} for f in factors}
    variants = {name: {} for name in _factors}
    means = _sweep_variants(
        net, variants, repetitions, gen, flux_builder=flux_builder
    )
    rows = [{"variant": k, "error": v} for k, v in means.items()]
    return ExperimentResult(
        figure="Ablation/aggregation",
        title="Attack accuracy vs in-network aggregation factor",
        rows=rows,
        paper_reference=(
            "raw convergecast (factor 1) is the paper's setting; full "
            "aggregation flattens the fingerprint"
        ),
    )


def run_ablation_kernel(
    repetitions: int = 6,
    probe_count: int = 6,
    rng: RandomState = None,
) -> ExperimentResult:
    """Analytic (Formula 3.4) vs empirically calibrated kernel."""
    from repro.fluxmodel.empirical import CalibratedFluxModel, fit_empirical_kernel

    gen = as_generator(rng)
    net = build_network(rng=gen)
    kernel = fit_empirical_kernel(net, probe_count=probe_count, rng=gen)
    calibrated = CalibratedFluxModel(
        net.field, net.positions, kernel=kernel, d_floor=1.0
    )
    variants = {
        "kernel=analytic": {},
        "kernel=calibrated": {"model": calibrated},
    }
    means = _sweep_variants(net, variants, repetitions, gen)
    rows = [{"variant": k, "error": v} for k, v in means.items()]
    return ExperimentResult(
        figure="Ablation/kernel",
        title="Analytic vs probe-calibrated flux kernel",
        rows=rows,
        paper_reference=(
            "an adversary with probe access can learn the kernel "
            "correction (extension; not in the paper)"
        ),
    )


def run_robustness_holes(
    hole_radii: Sequence[float] = (0.0, 4.0, 7.0),
    repetitions: int = 6,
    rng: RandomState = None,
) -> ExperimentResult:
    """Coverage holes: the flux model assumes a filled field.

    Nodes inside a central disc obstacle are removed before building
    the network; traffic routes around the hole, but the model's
    boundary ray still crosses it — a controlled model-mismatch study.
    """
    from repro.geometry import RectangularField
    from repro.network.graph import UnitDiskGraph
    from repro.network.deployment import deploy_perturbed_grid

    gen = as_generator(rng)
    rows = []
    for radius in hole_radii:
        field = RectangularField(30.0, 30.0)
        errors = []
        attempts = 0
        while len(errors) < repetitions and attempts < repetitions * 4:
            attempts += 1
            positions = deploy_perturbed_grid(field, 900, rng=gen)
            if radius > 0:
                keep = (
                    np.hypot(positions[:, 0] - 15.0, positions[:, 1] - 15.0)
                    > radius
                )
                positions = positions[keep]
            graph = UnitDiskGraph(positions, 2.4)
            if not graph.is_connected():
                continue
            net = Network(field=field, positions=positions, graph=graph)
            truth = field.sample_uniform(1, gen)[0]
            if radius > 0 and np.hypot(truth[0] - 15, truth[1] - 15) <= radius:
                continue  # users cannot stand inside the hole
            tree = build_collection_tree(net, truth, rng=gen)
            flux = 2.0 * tree.subtree_aggregate()
            errors.append(
                single_user_attack_error(
                    net, flux, truth, np.random.default_rng(attempts)
                )
            )
        if not errors:
            raise ConfigurationError(
                f"could not build connected holey networks (radius {radius})"
            )
        rows.append(
            {
                "hole_radius": float(radius),
                "error": float(np.mean(errors)),
                "runs": len(errors),
            }
        )
    return ExperimentResult(
        figure="Robustness/holes",
        title="Attack accuracy vs central coverage hole radius",
        rows=rows,
        paper_reference=(
            "the flux model assumes a filled field; holes add "
            "model mismatch (extension; not in the paper)"
        ),
    )
