"""The paper's evaluation parameters, in one place (Section V)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PaperDefaults:
    """Settings of the paper's simulations.

    * 900 nodes on a 30x30 rectangular field, perturbed grids [3];
    * communication radius 2.4 (average degree ~18);
    * per-user traffic stretch uniform in [1, 3];
    * Fig. 5: 10,000 candidate samples, top-10 compositions;
    * SMC: N = 1000 predictions, M = 10 kept, v_max = 5 per round;
    * sampling-percentage sweeps over {40, 20, 10, 5} %;
    * density sweeps over {900, 1200, 1500, 1800} nodes at 90 reports;
    * trace experiment: 20 users/run, 10 runs, timeline / 100.
    """

    field_size: float = 30.0
    node_count: int = 900
    radius: float = 2.4
    stretch_low: float = 1.0
    stretch_high: float = 3.0
    candidate_count: int = 10_000
    top_m: int = 10
    prediction_count: int = 1000
    keep_count: int = 10
    max_speed: float = 5.0
    tracking_rounds: int = 10
    percentages: Tuple[float, ...] = (40.0, 20.0, 10.0, 5.0)
    density_node_counts: Tuple[int, ...] = (900, 1200, 1500, 1800)
    density_report_count: int = 90
    trace_users_per_run: int = 20
    trace_runs: int = 10
    trace_compression: float = 100.0
    resampling_radii: Tuple[float, ...] = (4.0, 6.0, 8.0, 10.0, 12.0)

    def __post_init__(self) -> None:
        if self.node_count < 1 or self.field_size <= 0 or self.radius <= 0:
            raise ConfigurationError("invalid paper defaults")

    def scaled(self, factor: float) -> "PaperDefaults":
        """A cheaper variant for CI benches: divide the search/sample
        budgets by ``factor`` (topology parameters stay faithful)."""
        if factor < 1:
            raise ConfigurationError(f"factor must be >= 1, got {factor}")
        return PaperDefaults(
            field_size=self.field_size,
            node_count=self.node_count,
            radius=self.radius,
            stretch_low=self.stretch_low,
            stretch_high=self.stretch_high,
            candidate_count=max(200, int(self.candidate_count / factor)),
            top_m=self.top_m,
            prediction_count=max(100, int(self.prediction_count / factor)),
            keep_count=self.keep_count,
            max_speed=self.max_speed,
            tracking_rounds=self.tracking_rounds,
            percentages=self.percentages,
            density_node_counts=self.density_node_counts,
            density_report_count=self.density_report_count,
            trace_users_per_run=max(2, int(self.trace_users_per_run / factor)),
            trace_runs=max(1, int(self.trace_runs / factor)),
            trace_compression=self.trace_compression,
            resampling_radii=self.resampling_radii,
        )
