"""Per-figure experiment runners (paper Section V).

Each ``run_figN*`` function regenerates one figure's data series at
configurable scale and returns a structured result whose ``rows()``
render the same quantities the paper plots. The benchmarks in
``benchmarks/`` call these with reduced repetition counts; pass
``paper_scale=True`` (where offered) for the full-size runs.
"""

from repro.experiments.config import PaperDefaults
from repro.experiments.harness import ExperimentResult, format_table
from repro.experiments.model_accuracy import run_fig3a, run_fig3b
from repro.experiments.briefing_demo import run_fig4
from repro.experiments.instant_localization import (
    run_fig5,
    run_fig6a,
    run_fig6b,
)
from repro.experiments.tracking import run_fig7, run_fig8a, run_fig8b
from repro.experiments.trace_driven import run_fig9, run_fig10a, run_fig10b

__all__ = [
    "PaperDefaults",
    "ExperimentResult",
    "format_table",
    "run_fig3a",
    "run_fig3b",
    "run_fig4",
    "run_fig5",
    "run_fig6a",
    "run_fig6b",
    "run_fig7",
    "run_fig8a",
    "run_fig8b",
    "run_fig9",
    "run_fig10a",
    "run_fig10b",
]
