"""Result containers and text reporting for the experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """One experiment's output: labelled rows plus free-form metadata.

    ``rows`` is a list of dicts sharing a column set; ``format_table``
    renders them as the text analogue of the paper figure, and
    ``paper_reference`` records what the original reports so
    EXPERIMENTS.md comparisons are self-contained.
    """

    figure: str
    title: str
    rows: List[Dict[str, object]]
    paper_reference: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    def column_names(self) -> List[str]:
        names: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def render(self) -> str:
        header = f"== {self.figure}: {self.title} =="
        body = format_table(self.rows)
        ref = f"paper: {self.paper_reference}" if self.paper_reference else ""
        return "\n".join(part for part in (header, body, ref) if part)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]]) -> str:
    """Render dict-rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    names: List[str] = []
    for row in rows:
        for key in row:
            if key not in names:
                names.append(key)
    table = [[_format_cell(row.get(name, "")) for name in names] for row in rows]
    widths = [
        max(len(name), *(len(r[i]) for r in table)) for i, name in enumerate(names)
    ]
    lines = [
        "  ".join(name.ljust(w) for name, w in zip(names, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in table:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)
