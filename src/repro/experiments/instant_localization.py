"""Figs. 5 & 6 — instant NLS localization.

Fig. 5: case studies with 1/2/3 users on the 900-node perturbed-grid
network (paper errors ~0.97 / 1.27 / 1.63; worst cases 1.78 / 2.06).
Fig. 6(a): localization error vs percentage of sampling nodes
(40/20/10/5 %) for 1-4 users; at 10% the paper reports
1.23/1.52/1.84/2.01 and a blow-up below 5%. Fig. 6(b): error vs node
count 900-1800 at a fixed 90 reports; mild improvement with density.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.config import PaperDefaults
from repro.experiments.harness import ExperimentResult
from repro.fingerprint.nls import NLSLocalizer
from repro.network.sampling import (
    sample_sniffers_percentage,
    sample_sniffers_random,
)
from repro.network.topology import Network, build_network
from repro.traffic.flux import simulate_flux
from repro.traffic.measurement import MeasurementModel
from repro.util.rng import RandomState, as_generator, spawn_generators


def _one_localization(
    net: Network,
    user_count: int,
    sniffers: np.ndarray,
    defaults: PaperDefaults,
    gen: np.random.Generator,
    restarts: int = 3,
):
    """One draw: users + flux + NLS fit. Returns (result, truth)."""
    truth = net.field.sample_uniform(user_count, gen)
    stretches = gen.uniform(defaults.stretch_low, defaults.stretch_high, user_count)
    flux = simulate_flux(net, list(truth), list(stretches), rng=gen)
    obs = MeasurementModel(net, sniffers, smooth=True, rng=gen).observe(flux)
    localizer = NLSLocalizer(net.field, net.positions[sniffers])
    result = localizer.localize(
        obs,
        user_count=user_count,
        candidate_count=defaults.candidate_count,
        top_m=defaults.top_m,
        restarts=restarts,
        rng=gen,
    )
    return result, truth


def run_fig5(
    user_counts: Sequence[int] = (1, 2, 3),
    defaults: Optional[PaperDefaults] = None,
    sniffer_percentage: float = 10.0,
    rng: RandomState = None,
) -> ExperimentResult:
    """Case studies: top-M prediction scatter around the true positions."""
    defaults = defaults if defaults is not None else PaperDefaults()
    gens = spawn_generators(rng, len(user_counts) + 1)
    net = build_network(
        node_count=defaults.node_count, radius=defaults.radius, rng=gens[-1]
    )
    rows = []
    metadata = {}
    for user_count, gen in zip(user_counts, gens):
        sniffers = sample_sniffers_percentage(net, sniffer_percentage, rng=gen)
        result, truth = _one_localization(net, user_count, sniffers, defaults, gen)
        per_fit_errors = np.stack(
            [
                _match_errors(fit.positions, truth)
                for fit in result.fits
            ]
        )  # (M, K)
        rows.append(
            {
                "users": user_count,
                "avg_error": float(per_fit_errors.mean()),
                "max_error": float(per_fit_errors.max()),
                "majority_error": float(result.errors_to(truth).mean()),
            }
        )
        metadata[f"case_{user_count}_users"] = {
            "truth": truth,
            "top_fits": [fit.positions for fit in result.fits],
        }
    return ExperimentResult(
        figure="Fig 5",
        title="Instant localization case studies (top-10 fits)",
        rows=rows,
        paper_reference=(
            "avg error 0.97 / 1.27 / 1.63 for 1 / 2 / 3 users "
            "(30x30 field, 10k candidates); worst 1.78 / 2.06"
        ),
        metadata=metadata,
    )


def _match_errors(estimates: np.ndarray, truth: np.ndarray) -> np.ndarray:
    from scipy.optimize import linear_sum_assignment

    cost = np.linalg.norm(estimates[:, None, :] - truth[None, :, :], axis=2)
    rows, cols = linear_sum_assignment(cost)
    return cost[rows, cols]


def run_fig6a(
    user_counts: Sequence[int] = (1, 2, 3, 4),
    percentages: Optional[Sequence[float]] = None,
    repetitions: int = 5,
    defaults: Optional[PaperDefaults] = None,
    rng: RandomState = None,
) -> ExperimentResult:
    """Localization error vs percentage of sampling nodes."""
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    defaults = defaults if defaults is not None else PaperDefaults()
    percentages = (
        tuple(percentages) if percentages is not None else defaults.percentages
    )
    gen = as_generator(rng)
    net = build_network(
        node_count=defaults.node_count, radius=defaults.radius, rng=gen
    )
    rows = []
    for pct in percentages:
        row = {"percentage": pct}
        for user_count in user_counts:
            errors = []
            for _ in range(repetitions):
                sniffers = sample_sniffers_percentage(net, pct, rng=gen)
                result, truth = _one_localization(
                    net, user_count, sniffers, defaults, gen
                )
                errors.append(float(result.errors_to(truth).mean()))
            row[f"{user_count}_user"] = float(np.mean(errors))
        rows.append(row)
    return ExperimentResult(
        figure="Fig 6a",
        title="Localization error vs percentage of sampling nodes",
        rows=rows,
        paper_reference=(
            "at 10%: 1.23 / 1.52 / 1.84 / 2.01 for 1-4 users; error "
            "blows up below 5%"
        ),
    )


def run_fig6b(
    user_counts: Sequence[int] = (1, 2, 3, 4),
    node_counts: Optional[Sequence[int]] = None,
    repetitions: int = 5,
    defaults: Optional[PaperDefaults] = None,
    rng: RandomState = None,
) -> ExperimentResult:
    """Localization error vs network density at a fixed 90 reports."""
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    defaults = defaults if defaults is not None else PaperDefaults()
    node_counts = (
        tuple(node_counts) if node_counts is not None else defaults.density_node_counts
    )
    gen = as_generator(rng)
    rows = []
    for n in node_counts:
        net = build_network(node_count=n, radius=defaults.radius, rng=gen)
        row = {"node_count": n}
        for user_count in user_counts:
            errors = []
            for _ in range(repetitions):
                sniffers = sample_sniffers_random(
                    net, defaults.density_report_count, rng=gen
                )
                result, truth = _one_localization(
                    net, user_count, sniffers, defaults, gen
                )
                errors.append(float(result.errors_to(truth).mean()))
            row[f"{user_count}_user"] = float(np.mean(errors))
        rows.append(row)
    return ExperimentResult(
        figure="Fig 6b",
        title="Localization error vs network density (90 reports)",
        rows=rows,
        paper_reference=(
            "error decreases mildly as density rises 900 -> 1800; the "
            "impact of density is fairly limited"
        ),
    )
