"""Figs. 9 & 10 — the trace-driven experiment (Section V.C).

Synthetic campus traces substitute the Dartmouth movement set (see
:mod:`repro.traces`). Per run, a batch of cards' records is
intercepted, compressed 100x, mapped onto the 30x30 field, and users
collect data asynchronously at their association instants while the
tracker (Algorithm 4.1 with asynchronous updating) follows them.

Fig. 10(a): tracking error vs reporting percentage for perturbed-grid
vs purely random deployment (paper: grid error < 3 above 10%; random
~= 1.5x grid). Fig. 10(b): error vs the resampling radius
``v_max * dt`` (4-12); roughly stable with a slight increase.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.config import PaperDefaults
from repro.experiments.harness import ExperimentResult
from repro.mobility.trajectory import Trajectory
from repro.network.sampling import sample_sniffers_percentage
from repro.network.topology import Network, build_network
from repro.smc.tracker import SequentialMonteCarloTracker, TrackerConfig
from repro.traces.aps import generate_campus_aps, select_rectangular_region
from repro.traces.dataset import TraceDataset, build_synthetic_dataset
from repro.traffic.events import CollectionEvent, CollectionSchedule
from repro.traffic.flux import FluxSimulator
from repro.traffic.measurement import MeasurementModel
from repro.util.rng import RandomState, as_generator, spawn_generators


def run_fig9(
    ap_count: int = 500, landmark_count: int = 50, rng: RandomState = None
) -> ExperimentResult:
    """AP landmark layout statistics (the paper's campus map figure)."""
    (gen,) = spawn_generators(rng, 1)
    aps = generate_campus_aps(count=ap_count, rng=gen)
    landmarks, region = select_rectangular_region(aps, target_count=landmark_count)
    positions = np.asarray([ap.position for ap in landmarks])
    spacing = np.linalg.norm(
        positions[:, None, :] - positions[None, :, :], axis=2
    )
    np.fill_diagonal(spacing, np.inf)
    rows = [
        {
            "total_aps": ap_count,
            "landmark_aps": len(landmarks),
            "region_width": region[2] - region[0],
            "region_height": region[3] - region[1],
            "median_nearest_ap_spacing": float(np.median(spacing.min(axis=1))),
        }
    ]
    return ExperimentResult(
        figure="Fig 9",
        title="Campus AP landmark layout",
        rows=rows,
        paper_reference=(
            "~500 APs across campus; the 50 inside a rectangular "
            "region serve as location landmarks"
        ),
        metadata={"landmark_positions": positions, "region": region},
    )


def _trace_schedule(
    trajectories: Sequence[Trajectory],
    stretches: Sequence[float],
) -> CollectionSchedule:
    """Users collect exactly at their (compressed) association instants."""
    events = []
    for user, (traj, s) in enumerate(zip(trajectories, stretches)):
        for k in range(traj.times.size):
            events.append(
                CollectionEvent(
                    user=user,
                    time=float(traj.times[k]),
                    position=(
                        float(traj.positions[k, 0]),
                        float(traj.positions[k, 1]),
                    ),
                    stretch=float(s),
                )
            )
    return CollectionSchedule(events)


def _run_trace_tracking(
    net: Network,
    dataset: TraceDataset,
    user_count: int,
    sniffer_percentage: float,
    resampling_radius: float,
    defaults: PaperDefaults,
    gen: np.random.Generator,
    window_count: int = 48,
    burn_in_fraction: float = 0.25,
) -> float:
    """One trace-driven run; returns the mean matched tracking error.

    Per observation window, the estimates of the slots that *updated*
    are matched (min-cost assignment) against the positions of the
    users that actually collected — the fair score when identities can
    mix (paper Fig. 7d discussion). The first ``burn_in_fraction`` of
    the windows is excluded: the tracker starts from a uniform prior
    and the paper's error numbers describe converged tracking.
    """
    from scipy.optimize import linear_sum_assignment

    macs = dataset.usable_macs()
    if len(macs) < user_count:
        raise ConfigurationError(
            f"dataset has only {len(macs)} usable cards, need {user_count}"
        )
    chosen = [macs[i] for i in gen.choice(len(macs), user_count, replace=False)]
    trajectories = dataset.trajectories_for(
        chosen,
        net.field,
        compression=defaults.trace_compression,
        rng=gen,
    )
    stretches = gen.uniform(
        defaults.stretch_low, defaults.stretch_high, user_count
    )
    schedule = _trace_schedule(trajectories, list(stretches))
    t0, t1 = schedule.time_span
    delta_t = max((t1 - t0) / window_count, 1e-6)
    max_speed = resampling_radius / delta_t

    sniffers = sample_sniffers_percentage(net, sniffer_percentage, rng=gen)
    sim = FluxSimulator(net, rng=gen)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    tracker = SequentialMonteCarloTracker(
        net.field,
        net.positions[sniffers],
        user_count=user_count,
        config=TrackerConfig(
            prediction_count=defaults.prediction_count,
            keep_count=defaults.keep_count,
            max_speed=max_speed,
        ),
        start_time=t0,
        rng=gen,
    )

    matched_errors: List[float] = []
    burn_in_until = t0 + burn_in_fraction * (t1 - t0)
    for t, events in schedule.windows(delta_t, start=t0):
        flux = sim.window_flux(events).total
        step = tracker.step(measure.observe(flux, time=t))
        if not events or t < burn_in_until:
            continue
        active_slots = np.flatnonzero(step.active)
        if active_slots.size == 0:
            continue
        true_positions = np.asarray(
            [e.position for e in events], dtype=float
        )
        est = step.estimates[active_slots]
        cost = np.linalg.norm(
            est[:, None, :] - true_positions[None, :, :], axis=2
        )
        rows, cols = linear_sum_assignment(cost)
        matched_errors.extend(cost[rows, cols].tolist())
    if not matched_errors:
        raise ConfigurationError("trace run produced no matched estimates")
    return float(np.mean(matched_errors))


def run_fig10a(
    percentages: Optional[Sequence[float]] = None,
    deployments: Sequence[str] = ("perturbed_grid", "uniform_random"),
    runs: int = 3,
    users_per_run: int = 8,
    resampling_radius: float = 8.0,
    defaults: Optional[PaperDefaults] = None,
    rng: RandomState = None,
) -> ExperimentResult:
    """Trace-driven tracking error vs reporting percentage, per deployment.

    ``runs`` / ``users_per_run`` default below paper scale (10 runs of
    20 users) to keep benches fast; pass ``runs=10, users_per_run=20``
    for the full experiment.
    """
    defaults = defaults if defaults is not None else PaperDefaults()
    percentages = (
        tuple(percentages) if percentages is not None else defaults.percentages
    )
    gen = as_generator(rng)
    dataset = build_synthetic_dataset(
        user_count=max(users_per_run * 3, 30), rng=gen
    )
    # Paired design: the same (network, user batch) is swept across all
    # percentage levels so run-to-run user variance cancels out of the
    # comparison (the paper's 10-run averages achieve the same effect).
    errors: Dict[Tuple[float, str], List[float]] = {
        (pct, dep): [] for pct in percentages for dep in deployments
    }
    for _ in range(runs):
        run_seed = int(gen.integers(2**31))
        for deployment in deployments:
            net = build_network(
                node_count=defaults.node_count,
                radius=defaults.radius,
                deployment=deployment,
                rng=gen,
            )
            for pct in percentages:
                errors[(pct, deployment)].append(
                    _run_trace_tracking(
                        net,
                        dataset,
                        users_per_run,
                        pct,
                        resampling_radius,
                        defaults,
                        np.random.default_rng(run_seed),
                    )
                )
    rows = []
    for pct in percentages:
        row: Dict[str, object] = {"percentage": pct}
        for deployment in deployments:
            row[deployment] = float(np.mean(errors[(pct, deployment)]))
        rows.append(row)
    return ExperimentResult(
        figure="Fig 10a",
        title="Trace-driven tracking error vs reporting percentage",
        rows=rows,
        paper_reference=(
            "perturbed grid stays below 3 above 10% reports; purely "
            "random deployment ~1.5x the grid error"
        ),
    )


def run_fig10b(
    radii: Optional[Sequence[float]] = None,
    deployments: Sequence[str] = ("perturbed_grid", "uniform_random"),
    runs: int = 3,
    users_per_run: int = 8,
    sniffer_percentage: float = 10.0,
    defaults: Optional[PaperDefaults] = None,
    rng: RandomState = None,
) -> ExperimentResult:
    """Trace-driven tracking error vs resampling radius (max speed)."""
    defaults = defaults if defaults is not None else PaperDefaults()
    radii = tuple(radii) if radii is not None else defaults.resampling_radii
    gen = as_generator(rng)
    dataset = build_synthetic_dataset(
        user_count=max(users_per_run * 3, 30), rng=gen
    )
    # Paired design across radii (see run_fig10a).
    errors: Dict[Tuple[float, str], List[float]] = {
        (radius, dep): [] for radius in radii for dep in deployments
    }
    for _ in range(runs):
        run_seed = int(gen.integers(2**31))
        for deployment in deployments:
            net = build_network(
                node_count=defaults.node_count,
                radius=defaults.radius,
                deployment=deployment,
                rng=gen,
            )
            for radius in radii:
                errors[(radius, deployment)].append(
                    _run_trace_tracking(
                        net,
                        dataset,
                        users_per_run,
                        sniffer_percentage,
                        radius,
                        defaults,
                        np.random.default_rng(run_seed),
                    )
                )
    rows = []
    for radius in radii:
        row: Dict[str, object] = {"resampling_radius": radius}
        for deployment in deployments:
            row[deployment] = float(np.mean(errors[(radius, deployment)]))
        rows.append(row)
    return ExperimentResult(
        figure="Fig 10b",
        title="Trace-driven tracking error vs resampling radius",
        rows=rows,
        paper_reference=(
            "error roughly stable, slight increase with maximum speed "
            "(radius 4 -> 12)"
        ),
    )
