"""Fingerprint map subsystem: precomputed flux-kernel grid + lookups.

Classic fingerprinting splits localization into an offline survey and
a cheap online matching stage. This package applies that split to the
paper's flux attack: :func:`build_fingerprint_map` precomputes the
discrete flux model's geometry kernel at every cell of a spatial grid,
:class:`FingerprintMap` persists the result (npz, versioned metadata,
deployment hash) and serves signature/spatial queries through a
:class:`SpatialIndex`, and the NLS / SMC layers consume the top map
matches as search seeds (see
:class:`repro.fingerprint.candidates.MapSeededCandidates` and the SMC
tracker's degenerate-sample recovery).
"""

from repro.fpmap.builder import build_fingerprint_map, grid_cells
from repro.fpmap.cache import KernelLRUCache
from repro.fpmap.index import SpatialIndex
from repro.fpmap.map import FPMAP_FORMAT, FingerprintMap, MapMatch
from repro.fpmap.registry import MapRegistry, shared_registry

__all__ = [
    "FPMAP_FORMAT",
    "FingerprintMap",
    "MapMatch",
    "SpatialIndex",
    "KernelLRUCache",
    "MapRegistry",
    "build_fingerprint_map",
    "grid_cells",
    "shared_registry",
]
