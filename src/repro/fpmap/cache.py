"""Bounded LRU cache for kernel blocks.

The fingerprint map stores one full-width geometry kernel per grid
cell. Online consumers rarely need the full width: NaN sniffer dropout
restricts the :class:`~repro.fingerprint.objective.FluxObjective` to
the surviving columns, and seeded search touches the same few hundred
top-match cells round after round. Slicing those (cells x columns)
blocks out of the signature matrix on every evaluation is
profile-visible churn; this cache keeps the recently used blocks alive
so repeated evaluations at map cells cost a dict lookup.

Keys are opaque (bytes/tuples built by the caller); values are numpy
arrays handed out read-only so a shared cache can serve many sessions.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

import numpy as np

from repro.errors import ConfigurationError


class KernelLRUCache:
    """Least-recently-used cache of ndarray blocks.

    Parameters
    ----------
    capacity:
        Maximum number of blocks retained; the least recently *used*
        (get or put) block is evicted first.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._blocks: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """Return the cached block (marking it fresh) or ``None``."""
        block = self._blocks.get(key)
        if block is None:
            self.misses += 1
            return None
        self._blocks.move_to_end(key)
        self.hits += 1
        return block

    def put(self, key: Hashable, block: np.ndarray) -> np.ndarray:
        """Insert a block, evicting the stalest entry when full.

        The stored array is frozen (``writeable=False``) so cached
        blocks cannot be corrupted by one consumer under another.
        """
        block = np.asarray(block)
        block.setflags(write=False)
        self._blocks[key] = block
        self._blocks.move_to_end(key)
        while len(self._blocks) > self.capacity:
            self._blocks.popitem(last=False)
        return block

    def clear(self) -> None:
        self._blocks.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
