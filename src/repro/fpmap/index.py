"""Spatial and signature indexing over fingerprint-map cells.

Two query families serve the online stages:

* **range-by-position** / **kNN-by-position** — "which map cells lie
  near this point?" Used for local refinement and SMC reseeding.
  Backed by uniform-grid bucketing (:class:`repro.geometry.grid.
  SpatialHashGrid`), with a ``scipy.spatial.cKDTree`` fallback for
  degenerate bucket geometries or when explicitly requested.
* **kNN-by-signature** — "which cells' precomputed flux kernels best
  explain this observed flux vector?" The kernel scale ``theta`` is
  unknown, so the match metric is the residual of the per-cell
  best-fit ``theta >= 0`` — an exact, fully vectorized scan (one
  matvec over the signature matrix), which at fingerprint-map sizes
  (10^3..10^5 cells) is faster than any approximate structure.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.grid import SpatialHashGrid

_BACKENDS = ("auto", "grid", "kdtree")


def _workspace_buffer(workspace: dict, name: str, shape) -> np.ndarray:
    """A ``shape``-shaped float64 view into a grown-to-fit flat buffer.

    Buffers live in the caller's ``workspace`` dict and grow
    geometrically (power-of-two sizing), so steady-state batch matching
    stops paying per-call allocation for its score grids.
    """
    size = 1
    for dim in shape:
        size *= int(dim)
    buf = workspace.get(name)
    if buf is None or buf.size < size:
        buf = np.empty(1 << max(6, (size - 1).bit_length()))
        workspace[name] = buf
    return buf[:size].reshape(shape)


def _load_kdtree():
    try:
        from scipy.spatial import cKDTree
    except ImportError:  # pragma: no cover - scipy is a hard dep today
        return None
    return cKDTree


class SpatialIndex:
    """Position + signature index over a fixed cell set.

    Parameters
    ----------
    positions:
        ``(C, 2)`` cell center positions.
    signatures:
        Optional ``(C, n)`` per-cell flux kernels; required for
        :meth:`knn_by_signature`.
    cell_size:
        Bucket side for the uniform grid; derived from the point
        density when omitted.
    backend:
        ``"grid"`` (uniform-grid bucketing), ``"kdtree"`` (scipy), or
        ``"auto"`` — grid, falling back to the kd-tree when the derived
        bucket size degenerates (all points coincident / zero extent).
    """

    def __init__(
        self,
        positions: np.ndarray,
        signatures: Optional[np.ndarray] = None,
        cell_size: Optional[float] = None,
        backend: str = "auto",
    ):
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2 or positions.shape[0] == 0:
            raise ConfigurationError(
                f"positions must be (C>=1, 2), got {positions.shape}"
            )
        if backend not in _BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        self.positions = positions
        self.signatures = None
        if signatures is not None:
            signatures = np.asarray(signatures, dtype=float)
            if signatures.ndim != 2 or signatures.shape[0] != positions.shape[0]:
                raise ConfigurationError(
                    f"signatures {signatures.shape} must be (C, n) with "
                    f"C={positions.shape[0]}"
                )
            self.signatures = signatures

        span = positions.max(axis=0) - positions.min(axis=0)
        extent = float(max(span[0], span[1]))
        if cell_size is None:
            cell_size = extent / max(np.sqrt(positions.shape[0]), 1.0)
        self._grid: Optional[SpatialHashGrid] = None
        self._tree = None
        self.backend = backend
        if backend in ("auto", "grid") and cell_size > 0:
            self._grid = SpatialHashGrid(positions, cell_size)
            self.backend = "grid"
        else:
            tree_cls = _load_kdtree()
            if tree_cls is None:
                raise ConfigurationError(
                    "kd-tree backend requested but scipy is unavailable"
                )
            self._tree = tree_cls(positions)
            self.backend = "kdtree"
        self._diameter = max(extent * np.sqrt(2.0), 1e-9)
        self._sig_norms: Optional[np.ndarray] = None

    @property
    def cell_count(self) -> int:
        return self.positions.shape[0]

    # ------------------------------------------------------------------
    # Position-space queries.
    # ------------------------------------------------------------------
    def range_by_position(self, center: np.ndarray, radius: float) -> np.ndarray:
        """Indices of cells within ``radius`` of ``center`` (unsorted)."""
        center = np.asarray(center, dtype=float).reshape(2)
        if radius <= 0:
            raise ConfigurationError(f"radius must be > 0, got {radius}")
        if self._grid is not None:
            return self._grid.query_radius(center, radius)
        return np.asarray(
            self._tree.query_ball_point(center, radius), dtype=np.int64
        )

    def knn_by_position(self, point: np.ndarray, k: int) -> np.ndarray:
        """Indices of the ``k`` cells nearest to ``point``, nearest first."""
        point = np.asarray(point, dtype=float).reshape(2)
        k = min(int(k), self.cell_count)
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if self._tree is not None:
            _, idx = self._tree.query(point, k=k)
            return np.atleast_1d(np.asarray(idx, dtype=np.int64))
        # Grid backend: expand the search radius until k cells are in
        # range, then rank exactly.
        radius = max(self._grid.cell_size, 1e-9)
        found = self._grid.query_radius(point, radius)
        while found.size < k and radius < 2.0 * self._diameter:
            radius *= 2.0
            found = self._grid.query_radius(point, radius)
        if found.size < k:  # disconnected corner cases: brute force
            found = np.arange(self.cell_count, dtype=np.int64)
        d = np.hypot(
            self.positions[found, 0] - point[0],
            self.positions[found, 1] - point[1],
        )
        order = np.argsort(d, kind="stable")[:k]
        return found[order]

    # ------------------------------------------------------------------
    # Signature-space queries.
    # ------------------------------------------------------------------
    def knn_by_signature(
        self,
        target: np.ndarray,
        k: int,
        columns: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Best-matching cells for an observed flux vector.

        For each cell the kernel is matched at its optimal non-negative
        scale: ``theta_c = max(0, <g_c, F'> / <g_c, g_c>)`` and the
        score is ``||F' - theta_c g_c||_2`` over the selected columns.

        Parameters
        ----------
        target:
            ``(n,)`` observed flux over the map's sniffer set (or over
            ``columns`` of it).
        k:
            Number of matches to return.
        columns:
            Optional indices restricting the match to a sniffer subset
            (NaN dropout); ``target`` must then have that length.

        Returns
        -------
        ``(indices, thetas, residuals)`` sorted by ascending residual.
        """
        if self.signatures is None:
            raise ConfigurationError(
                "this index was built without signatures; "
                "pass signatures= to enable kNN-by-signature"
            )
        k = min(int(k), self.cell_count)
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        sig = self.signatures
        if columns is not None:
            columns = np.asarray(columns, dtype=np.int64)
            sig = sig[:, columns]
        target = np.asarray(target, dtype=float)
        if target.shape != (sig.shape[1],):
            raise ConfigurationError(
                f"target must have shape ({sig.shape[1]},), got {target.shape}"
            )
        num = sig @ target  # (C,)
        if columns is None:
            # Observation-independent: cache the full-column signature
            # self-dots (the serving hot path matches thousands of
            # observations against the same map).
            if self._sig_norms is None:
                self._sig_norms = np.einsum("cn,cn->c", sig, sig)
            den = self._sig_norms
        else:
            den = np.einsum("cn,cn->c", sig, sig)
        thetas = np.maximum(num / np.maximum(den, 1e-300), 0.0)
        # ||F' - theta g||^2 expanded; clamp tiny negatives from rounding.
        sq = np.maximum(
            float(target @ target) - 2.0 * thetas * num + thetas * thetas * den,
            0.0,
        )
        residuals = np.sqrt(sq)
        return self._rank_matches(residuals, thetas, k)

    def knn_by_signature_batch(
        self,
        targets: np.ndarray,
        ks: Sequence[int],
        workspace: Optional[dict] = None,
    ) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Fused :meth:`knn_by_signature` over many observations.

        One einsum evaluates the cell/observation score grid for the
        whole batch instead of dispatching ~a dozen small numpy ops per
        observation — the serving scheduler's fused match path. Every
        operation is column-local (einsum reduces over ``n`` per output
        element, the rest is elementwise), so each observation's result
        is bitwise-identical whether it shares the call with 0 or 100
        others. Full-column observations only: dropout requests carry
        per-observation column subsets and take the single-observation
        path.

        Parameters
        ----------
        targets:
            ``(B, n)`` observed flux vectors (finite everywhere).
        ks:
            Per-observation match counts (length ``B``).
        workspace:
            Optional caller-owned dict of staging buffers. Repeated
            calls with the same workspace reuse the ``(C, B)`` score
            grids instead of reallocating them per batch — the serving
            scheduler passes its own, so concurrent services sharing
            one map never share scratch. Values are written with the
            exact ufunc sequence of the allocation path (``out=``
            variants), so results are bitwise-identical with or
            without it.

        Returns one ``(indices, thetas, residuals)`` triple per
        observation, ascending by residual. Returned arrays are fresh
        (ranking copies them out); nothing aliases the workspace.
        """
        if self.signatures is None:
            raise ConfigurationError(
                "this index was built without signatures; "
                "pass signatures= to enable kNN-by-signature"
            )
        sig = self.signatures
        targets = np.asarray(targets, dtype=float)
        if targets.ndim != 2 or targets.shape[1] != sig.shape[1]:
            raise ConfigurationError(
                f"targets must be (B, {sig.shape[1]}), got {targets.shape}"
            )
        if len(ks) != targets.shape[0]:
            raise ConfigurationError(
                f"need one k per target: {len(ks)} ks for "
                f"{targets.shape[0]} targets"
            )
        if self._sig_norms is None:
            self._sig_norms = np.einsum("cn,cn->c", sig, sig)
        den = self._sig_norms
        den_floor = np.maximum(den, 1e-300)[:, None]
        count, batch = sig.shape[0], targets.shape[0]
        if workspace is None:
            num = np.einsum("cn,bn->cb", sig, targets)  # (C, B)
            t2 = np.einsum("bn,bn->b", targets, targets)
            thetas = np.maximum(num / den_floor, 0.0)
            sq = np.maximum(
                t2[None, :] - 2.0 * thetas * num
                + thetas * thetas * den[:, None],
                0.0,
            )
            residuals = np.sqrt(sq)
        else:
            num = _workspace_buffer(workspace, "num", (count, batch))
            t2 = _workspace_buffer(workspace, "t2", (batch,))
            thetas = _workspace_buffer(workspace, "thetas", (count, batch))
            tmp = _workspace_buffer(workspace, "tmp", (count, batch))
            residuals = _workspace_buffer(workspace, "sq", (count, batch))
            np.einsum("cn,bn->cb", sig, targets, out=num)
            np.einsum("bn,bn->b", targets, targets, out=t2)
            # Same ufunc chain as above, written into reused storage:
            # theta = max(num / den_floor, 0);
            # sq = max(t2 - (2 theta) num + (theta theta) den, 0).
            np.divide(num, den_floor, out=thetas)
            np.maximum(thetas, 0.0, out=thetas)
            np.multiply(2.0, thetas, out=tmp)
            np.multiply(tmp, num, out=tmp)
            np.subtract(t2[None, :], tmp, out=residuals)
            np.multiply(thetas, thetas, out=tmp)
            np.multiply(tmp, den[:, None], out=tmp)
            np.add(residuals, tmp, out=residuals)
            np.maximum(residuals, 0.0, out=residuals)
            np.sqrt(residuals, out=residuals)
        return [
            self._rank_matches(
                np.ascontiguousarray(residuals[:, b]),
                np.ascontiguousarray(thetas[:, b]),
                min(int(k), self.cell_count),
            )
            for b, k in enumerate(ks)
        ]

    @staticmethod
    def _rank_matches(
        residuals: np.ndarray, thetas: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if k < residuals.shape[0]:
            part = np.argpartition(residuals, k - 1)[:k]
        else:
            part = np.arange(residuals.shape[0])
        order = part[np.argsort(residuals[part], kind="stable")]
        return order.astype(np.int64), thetas[order], residuals[order]
