"""The precomputed flux-kernel fingerprint map.

A :class:`FingerprintMap` stores, for every cell of a spatial grid
over the field, the geometry kernel ``g(cell)`` of the discrete flux
model evaluated at the deployed sniffer set — the cell's *signature*.
The paper's sampling-based NLS search (Section IV.A) re-derives these
kernels for thousands of random candidates per window; with the map
built once offline, the online stages reduce to cheap signature
matching (classic fingerprinting: offline survey + online lookup) and
local refinement.

Maps are npz-backed with versioned metadata: format version,
deployment hash (field + sniffer positions + ``d_floor``), sniffer
ids, and grid resolution. Loaders and consumers refuse mismatched
metadata with :class:`~repro.errors.ConfigurationError`, following the
same persistence conventions as stream checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.fpmap.cache import KernelLRUCache
from repro.fpmap.index import SpatialIndex
from repro.geometry.field import Field
from repro.util.persistence import (
    deployment_hash,
    field_from_arrays,
    field_to_arrays,
    require_format,
    require_keys,
)

_PathLike = Union[str, Path]

#: Bumped on any incompatible layout change; loaders refuse mismatches.
FPMAP_FORMAT = 1

_REQUIRED_KEYS = (
    "format",
    "field_kind",
    "field_params",
    "cell_positions",
    "signatures",
    "sniffer_positions",
    "sniffer_ids",
    "scalars",
    "deployment",
)


@dataclass
class MapMatch:
    """Result of one signature query: top cells with fit diagnostics."""

    indices: np.ndarray
    positions: np.ndarray
    thetas: np.ndarray
    residuals: np.ndarray


@dataclass
class FingerprintMap:
    """Precomputed per-cell flux signatures plus query machinery.

    Attributes
    ----------
    field:
        Deployment field the grid covers.
    cell_positions:
        ``(C, 2)`` grid cell centers (cells outside the field are
        dropped at build time).
    signatures:
        ``(C, n)`` geometry kernels: row ``c`` is ``g(cell_c)`` at the
        ``n`` sniffers.
    sniffer_positions:
        ``(n, 2)`` sniffer coordinates the signatures were computed
        against.
    sniffer_ids:
        ``(n,)`` indices of the sniffers in the parent deployment
        (matches ``FluxObservation.sniffers``).
    resolution:
        Grid spacing the map was built with.
    d_floor:
        Near-sink clamp of the flux model used at build time.
    """

    field: Field
    cell_positions: np.ndarray
    signatures: np.ndarray
    sniffer_positions: np.ndarray
    sniffer_ids: np.ndarray
    resolution: float
    d_floor: float
    _index: Optional[SpatialIndex] = dataclass_field(
        default=None, repr=False, compare=False
    )
    _cache: Optional[KernelLRUCache] = dataclass_field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.cell_positions = np.asarray(self.cell_positions, dtype=float)
        self.signatures = np.asarray(self.signatures, dtype=float)
        self.sniffer_positions = np.asarray(self.sniffer_positions, dtype=float)
        self.sniffer_ids = np.asarray(self.sniffer_ids, dtype=np.int64)
        if self.cell_positions.ndim != 2 or self.cell_positions.shape[1] != 2:
            raise ConfigurationError(
                f"cell_positions must be (C, 2), got {self.cell_positions.shape}"
            )
        C = self.cell_positions.shape[0]
        if C == 0:
            raise ConfigurationError("fingerprint map has no cells")
        if self.signatures.shape[0] != C:
            raise ConfigurationError(
                f"signatures {self.signatures.shape} must have one row per "
                f"cell ({C})"
            )
        n = self.signatures.shape[1]
        if self.sniffer_positions.shape != (n, 2):
            raise ConfigurationError(
                f"sniffer_positions must be ({n}, 2), got "
                f"{self.sniffer_positions.shape}"
            )
        if self.sniffer_ids.shape != (n,):
            raise ConfigurationError(
                f"sniffer_ids must be ({n},), got {self.sniffer_ids.shape}"
            )
        if self.resolution <= 0:
            raise ConfigurationError(
                f"resolution must be > 0, got {self.resolution}"
            )

    # ------------------------------------------------------------------
    @property
    def cell_count(self) -> int:
        return self.cell_positions.shape[0]

    @property
    def sniffer_count(self) -> int:
        return self.signatures.shape[1]

    @property
    def deployment(self) -> str:
        """Hash of the (field, sniffers, d_floor) the map was built for."""
        return deployment_hash(self.field, self.sniffer_positions, self.d_floor)

    @property
    def index(self) -> SpatialIndex:
        """Lazily built spatial/signature index over the cells."""
        if self._index is None:
            self._index = SpatialIndex(
                self.cell_positions,
                signatures=self.signatures,
                cell_size=self.resolution,
            )
        return self._index

    @property
    def cache(self) -> KernelLRUCache:
        """Lazily created LRU cache of sliced kernel blocks."""
        if self._cache is None:
            self._cache = KernelLRUCache()
        return self._cache

    # ------------------------------------------------------------------
    # Validation.
    # ------------------------------------------------------------------
    def validate_against(
        self,
        field: Field,
        sniffer_positions: np.ndarray,
        d_floor: float,
    ) -> None:
        """Refuse to serve a deployment the map was not built for."""
        expected = deployment_hash(field, sniffer_positions, d_floor)
        if expected != self.deployment:
            raise ConfigurationError(
                "fingerprint map was built for a different deployment "
                f"(map hash {self.deployment[:12]}…, live deployment "
                f"{expected[:12]}…); rebuild the map with repro build-map"
            )

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    @staticmethod
    def _observation_columns(values: np.ndarray) -> np.ndarray:
        good = np.isfinite(np.asarray(values, dtype=float))
        if not np.any(good):
            raise ConfigurationError(
                "all sniffer readings are NaN; nothing to match"
            )
        return np.flatnonzero(good)

    def match(self, values: np.ndarray, k: int = 10) -> MapMatch:
        """Top-``k`` single-user matches for one observed flux vector.

        ``values`` is the full-width observation (aligned to
        ``sniffer_ids``); NaN readings (dropout) are masked out of the
        match.
        """
        values = np.asarray(values, dtype=float)
        if values.shape != (self.sniffer_count,):
            raise ConfigurationError(
                f"values must have shape ({self.sniffer_count},), got "
                f"{values.shape}"
            )
        columns = self._observation_columns(values)
        idx, thetas, residuals = self.index.knn_by_signature(
            values[columns], k, columns=columns
        )
        return MapMatch(
            indices=idx,
            positions=self.cell_positions[idx],
            thetas=thetas,
            residuals=residuals,
        )

    def match_many(
        self,
        values: np.ndarray,
        ks: Sequence[int],
        workspace: Optional[dict] = None,
    ) -> List[MapMatch]:
        """Fused single-user matches for a batch of observations.

        The serving scheduler's hot path: one einsum scores every
        (cell, observation) pair instead of one small-op cascade per
        observation, with per-observation results bitwise-identical to
        any other batch split (see :meth:`SpatialIndex.
        knn_by_signature_batch`). Observations must be finite
        everywhere — dropout requests go through :meth:`match`.
        ``workspace`` is an optional caller-owned staging dict forwarded
        to the index so repeat batches reuse their score grids.
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] != self.sniffer_count:
            raise ConfigurationError(
                f"values must be (B, {self.sniffer_count}), got {values.shape}"
            )
        if not np.all(np.isfinite(values)):
            raise ConfigurationError(
                "match_many requires finite observations; route dropout "
                "observations through match()"
            )
        return [
            MapMatch(
                indices=idx,
                positions=self.cell_positions[idx],
                thetas=thetas,
                residuals=residuals,
            )
            for idx, thetas, residuals in self.index.knn_by_signature_batch(
                values, ks, workspace=workspace
            )
        ]

    def peel_matches(
        self, values: np.ndarray, users: int, k: int = 10
    ) -> List[MapMatch]:
        """Greedy multi-user matching by residual peeling.

        Match the strongest single-user signature, subtract its fitted
        contribution from the observed flux, and repeat — one
        :class:`MapMatch` per user. This mirrors the greedy
        residual-peeling initialization of the coordinate-descent NLS
        search, but against precomputed signatures.
        """
        if users < 1:
            raise ConfigurationError(f"users must be >= 1, got {users}")
        values = np.asarray(values, dtype=float)
        residual = values.copy()
        matches: List[MapMatch] = []
        for _ in range(users):
            match = self.match(residual, k=k)
            matches.append(match)
            best = int(match.indices[0])
            theta = float(match.thetas[0])
            contribution = theta * self.signatures[best]
            good = np.isfinite(residual)
            residual = residual.copy()
            residual[good] = residual[good] - contribution[good]
        return matches

    def kernels_for(
        self,
        cell_indices: np.ndarray,
        columns: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Signature rows for some cells, optionally column-restricted.

        Slices go through the map's LRU block cache, so the hot online
        pattern — the same top-match cells evaluated against the same
        surviving sniffer subset round after round — is served without
        recomputing or re-slicing.
        """
        cell_indices = np.asarray(cell_indices, dtype=np.int64)
        col_key = b"all" if columns is None else np.asarray(
            columns, dtype=np.int64
        ).tobytes()
        key = (cell_indices.tobytes(), col_key)
        block = self.cache.get(key)
        if block is None:
            block = self.signatures[cell_indices]
            if columns is not None:
                block = block[:, np.asarray(columns, dtype=np.int64)]
            block = self.cache.put(key, block)
        return block

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------
    def save(self, path: _PathLike) -> Path:
        """Serialize to ``.npz`` (atomic write, bitwise round-trip)."""
        field_kind, field_params = field_to_arrays(self.field)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with tmp.open("wb") as handle:
            np.savez_compressed(
                handle,
                format=np.array([FPMAP_FORMAT]),
                field_kind=np.array(field_kind),
                field_params=field_params,
                cell_positions=self.cell_positions,
                signatures=self.signatures,
                sniffer_positions=self.sniffer_positions,
                sniffer_ids=self.sniffer_ids,
                scalars=np.array([self.resolution, self.d_floor]),
                deployment=np.array(self.deployment),
            )
        tmp.replace(path)
        return path

    @classmethod
    def load(cls, path: _PathLike) -> "FingerprintMap":
        """Load a map saved by :meth:`save`, verifying its metadata.

        Raises :class:`~repro.errors.ConfigurationError` on missing
        keys, an unsupported format version, or a stored deployment
        hash that no longer matches the stored geometry (a corrupt or
        hand-edited archive).
        """
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(
                f"{path}: no such fingerprint map; build one with "
                "repro build-map"
            )
        with np.load(path, allow_pickle=False) as data:
            require_keys(data, _REQUIRED_KEYS, path)
            require_format(data, FPMAP_FORMAT, path, kind="fingerprint map")
            fmap = cls(
                field=field_from_arrays(
                    str(data["field_kind"]), data["field_params"]
                ),
                cell_positions=data["cell_positions"],
                signatures=data["signatures"],
                sniffer_positions=data["sniffer_positions"],
                sniffer_ids=data["sniffer_ids"],
                resolution=float(data["scalars"][0]),
                d_floor=float(data["scalars"][1]),
            )
            stored = str(data["deployment"])
        if stored != fmap.deployment:
            raise ConfigurationError(
                f"{path}: stored deployment hash {stored[:12]}… does not "
                f"match the archived geometry ({fmap.deployment[:12]}…); "
                "the map is stale or corrupt — rebuild it"
            )
        return fmap

    def grid_shape(self) -> Tuple[int, int]:
        """Approximate (cols, rows) of the build grid, for reporting."""
        xmin, ymin, xmax, ymax = self.field.bounding_box
        cols = max(1, int(round((xmax - xmin) / self.resolution)))
        rows = max(1, int(round((ymax - ymin) / self.resolution)))
        return cols, rows
