"""Shared map registry for session fleets.

A streaming deployment runs many tracking sessions against the same
sniffer set; each needs the same fingerprint map, and rebuilding it
per session would dwarf the tracking cost. The registry keys built
maps by deployment hash (field + sniffer positions + ``d_floor``), so:

* sessions over the same deployment share one read-only map (maps are
  never mutated after build — queries only read, and the per-map LRU
  kernel cache hands out write-protected blocks);
* a *changed* sniffer set hashes differently, which transparently
  invalidates the old entry: the next ``get_or_build`` builds a fresh
  map, and stale entries age out of the bounded store.

Thread-safe: sessions are drained on a thread pool
(:class:`repro.stream.manager.SessionManager`), so concurrent
``get_or_build`` calls for the same deployment must not race a
half-built map into view. The build itself runs outside the lock only
for distinct deployments.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.fpmap.builder import build_fingerprint_map
from repro.fpmap.map import FingerprintMap
from repro.geometry.field import Field
from repro.util.persistence import deployment_hash


class MapRegistry:
    """Bounded, hash-keyed store of built fingerprint maps.

    Parameters
    ----------
    capacity:
        Maximum retained maps; least recently used deployments are
        evicted (a fleet normally needs exactly one).
    """

    def __init__(self, capacity: int = 4):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._maps: "OrderedDict[str, FingerprintMap]" = OrderedDict()
        self._locks: dict = {}
        self._shards: dict = {}  # (deployment, shards, cluster_cells)
        self._lock = threading.Lock()
        self.builds = 0
        self.partitions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._maps)

    def get(self, deployment: str) -> Optional[FingerprintMap]:
        """Look up a map by deployment hash without building."""
        with self._lock:
            fmap = self._maps.get(deployment)
            if fmap is not None:
                self._maps.move_to_end(deployment)
            return fmap

    def get_or_build(
        self,
        field: Field,
        sniffer_positions: np.ndarray,
        resolution: float = 1.0,
        d_floor: float = 1.0,
        sniffer_ids: Optional[np.ndarray] = None,
    ) -> FingerprintMap:
        """Return the fleet's shared map, building it on first use.

        A changed sniffer set (different hash) never returns the stale
        map — it builds and registers a new one.
        """
        key = deployment_hash(field, np.asarray(sniffer_positions, float), d_floor)
        with self._lock:
            fmap = self._maps.get(key)
            if fmap is not None:
                self._maps.move_to_end(key)
                return fmap
            # One build lock per deployment: concurrent requesters of
            # the same key wait; different keys build in parallel.
            build_lock = self._locks.setdefault(key, threading.Lock())
        with build_lock:
            with self._lock:
                fmap = self._maps.get(key)
                if fmap is not None:
                    return fmap
            built = build_fingerprint_map(
                field,
                sniffer_positions,
                resolution=resolution,
                d_floor=d_floor,
                sniffer_ids=sniffer_ids,
            )
            with self._lock:
                self._maps[key] = built
                self._maps.move_to_end(key)
                while len(self._maps) > self.capacity:
                    evicted, _ = self._maps.popitem(last=False)
                    self._locks.pop(evicted, None)
                    self._drop_shards_locked(evicted)
                self.builds += 1
            return built

    def register(self, fmap: FingerprintMap) -> str:
        """Adopt an externally built/loaded map (e.g. from ``.npz``)."""
        key = fmap.deployment
        with self._lock:
            self._maps[key] = fmap
            self._maps.move_to_end(key)
            while len(self._maps) > self.capacity:
                evicted, _ = self._maps.popitem(last=False)
                self._locks.pop(evicted, None)
                self._drop_shards_locked(evicted)
        return key

    def get_or_partition(
        self,
        fmap: FingerprintMap,
        shards: int,
        cluster_cells: int = 4,
    ) -> List[FingerprintMap]:
        """Cached spatial partition of a map into ``shards`` sub-maps.

        The fleet router asks for the same partition once per spawn (and
        again for every respawn-in-slot after a worker death), so the
        split — whole spatial clusters dealt round-robin, a disjoint
        cover of the parent's cells (:func:`repro.fleet.partition.
        partition_map`) — is cached under the deployment hash alongside
        the parent map and evicted with it.
        """
        key = (fmap.deployment, int(shards), int(cluster_cells))
        with self._lock:
            cached = self._shards.get(key)
            if cached is not None:
                return cached
        # Runtime import: repro.fleet depends on fpmap at import time;
        # this direction resolves lazily to keep the layering acyclic.
        from repro.fleet.partition import partition_map

        submaps, _ = partition_map(fmap, shards, cluster_cells)
        with self._lock:
            existing = self._shards.setdefault(key, submaps)
            if existing is submaps:
                self.partitions += 1
            return existing

    def _drop_shards_locked(self, deployment: str) -> None:
        for key in [k for k in self._shards if k[0] == deployment]:
            del self._shards[key]

    def invalidate(self, deployment: str) -> bool:
        """Drop one deployment's map; returns whether it was present."""
        with self._lock:
            self._locks.pop(deployment, None)
            self._drop_shards_locked(deployment)
            return self._maps.pop(deployment, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._maps.clear()
            self._locks.clear()
            self._shards.clear()


_SHARED = MapRegistry()


def shared_registry() -> MapRegistry:
    """The process-wide registry stream fleets share by default."""
    return _SHARED
