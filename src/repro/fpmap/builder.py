"""Offline construction of fingerprint maps.

Builds the spatial grid over the field, drops cells outside the
boundary, and evaluates the discrete flux model's geometry kernel at
every (cell, sniffer) pair — the O(cells x sniffers) work the online
stages then never repeat. Kernels are computed in blocks to bound peak
memory at large grids (a 30x30 field at 0.25 resolution with 90
sniffers is ~14400 x 90 doubles per block batch, not one giant
allocation).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.fluxmodel.discrete import DiscreteFluxModel
from repro.fpmap.map import FingerprintMap
from repro.geometry.field import Field
from repro.util.validation import check_positive


def grid_cells(field: Field, resolution: float) -> np.ndarray:
    """Cell centers of a ``resolution``-spaced grid clipped to the field.

    Centers start half a cell in from the bounding box so every center
    is interior for rectangular fields; non-rectangular fields drop the
    centers outside the boundary.
    """
    resolution = check_positive("resolution", resolution)
    xmin, ymin, xmax, ymax = field.bounding_box
    if resolution > max(xmax - xmin, ymax - ymin):
        raise ConfigurationError(
            f"resolution {resolution} exceeds the field extent"
        )
    xs = np.arange(xmin + resolution / 2.0, xmax, resolution)
    ys = np.arange(ymin + resolution / 2.0, ymax, resolution)
    gx, gy = np.meshgrid(xs, ys)
    cells = np.column_stack([gx.ravel(), gy.ravel()])
    inside = field.contains(cells)
    cells = cells[inside]
    if cells.shape[0] == 0:
        raise ConfigurationError(
            "no grid cells fall inside the field; lower the resolution"
        )
    return cells


def build_fingerprint_map(
    field: Field,
    sniffer_positions: np.ndarray,
    resolution: float = 1.0,
    d_floor: float = 1.0,
    sniffer_ids: Optional[np.ndarray] = None,
    block_size: int = 2048,
    engine=None,
) -> FingerprintMap:
    """Precompute the flux-kernel fingerprint of every grid cell.

    Parameters
    ----------
    field:
        Deployment field.
    sniffer_positions:
        ``(n, 2)`` sniffer coordinates.
    resolution:
        Grid spacing; candidate seeding can localize no finer than
        about half of this before local refinement.
    d_floor:
        Near-sink clamp of the flux model (must match the model used
        online — it is part of the deployment hash).
    sniffer_ids:
        Optional ``(n,)`` deployment indices of the sniffers (defaults
        to ``arange(n)``); stored so observations can be aligned.
    block_size:
        Cells per kernel-evaluation batch.
    engine:
        Optional :class:`repro.engine.Engine`; cell batches are fanned
        out across its workers, each writing its block of the signature
        matrix in place (float64 output is bitwise-identical to the
        serial build).
    """
    sniffer_positions = np.asarray(sniffer_positions, dtype=float)
    if sniffer_positions.ndim != 2 or sniffer_positions.shape[1] != 2:
        raise ConfigurationError(
            f"sniffer_positions must be (n, 2), got {sniffer_positions.shape}"
        )
    if sniffer_positions.shape[0] == 0:
        raise ConfigurationError("need at least one sniffer")
    if block_size < 1:
        raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
    if sniffer_ids is None:
        sniffer_ids = np.arange(sniffer_positions.shape[0], dtype=np.int64)
    else:
        sniffer_ids = np.asarray(sniffer_ids, dtype=np.int64)
        if sniffer_ids.shape != (sniffer_positions.shape[0],):
            raise ConfigurationError(
                f"sniffer_ids must be ({sniffer_positions.shape[0]},), got "
                f"{sniffer_ids.shape}"
            )

    cells = grid_cells(field, resolution)
    model = DiscreteFluxModel(field, sniffer_positions, d_floor=d_floor)
    # One chunked (and, with an engine, parallel) evaluation straight
    # into the signature matrix — ``block_size`` still bounds the
    # per-chunk working set, now inside the engine evaluator.
    signatures = np.empty((cells.shape[0], sniffer_positions.shape[0]))
    model.geometry_kernels(
        cells, engine=engine, out=signatures, chunk_size=block_size
    )

    return FingerprintMap(
        field=field,
        cell_positions=cells,
        signatures=signatures,
        sniffer_positions=sniffer_positions,
        sniffer_ids=sniffer_ids,
        resolution=float(resolution),
        d_floor=float(d_floor),
    )
