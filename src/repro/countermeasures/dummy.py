"""Dummy-sink injection.

The network periodically runs collection trees rooted at decoy
positions, so the sniffed flux superposes real and fake users. The
adversary fitting K users now sees K + D indistinguishable flux
sources.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.network.topology import Network
from repro.traffic.flux import simulate_flux
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive


def inject_dummy_sinks(
    network: Network,
    flux: np.ndarray,
    dummy_count: int,
    dummy_stretch: float = 2.0,
    rng: RandomState = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Add ``dummy_count`` decoy collection trees to an observed flux map.

    Returns ``(flux_with_dummies, dummy_positions)``. The decoys use
    realistic stretch so they are not separable by magnitude.
    """
    flux = np.asarray(flux, dtype=float)
    if flux.shape != (network.node_count,):
        raise ConfigurationError(
            f"flux must have shape ({network.node_count},), got {flux.shape}"
        )
    if dummy_count < 1:
        raise ConfigurationError(f"dummy_count must be >= 1, got {dummy_count}")
    check_positive("dummy_stretch", dummy_stretch)
    gen = as_generator(rng)
    positions = network.field.sample_uniform(dummy_count, gen)
    dummy_flux = simulate_flux(
        network, list(positions), [dummy_stretch] * dummy_count, rng=gen
    )
    return flux + dummy_flux, positions
