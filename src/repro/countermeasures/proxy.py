"""Proxy-rerouting defense.

Instead of rooting the collection tree at the user's own position —
which is exactly what leaks it — the network roots the tree at a
random *proxy* sensor and forwards the aggregate to the user over a
single multi-hop path. The adversary's flux fit then localizes the
proxy, not the user; the cost is the extra relay traffic along the
proxy -> user path and added latency.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.network.topology import Network
from repro.routing.spt import build_collection_tree
from repro.util.rng import RandomState, as_generator


def proxy_collection_flux(
    network: Network,
    user_position: np.ndarray,
    stretch: float,
    rng: RandomState = None,
    proxy: int = None,
) -> Tuple[np.ndarray, int]:
    """Flux map for one collection routed through a random proxy.

    Returns ``(flux, proxy_index)``. The tree roots at the proxy; the
    collected aggregate (the full network's data) is then relayed hop
    by hop from the proxy to the user's attach node, adding the
    aggregate volume to every node on that path.
    """
    if not np.isfinite(stretch) or stretch <= 0:
        raise ConfigurationError(f"stretch must be positive, got {stretch}")
    gen = as_generator(rng)
    if proxy is None:
        proxy = int(gen.integers(network.node_count))
    elif not 0 <= proxy < network.node_count:
        raise ConfigurationError(f"proxy {proxy} out of range")

    tree = build_collection_tree(network, None, root=proxy, rng=gen)
    weights = np.full(network.node_count, float(stretch))
    flux = tree.subtree_aggregate(weights)

    # Deliver the aggregate from the proxy to the user's attach node.
    attach = network.nearest_node(np.asarray(user_position, dtype=float))
    delivery_tree = build_collection_tree(network, None, root=attach, rng=gen)
    total_volume = float(flux[proxy])
    if delivery_tree.hops[proxy] >= 0:
        path = delivery_tree.path_to_root(proxy)
        flux[path] += total_volume
        # The proxy itself already carries the aggregate once.
        flux[proxy] -= total_volume
    return flux, proxy


def proxy_defense_overhead(
    network: Network, flux_with_proxy: np.ndarray, flux_direct: np.ndarray
) -> float:
    """Relative extra traffic of the proxy route vs direct collection."""
    direct = float(np.asarray(flux_direct, dtype=float).sum())
    if direct <= 0:
        raise ConfigurationError("direct flux is all zero; overhead undefined")
    return float(np.asarray(flux_with_proxy, dtype=float).sum() - direct) / direct
