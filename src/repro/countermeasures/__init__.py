"""Future-work extension (paper Section VI): traffic-reshaping defenses.

The paper's conclusion calls for "reshaping the network traffics to
prevent malicious detection". This package implements three defenses
and quantifies the privacy/overhead trade-off they buy:

* uniform padding — every node pads its transmissions toward a common
  level, flattening the flux fingerprint;
* dummy sinks — the network injects collection trees rooted at decoy
  positions, confusing the user-count and position fits;
* proxy rerouting — trees root at a random proxy sensor and the
  aggregate is relayed to the user, so the flux fit localizes the
  proxy instead of the user.
"""

from repro.countermeasures.padding import apply_uniform_padding, padding_overhead
from repro.countermeasures.dummy import inject_dummy_sinks
from repro.countermeasures.proxy import proxy_collection_flux, proxy_defense_overhead
from repro.countermeasures.evaluation import defense_tradeoff

__all__ = [
    "apply_uniform_padding",
    "padding_overhead",
    "inject_dummy_sinks",
    "proxy_collection_flux",
    "proxy_defense_overhead",
    "defense_tradeoff",
]
