"""Uniform traffic padding.

Each sensor transmits dummy bytes so its observable flux moves toward
a common target level. ``level = 0`` leaves traffic untouched;
``level = 1`` pads every node to the network-wide maximum, erasing the
fingerprint entirely (at enormous energy cost).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.util.validation import check_probability


def apply_uniform_padding(flux: np.ndarray, level: float) -> np.ndarray:
    """Pad per-node flux toward the maximum: ``F + level * (max(F) - F)``.

    Padding only ever *adds* traffic (a node cannot un-send packets),
    and the sniffed counts include the dummy transmissions.
    """
    flux = np.asarray(flux, dtype=float)
    if flux.ndim != 1:
        raise ConfigurationError(f"flux must be 1-D, got shape {flux.shape}")
    check_probability("level", level)
    if flux.size == 0:
        return flux.copy()
    target = float(flux.max())
    return flux + level * (target - flux)


def padding_overhead(flux: np.ndarray, level: float) -> float:
    """Relative extra traffic the defense transmits.

    ``(sum(padded) - sum(original)) / sum(original)`` — the energy
    price of the privacy gained.
    """
    flux = np.asarray(flux, dtype=float)
    padded = apply_uniform_padding(flux, level)
    base = float(flux.sum())
    if base <= 0:
        raise ConfigurationError("original flux is all zero; overhead undefined")
    return float(padded.sum() - base) / base
