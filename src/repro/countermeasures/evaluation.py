"""Privacy/overhead trade-off evaluation for the defenses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.countermeasures.dummy import inject_dummy_sinks
from repro.countermeasures.padding import apply_uniform_padding, padding_overhead
from repro.errors import ConfigurationError
from repro.fingerprint.nls import NLSLocalizer
from repro.network.sampling import sample_sniffers_percentage
from repro.network.topology import Network
from repro.traffic.flux import simulate_flux
from repro.traffic.measurement import MeasurementModel
from repro.util.rng import RandomState, as_generator, spawn_generators


@dataclass
class DefensePoint:
    """One configuration of a defense and the attack error it induces."""

    defense: str
    parameter: float
    attack_error: float
    overhead: float


def defense_tradeoff(
    network: Network,
    user_count: int = 2,
    padding_levels: Sequence[float] = (0.0, 0.25, 0.5, 0.75),
    dummy_counts: Sequence[int] = (1, 2, 4),
    sniffer_percentage: float = 10.0,
    repetitions: int = 3,
    candidate_count: int = 1500,
    rng: RandomState = None,
) -> List[DefensePoint]:
    """Measure attack localization error vs defense strength.

    For each padding level / dummy count, run the NLS attack
    ``repetitions`` times against defended flux and report the mean
    per-user localization error plus the defense's traffic overhead.
    The ``parameter = 0`` padding point doubles as the undefended
    reference.
    """
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    gens = spawn_generators(rng, repetitions)
    points: List[DefensePoint] = []

    def run_attack(
        flux: np.ndarray, truth: np.ndarray, gen: np.random.Generator
    ) -> float:
        sniffers = sample_sniffers_percentage(network, sniffer_percentage, rng=gen)
        obs = MeasurementModel(network, sniffers, smooth=True, rng=gen).observe(flux)
        loc = NLSLocalizer(network.field, network.positions[sniffers])
        res = loc.localize(
            obs,
            user_count=user_count,
            candidate_count=candidate_count,
            restarts=2,
            rng=gen,
        )
        return float(res.errors_to(truth).mean())

    for level in padding_levels:
        errors, overheads = [], []
        for gen in gens:
            truth = network.field.sample_uniform(user_count, gen)
            stretches = gen.uniform(1.0, 3.0, user_count)
            flux = simulate_flux(network, list(truth), list(stretches), rng=gen)
            defended = apply_uniform_padding(flux, level)
            errors.append(run_attack(defended, truth, gen))
            overheads.append(padding_overhead(flux, level) if level > 0 else 0.0)
        points.append(
            DefensePoint(
                defense="padding",
                parameter=float(level),
                attack_error=float(np.mean(errors)),
                overhead=float(np.mean(overheads)),
            )
        )

    for count in dummy_counts:
        errors, overheads = [], []
        for gen in gens:
            truth = network.field.sample_uniform(user_count, gen)
            stretches = gen.uniform(1.0, 3.0, user_count)
            flux = simulate_flux(network, list(truth), list(stretches), rng=gen)
            defended, _ = inject_dummy_sinks(network, flux, count, rng=gen)
            errors.append(run_attack(defended, truth, gen))
            overheads.append(float(defended.sum() - flux.sum()) / float(flux.sum()))
        points.append(
            DefensePoint(
                defense="dummy_sinks",
                parameter=float(count),
                attack_error=float(np.mean(errors)),
                overhead=float(np.mean(overheads)),
            )
        )
    return points
