"""Privacy metrics derived from attack error samples.

Definitions
-----------
*Pinning probability* ``P(r)``: fraction of attack runs whose
localization error is at most ``r`` — how often the adversary places
the user inside a disc of radius ``r``.

*Effective anonymity area*: ``pi * Q(q)^2`` where ``Q(q)`` is the
``q``-quantile of the error distribution — the disc the adversary
confines the user to with confidence ``q``, the spatial analogue of an
anonymity-set size.

*Privacy loss*: ``1 - anonymity_area / field_area`` — 0 means the
attack reveals nothing beyond "somewhere in the field"; values near 1
mean near-exact disclosure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.field import Field
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class PrivacyReport:
    """Privacy statement for one attack configuration.

    Attributes
    ----------
    error_samples:
        The underlying localization errors.
    pinning:
        ``{radius: P(error <= radius)}`` for the requested radii.
    anonymity_radius:
        ``q``-quantile of the error (default q = 0.9).
    anonymity_area:
        Disc area of the anonymity radius.
    privacy_loss:
        ``1 - anonymity_area / field_area``, clipped to [0, 1].
    """

    error_samples: np.ndarray
    pinning: Dict[float, float]
    anonymity_radius: float
    anonymity_area: float
    privacy_loss: float

    def summary(self) -> str:
        pin = "  ".join(
            f"P(err<={r:g})={p:.0%}" for r, p in sorted(self.pinning.items())
        )
        return (
            f"{pin}  anonymity radius={self.anonymity_radius:.2f} "
            f"privacy loss={self.privacy_loss:.0%}"
        )


def localization_privacy(
    errors: np.ndarray,
    field: Field,
    radii: Sequence[float] = (1.0, 2.0, 5.0),
    confidence: float = 0.9,
) -> PrivacyReport:
    """Build a :class:`PrivacyReport` from localization error samples."""
    errors = np.asarray(errors, dtype=float).ravel()
    if errors.size == 0:
        raise ConfigurationError("need at least one error sample")
    if np.any(errors < 0) or not np.all(np.isfinite(errors)):
        raise ConfigurationError("errors must be finite and non-negative")
    check_in_range("confidence", confidence, 0.0, 1.0, inclusive=(False, False))
    if not radii:
        raise ConfigurationError("need at least one pinning radius")
    pinning = {}
    for r in radii:
        check_positive("radius", r)
        pinning[float(r)] = float(np.mean(errors <= r))
    radius_q = float(np.quantile(errors, confidence))
    area = float(np.pi * radius_q**2)
    loss = float(np.clip(1.0 - area / field.area, 0.0, 1.0))
    return PrivacyReport(
        error_samples=errors,
        pinning=pinning,
        anonymity_radius=radius_q,
        anonymity_area=area,
        privacy_loss=loss,
    )


def exposure_timeline(
    tracking_errors: np.ndarray,
    exposure_radius: float = 3.0,
    burn_in: int = 0,
) -> Dict[str, float]:
    """Per-session exposure statistics from a tracking error matrix.

    Parameters
    ----------
    tracking_errors:
        ``(rounds, users)`` per-round assignment errors (e.g. from
        :func:`repro.smc.association.tracking_errors_over_time`).
    exposure_radius:
        A user counts as *exposed* in a round when their error is at
        most this radius.
    burn_in:
        Rounds excluded from the statistics (tracker warm-up).

    Returns
    -------
    dict with ``exposed_fraction`` (user-rounds exposed),
    ``mean_exposed_streak`` (average consecutive-exposure length) and
    ``fully_exposed_users`` (fraction of users exposed in >=80% of
    their rounds).
    """
    errors = np.asarray(tracking_errors, dtype=float)
    if errors.ndim != 2 or errors.size == 0:
        raise ConfigurationError(
            f"tracking_errors must be a non-empty (rounds, users) matrix, "
            f"got shape {errors.shape}"
        )
    check_positive("exposure_radius", exposure_radius)
    if burn_in < 0 or burn_in >= errors.shape[0]:
        raise ConfigurationError(
            f"burn_in must be in [0, rounds), got {burn_in}"
        )
    window = errors[burn_in:]
    exposed = window <= exposure_radius

    streaks: List[int] = []
    for user in range(exposed.shape[1]):
        run = 0
        for flag in exposed[:, user]:
            if flag:
                run += 1
            elif run:
                streaks.append(run)
                run = 0
        if run:
            streaks.append(run)
    per_user = exposed.mean(axis=0)
    return {
        "exposed_fraction": float(exposed.mean()),
        "mean_exposed_streak": float(np.mean(streaks)) if streaks else 0.0,
        "fully_exposed_users": float(np.mean(per_user >= 0.8)),
    }
