"""Privacy quantification on top of the attack primitives.

The paper argues "most of existing systems are vulnerable in
protecting the privacy of mobile users" — this package turns attack
error distributions into privacy statements a system designer can act
on: the probability a user is pinned within a radius, the effective
anonymity area, and per-user exposure over a tracking session.
"""

from repro.analysis.privacy import (
    PrivacyReport,
    exposure_timeline,
    localization_privacy,
)

__all__ = ["PrivacyReport", "localization_privacy", "exposure_timeline"]
