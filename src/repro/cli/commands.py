"""Implementations of the ``repro`` CLI commands.

Each handler takes the parsed argparse namespace and returns a process
exit code. Output is plain text on stdout so the commands compose with
shell pipelines; ``--output FILE`` writes machine-readable artifacts.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

import numpy as np

from repro.geometry import RectangularField
from repro.network import (
    build_network,
    sample_sniffers_percentage,
)
from repro.traffic import MeasurementModel, simulate_flux
from repro.util.rng import as_generator


def _network_from(args):
    field = RectangularField(args.field, args.field)
    return build_network(
        field=field,
        node_count=args.nodes,
        radius=args.radius,
        deployment=args.deployment,
        rng=as_generator(args.seed),
    )


def _engine_from(args):
    """Build the parallel engine requested by ``--workers``/``--chunk-size``/
    ``--dtype`` (see docs/PERFORMANCE.md). Serial with default knobs."""
    from repro.engine import Engine

    return Engine(
        workers=args.workers, chunk_size=args.chunk_size, dtype=args.dtype
    )


def _place_users(net, count, gen):
    truth = net.field.sample_uniform(count, gen)
    stretches = gen.uniform(1.0, 3.0, count)
    return truth, stretches


class _ShutdownGuard:
    """SIGINT/SIGTERM → a drain event instead of a stack trace.

    The serving commands install one around their load phase: the first
    signal stops *submission* (the event is checked between requests),
    after which the normal drain-and-checkpoint shutdown path runs and
    the process exits 0 deterministically — in-flight work still gets
    its typed replies, checkpoints are still written, ``--metrics-out``
    is still flushed. A second signal restores the default handler's
    behavior (the escape hatch when a drain wedges).
    """

    def __init__(self):
        self.event = threading.Event()
        self._previous = {}

    @property
    def triggered(self) -> bool:
        return self.event.is_set()

    def install(self) -> "_ShutdownGuard":
        import signal

        def _handle(signum, frame):
            if self.event.is_set():
                # Second signal: give up gracefulness.
                signal.signal(signum, signal.SIG_DFL)
                signal.raise_signal(signum)
                return
            print(
                f"\nreceived {signal.Signals(signum).name}; draining "
                "(signal again to force quit)",
                file=sys.stderr,
            )
            self.event.set()

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous[signum] = signal.signal(signum, _handle)
            except (ValueError, OSError):
                pass  # not the main thread (tests): run unguarded
        return self

    def restore(self) -> None:
        import signal

        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass
        self._previous.clear()

    def __enter__(self) -> "_ShutdownGuard":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.restore()


def _load_fault_plan(args):
    """The ``--fault-plan`` JSON as a FaultPlan, or None without one.

    Raises :class:`~repro.errors.ConfigurationError` on an unreadable
    or invalid plan file — callers turn that into exit code 1.
    """
    path = getattr(args, "fault_plan", None)
    if not path:
        return None
    from repro.faults import FaultPlan

    return FaultPlan.load(path)


def cmd_simulate(args) -> int:
    gen = as_generator(args.seed)
    net = _network_from(args)
    truth, stretches = _place_users(net, args.users, gen)
    flux = simulate_flux(net, list(truth), list(stretches), rng=gen)

    print(
        f"network: {net.node_count} nodes, degree {net.average_degree():.1f}, "
        f"hop distance {net.average_hop_distance():.2f}"
    )
    for i, (pos, s) in enumerate(zip(truth, stretches)):
        print(f"user {i}: position ({pos[0]:.2f}, {pos[1]:.2f}) stretch {s:.2f}")
    print(
        f"flux: total {flux.sum():.0f}, max {flux.max():.0f} at node "
        f"{int(np.argmax(flux))}"
    )
    if args.output != "-":
        lines = ["node,x,y,flux"]
        for i in range(net.node_count):
            lines.append(
                f"{i},{net.positions[i, 0]:.4f},{net.positions[i, 1]:.4f},"
                f"{flux[i]:.4f}"
            )
        Path(args.output).write_text("\n".join(lines) + "\n")
        print(f"wrote {args.output}")
    return 0


def cmd_build_map(args) -> int:
    from repro.fpmap import build_fingerprint_map

    gen = as_generator(args.seed)
    net = _network_from(args)
    sniffers = sample_sniffers_percentage(net, args.percentage, rng=gen)
    fmap = build_fingerprint_map(
        net.field,
        net.positions[sniffers],
        resolution=args.resolution,
        d_floor=args.d_floor,
        sniffer_ids=sniffers,
        engine=_engine_from(args),
    )
    path = fmap.save(args.output)
    cols, rows = fmap.grid_shape()
    print(
        f"map: {fmap.cell_count} cells (~{cols}x{rows} at resolution "
        f"{fmap.resolution:g}), {fmap.sniffer_count} sniffers, deployment "
        f"{fmap.deployment[:12]}"
    )
    print(f"wrote {path}")
    return 0


def cmd_localize(args) -> int:
    from repro.errors import ConfigurationError
    from repro.fingerprint import NLSLocalizer

    gen = as_generator(args.seed)
    net = _network_from(args)
    truth, stretches = _place_users(net, args.users, gen)
    flux = simulate_flux(net, list(truth), list(stretches), rng=gen)

    fmap = None
    if args.map:
        from repro.fpmap import FingerprintMap

        try:
            fmap = FingerprintMap.load(args.map)
        except ConfigurationError as exc:
            print(f"cannot use map {args.map}: {exc}", file=sys.stderr)
            return 1
        # The map's stored sniffer set *is* the deployment it fingerprints;
        # --percentage would sample a different set and fail validation.
        sniffers = np.asarray(fmap.sniffer_ids, dtype=np.int64)
        if sniffers.size and sniffers.max() >= net.node_count:
            print(
                f"cannot use map {args.map}: sniffer ids exceed the "
                f"{net.node_count}-node network (different deployment args?)",
                file=sys.stderr,
            )
            return 1
    else:
        sniffers = sample_sniffers_percentage(net, args.percentage, rng=gen)
    obs = MeasurementModel(net, sniffers, smooth=True, rng=gen).observe(flux)

    localizer = NLSLocalizer(
        net.field,
        net.positions[sniffers],
        d_floor=fmap.d_floor if fmap is not None else 1.0,
    )
    try:
        result = localizer.localize(
            obs,
            user_count=args.users,
            candidate_count=args.candidates,
            restarts=args.restarts,
            rng=gen,
            fingerprint_map=fmap,
            seed_top_k=args.seed_top_k if args.map else 32,
            engine=_engine_from(args),
        )
    except ConfigurationError as exc:
        print(f"cannot use map {args.map}: {exc}", file=sys.stderr)
        return 1
    estimates = result.position_estimates()
    errors = result.errors_to(truth)
    tag = f" (map-seeded from {args.map})" if fmap is not None else ""
    print(
        f"sniffed {sniffers.size}/{net.node_count} nodes; "
        f"objective {result.best.objective:.2f}{tag}"
    )
    for i in range(args.users):
        print(
            f"user {i}: true ({truth[i, 0]:6.2f}, {truth[i, 1]:6.2f})  "
            f"estimated ({estimates[i, 0]:6.2f}, {estimates[i, 1]:6.2f})  "
            f"error {errors[i]:.2f}"
        )
    print(
        f"mean error {errors.mean():.2f} "
        f"({errors.mean() / net.field.diameter:.1%} of field diameter)"
    )
    return 0


def cmd_track(args) -> int:
    from repro.mobility import crossing_trajectories, random_waypoint_trajectory
    from repro.smc import SequentialMonteCarloTracker, TrackerConfig
    from repro.smc.association import assignment_errors
    from repro.traffic import FluxSimulator, synchronous_schedule

    gen = as_generator(args.seed)
    net = _network_from(args)
    if args.crossing:
        a, b = crossing_trajectories(net.field, args.rounds)
        trajectories = [a, b]
        user_count = 2
    else:
        user_count = args.users
        trajectories = [
            random_waypoint_trajectory(
                net.field,
                rounds=args.rounds,
                speed=float(gen.uniform(args.max_speed * 0.4, args.max_speed * 0.9)),
                rng=gen,
            )
            for _ in range(user_count)
        ]
    stretches = list(gen.uniform(1.0, 3.0, user_count))
    schedule = synchronous_schedule(
        [t.positions for t in trajectories], stretches
    )
    sim = FluxSimulator(net, rng=gen)
    sniffers = sample_sniffers_percentage(net, args.percentage, rng=gen)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    tracker = SequentialMonteCarloTracker(
        net.field,
        net.positions[sniffers],
        user_count=user_count,
        config=TrackerConfig(
            prediction_count=args.predictions,
            keep_count=args.keep,
            max_speed=args.max_speed,
        ),
        rng=gen,
        engine=_engine_from(args),
    )

    print(f"{'round':>5}  mean error")
    finals = None
    for k, (t, events) in enumerate(schedule.windows(1.0)):
        flux = sim.window_flux(events).total
        step = tracker.step(measure.observe(flux, time=t))
        truth = np.stack([tr.positions[k] for tr in trajectories])
        errors, _ = assignment_errors(step.estimates, truth)
        finals = errors
        print(f"{k:>5}  {errors.mean():10.2f}")
    print(f"final mean error {finals.mean():.2f}")
    return 0


def cmd_track_stream(args) -> int:
    from itertools import chain

    from repro.errors import ConfigurationError, StreamError
    from repro.smc import SequentialMonteCarloTracker, TrackerConfig
    from repro.stream import (
        JsonlTailSource,
        ReplaySource,
        SyntheticLiveSource,
        resume_or_create,
        run_stream,
    )
    from repro.util.persistence import load_network

    if args.input and args.jsonl:
        print("use either --input or --jsonl, not both", file=sys.stderr)
        return 2
    gen = as_generator(args.seed)
    net = load_network(args.network) if args.network else _network_from(args)
    truth = None

    fmap = None
    if args.map:
        from repro.fpmap import FingerprintMap

        try:
            fmap = FingerprintMap.load(args.map)
        except ConfigurationError as exc:
            print(f"cannot use map {args.map}: {exc}", file=sys.stderr)
            return 1

    if args.input:
        source = ReplaySource.from_npz(args.input)
        if not len(source):
            print(f"{args.input} holds no observations", file=sys.stderr)
            return 1
        sniffer_idx = source.observations[0].sniffers
    elif args.jsonl:
        tail = JsonlTailSource(args.jsonl, idle_timeout=args.idle_timeout)
        iterator = iter(tail)
        try:
            first = next(iterator)
        except StopIteration:
            print(f"{args.jsonl} yielded no observations", file=sys.stderr)
            return 1
        source = chain([first], iterator)
        sniffer_idx = first.sniffers
    else:
        if fmap is not None and int(fmap.sniffer_ids.max()) < net.node_count:
            # Synthesize on the map's own sniffer set: the map *is* the
            # deployment contract, --percentage only applies without one.
            sniffer_idx = np.asarray(fmap.sniffer_ids, dtype=np.int64)
        else:
            sniffer_idx = sample_sniffers_percentage(
                net, args.percentage, rng=gen
            )
        live = SyntheticLiveSource(
            net,
            sniffer_idx,
            user_count=args.users,
            rounds=args.rounds,
            max_speed=args.max_speed,
            rng=gen,
        )
        source = live
        truth = live.truth_at

    def make_session():
        from repro.stream import TrackingSession

        tracker = SequentialMonteCarloTracker(
            net.field,
            net.positions[np.asarray(sniffer_idx, dtype=np.int64)],
            user_count=args.users,
            config=TrackerConfig(
                prediction_count=args.predictions,
                keep_count=args.keep,
                max_speed=args.max_speed,
                reseed_after_misses=args.reseed_after_misses,
            ),
            rng=gen,
            fingerprint_map=fmap,
            engine=_engine_from(args),
        )
        return TrackingSession("cli", tracker, truth=truth)

    try:
        if args.checkpoint:
            session = resume_or_create(
                args.checkpoint, make_session, truth=truth, fingerprint_map=fmap
            )
            if session.windows_consumed:
                print(
                    f"resumed from {args.checkpoint} at window "
                    f"{session.windows_consumed}"
                )
        else:
            session = make_session()
    except ConfigurationError as exc:
        what = f"cannot use map {args.map}" if args.map else "bad configuration"
        print(f"{what}: {exc}", file=sys.stderr)
        return 1

    def on_step(sess, step):
        if step is None:
            reason = list(sess.metrics.windows_skipped)[-1]
            print(f"{sess.windows_consumed - 1:>6}  skipped ({reason})")
        else:
            print(
                f"{sess.windows_consumed - 1:>6}  t={step.time:<8g} "
                f"active={int(step.active.sum())}/{len(step.active)} "
                f"objective={step.objective:.3f}"
            )

    try:
        plan = _load_fault_plan(args)
    except ConfigurationError as exc:
        print(f"cannot load fault plan {args.fault_plan}: {exc}",
              file=sys.stderr)
        return 1
    try:
        from repro.faults import RetryPolicy, injected

        with injected(plan):
            run_stream(
                source,
                session,
                checkpoint_path=args.checkpoint,
                checkpoint_every=args.checkpoint_every,
                max_windows=args.max_windows,
                on_step=on_step,
                retry_policy=(
                    RetryPolicy(max_attempts=3, base_delay_s=0.005,
                                max_delay_s=0.1)
                    if plan is not None else None
                ),
            )
    except StreamError as exc:
        print(f"stream failed: {exc}", file=sys.stderr)
        return 1
    if plan is not None:
        print(f"fault plan: {plan.summary()}")

    estimates = session.estimates()
    print("final estimates:")
    for i, (x, y) in enumerate(estimates):
        print(f"  user {i}: ({x:6.2f}, {y:6.2f})")
    metrics_json = session.metrics.to_json()
    if args.metrics_out:
        Path(args.metrics_out).write_text(metrics_json + "\n")
        print(f"wrote metrics to {args.metrics_out}")
    else:
        print(metrics_json)
    return 0


def cmd_traces(args) -> int:
    from repro.traces import (
        generate_campus_aps,
        generate_syslog_records,
        parse_syslog_records,
        select_rectangular_region,
    )

    gen = as_generator(args.seed)
    aps = generate_campus_aps(count=args.aps, rng=gen)
    landmarks, region = select_rectangular_region(
        aps, target_count=args.landmarks
    )
    lines = generate_syslog_records(aps, user_count=args.users, rng=gen)
    parsed = parse_syslog_records(lines)

    print(
        f"{args.aps} APs generated; {len(landmarks)} landmarks in a "
        f"{region[2] - region[0]:.0f} x {region[3] - region[1]:.0f} region"
    )
    print(f"{len(lines)} syslog records across {len(parsed)} cards")
    counts = sorted(len(seq) for seq in parsed.values())
    print(
        f"associations per card: min {counts[0]}, median "
        f"{counts[len(counts) // 2]}, max {counts[-1]}"
    )
    if args.output != "-":
        Path(args.output).write_text("\n".join(lines) + "\n")
        print(f"wrote {args.output}")
    return 0


def cmd_experiment(args) -> int:
    from repro.experiments import PaperDefaults
    from repro.experiments import ablations
    from repro.experiments.reporting import build_experiment_plan

    defaults = PaperDefaults().scaled(args.scale)
    seed = args.seed if args.seed is not None else 20100621
    plan = dict(
        (name.replace("Fig ", "").lower(), runner)
        for name, runner in build_experiment_plan(defaults, seed)
    )
    reps = max(2, 12 // args.scale)
    plan.update(
        {
            "ablation-d-floor": lambda: ablations.run_ablation_d_floor(
                repetitions=reps, rng=seed
            ),
            "ablation-smoothing": lambda: ablations.run_ablation_smoothing(
                repetitions=reps, rng=seed
            ),
            "ablation-weighting": lambda: ablations.run_ablation_weighting(
                repetitions=reps, rng=seed
            ),
            "ablation-routing": lambda: ablations.run_ablation_routing(
                repetitions=reps, rng=seed
            ),
            "ablation-aggregation": lambda: ablations.run_ablation_aggregation(
                repetitions=reps, rng=seed
            ),
            "ablation-kernel": lambda: ablations.run_ablation_kernel(
                repetitions=reps, rng=seed
            ),
            "robustness-holes": lambda: ablations.run_robustness_holes(
                repetitions=reps, rng=seed
            ),
        }
    )
    runner = plan[args.figure]
    result = runner()
    print(result.render())
    return 0


def cmd_serve(args) -> int:
    import threading
    import time

    from repro.errors import ConfigurationError
    from repro.serve import (
        LocalizationService,
        LocalizeRequest,
        MetricsServer,
        TrackStepRequest,
    )

    gen = as_generator(args.seed)
    net = _network_from(args)

    fmap = None
    if args.map:
        from repro.fpmap import FingerprintMap

        try:
            fmap = FingerprintMap.load(args.map)
        except ConfigurationError as exc:
            print(f"cannot use map {args.map}: {exc}", file=sys.stderr)
            return 1
        sniffers = np.asarray(fmap.sniffer_ids, dtype=np.int64)
        if sniffers.size and sniffers.max() >= net.node_count:
            print(
                f"cannot use map {args.map}: sniffer ids exceed the "
                f"{net.node_count}-node network (different deployment args?)",
                file=sys.stderr,
            )
            return 1
    else:
        sniffers = sample_sniffers_percentage(net, args.percentage, rng=gen)

    try:
        service = LocalizationService(
            net.field,
            net.positions[sniffers],
            d_floor=fmap.d_floor if fmap is not None else 1.0,
            engine=_engine_from(args),
            fingerprint_map=fmap,
            map_resolution=args.map_resolution if fmap is None else None,
            max_batch=args.max_batch,
            max_wait_s=args.max_wait_ms / 1000.0,
            adaptive=not args.no_adaptive,
            target_p95_s=(
                args.target_p95_ms / 1000.0
                if args.target_p95_ms is not None else None
            ),
            fusion_min_depth=args.fusion_min_depth,
            queue_capacity=args.queue_capacity,
            admission_policy=args.policy,
        )
    except ConfigurationError as exc:
        print(f"cannot build service: {exc}", file=sys.stderr)
        return 1
    try:
        plan = _load_fault_plan(args)
    except ConfigurationError as exc:
        print(f"cannot load fault plan {args.fault_plan}: {exc}",
              file=sys.stderr)
        return 1
    deadline_s = (
        args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
    )

    # Pre-generate every client's workload on the main thread so the
    # client threads only submit and wait (the RNG is not shared).
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    localize_work = []  # (client, requests, truths)
    for c in range(args.clients):
        requests, truths = [], []
        for r in range(args.requests):
            truth, stretches = _place_users(net, args.users, gen)
            flux = simulate_flux(net, list(truth), list(stretches), rng=gen)
            requests.append(
                LocalizeRequest(
                    request_id=f"c{c}-r{r}",
                    client_id=f"client-{c}",
                    observation=measure.observe(flux),
                    user_count=args.users,
                    candidate_count=args.candidates,
                    restarts=args.restarts,
                    seed=int(gen.integers(2**31)),
                    deadline_s=deadline_s,
                )
            )
            truths.append(truth)
        localize_work.append((f"client-{c}", requests, truths))

    track_work = []  # (session_id, observations)
    for t in range(args.track_sessions):
        from repro.stream import SyntheticLiveSource

        live = SyntheticLiveSource(
            net,
            sniffers,
            user_count=args.users,
            rounds=args.requests,
            rng=gen,
        )
        session_id = f"track-{t}"
        service.open_session(session_id, args.users, rng=gen)
        track_work.append((session_id, list(live)))

    lock = threading.Lock()
    ok_replies, error_codes, errors = [], [], []
    guard = _ShutdownGuard()

    def run_localize(client_id, requests, truths):
        for request, truth in zip(requests, truths):
            if guard.triggered:
                return
            reply = service.submit(request).result()
            with lock:
                if reply.ok:
                    ok_replies.append(reply)
                    errors.append(reply.result.errors_to(truth).mean())
                else:
                    error_codes.append(reply.code)

    def run_track(session_id, observations):
        for r, obs in enumerate(observations):
            if guard.triggered:
                return
            reply = service.submit(
                TrackStepRequest(
                    request_id=f"{session_id}-r{r}",
                    client_id=session_id,
                    session_id=session_id,
                    observation=obs,
                    deadline_s=deadline_s,
                )
            ).result()
            with lock:
                if reply.ok:
                    ok_replies.append(reply)
                else:
                    error_codes.append(reply.code)

    endpoint = None
    if args.metrics_port is not None:
        endpoint = MetricsServer(service.metrics, port=args.metrics_port)
        print(f"metrics on http://127.0.0.1:{endpoint.start()}/metrics")

    threads = [
        threading.Thread(target=run_localize, args=work, name=work[0])
        for work in localize_work
    ] + [
        threading.Thread(target=run_track, args=work, name=work[0])
        for work in track_work
    ]
    map_tag = " (map-seeded)" if service.fingerprint_map is not None else ""
    print(
        f"serving {len(localize_work)} localize clients x {args.requests} "
        f"requests + {len(track_work)} tracking sessions on "
        f"{sniffers.size}/{net.node_count} sniffed nodes{map_tag}; "
        f"max_batch={args.max_batch} max_wait={args.max_wait_ms:g}ms "
        f"batching={'fixed' if args.no_adaptive else 'adaptive'} "
        f"policy={args.policy}"
    )
    from repro.faults import injected

    with injected(plan), guard:
        service.start()
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        summary = service.stop(checkpoint_dir=args.checkpoint_dir)
    if guard.triggered:
        print("drained after shutdown signal")
    if endpoint is not None:
        endpoint.stop()
    if plan is not None:
        print(f"fault plan: {plan.summary()}")

    total = len(ok_replies) + len(error_codes)
    rps = total / elapsed if elapsed > 0 else float("nan")
    print(
        f"{total} replies in {elapsed:.2f}s ({rps:.0f} req/s): "
        f"{len(ok_replies)} ok, {len(error_codes)} errors"
    )
    if error_codes:
        from collections import Counter

        for code, count in sorted(Counter(error_codes).items()):
            print(f"  {code}: {count}")
    if errors:
        print(f"mean localization error {np.mean(errors):.2f}")
    for session_id, path in sorted(summary["checkpoints"].items()):
        print(f"checkpointed {session_id} -> {path}")
    metrics_json = service.metrics.to_json()
    if args.metrics_out:
        Path(args.metrics_out).write_text(metrics_json + "\n")
        print(f"wrote metrics to {args.metrics_out}")
    else:
        print(metrics_json)
    return 0


def cmd_fleet(args) -> int:
    import threading
    import time

    from repro.errors import ConfigurationError
    from repro.fleet import ServeFleet
    from repro.serve import LocalizeRequest, MetricsServer, TrackStepRequest

    gen = as_generator(args.seed)
    net = _network_from(args)

    fmap = None
    if args.map:
        from repro.fpmap import FingerprintMap

        try:
            fmap = FingerprintMap.load(args.map)
        except ConfigurationError as exc:
            print(f"cannot use map {args.map}: {exc}", file=sys.stderr)
            return 1
        sniffers = np.asarray(fmap.sniffer_ids, dtype=np.int64)
        if sniffers.size and sniffers.max() >= net.node_count:
            print(
                f"cannot use map {args.map}: sniffer ids exceed the "
                f"{net.node_count}-node network (different deployment args?)",
                file=sys.stderr,
            )
            return 1
    else:
        sniffers = sample_sniffers_percentage(net, args.percentage, rng=gen)

    try:
        fleet = ServeFleet(
            net.field,
            net.positions[sniffers],
            d_floor=fmap.d_floor if fmap is not None else 1.0,
            workers=args.fleet_workers,
            fingerprint_map=fmap,
            map_resolution=args.map_resolution if fmap is None else None,
            map_mode=args.map_mode,
            cluster_cells=args.cluster_cells,
            checkpoint_dir=args.checkpoint_dir,
            max_batch=args.max_batch,
            max_wait_s=args.max_wait_ms / 1000.0,
            adaptive=not args.no_adaptive,
            target_p95_s=(
                args.target_p95_ms / 1000.0
                if args.target_p95_ms is not None else None
            ),
            fusion_min_depth=args.fusion_min_depth,
            queue_capacity=args.queue_capacity,
            admission_policy=args.policy,
            engine_workers=args.workers,
            engine_chunk_size=args.chunk_size,
        )
    except ConfigurationError as exc:
        print(f"cannot build fleet: {exc}", file=sys.stderr)
        return 1
    try:
        plan = _load_fault_plan(args)
    except ConfigurationError as exc:
        print(f"cannot load fault plan {args.fault_plan}: {exc}",
              file=sys.stderr)
        return 1

    # Pre-generate every client's workload on the main thread (the RNG
    # is not shared with the submission threads).
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    localize_work = []  # (client, requests, truths)
    for c in range(args.clients):
        requests, truths = [], []
        for r in range(args.requests):
            truth, stretches = _place_users(net, args.users, gen)
            flux = simulate_flux(net, list(truth), list(stretches), rng=gen)
            requests.append(
                LocalizeRequest(
                    request_id=f"c{c}-r{r}",
                    client_id=f"client-{c}",
                    observation=measure.observe(flux),
                    user_count=args.users,
                    candidate_count=args.candidates,
                    restarts=args.restarts,
                    seed=int(gen.integers(2**31)),
                )
            )
            truths.append(truth)
        localize_work.append((f"client-{c}", requests, truths))

    track_work = []  # (session_id, seed, observations)
    for t in range(args.track_sessions):
        from repro.stream import SyntheticLiveSource

        live = SyntheticLiveSource(
            net,
            sniffers,
            user_count=args.users,
            rounds=args.requests,
            rng=gen,
        )
        track_work.append((f"track-{t}", int(gen.integers(2**31)), list(live)))

    lock = threading.Lock()
    ok_replies, error_codes, errors = [], [], []
    guard = _ShutdownGuard()

    def run_localize(client_id, requests, truths):
        for request, truth in zip(requests, truths):
            if guard.triggered:
                return
            reply = fleet.submit(request).result()
            with lock:
                if reply.ok:
                    ok_replies.append(reply)
                    errors.append(reply.result.errors_to(truth).mean())
                else:
                    error_codes.append(reply.code)

    def run_track(session_id, seed, observations):
        for r, obs in enumerate(observations):
            if guard.triggered:
                return
            reply = fleet.submit(
                TrackStepRequest(
                    request_id=f"{session_id}-r{r}",
                    client_id=session_id,
                    session_id=session_id,
                    observation=obs,
                )
            ).result()
            with lock:
                if reply.ok:
                    ok_replies.append(reply)
                else:
                    error_codes.append(reply.code)

    threads = [
        threading.Thread(target=run_localize, args=work, name=work[0])
        for work in localize_work
    ] + [
        threading.Thread(target=run_track, args=work, name=work[0])
        for work in track_work
    ]
    map_tag = (
        f" ({args.map_mode} map)" if fleet.fingerprint_map is not None else ""
    )
    print(
        f"fleet of {args.fleet_workers} workers serving "
        f"{len(localize_work)} localize clients x {args.requests} requests "
        f"+ {len(track_work)} tracking sessions on "
        f"{sniffers.size}/{net.node_count} sniffed nodes{map_tag}; "
        f"max_batch={args.max_batch} policy={args.policy}"
    )
    from repro.faults import injected

    # Arm only across start(): forked workers inherit the armed plan,
    # so worker-side sites (fleet.worker.exit) fire in the children.
    # Disarm before driving traffic — replacements forked at failover
    # must start clean, or each one re-fires the fault and dies again
    # until the redelivery limit gives up.
    with injected(plan):
        fleet.start()
    try:
        with guard:
            endpoint = None
            if args.metrics_port is not None:
                endpoint = MetricsServer(fleet=fleet, port=args.metrics_port)
                print(
                    f"metrics on http://127.0.0.1:{endpoint.start()}/metrics"
                )
            for session_id, seed, _ in track_work:
                fleet.open_session(session_id, args.users, seed=seed)
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            snapshot = fleet.fleet_snapshot()
            if endpoint is not None:
                endpoint.stop()
    finally:
        fleet.stop()
    if guard.triggered:
        print("drained after shutdown signal")
    if plan is not None:
        print(f"fault plan: {plan.summary()}")

    total = len(ok_replies) + len(error_codes)
    rps = total / elapsed if elapsed > 0 else float("nan")
    router = snapshot["router"]
    print(
        f"{total} replies in {elapsed:.2f}s ({rps:.0f} req/s aggregate): "
        f"{len(ok_replies)} ok, {len(error_codes)} errors; "
        f"{router['worker_deaths']} worker deaths, "
        f"{router['redeliveries']} redeliveries, "
        f"{router['migrations']} migrations"
    )
    if error_codes:
        from collections import Counter

        for code, count in sorted(Counter(error_codes).items()):
            print(f"  {code}: {count}")
    if errors:
        print(f"mean localization error {np.mean(errors):.2f}")
    import json

    from repro.serve.metrics import _nan_safe_deep

    metrics_json = json.dumps(
        _nan_safe_deep(snapshot), indent=2, sort_keys=True
    )
    if args.metrics_out:
        Path(args.metrics_out).write_text(metrics_json + "\n")
        print(f"wrote fleet metrics to {args.metrics_out}")
    else:
        print(metrics_json)
    return 0


#: Stage order of the printed latency-decomposition table.
_STAGE_ORDER = (
    "gateway_in", "admission", "fuse", "solve", "reply", "gateway_out",
)


def _print_stage_table(stages: dict) -> None:
    known = [s for s in _STAGE_ORDER if s in stages]
    known += [s for s in sorted(stages) if s not in _STAGE_ORDER]
    if not known:
        return
    print(f"{'stage':<12} {'p50 ms':>9} {'p95 ms':>9} {'count':>8}")
    for stage in known:
        row = stages[stage]
        p50 = row.get("p50_s")
        p95 = row.get("p95_s")
        print(
            f"{stage:<12} "
            f"{(p50 * 1000 if p50 is not None else float('nan')):>9.3f} "
            f"{(p95 * 1000 if p95 is not None else float('nan')):>9.3f} "
            f"{row.get('count', 0):>8}"
        )


def _drive_gateway(
    args, host, port, localize_work, track_work, deadline_s, guard=None
) -> int:
    """Drive the pre-generated load through a gateway over real sockets."""
    import asyncio
    import time
    from collections import Counter

    from repro.errors import GatewayError
    from repro.gateway import GatewayClient

    counts = {"ok": 0, "dead": 0}
    error_codes: Counter = Counter()

    async def localize_client(c, obs_list):
        client = GatewayClient(host, port, f"client-{c}")
        try:
            await client.connect()
            for obs, seed in obs_list:
                if guard is not None and guard.triggered:
                    break
                reply = await client.localize(
                    obs,
                    user_count=args.users,
                    candidate_count=args.candidates,
                    restarts=args.restarts,
                    seed=seed,
                    deadline_s=deadline_s,
                )
                if reply.get("ok"):
                    counts["ok"] += 1
                else:
                    error_codes[reply.get("code", "unknown")] += 1
        except (GatewayError, asyncio.TimeoutError, OSError):
            counts["dead"] += 1
        finally:
            await client.close()

    async def track_client(session_id, seed, windows):
        client = GatewayClient(host, port, session_id)
        try:
            await client.connect()
            opened = await client.open_session(
                session_id, args.users, seed=seed
            )
            if not opened.get("session_id"):
                error_codes[opened.get("code", "unknown")] += 1
                return
            for obs in windows:
                if guard is not None and guard.triggered:
                    break
                reply = await client.track_step(session_id, obs)
                if reply.get("ok"):
                    counts["ok"] += 1
                else:
                    error_codes[reply.get("code", "unknown")] += 1
        except (GatewayError, asyncio.TimeoutError, OSError):
            counts["dead"] += 1
        finally:
            await client.close()

    async def main():
        start = time.perf_counter()
        jobs = [
            localize_client(c, obs_list)
            for c, obs_list in enumerate(localize_work)
        ] + [
            track_client(session_id, seed, windows)
            for session_id, seed, windows in track_work
        ]
        await asyncio.gather(*jobs)
        elapsed = time.perf_counter() - start
        stages = {}
        try:
            async with GatewayClient(host, port, "probe") as probe:
                dump = await probe.trace_dump()
                stages = dump.get("stages", {})
        except (GatewayError, OSError):
            pass
        return elapsed, stages

    try:
        elapsed, stages = asyncio.run(main())
    except ConnectionRefusedError as exc:
        print(f"cannot reach gateway {host}:{port}: {exc}", file=sys.stderr)
        return 1
    total = counts["ok"] + sum(error_codes.values())
    rps = total / elapsed if elapsed > 0 else float("nan")
    print(
        f"{total} replies in {elapsed:.2f}s ({rps:.0f} req/s over the "
        f"wire): {counts['ok']} ok, {sum(error_codes.values())} errors, "
        f"{counts['dead']} dead connections"
    )
    for code, count in sorted(error_codes.items()):
        print(f"  {code}: {count}")
    _print_stage_table(stages)
    return 0


def cmd_gateway(args) -> int:
    import time

    from repro.errors import ConfigurationError
    from repro.faults import injected
    from repro.gateway import GatewayGovernor, GatewayServer
    from repro.serve import LocalizationService, MetricsServer

    gen = as_generator(args.seed)
    net = _network_from(args)
    sniffers = sample_sniffers_percentage(net, args.percentage, rng=gen)
    measure = MeasurementModel(net, sniffers, smooth=True, rng=gen)
    deadline_s = (
        args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
    )

    # Pre-generate the synthetic load. Both modes use it: the serve
    # mode drives its own gateway, --connect drives a remote one (built
    # from the same network args, so the observations match the remote
    # deployment when the seeds match).
    localize_work = []
    for c in range(args.clients):
        obs_list = []
        for _ in range(args.requests):
            truth, stretches = _place_users(net, args.users, gen)
            flux = simulate_flux(net, list(truth), list(stretches), rng=gen)
            obs_list.append(
                (measure.observe(flux), int(gen.integers(2**31)))
            )
        localize_work.append(obs_list)
    track_work = []
    for t in range(args.track_sessions):
        from repro.stream import SyntheticLiveSource

        live = SyntheticLiveSource(
            net, sniffers, user_count=args.users,
            rounds=args.requests, rng=gen,
        )
        track_work.append(
            (f"track-{t}", int(gen.integers(2**31)), list(live))
        )

    if args.connect:
        host, _, port_text = args.connect.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            print(
                f"--connect needs HOST:PORT, got {args.connect!r}",
                file=sys.stderr,
            )
            return 1
        with _ShutdownGuard() as guard:
            return _drive_gateway(
                args, host or "127.0.0.1", port,
                localize_work, track_work, deadline_s, guard=guard,
            )

    try:
        service = LocalizationService(
            net.field,
            net.positions[sniffers],
            engine=_engine_from(args),
            map_resolution=args.map_resolution,
            max_batch=args.max_batch,
            max_wait_s=args.max_wait_ms / 1000.0,
            target_p95_s=(
                args.target_p95_ms / 1000.0
                if args.target_p95_ms is not None else None
            ),
            fusion_min_depth=args.fusion_min_depth,
            queue_capacity=args.queue_capacity,
            admission_policy=args.policy,
        )
    except ConfigurationError as exc:
        print(f"cannot build service: {exc}", file=sys.stderr)
        return 1
    try:
        plan = _load_fault_plan(args)
    except ConfigurationError as exc:
        print(f"cannot load fault plan {args.fault_plan}: {exc}",
              file=sys.stderr)
        return 1
    governor = None
    if args.slo_p95_ms is not None:
        governor = GatewayGovernor(
            service,
            slo_p95_s=args.slo_p95_ms / 1000.0,
            interval_s=args.governor_interval_ms / 1000.0,
        )
    service.start()
    gateway = GatewayServer(
        service, host="127.0.0.1", port=args.port, governor=governor
    )
    guard = _ShutdownGuard()
    code = 0
    endpoint = None
    try:
        port = gateway.start()
        print(
            f"gateway on 127.0.0.1:{port} fronting "
            f"{sniffers.size}/{net.node_count} sniffed nodes"
            + (f"; governor SLO p95 {args.slo_p95_ms:g}ms"
               if governor is not None else "")
        )
        if args.metrics_port is not None:
            endpoint = MetricsServer(service.metrics, port=args.metrics_port)
            print(f"metrics on http://127.0.0.1:{endpoint.start()}/metrics")
        with injected(plan), guard:
            if args.clients > 0 or args.track_sessions > 0:
                code = _drive_gateway(
                    args, "127.0.0.1", port,
                    localize_work, track_work, deadline_s, guard=guard,
                )
            else:
                stop_at = (
                    None if args.duration is None
                    else time.monotonic() + args.duration
                )
                while not guard.triggered:
                    if stop_at is not None and time.monotonic() >= stop_at:
                        break
                    guard.event.wait(0.2)
    finally:
        gateway.stop()
        service.stop(checkpoint_dir=args.checkpoint_dir)
        if endpoint is not None:
            endpoint.stop()
    if guard.triggered:
        print("drained after shutdown signal")
    if plan is not None:
        print(f"fault plan: {plan.summary()}")
    snap = gateway.snapshot()
    print(
        f"gateway: {snap['connections_opened']} connections, "
        f"{snap['frames_received']} frames in / {snap['frames_sent']} out, "
        f"{snap['replies_dropped']} replies dropped, "
        f"{snap['protocol_errors']} protocol errors"
    )
    if governor is not None:
        gov = governor.snapshot()
        print(
            f"governor: {gov['ticks']} ticks, "
            f"{gov['adjustments_total']} adjustments; knobs {gov['knobs']}"
        )
    metrics_json = service.metrics.to_json()
    if args.metrics_out:
        Path(args.metrics_out).write_text(metrics_json + "\n")
        print(f"wrote metrics to {args.metrics_out}")
    return code


def cmd_defend(args) -> int:
    from repro.countermeasures import defense_tradeoff

    gen = as_generator(args.seed)
    net = _network_from(args)
    points = defense_tradeoff(
        net, user_count=args.users, repetitions=args.repetitions, rng=gen
    )
    print(f"{'defense':<12} {'param':>6} {'attack err':>10} {'overhead':>9}")
    for p in points:
        print(
            f"{p.defense:<12} {p.parameter:>6.2f} {p.attack_error:>10.2f} "
            f"{p.overhead:>8.0%}"
        )
    return 0
