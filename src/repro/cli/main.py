"""Argument parsing and dispatch for the ``repro`` CLI."""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.cli import commands


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Flux-fingerprinting attack toolkit (ICDCS 2010 reproduction): "
            "simulate sensor-network traffic, localize and track mobile "
            "users from passively sniffed flux, evaluate defenses."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="global RNG seed"
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "simulate", help="deploy a network and dump a multi-user flux map"
    )
    _network_args(p)
    p.add_argument("--users", type=int, default=2, help="number of mobile users")
    p.add_argument(
        "--output", default="-", help="write flux CSV here ('-' = stdout summary)"
    )
    p.set_defaults(handler=commands.cmd_simulate)

    p = sub.add_parser(
        "localize", help="run the sparse-sampling NLS localization attack"
    )
    _network_args(p)
    _engine_args(p)
    p.add_argument("--users", type=int, default=2)
    p.add_argument(
        "--percentage", type=float, default=10.0, help="%% of nodes sniffed"
    )
    p.add_argument("--candidates", type=int, default=3000)
    p.add_argument("--restarts", type=int, default=3)
    p.add_argument(
        "--map",
        default=None,
        help="seed the search from this fingerprint map (repro build-map "
        "output; its stored sniffer set replaces --percentage)",
    )
    p.add_argument(
        "--seed-top-k",
        type=int,
        default=32,
        help="map matches seeded per user (with --map)",
    )
    p.set_defaults(handler=commands.cmd_localize)

    p = sub.add_parser(
        "build-map",
        help="precompute the flux-fingerprint map of a deployment (offline "
        "survey stage; reuse it with 'localize --map' / 'track-stream --map')",
    )
    _network_args(p)
    _engine_args(p)
    p.add_argument(
        "--percentage", type=float, default=10.0, help="%% of nodes sniffed"
    )
    p.add_argument(
        "--resolution", type=float, default=1.0, help="grid cell spacing"
    )
    p.add_argument(
        "--d-floor", type=float, default=1.0, help="flux-model near-sink clamp"
    )
    p.add_argument("--output", required=True, help="write the .npz map here")
    p.set_defaults(handler=commands.cmd_build_map)

    p = sub.add_parser("track", help="run the SMC tracker over moving users")
    _network_args(p)
    _engine_args(p)
    p.add_argument("--users", type=int, default=2)
    p.add_argument("--rounds", type=int, default=10)
    p.add_argument("--percentage", type=float, default=10.0)
    p.add_argument("--predictions", type=int, default=500, help="SMC N")
    p.add_argument("--keep", type=int, default=10, help="SMC M")
    p.add_argument("--max-speed", type=float, default=5.0)
    p.add_argument(
        "--crossing",
        action="store_true",
        help="use the crossing-trajectories stress case (forces 2 users)",
    )
    p.set_defaults(handler=commands.cmd_track)

    p = sub.add_parser(
        "track-stream",
        help="run the streaming tracking service (replay / tail / live)",
    )
    _network_args(p)
    _engine_args(p)
    p.add_argument(
        "--input", default=None, help="replay an .npz observation log"
    )
    p.add_argument(
        "--jsonl", default=None, help="tail a JSONL observation feed"
    )
    p.add_argument(
        "--idle-timeout",
        type=float,
        default=0.0,
        help="stop tailing after this many idle seconds (JSONL mode)",
    )
    p.add_argument(
        "--network",
        default=None,
        help="load the deployment from a save_network .npz "
        "(default: rebuild from the network args + seed)",
    )
    p.add_argument("--users", type=int, default=2)
    p.add_argument(
        "--rounds",
        type=int,
        default=20,
        help="windows to synthesize when neither --input nor --jsonl is given",
    )
    p.add_argument("--percentage", type=float, default=10.0)
    p.add_argument("--predictions", type=int, default=500, help="SMC N")
    p.add_argument("--keep", type=int, default=10, help="SMC M")
    p.add_argument("--max-speed", type=float, default=5.0)
    p.add_argument(
        "--checkpoint",
        default=None,
        help="checkpoint file; resumes from it when it already exists",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="checkpoint cadence in windows (0 = only at exit)",
    )
    p.add_argument(
        "--max-windows",
        type=int,
        default=None,
        help="stop after this many windows this run (kill-switch)",
    )
    p.add_argument(
        "--metrics-out", default=None, help="write final metrics JSON here"
    )
    p.add_argument(
        "--map",
        default=None,
        help="attach this fingerprint map for degenerate-sample recovery",
    )
    p.add_argument(
        "--reseed-after-misses",
        type=int,
        default=0,
        help="map-reseed a user after this many consecutive missed "
        "flux-bearing windows (0 = only on weight underflow; needs --map)",
    )
    p.add_argument(
        "--fault-plan",
        default=None,
        help="arm this fault-plan JSON (repro.faults) for the run: "
        "stalled/duplicated/torn windows, torn checkpoint writes",
    )
    p.set_defaults(handler=commands.cmd_track_stream)

    p = sub.add_parser(
        "traces", help="generate / inspect synthetic campus traces"
    )
    p.add_argument("--users", type=int, default=20)
    p.add_argument("--aps", type=int, default=500)
    p.add_argument("--landmarks", type=int, default=50)
    p.add_argument(
        "--output", default="-", help="write syslog lines here ('-' = summary)"
    )
    p.set_defaults(handler=commands.cmd_traces)

    p = sub.add_parser(
        "experiment", help="run one paper-figure experiment runner"
    )
    p.add_argument(
        "figure",
        choices=[
            "3a", "3b", "4", "5", "6a", "6b", "7", "8a", "8b", "9",
            "10a", "10b",
            "ablation-d-floor", "ablation-smoothing", "ablation-weighting",
            "ablation-routing", "ablation-aggregation", "ablation-kernel",
            "robustness-holes",
        ],
        help="paper figure id or ablation/robustness study id",
    )
    p.add_argument(
        "--scale",
        type=int,
        default=4,
        help="budget divisor vs paper scale (1 = full paper budgets)",
    )
    p.set_defaults(handler=commands.cmd_experiment)

    p = sub.add_parser(
        "serve",
        help="run the micro-batched localization service under a "
        "synthetic multi-client load",
    )
    _network_args(p)
    _engine_args(p)
    p.add_argument(
        "--percentage", type=float, default=20.0, help="%% of nodes sniffed"
    )
    p.add_argument(
        "--clients", type=int, default=8, help="concurrent logical clients"
    )
    p.add_argument(
        "--requests", type=int, default=10, help="requests per client"
    )
    p.add_argument(
        "--users", type=int, default=1, help="users fitted per request"
    )
    p.add_argument("--candidates", type=int, default=128)
    p.add_argument("--restarts", type=int, default=1)
    p.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="micro-batch size cap (1 = per-request dispatch)",
    )
    p.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="micro-batch linger ceiling before a partial batch is drained",
    )
    p.add_argument(
        "--no-adaptive",
        action="store_true",
        help="disable the adaptive batch controller (fixed --max-wait-ms "
        "linger window instead of arrival-rate sizing)",
    )
    p.add_argument(
        "--target-p95-ms",
        type=float,
        default=None,
        help="SLO hint for the adaptive controller: cap the linger so the "
        "oldest queued request never ages past half this budget",
    )
    p.add_argument(
        "--fusion-min-depth",
        type=int,
        default=2,
        help="queue depth below which batch fusion is bypassed and "
        "requests dispatch singly (adaptive mode)",
    )
    p.add_argument(
        "--queue-capacity", type=int, default=512, help="admission queue bound"
    )
    p.add_argument(
        "--policy",
        choices=["reject", "block"],
        default="reject",
        help="admission policy when the queue is full",
    )
    p.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline (expired work gets typed error replies)",
    )
    p.add_argument(
        "--map",
        default=None,
        help="seed candidate pools from this fingerprint map "
        "(repro build-map output; its sniffer set replaces --percentage)",
    )
    p.add_argument(
        "--map-resolution",
        type=float,
        default=None,
        help="build the deployment's map at this resolution before serving",
    )
    p.add_argument(
        "--track-sessions",
        type=int,
        default=0,
        help="also open this many tracking sessions and interleave "
        "track-step requests",
    )
    p.add_argument(
        "--checkpoint-dir",
        default=None,
        help="drain-and-checkpoint tracking sessions here on shutdown",
    )
    p.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="expose GET /metrics on this port while serving (0 = ephemeral)",
    )
    p.add_argument(
        "--metrics-out", default=None, help="write the final metrics JSON here"
    )
    p.add_argument(
        "--fault-plan",
        default=None,
        help="arm this fault-plan JSON (repro.faults) for the load run: "
        "batch-fuse/kernel faults are retried, backends degrade to serial",
    )
    p.set_defaults(handler=commands.cmd_serve)

    p = sub.add_parser(
        "fleet",
        help="run the sharded multi-process serving fleet under a "
        "synthetic multi-client load",
    )
    _network_args(p)
    _engine_args(p)
    p.add_argument(
        "--percentage", type=float, default=20.0, help="%% of nodes sniffed"
    )
    p.add_argument(
        "--fleet-workers",
        type=int,
        default=2,
        help="worker processes (each its own scheduler + engine)",
    )
    p.add_argument(
        "--clients", type=int, default=8, help="concurrent logical clients"
    )
    p.add_argument(
        "--requests", type=int, default=10, help="requests per client"
    )
    p.add_argument(
        "--users", type=int, default=1, help="users fitted per request"
    )
    p.add_argument("--candidates", type=int, default=128)
    p.add_argument("--restarts", type=int, default=1)
    p.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="per-worker micro-batch size cap",
    )
    p.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="per-worker micro-batch linger ceiling",
    )
    p.add_argument(
        "--no-adaptive",
        action="store_true",
        help="disable each worker's adaptive batch controller (fixed "
        "--max-wait-ms linger window instead of arrival-rate sizing)",
    )
    p.add_argument(
        "--target-p95-ms",
        type=float,
        default=None,
        help="per-worker SLO hint: cap the linger so the oldest queued "
        "request never ages past half this budget",
    )
    p.add_argument(
        "--fusion-min-depth",
        type=int,
        default=2,
        help="per-worker queue depth below which batch fusion is bypassed",
    )
    p.add_argument(
        "--queue-capacity",
        type=int,
        default=1024,
        help="per-worker admission queue bound",
    )
    p.add_argument(
        "--policy",
        choices=["reject", "block"],
        default="reject",
        help="admission policy when a worker's queue is full",
    )
    p.add_argument(
        "--map",
        default=None,
        help="seed candidate pools from this fingerprint map "
        "(repro build-map output; its sniffer set replaces --percentage)",
    )
    p.add_argument(
        "--map-resolution",
        type=float,
        default=None,
        help="build the deployment's map at this resolution before serving",
    )
    p.add_argument(
        "--map-mode",
        choices=["full", "sharded"],
        default="full",
        help="full: every worker shares the whole map (bitwise parity); "
        "sharded: each worker loads only its spatial cluster shard",
    )
    p.add_argument(
        "--cluster-cells",
        type=int,
        default=4,
        help="grid cells per spatial cluster side (sharded mode)",
    )
    p.add_argument(
        "--track-sessions",
        type=int,
        default=0,
        help="open this many tracking sessions (consistent-hash placed) "
        "and interleave track-step requests",
    )
    p.add_argument(
        "--checkpoint-dir",
        default=None,
        help="session checkpoint directory (failover + migration state; "
        "default: private temp dir)",
    )
    p.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="expose the fleet snapshot on GET /metrics "
        "(/metrics?worker=<id> for one worker; 0 = ephemeral port)",
    )
    p.add_argument(
        "--metrics-out",
        default=None,
        help="write the final fleet snapshot JSON here",
    )
    p.add_argument(
        "--fault-plan",
        default=None,
        help="arm this fault-plan JSON before forking workers: "
        "fleet.worker.exit kills workers mid-load (failover drill)",
    )
    p.set_defaults(handler=commands.cmd_fleet)

    p = sub.add_parser(
        "gateway",
        help="run the asyncio TCP gateway in front of a localization "
        "service (or drive a remote one with --connect)",
    )
    _network_args(p)
    _engine_args(p)
    p.add_argument(
        "--percentage", type=float, default=20.0, help="%% of nodes sniffed"
    )
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="gateway TCP port (0 = ephemeral; the bound port is printed "
        "and reported in the gateway snapshot)",
    )
    p.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="client mode: drive the synthetic load against a remote "
        "gateway instead of serving one",
    )
    p.add_argument(
        "--clients",
        type=int,
        default=8,
        help="concurrent gateway connections driving localize traffic "
        "(0 with --track-sessions 0 = serve idle until --duration/signal)",
    )
    p.add_argument(
        "--requests", type=int, default=10, help="requests per connection"
    )
    p.add_argument(
        "--users", type=int, default=1, help="users fitted per request"
    )
    p.add_argument("--candidates", type=int, default=128)
    p.add_argument("--restarts", type=int, default=1)
    p.add_argument(
        "--track-sessions",
        type=int,
        default=0,
        help="also stream this many tracking sessions through the gateway",
    )
    p.add_argument(
        "--duration",
        type=float,
        default=None,
        help="idle-serve mode: stop after this many seconds "
        "(default: wait for SIGINT/SIGTERM)",
    )
    p.add_argument(
        "--slo-p95-ms",
        type=float,
        default=None,
        help="enable the closed-loop governor defending this reply-p95 "
        "SLO (auto-tunes linger target, fusion depth, admission capacity)",
    )
    p.add_argument(
        "--governor-interval-ms",
        type=float,
        default=500.0,
        help="governor control-loop tick period",
    )
    p.add_argument("--max-batch", type=int, default=32)
    p.add_argument("--max-wait-ms", type=float, default=2.0)
    p.add_argument(
        "--target-p95-ms",
        type=float,
        default=None,
        help="initial adaptive-controller SLO hint (the governor moves it)",
    )
    p.add_argument("--fusion-min-depth", type=int, default=2)
    p.add_argument(
        "--queue-capacity", type=int, default=512, help="admission queue bound"
    )
    p.add_argument(
        "--policy", choices=["reject", "block"], default="reject"
    )
    p.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline carried in the request frames",
    )
    p.add_argument(
        "--map-resolution",
        type=float,
        default=None,
        help="build the deployment's map at this resolution before serving",
    )
    p.add_argument(
        "--checkpoint-dir",
        default=None,
        help="drain-and-checkpoint tracking sessions here on shutdown",
    )
    p.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="expose GET /metrics and GET /trace on this port "
        "(0 = ephemeral)",
    )
    p.add_argument(
        "--metrics-out", default=None, help="write the final metrics JSON here"
    )
    p.add_argument(
        "--fault-plan",
        default=None,
        help="arm this fault-plan JSON (gateway.client.slow / "
        "gateway.conn.half_open / gateway.frame.torn chaos sites)",
    )
    p.set_defaults(handler=commands.cmd_gateway)

    p = sub.add_parser(
        "defend", help="evaluate padding / dummy-sink countermeasures"
    )
    _network_args(p)
    p.add_argument("--users", type=int, default=2)
    p.add_argument("--repetitions", type=int, default=3)
    p.set_defaults(handler=commands.cmd_defend)

    return parser


def _engine_args(p: argparse.ArgumentParser) -> None:
    group = p.add_argument_group(
        "engine", "parallel kernel engine (see docs/PERFORMANCE.md)"
    )
    group.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker threads for kernel evaluation and NLS solving "
        "(0 = serial; float64 results are identical either way)",
    )
    group.add_argument(
        "--chunk-size",
        type=int,
        default=4096,
        help="candidate sinks per kernel-evaluation chunk (bounds the "
        "evaluator's working set)",
    )
    group.add_argument(
        "--dtype",
        choices=["float64", "float32"],
        default="float64",
        help="kernel evaluation precision (float32 halves memory "
        "traffic; the theta solve stays float64)",
    )


def _network_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--nodes", type=int, default=900, help="sensor count")
    p.add_argument("--field", type=float, default=30.0, help="field side length")
    p.add_argument("--radius", type=float, default=2.4, help="radio radius")
    p.add_argument(
        "--deployment",
        choices=["perturbed_grid", "uniform_random"],
        default="perturbed_grid",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse already printed its message; normalize to an explicit
        # return code: 2 for usage errors (e.g. an unknown subcommand),
        # 0 for --help / --version.
        code = exc.code
        if code is None:
            return 0
        return code if isinstance(code, int) else 2
    return int(args.handler(args))
