"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``    deploy a network, place users, dump the flux map
``localize``    run the sparse-sampling NLS attack on fresh flux
``track``       run the SMC tracker over a synchronous scenario
``traces``      generate / inspect synthetic campus traces
``experiment``  run one paper-figure experiment and print its table
``defend``      evaluate the traffic-reshaping countermeasures
"""

from repro.cli.main import build_parser, main

__all__ = ["main", "build_parser"]
