"""Operational metrics for the streaming tracking service.

Every :class:`~repro.stream.session.TrackingSession` owns a
:class:`StreamMetrics`; the :class:`~repro.stream.manager.SessionManager`
aggregates them. Metrics are plain counters plus a bounded latency
reservoir, exportable as JSON for dashboards and the perf-trajectory
benchmarks.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, Optional

import numpy as np

from repro.metrics import LatencyReservoir


class StreamMetrics:
    """Counters and latency quantiles for one stream of windows.

    Parameters
    ----------
    latency_capacity:
        Maximum number of per-window step latencies retained (ring
        buffer, see :class:`repro.metrics.LatencyReservoir`). Quantiles
        are computed over the retained window, so a long-running
        session reports *recent* latency, not lifetime.
    """

    def __init__(self, latency_capacity: int = 4096):
        self.windows_processed = 0
        self.windows_skipped: Counter = Counter()
        self.windows_dropped = 0
        self._latencies = LatencyReservoir(latency_capacity)
        self._error_sum = 0.0
        self._error_count = 0

    @property
    def latency_capacity(self) -> int:
        return self._latencies.capacity

    # ------------------------------------------------------------------
    def record_window(
        self, latency_seconds: float, mean_error: Optional[float] = None
    ) -> None:
        """Account one successfully processed window."""
        self.windows_processed += 1
        self._latencies.record(latency_seconds)
        if mean_error is not None and np.isfinite(mean_error):
            self._error_sum += float(mean_error)
            self._error_count += 1

    def record_skip(self, reason: str) -> None:
        """Account one window rejected by session validation."""
        self.windows_skipped[reason] += 1

    def record_drop(self, count: int = 1) -> None:
        """Account windows shed by queue backpressure before processing."""
        self.windows_dropped += int(count)

    # ------------------------------------------------------------------
    @property
    def skipped_total(self) -> int:
        return int(sum(self.windows_skipped.values()))

    def latency_quantiles(self) -> Dict[str, float]:
        """p50/p95 step latency (seconds) over the retained reservoir."""
        return self._latencies.quantiles((0.50, 0.95))

    def mean_error(self) -> float:
        """Mean per-window tracking error when ground truth was attached."""
        if self._error_count == 0:
            return float("nan")
        return self._error_sum / self._error_count

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        quantiles = self.latency_quantiles()
        return {
            "windows_processed": self.windows_processed,
            "windows_skipped": dict(self.windows_skipped),
            "windows_skipped_total": self.skipped_total,
            "windows_dropped": self.windows_dropped,
            "latency_p50_s": quantiles["p50"],
            "latency_p95_s": quantiles["p95"],
            "mean_error": self.mean_error(),
        }

    def to_json(self, indent: int = 2) -> str:
        def _nan_safe(value):
            if isinstance(value, float) and not np.isfinite(value):
                return None
            return value

        payload = {k: _nan_safe(v) for k, v in self.to_dict().items()}
        return json.dumps(payload, indent=indent, sort_keys=True)


def merge_metrics(metrics_by_session: Dict[str, StreamMetrics]) -> Dict[str, object]:
    """Fleet-level summary across sessions (for the manager / benchmarks)."""
    summary: Dict[str, object] = {
        "sessions": len(metrics_by_session),
        "windows_processed": sum(
            m.windows_processed for m in metrics_by_session.values()
        ),
        "windows_skipped_total": sum(
            m.skipped_total for m in metrics_by_session.values()
        ),
        "windows_dropped": sum(
            m.windows_dropped for m in metrics_by_session.values()
        ),
        "per_session": {
            sid: m.to_dict() for sid, m in metrics_by_session.items()
        },
    }
    return summary
