"""Checkpoint/resume for streaming tracking sessions.

A checkpoint captures *everything* Algorithm 4.1 needs to continue
bit-for-bit after a process kill: the per-user sample sets (positions,
weights, ``t_last``), the tracker configuration, the sniffer geometry,
and — crucially — the exact numpy bit-generator state, so the random
draws of the resumed prediction phases reproduce the uninterrupted
run. Step history and latency reservoirs are intentionally *not*
checkpointed: they are observability artifacts, not tracker state.

The on-disk format is a single ``.npz`` (same family as
:mod:`repro.util.persistence`) with JSON side-channels for the
structured bits (config, RNG state, counters).

Durability contract: :func:`save_checkpoint` writes to a unique temp
file, flushes and fsyncs it, then publishes with ``os.replace`` — a
kill, torn write, or fsync failure at *any* instant leaves either the
previous checkpoint or the new one, never a hybrid. :func:`load_
checkpoint` turns every corrupt/truncated-file failure mode into a
typed :class:`~repro.errors.ConfigurationError` naming the path. Both
behaviors are exercised by the ``checkpoint.partial_write`` /
``checkpoint.fsync`` fault points (:mod:`repro.faults`), and writes
optionally run under a bounded :class:`~repro.faults.RetryPolicy`.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import zipfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError, FaultInjected
from repro.faults.plan import should_fire
from repro.faults.retry import call_with_retry
from repro.smc.samples import UserSamples
from repro.smc.tracker import SequentialMonteCarloTracker, TrackerConfig
from repro.stream.metrics import StreamMetrics
from repro.stream.session import TrackingSession, TruthProvider
from repro.util.persistence import (
    field_from_arrays,
    field_to_arrays,
    require_format,
    require_keys,
)

_PathLike = Union[str, Path]

#: Bumped on any incompatible layout change; loaders refuse mismatches.
CHECKPOINT_FORMAT = 1

_REQUIRED_KEYS = (
    "format",
    "session_id",
    "field_kind",
    "field_params",
    "sniffer_positions",
    "config_json",
    "rng_state_json",
    "t_last",
    "counters_json",
)


def _atomic_write(path: Path, arrays: dict) -> None:
    """Write ``arrays`` as ``.npz`` at ``path`` with all-or-nothing effect.

    Unique temp name (pid- and thread-suffixed: two writers of the same
    checkpoint never clobber each other's temp), flush + fsync before
    publish, and the temp unlinked on any failure. The
    ``checkpoint.partial_write`` fault truncates the payload mid-write;
    ``checkpoint.fsync`` fails the durability barrier — both leave
    ``path`` untouched.
    """
    tmp = path.with_suffix(
        path.suffix + f".{os.getpid()}.{threading.get_ident()}.tmp"
    )
    try:
        with tmp.open("wb") as handle:
            if should_fire("checkpoint.partial_write") is not None:
                import io

                buffer = io.BytesIO()
                np.savez_compressed(buffer, **arrays)
                handle.write(buffer.getvalue()[: buffer.tell() // 2])
                handle.flush()
                raise FaultInjected(
                    f"checkpoint.partial_write: torn write of {tmp}"
                )
            np.savez_compressed(handle, **arrays)
            handle.flush()
            if should_fire("checkpoint.fsync") is not None:
                raise OSError(f"checkpoint.fsync: injected fsync failure {tmp}")
            os.fsync(handle.fileno())
        os.replace(tmp, path)  # atomic: a kill mid-write never corrupts
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def save_checkpoint(
    session: TrackingSession, path: _PathLike, retry_policy=None
) -> Path:
    """Serialize a session (tracker state + stream cursor) to ``.npz``.

    ``retry_policy`` (a :class:`~repro.faults.RetryPolicy`) re-attempts
    the atomic write on transient I/O failures; the write is idempotent
    (same arrays, fresh temp file), so a retry that succeeds produces a
    checkpoint bitwise-identical to an undisturbed one.
    """
    tracker = session.tracker
    field_kind, field_params = field_to_arrays(tracker.field)
    rng_state = json.dumps(tracker._rng.bit_generator.state, default=int)
    config = json.dumps(dataclasses.asdict(tracker.config))
    counters = json.dumps(
        {
            "windows_consumed": session.windows_consumed,
            "last_time": session.last_time,
            "windows_processed": session.metrics.windows_processed,
            "windows_skipped": dict(session.metrics.windows_skipped),
            "windows_dropped": session.metrics.windows_dropped,
        }
    )
    arrays = {
        "format": np.array([CHECKPOINT_FORMAT]),
        "session_id": np.array(session.session_id),
        "field_kind": np.array(field_kind),
        "field_params": field_params,
        "sniffer_positions": tracker.model.node_positions,
        "config_json": np.array(config),
        "rng_state_json": np.array(rng_state),
        "t_last": np.array([s.t_last for s in tracker.samples]),
        "counters_json": np.array(counters),
        # Additive key (not in _REQUIRED_KEYS): older checkpoints
        # without it load with zeroed miss counters.
        "miss_counts": np.asarray(tracker.miss_counts, dtype=np.int64),
    }
    for user, samples in enumerate(tracker.samples):
        arrays[f"positions_{user}"] = samples.positions
        arrays[f"weights_{user}"] = samples.weights
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if retry_policy is None:
        _atomic_write(path, arrays)
    else:
        call_with_retry(
            lambda: _atomic_write(path, arrays),
            retry_policy,
            label=f"checkpoint write {path}",
        )
    return path


def load_checkpoint(
    path: _PathLike,
    truth: Optional[TruthProvider] = None,
    fingerprint_map=None,
) -> TrackingSession:
    """Rebuild a session from :func:`save_checkpoint` output.

    The returned session's tracker continues deterministically: same
    samples, same weights, same RNG stream position. ``truth`` (not
    serializable) must be re-attached by the caller when error
    accounting should continue; likewise ``fingerprint_map`` (shared,
    read-only — never serialized into checkpoints) is re-attached here
    and validated against the checkpointed deployment, so resuming
    with a map built for different sniffers fails loudly with
    :class:`~repro.errors.ConfigurationError` instead of reseeding
    users onto wrong signatures.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            require_keys(data, _REQUIRED_KEYS, path)
            require_format(data, CHECKPOINT_FORMAT, path, kind="checkpoint")
            session_id = str(data["session_id"])
            field = field_from_arrays(
                str(data["field_kind"]), data["field_params"]
            )
            sniffer_positions = data["sniffer_positions"]
            config = TrackerConfig(**json.loads(str(data["config_json"])))
            rng_state = json.loads(str(data["rng_state_json"]))
            t_last = data["t_last"]
            counters = json.loads(str(data["counters_json"]))
            user_count = t_last.shape[0]
            miss_counts = (
                np.asarray(data["miss_counts"], dtype=np.int64)
                if "miss_counts" in data
                else np.zeros(user_count, dtype=np.int64)
            )
            require_keys(
                data,
                [f"positions_{u}" for u in range(user_count)]
                + [f"weights_{u}" for u in range(user_count)],
                path,
            )
            sample_sets = []
            for user in range(user_count):
                samples = UserSamples(
                    positions=data[f"positions_{user}"],
                    weights=data[f"weights_{user}"],
                    t_last=float(t_last[user]),
                )
                # __post_init__ renormalizes; restore the exact stored
                # weights so resumed estimates stay bitwise identical.
                samples.weights = np.asarray(
                    data[f"weights_{user}"], dtype=float
                )
                sample_sets.append(samples)
    except ConfigurationError:
        raise  # already typed (missing keys, format mismatch, bad field)
    except FileNotFoundError:
        raise  # absent is a distinct condition, not a corrupt file
    except (zipfile.BadZipFile, OSError, EOFError, KeyError, ValueError,
            TypeError) as exc:
        # Torn writes, truncated zips, garbage JSON, wrong-shape arrays:
        # one typed error naming the file, never a raw parser traceback.
        raise ConfigurationError(
            f"{path}: corrupt or truncated checkpoint "
            f"({type(exc).__name__}: {exc})"
        ) from exc

    # Construct with a throwaway RNG: __init__ draws the uniform prior,
    # which would advance the restored stream. The real generator (and
    # the checkpointed samples) are installed right after.
    tracker = SequentialMonteCarloTracker(
        field,
        sniffer_positions,
        user_count=user_count,
        config=config,
        rng=0,
    )
    tracker._rng = _generator_from_state(rng_state)
    tracker.samples = sample_sets
    tracker.miss_counts = miss_counts
    if miss_counts.shape != (user_count,):
        raise ConfigurationError(
            f"{path}: miss_counts {miss_counts.shape} does not match "
            f"user count {user_count}"
        )
    if fingerprint_map is not None:
        tracker.attach_map(fingerprint_map)
    metrics = StreamMetrics()
    metrics.windows_processed = int(counters["windows_processed"])
    metrics.windows_skipped.update(counters["windows_skipped"])
    metrics.windows_dropped = int(counters["windows_dropped"])
    session = TrackingSession(
        session_id, tracker, truth=truth, metrics=metrics
    )
    session.windows_consumed = int(counters["windows_consumed"])
    last_time = counters["last_time"]
    session.last_time = None if last_time is None else float(last_time)
    return session


def _generator_from_state(state: dict) -> np.random.Generator:
    """Reconstruct a Generator positioned exactly at a saved state."""
    name = state.get("bit_generator")
    bit_generator_cls = getattr(np.random, str(name), None)
    if bit_generator_cls is None:
        raise ConfigurationError(
            f"checkpoint uses unknown bit generator {name!r}"
        )
    bit_generator = bit_generator_cls()
    bit_generator.state = state
    return np.random.Generator(bit_generator)
