"""Observation sources feeding the streaming tracking service.

A source is anything iterable over :class:`FluxObservation` — the
service pulls windows one at a time, mirroring the online shape of
Algorithm 4.1. Three concrete sources cover the common deployments:

``ReplaySource``
    Replays an archived ``.npz`` observation log (or an in-memory
    list) — offline re-analysis and deterministic tests.
``SyntheticLiveSource``
    Simulates a live scenario window by window: mobile users walk a
    network, flux is simulated and measured on demand. Carries its own
    ground truth for error accounting.
``JsonlTailSource``
    Tails a JSONL file produced by an external collector, tolerating
    malformed lines (counted, never fatal) and ends after a
    configurable idle period.
"""

from __future__ import annotations

import json
import time as _time
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

import numpy as np

try:  # Protocol is typing-only sugar; keep 3.9 compatibility cheap.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - python < 3.8
    Protocol = object  # type: ignore

    def runtime_checkable(cls):  # type: ignore
        return cls

from repro.errors import ConfigurationError, StreamError
from repro.network.topology import Network
from repro.traffic.measurement import FluxObservation, MeasurementModel
from repro.util.rng import RandomState, as_generator

_PathLike = Union[str, Path]


@runtime_checkable
class ObservationSource(Protocol):
    """Anything that yields a time-ordered stream of flux observations."""

    def __iter__(self) -> Iterator[FluxObservation]: ...


class ReplaySource:
    """Replay an observation list or an archived ``.npz`` log.

    Parameters
    ----------
    observations:
        The windows to replay, in order.
    start_index:
        Skip this many leading windows — used by checkpoint resume to
        fast-forward to where the killed run stopped.
    """

    def __init__(
        self,
        observations: Sequence[FluxObservation],
        start_index: int = 0,
    ):
        if start_index < 0:
            raise ConfigurationError(
                f"start_index must be >= 0, got {start_index}"
            )
        self.observations = list(observations)
        self.start_index = int(start_index)

    @classmethod
    def from_npz(cls, path: _PathLike, start_index: int = 0) -> "ReplaySource":
        """Load a log saved by :func:`repro.util.persistence.save_observations`."""
        from repro.util.persistence import load_observations

        return cls(load_observations(path), start_index=start_index)

    def __len__(self) -> int:
        return max(0, len(self.observations) - self.start_index)

    def __iter__(self) -> Iterator[FluxObservation]:
        return iter(self.observations[self.start_index :])


class SyntheticLiveSource:
    """Generate a live scenario lazily: simulate, measure, yield.

    Each iteration pass replays the *same* scenario (trajectories are
    drawn once at construction), but flux simulation and measurement
    noise draw from the source RNG on demand — the observation for
    window ``k`` does not exist until the consumer asks for it, which
    is what distinguishes a live feed from a replay log.

    Parameters
    ----------
    network:
        Deployment to simulate over.
    sniffers:
        ``(n,)`` sniffed node indices.
    user_count:
        Mobile users to walk the field.
    rounds:
        Number of observation windows to emit.
    max_speed:
        Upper bound of the per-user waypoint speeds.
    window:
        Window length ``delta_t`` between observations.
    smooth:
        Apply neighborhood smoothing in the measurement model.
    """

    def __init__(
        self,
        network: Network,
        sniffers: np.ndarray,
        user_count: int = 2,
        rounds: int = 20,
        max_speed: float = 5.0,
        window: float = 1.0,
        smooth: bool = True,
        rng: RandomState = None,
    ):
        from repro.mobility import random_waypoint_trajectory
        from repro.traffic import FluxSimulator, synchronous_schedule

        if user_count < 1:
            raise ConfigurationError(
                f"user_count must be >= 1, got {user_count}"
            )
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        gen = as_generator(rng)
        self.network = network
        self.user_count = int(user_count)
        self.rounds = int(rounds)
        self.window = float(window)
        self.trajectories = [
            random_waypoint_trajectory(
                network.field,
                rounds=self.rounds,
                speed=float(gen.uniform(max_speed * 0.4, max_speed * 0.9)),
                rng=gen,
            )
            for _ in range(self.user_count)
        ]
        self.stretches = list(gen.uniform(1.0, 3.0, self.user_count))
        self._schedule = synchronous_schedule(
            [t.positions for t in self.trajectories], self.stretches
        )
        self._simulator = FluxSimulator(network, rng=gen)
        self._measure = MeasurementModel(
            network, sniffers, smooth=smooth, rng=gen
        )
        self._truth_by_time: dict = {}

    def truth_at(self, time: float) -> Optional[np.ndarray]:
        """``(K, 2)`` true positions for an already-emitted window."""
        return self._truth_by_time.get(float(time))

    def __iter__(self) -> Iterator[FluxObservation]:
        for round_idx, (t, events) in enumerate(
            self._schedule.windows(self.window)
        ):
            flux = self._simulator.window_flux(events).total
            self._truth_by_time[float(t)] = np.stack(
                [tr.positions[round_idx] for tr in self.trajectories]
            )
            yield self._measure.observe(flux, time=t)


class JsonlTailSource:
    """Follow a JSONL observation feed written by an external process.

    Each line is ``{"time": t, "sniffers": [...], "values": [...]}``
    (optionally ``"raw_values"``). Lines that fail to parse or build a
    :class:`FluxObservation` are counted in :attr:`parse_errors` and
    skipped — a corrupt line must never kill the service loop.

    The source keeps polling the file for new lines; it stops once no
    new data arrives for ``idle_timeout`` seconds (``0`` reads the file
    once and stops at EOF — the batch-replay degenerate case).
    """

    def __init__(
        self,
        path: _PathLike,
        poll_interval: float = 0.05,
        idle_timeout: float = 0.0,
    ):
        if poll_interval <= 0:
            raise ConfigurationError(
                f"poll_interval must be > 0, got {poll_interval}"
            )
        if idle_timeout < 0:
            raise ConfigurationError(
                f"idle_timeout must be >= 0, got {idle_timeout}"
            )
        self.path = Path(path)
        self.poll_interval = float(poll_interval)
        self.idle_timeout = float(idle_timeout)
        self.parse_errors = 0

    def _parse(self, line: str) -> Optional[FluxObservation]:
        line = line.strip()
        if not line:
            return None
        try:
            record = json.loads(line)
            raw = record.get("raw_values")
            return FluxObservation(
                time=float(record["time"]),
                sniffers=np.asarray(record["sniffers"], dtype=np.int64),
                values=np.asarray(record["values"], dtype=float),
                raw_values=None if raw is None else np.asarray(raw, dtype=float),
            )
        except (ValueError, TypeError, KeyError, ConfigurationError):
            self.parse_errors += 1
            return None

    def __iter__(self) -> Iterator[FluxObservation]:
        if not self.path.exists():
            raise StreamError(f"JSONL source {self.path} does not exist")
        with self.path.open("r") as handle:
            idle_since = _time.monotonic()
            buffer = ""
            while True:
                chunk = handle.readline()
                if chunk:
                    buffer += chunk
                    if not buffer.endswith("\n"):
                        # partial line: the writer is mid-append; wait.
                        continue
                    obs = self._parse(buffer)
                    buffer = ""
                    idle_since = _time.monotonic()
                    if obs is not None:
                        yield obs
                    continue
                if _time.monotonic() - idle_since >= self.idle_timeout:
                    if buffer:  # writer quit mid-line; salvage what's there
                        obs = self._parse(buffer)
                        if obs is not None:
                            yield obs
                    return
                _time.sleep(self.poll_interval)


def observation_to_jsonl(observation: FluxObservation) -> str:
    """Render one observation as a JSONL line (inverse of the tail source)."""
    record = {
        "time": float(observation.time),
        "sniffers": [int(s) for s in observation.sniffers],
        "values": [
            None if not np.isfinite(v) else float(v)
            for v in observation.values
        ],
    }
    if observation.raw_values is not None:
        record["raw_values"] = [float(v) for v in observation.raw_values]
    return json.dumps(record)
