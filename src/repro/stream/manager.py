"""Multiplexing many tracking sessions behind one ingestion front.

The :class:`SessionManager` is the service's admission layer: producers
``submit(session_id, observation)`` into a bounded FIFO work queue and
a drain step routes queued windows to their sessions — serially, or
fanned out across sessions on a thread pool. Two backpressure policies
bound memory under overload:

``drop_oldest``
    A full queue sheds its oldest queued window (counted against the
    owning session's ``windows_dropped``). Freshness wins — the SMC
    tracker tolerates missing windows by design (paper §IV.D), so
    shedding stale flux is strictly better than unbounded lag.
``block``
    ``submit`` drains the queue synchronously before admitting the new
    window. Nothing is lost; the producer pays the latency. A timeout
    (``block_timeout`` / ``submit(..., timeout=)``) bounds that wait:
    when the queue is still full after it elapses — drains racing
    other producers, or sessions too slow to keep up — ``submit``
    raises :class:`~repro.errors.BackpressureTimeout` instead of
    blocking forever.

Sessions are single-threaded internally (the tracker mutates shared
sample state); the fan-out parallelism is *across* sessions, with
per-session FIFO order preserved.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import BackpressureTimeout, ConfigurationError, StreamError
from repro.stream.metrics import merge_metrics
from repro.stream.session import TrackingSession
from repro.traffic.measurement import FluxObservation

_BACKPRESSURE_POLICIES = ("drop_oldest", "block")


class SessionManager:
    """Owns a fleet of sessions and a bounded ingestion queue.

    Parameters
    ----------
    queue_size:
        Maximum windows queued across all sessions before the
        backpressure policy engages.
    policy:
        ``"drop_oldest"`` or ``"block"`` (see module docstring).
    workers:
        ``0`` processes inline during :meth:`drain`; ``>= 1`` fans the
        drain out across sessions on a throwaway thread pool of that
        size (one pool per drain call).
    engine:
        Optional :class:`repro.engine.Engine`. Takes precedence over
        ``workers``: drains fan out across sessions on the engine's
        *persistent* pool, avoiding the per-drain pool spin-up of the
        ``workers`` path (which is kept for compatibility). Per the
        engine nesting rule, sessions drained through an engine must
        not hand that same engine to their own trackers.
    block_timeout:
        Default bound (seconds) on how long a block-policy
        :meth:`submit` may spend draining a full queue before raising
        :class:`~repro.errors.BackpressureTimeout`. ``None`` (default)
        keeps the historical block-forever behavior.
    """

    def __init__(
        self,
        queue_size: int = 256,
        policy: str = "drop_oldest",
        workers: int = 0,
        engine=None,
        block_timeout: Optional[float] = None,
    ):
        if queue_size < 1:
            raise ConfigurationError(
                f"queue_size must be >= 1, got {queue_size}"
            )
        if policy not in _BACKPRESSURE_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {_BACKPRESSURE_POLICIES}, got {policy!r}"
            )
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        if block_timeout is not None and block_timeout <= 0:
            raise ConfigurationError(
                f"block_timeout must be positive, got {block_timeout}"
            )
        self.queue_size = int(queue_size)
        self.policy = policy
        self.workers = int(workers)
        self.engine = engine
        self.block_timeout = block_timeout
        self._sessions: "OrderedDict[str, TrackingSession]" = OrderedDict()
        self._queue: Deque[Tuple[str, FluxObservation]] = deque()
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    def add_session(self, session: TrackingSession) -> TrackingSession:
        with self._lock:
            if session.session_id in self._sessions:
                raise ConfigurationError(
                    f"session {session.session_id!r} already registered"
                )
            self._sessions[session.session_id] = session
        return session

    def remove_session(self, session_id: str) -> TrackingSession:
        """Deregister a session, discarding its queued windows."""
        with self._lock:
            if session_id not in self._sessions:
                raise ConfigurationError(f"unknown session {session_id!r}")
            session = self._sessions.pop(session_id)
            self._queue = deque(
                item for item in self._queue if item[0] != session_id
            )
        return session

    def session(self, session_id: str) -> TrackingSession:
        with self._lock:
            if session_id not in self._sessions:
                raise ConfigurationError(f"unknown session {session_id!r}")
            return self._sessions[session_id]

    @property
    def session_ids(self) -> List[str]:
        with self._lock:
            return list(self._sessions)

    def queued(self) -> int:
        with self._lock:
            return len(self._queue)

    # ------------------------------------------------------------------
    def submit(
        self,
        session_id: str,
        observation: FluxObservation,
        timeout: Optional[float] = None,
    ) -> bool:
        """Enqueue one window for a session.

        Returns ``False`` when the window (or an older one, under
        ``drop_oldest``) was shed by backpressure; ``True`` when the
        queue admitted it without loss.

        Parameters
        ----------
        timeout:
            Block-policy only: maximum seconds to spend draining a full
            queue before giving up with
            :class:`~repro.errors.BackpressureTimeout` (overrides the
            manager-level ``block_timeout``; ``None`` falls back to it,
            and a ``None`` manager default waits indefinitely — the
            pre-timeout behavior).
        """
        if self._closed:
            raise StreamError("manager is closed")
        shed = False
        with self._lock:
            if session_id not in self._sessions:
                raise ConfigurationError(f"unknown session {session_id!r}")
            if len(self._queue) >= self.queue_size and self.policy == "block":
                pass  # drain below, outside the lock
            elif len(self._queue) >= self.queue_size:
                victim_id, _ = self._queue.popleft()
                self._sessions[victim_id].metrics.record_drop()
                shed = True
        if self.policy == "block":
            effective = self.block_timeout if timeout is None else timeout
            deadline = (
                None if effective is None else time.monotonic() + effective
            )
            while self.queued() >= self.queue_size:
                self.drain()
                if (
                    deadline is not None
                    and self.queued() >= self.queue_size
                    and time.monotonic() >= deadline
                ):
                    raise BackpressureTimeout(
                        f"queue still holds {self.queued()} windows "
                        f"(capacity {self.queue_size}) after blocking "
                        f"{effective:g}s for session {session_id!r}"
                    )
        with self._lock:
            self._queue.append((session_id, observation))
        return not shed

    def drain(self) -> int:
        """Process everything currently queued; returns windows processed.

        Per-session order is FIFO regardless of ``workers``; distinct
        sessions proceed concurrently when a pool is configured.
        """
        with self._lock:
            batch = list(self._queue)
            self._queue.clear()
            sessions = dict(self._sessions)
        if not batch:
            return 0
        by_session: "OrderedDict[str, List[FluxObservation]]" = OrderedDict()
        for session_id, observation in batch:
            by_session.setdefault(session_id, []).append(observation)

        def _run(session_id: str) -> int:
            session = sessions[session_id]
            for observation in by_session[session_id]:
                session.process(observation)
            return len(by_session[session_id])

        if self.engine is not None and self.engine.parallel and len(by_session) > 1:
            counts = self.engine.map(_run, list(by_session))
        elif self.workers >= 1 and len(by_session) > 1:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                counts = list(pool.map(_run, by_session))
        else:
            counts = [_run(session_id) for session_id in by_session]
        return sum(counts)

    def close(self) -> int:
        """Flush the queue and refuse further submissions."""
        processed = self.drain()
        self._closed = True
        return processed

    # ------------------------------------------------------------------
    def fleet_summary(self) -> Dict[str, object]:
        """Aggregate metrics across all registered sessions."""
        with self._lock:
            sessions = dict(self._sessions)
        summary = merge_metrics(
            {sid: s.metrics for sid, s in sessions.items()}
        )
        summary["queued"] = self.queued()
        summary["policy"] = self.policy
        summary["workers"] = self.workers
        return summary
