"""The streaming service loop: source -> session -> checkpoints.

:func:`run_stream` is the single-session pump used by the CLI
(``repro track-stream``) and the examples; :func:`resume_or_create`
implements the crash-recovery contract (load the checkpoint when one
exists, otherwise build a fresh session). Multi-session deployments
compose the same pieces through :class:`repro.stream.manager.SessionManager`.
"""

from __future__ import annotations

from itertools import islice
from pathlib import Path
from typing import Callable, Optional, Union

from repro.errors import ConfigurationError
from repro.faults.streams import wrap_observation_stream
from repro.stream.checkpoint import load_checkpoint, save_checkpoint
from repro.stream.session import TrackingSession, TruthProvider
from repro.stream.sources import ObservationSource

_PathLike = Union[str, Path]


def resume_or_create(
    checkpoint_path: _PathLike,
    factory: Callable[[], TrackingSession],
    truth: Optional[TruthProvider] = None,
    fingerprint_map=None,
) -> TrackingSession:
    """Load the session from ``checkpoint_path`` if present, else build one.

    The crash-recovery idiom::

        session = resume_or_create("run.ckpt.npz", make_session)
        run_stream(source, session, checkpoint_path="run.ckpt.npz",
                   checkpoint_every=10)

    A process killed mid-run restarts with the same two lines and
    continues deterministically.

    ``fingerprint_map`` — a shared read-only
    :class:`repro.fpmap.FingerprintMap` — is re-attached to resumed
    trackers (validated against the checkpointed deployment) and, when
    the factory built a map-less tracker, attached to fresh sessions
    too, so every session of a fleet serves from the one map instance.
    """
    path = Path(checkpoint_path)
    if path.exists():
        return load_checkpoint(path, truth=truth, fingerprint_map=fingerprint_map)
    session = factory()
    if truth is not None and session.truth is None:
        session.truth = truth
    if fingerprint_map is not None and session.tracker.fingerprint_map is None:
        session.tracker.attach_map(fingerprint_map)
    return session


def _drop_replayed_prefix(iterator, last_time: float, max_drop: int):
    """Drop the leading windows a killed run already folded in.

    The cursor is the checkpointed ``last_time``, not the consumed
    count alone: the killed run may have consumed windows the replay
    does not contain (duplicated deliveries, transient junk), so a
    pure count skip can silently jump past never-processed windows.
    The drop is bounded both ways — at most ``max_drop`` (the consumed
    count) windows go, and only ones the session's out-of-order guard
    would reject anyway (``time <= last_time``); everything else is
    re-offered and the session counts it.
    """
    dropped = 0
    for observation in iterator:
        if dropped < max_drop:
            time = getattr(observation, "time", None)
            try:
                stale = time is not None and float(time) <= last_time
            except (TypeError, ValueError):
                stale = False
            if stale:
                dropped += 1
                continue
        yield observation
        break
    yield from iterator


def run_stream(
    source: ObservationSource,
    session: TrackingSession,
    checkpoint_path: Optional[_PathLike] = None,
    checkpoint_every: int = 0,
    max_windows: Optional[int] = None,
    fast_forward: bool = True,
    on_step: Optional[Callable[[TrackingSession, object], None]] = None,
    retry_policy=None,
) -> TrackingSession:
    """Pump a source through a session until exhaustion (or ``max_windows``).

    Parameters
    ----------
    source:
        Observation stream. Replayable sources (``ReplaySource``,
        ``JsonlTailSource`` over a stable file) restart from their
        beginning each run; see ``fast_forward``.
    session:
        The session to drive — typically from :func:`resume_or_create`.
    checkpoint_path:
        When set, the session is checkpointed here every
        ``checkpoint_every`` consumed windows and once more at exit.
    checkpoint_every:
        Checkpoint cadence in consumed windows; ``0`` checkpoints only
        at exit.
    max_windows:
        Stop after consuming this many windows *this run* (kill-switch
        for tests and bounded batch jobs); ``None`` runs to exhaustion.
    fast_forward:
        When the session has already consumed windows (a resumed run),
        discard the leading windows whose time is at or before the
        checkpointed ``last_time`` before processing (by-count when no
        window was ever processed). Leave on for replayable sources;
        turn off for live feeds that never repeat old windows.
    on_step:
        Observer called as ``on_step(session, step_or_none)`` after each
        consumed window (``None`` for skipped windows).
    retry_policy:
        Optional :class:`~repro.faults.RetryPolicy` for the checkpoint
        writes (transient I/O failures re-attempt the atomic write).

    When a fault plan is armed (:func:`repro.faults.injected`), the
    source is routed through :func:`repro.faults.wrap_observation_stream`
    so stalled/duplicated/torn windows exercise the session's
    skip-and-count contract.
    """
    if checkpoint_every < 0:
        raise ConfigurationError(
            f"checkpoint_every must be >= 0, got {checkpoint_every}"
        )
    if max_windows is not None and max_windows < 0:
        raise ConfigurationError(
            f"max_windows must be >= 0, got {max_windows}"
        )
    iterator = iter(wrap_observation_stream(iter(source)))
    if fast_forward and session.windows_consumed > 0:
        if session.last_time is not None:
            iterator = _drop_replayed_prefix(
                iterator, session.last_time, session.windows_consumed
            )
        else:
            # Nothing was ever processed (the killed run consumed only
            # junk) — no time cursor exists, skip by count instead.
            next(islice(iterator, session.windows_consumed,
                        session.windows_consumed), None)
    consumed_this_run = 0
    try:
        while max_windows is None or consumed_this_run < max_windows:
            try:
                observation = next(iterator)
            except StopIteration:
                break
            step = session.process(observation)
            consumed_this_run += 1
            if on_step is not None:
                on_step(session, step)
            if (
                checkpoint_path is not None
                and checkpoint_every > 0
                and session.windows_consumed % checkpoint_every == 0
            ):
                save_checkpoint(session, checkpoint_path,
                                retry_policy=retry_policy)
    finally:
        if checkpoint_path is not None:
            save_checkpoint(session, checkpoint_path,
                            retry_policy=retry_policy)
    return session
