"""Streaming tracking service: online ingestion of flux observations.

Turns the batch SMC tracker into a long-running service. The paper's
Algorithm 4.1 is already online — one observation window in, one
posterior update out — and this package supplies the operational shell:
observation sources (replay / live simulation / JSONL tail), defensive
per-session validation, multi-session multiplexing with backpressure,
checkpoint/resume with exact RNG state, and JSON-exportable metrics.

Typical single-session use::

    from repro.stream import (
        ReplaySource, TrackingSession, resume_or_create, run_stream,
    )

    source = ReplaySource.from_npz("observations.npz")
    session = resume_or_create("run.ckpt.npz", make_session)
    run_stream(source, session, checkpoint_path="run.ckpt.npz",
               checkpoint_every=10)
    print(session.metrics.to_json())
"""

from repro.stream.sources import (
    JsonlTailSource,
    ObservationSource,
    ReplaySource,
    SyntheticLiveSource,
    observation_to_jsonl,
)
from repro.stream.metrics import StreamMetrics, merge_metrics
from repro.stream.session import TrackingSession
from repro.stream.manager import SessionManager
from repro.stream.checkpoint import (
    CHECKPOINT_FORMAT,
    load_checkpoint,
    save_checkpoint,
)
from repro.stream.service import resume_or_create, run_stream

__all__ = [
    "ObservationSource",
    "ReplaySource",
    "SyntheticLiveSource",
    "JsonlTailSource",
    "observation_to_jsonl",
    "StreamMetrics",
    "merge_metrics",
    "TrackingSession",
    "SessionManager",
    "CHECKPOINT_FORMAT",
    "save_checkpoint",
    "load_checkpoint",
    "resume_or_create",
    "run_stream",
]
