"""One user-facing tracking session over a live observation stream.

:class:`TrackingSession` wraps a :class:`SequentialMonteCarloTracker`
with the defensive shell a long-running service needs: observations are
validated before they reach Algorithm 4.1 (monotonic time, matching
sniffer arity, finite readings), bad windows are *skipped and counted*
rather than raised, and every accepted window is timed for the latency
metrics. The tracker itself stays byte-for-byte the batch tracker — the
session only decides which windows it gets to see, which is exactly the
paper's asynchronous-updating stance (§IV.D): a window a user misses
simply widens the next prediction disc.
"""

from __future__ import annotations

import logging
import time as _time
from collections import Counter
from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.smc.tracker import SequentialMonteCarloTracker, TrackerStep
from repro.stream.metrics import StreamMetrics
from repro.traffic.measurement import FluxObservation

#: Optional ground-truth lookup: window time -> (K, 2) true positions
#: (or None when truth is unknown for that window).
TruthProvider = Callable[[float], Optional[np.ndarray]]

_LOG = logging.getLogger(__name__)


class TrackingSession:
    """Drives one tracker from a stream, skipping windows it cannot trust.

    Parameters
    ----------
    session_id:
        Stable identifier (used by the manager, checkpoints, metrics).
    tracker:
        The wrapped SMC tracker. The session owns it: callers must not
        step it directly while the session is live.
    truth:
        Optional ground-truth provider for online error accounting.
    metrics:
        Metrics sink; a fresh one is created when omitted.
    """

    #: Skip reasons recorded in ``metrics.windows_skipped``.
    SKIP_BAD_TYPE = "bad_type"
    SKIP_BAD_TIME = "bad_time"
    SKIP_OUT_OF_ORDER = "out_of_order"
    SKIP_ARITY_MISMATCH = "arity_mismatch"
    SKIP_BAD_VALUES = "bad_values"
    SKIP_STEP_FAILED = "step_failed"

    def __init__(
        self,
        session_id: str,
        tracker: SequentialMonteCarloTracker,
        truth: Optional[TruthProvider] = None,
        metrics: Optional[StreamMetrics] = None,
    ):
        if not session_id:
            raise ConfigurationError("session_id must be non-empty")
        self.session_id = str(session_id)
        self.tracker = tracker
        self.truth = truth
        self.metrics = metrics if metrics is not None else StreamMetrics()
        self.last_time: Optional[float] = None
        self.windows_consumed = 0  # every observation offered, good or bad
        self.last_step: Optional[TrackerStep] = None
        self.step_errors: Counter = Counter()  # exception type -> count
        self.last_error: Optional[str] = None  # "Type: message" of newest

    # ------------------------------------------------------------------
    def validate(self, observation: object) -> Optional[str]:
        """Return a skip reason for a bad observation, or None if usable."""
        if not isinstance(observation, FluxObservation):
            return self.SKIP_BAD_TYPE
        t = float(observation.time)
        if not np.isfinite(t):
            return self.SKIP_BAD_TIME
        if self.last_time is not None and t <= self.last_time:
            return self.SKIP_OUT_OF_ORDER
        expected = self.tracker.model.node_count
        if observation.values.shape != (expected,):
            return self.SKIP_ARITY_MISMATCH
        values = observation.values
        # NaN is legitimate (sniffer dropout); +/-inf or negative flux
        # would poison the NLS objective.
        finite = values[np.isfinite(values)]
        if np.any(np.isinf(values)) or np.any(finite < 0):
            return self.SKIP_BAD_VALUES
        return None

    def process(self, observation: object) -> Optional[TrackerStep]:
        """Offer one window to the tracker; never raises on bad input.

        Returns the tracker step for an accepted window, or ``None``
        when the window was skipped (the skip reason is counted in
        ``metrics.windows_skipped``).
        """
        self.windows_consumed += 1
        reason = self.validate(observation)
        if reason is not None:
            self.metrics.record_skip(reason)
            return None
        assert isinstance(observation, FluxObservation)
        started = _time.perf_counter()
        try:
            step = self.tracker.step(observation)
        except Exception as exc:
            # A single pathological window must not kill the service;
            # the tracker state is unchanged on step entry failures.
            # The failure is still *observed*: logged with traceback,
            # typed into step_errors, surfaced in summary() — a
            # systematically failing tracker was invisible before.
            self.step_errors[type(exc).__name__] += 1
            self.last_error = f"{type(exc).__name__}: {exc}"
            _LOG.warning(
                "session %s: tracker step failed on window t=%s; "
                "skipping it", self.session_id, observation.time,
                exc_info=True,
            )
            self.metrics.record_skip(self.SKIP_STEP_FAILED)
            return None
        latency = _time.perf_counter() - started
        self.last_time = float(observation.time)
        self.last_step = step
        self.metrics.record_window(
            latency, mean_error=self._mean_error(step)
        )
        return step

    def _mean_error(self, step: TrackerStep) -> Optional[float]:
        if self.truth is None:
            return None
        true_positions = self.truth(step.time)
        if true_positions is None:
            return None
        from repro.smc.association import assignment_errors

        errors, _ = assignment_errors(step.estimates, np.asarray(true_positions))
        return float(errors.mean())

    # ------------------------------------------------------------------
    def estimates(self) -> np.ndarray:
        """Current ``(K, 2)`` per-user position estimates."""
        return self.tracker.estimates()

    def summary(self) -> dict:
        """Session status snapshot (JSON-ready via StreamMetrics rules)."""
        return {
            "session_id": self.session_id,
            "windows_consumed": self.windows_consumed,
            "last_time": self.last_time,
            "step_errors": dict(self.step_errors),
            "last_error": self.last_error,
            **self.metrics.to_dict(),
        }
