"""Shortest-path (BFS) collection-tree construction.

The paper assumes each mobile user builds a data collection tree rooted
at its current position spanning the network [10, 14]. We build a
breadth-first shortest-path tree from the user's attach node. Hop ties
are broken uniformly at random (per tree), which models the routing
randomness the paper mitigates via neighborhood flux smoothing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ConnectivityError
from repro.network.topology import Network
from repro.routing.tree import CollectionTree
from repro.util.rng import RandomState, as_generator


def build_collection_tree(
    network: Network,
    sink_position: np.ndarray,
    rng: RandomState = None,
    require_connected: bool = False,
    root: Optional[int] = None,
) -> CollectionTree:
    """Build a BFS collection tree rooted near ``sink_position``.

    Parameters
    ----------
    network:
        The deployed network.
    sink_position:
        The mobile user's physical position; the tree roots at the
        nearest sensor (the node the user attaches to). Ignored when
        ``root`` is given explicitly.
    rng:
        Controls random parent selection among equal-hop candidates.
    require_connected:
        If true, raise :class:`~repro.errors.ConnectivityError` when
        some nodes are unreachable from the root.
    root:
        Optional explicit root index (overrides ``sink_position``).
    """
    if root is None:
        root = network.nearest_node(np.asarray(sink_position, dtype=float))
    elif not 0 <= root < network.node_count:
        raise ConfigurationError(f"root {root} out of range")

    gen = as_generator(rng)
    graph = network.graph
    n = network.node_count
    hops = np.full(n, -1, dtype=np.int64)
    parents = np.full(n, -1, dtype=np.int64)
    hops[root] = 0
    parents[root] = root

    frontier = np.array([root], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        # For every unvisited neighbor of the frontier, collect all
        # frontier nodes that could be its parent and pick one uniformly.
        candidate_children: dict = {}
        for u in frontier:
            for v in graph.neighbors(int(u)):
                if hops[v] < 0:
                    candidate_children.setdefault(int(v), []).append(int(u))
        if not candidate_children:
            break
        for child, candidates in candidate_children.items():
            hops[child] = level
            parents[child] = candidates[int(gen.integers(len(candidates)))]
        frontier = np.fromiter(candidate_children.keys(), dtype=np.int64)

    if require_connected and np.any(hops < 0):
        unreachable = int(np.count_nonzero(hops < 0))
        raise ConnectivityError(
            f"{unreachable} node(s) unreachable from root {root}; "
            "the network is disconnected"
        )
    return CollectionTree(root=root, parents=parents, hops=hops)
