"""Data-collection routing substrate.

When a mobile user initiates a collection, a tree rooted at the sensor
nearest the user spans the network (TAG-style convergecast [14]); each
sensor's flux is the data it generates plus everything it relays —
i.e. proportional to its subtree size.
"""

from repro.routing.tree import CollectionTree
from repro.routing.spt import build_collection_tree
from repro.routing.geographic import build_geographic_tree

__all__ = ["CollectionTree", "build_collection_tree", "build_geographic_tree"]
