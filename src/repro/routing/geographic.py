"""Greedy geographic routing trees (alternate routing substrate).

The paper assumes BFS-style collection trees but notes the flux model
only depends on traffic concentrating toward the sink — any
sink-oriented routing produces qualitatively the same pattern. This
module builds trees by greedy geographic forwarding (each node parents
to the neighbor closest to the sink, as GPSR-like protocols do) so the
routing-robustness ablation can check the attack against a different
routing family.

Greedy forwarding can dead-end at local minima (no neighbor closer to
the sink); stuck nodes fall back to BFS attachment through the already
built tree, mirroring perimeter-mode recovery.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.network.topology import Network
from repro.routing.tree import CollectionTree
from repro.util.rng import RandomState, as_generator


def build_geographic_tree(
    network: Network,
    sink_position: np.ndarray,
    rng: RandomState = None,
    root: Optional[int] = None,
) -> CollectionTree:
    """Build a greedy-geographic collection tree rooted near the sink.

    Every node picks as parent its neighbor with the smallest Euclidean
    distance to the *root node* (strictly smaller than its own, to
    guarantee progress); nodes with no closer neighbor attach through
    BFS recovery over the remaining graph.
    """
    if root is None:
        root = network.nearest_node(np.asarray(sink_position, dtype=float))
    elif not 0 <= root < network.node_count:
        raise ConfigurationError(f"root {root} out of range")
    gen = as_generator(rng)
    graph = network.graph
    n = network.node_count
    root_pos = network.positions[root]
    dist = np.hypot(
        network.positions[:, 0] - root_pos[0],
        network.positions[:, 1] - root_pos[1],
    )

    parents = np.full(n, -1, dtype=np.int64)
    parents[root] = root

    # Greedy pass: process nodes by increasing distance so each node's
    # chosen parent is already attached when we reach it.
    order = np.argsort(dist)
    stuck = []
    for node in order:
        node = int(node)
        if node == root:
            continue
        neighbors = graph.neighbors(node)
        closer = neighbors[dist[neighbors] < dist[node] - 1e-12]
        attached = closer[parents[closer] >= 0]
        if attached.size:
            best = attached[np.argmin(dist[attached])]
            parents[node] = int(best)
        else:
            stuck.append(node)

    # Recovery pass: BFS from the attached set for local-minimum nodes.
    changed = True
    while stuck and changed:
        changed = False
        still = []
        for node in stuck:
            neighbors = graph.neighbors(node)
            attached = neighbors[parents[neighbors] >= 0]
            if attached.size:
                parents[node] = int(attached[np.argmin(dist[attached])])
                changed = True
            else:
                still.append(node)
        stuck = still

    # Compute hops by walking parents (graph-disconnected nodes keep -1).
    hops = np.full(n, -1, dtype=np.int64)
    hops[root] = 0
    # Nodes sorted by distance: parents generally precede children, but
    # recovery edges may not respect that — iterate to fixpoint.
    pending = [i for i in range(n) if parents[i] >= 0 and i != root]
    while pending:
        progressed = False
        rest = []
        for node in pending:
            p = parents[node]
            if hops[p] >= 0:
                hops[node] = hops[p] + 1
                progressed = True
            else:
                rest.append(node)
        if not progressed:
            # Remaining nodes form parent cycles (cannot happen with
            # strictly-decreasing distances, but guard anyway).
            for node in rest:
                parents[node] = -1
            break
        pending = rest
    return CollectionTree(root=root, parents=parents, hops=hops)
