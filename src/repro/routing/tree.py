"""Collection-tree representation and subtree aggregation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CollectionTree:
    """A rooted spanning tree over (a component of) the network.

    Attributes
    ----------
    root:
        Index of the root sensor (the user's attach node).
    parents:
        ``(n,)`` parent index per node; ``parents[root] == root`` and
        unreachable nodes hold ``-1``.
    hops:
        ``(n,)`` hop count from the root; ``-1`` for unreachable nodes.
    """

    root: int
    parents: np.ndarray
    hops: np.ndarray

    def __post_init__(self) -> None:
        n = self.parents.shape[0]
        if self.hops.shape != (n,):
            raise ConfigurationError(
                f"parents {self.parents.shape} and hops {self.hops.shape} must match"
            )
        if not 0 <= self.root < n:
            raise ConfigurationError(f"root {self.root} out of range for {n} nodes")
        if self.parents[self.root] != self.root or self.hops[self.root] != 0:
            raise ConfigurationError("root must be its own parent at hop 0")

    @property
    def node_count(self) -> int:
        return self.parents.shape[0]

    @property
    def reachable(self) -> np.ndarray:
        """Boolean mask of nodes covered by the tree."""
        return self.hops >= 0

    @property
    def max_hops(self) -> int:
        return int(self.hops.max())

    def subtree_aggregate(self, weights: Optional[np.ndarray] = None) -> np.ndarray:
        """Sum ``weights`` over each node's subtree (the per-node flux).

        With unit weights this is the subtree size: exactly the number
        of data units a node generates-plus-relays when every covered
        sensor contributes one unit per collection round. Runs one
        O(n) pass over nodes sorted by decreasing hop count — children
        always precede parents, so a single accumulation suffices.

        Unreachable nodes get aggregate 0.
        """
        n = self.node_count
        if weights is None:
            weights = np.ones(n)
        else:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != (n,):
                raise ConfigurationError(
                    f"weights must have shape ({n},), got {weights.shape}"
                )
        totals = np.where(self.reachable, weights, 0.0).astype(float)
        order = np.argsort(self.hops)[::-1]  # deepest first
        for node in order:
            if self.hops[node] <= 0:  # root or unreachable
                continue
            totals[self.parents[node]] += totals[node]
        return totals

    def children_counts(self) -> np.ndarray:
        """Number of direct children of each node."""
        counts = np.zeros(self.node_count, dtype=np.int64)
        mask = self.reachable & (np.arange(self.node_count) != self.root)
        np.add.at(counts, self.parents[mask], 1)
        return counts

    def path_to_root(self, node: int) -> np.ndarray:
        """The node sequence from ``node`` up to the root (inclusive)."""
        if not 0 <= node < self.node_count:
            raise ConfigurationError(f"node {node} out of range")
        if self.hops[node] < 0:
            raise ConfigurationError(f"node {node} is not covered by the tree")
        path = [node]
        while path[-1] != self.root:
            path.append(int(self.parents[path[-1]]))
        return np.asarray(path, dtype=np.int64)
