"""repro — reproduction of *Fingerprinting Mobile User Positions in
Sensor Networks* (Li, Jiang & Guibas, IEEE ICDCS 2010).

The library simulates mobile users collecting data over a wireless
sensor network, models the resulting per-node traffic flux, and
implements the paper's passive-sniffing attack: NLS fitting of the
flux model to sparse flux samples (instant localization) and
Sequential Monte Carlo estimation (continuous tracking), plus the
trace-driven evaluation pipeline and traffic-reshaping defenses.

Quick start::

    import numpy as np
    from repro import (
        build_network, simulate_flux, sample_sniffers_percentage,
        MeasurementModel, NLSLocalizer,
    )

    net = build_network(rng=1)                      # paper defaults
    truth = net.field.sample_uniform(2, np.random.default_rng(2))
    flux = simulate_flux(net, list(truth), [2.0, 1.5], rng=3)
    sniffers = sample_sniffers_percentage(net, 10, rng=4)
    obs = MeasurementModel(net, sniffers, smooth=True, rng=5).observe(flux)
    localizer = NLSLocalizer(net.field, net.positions[sniffers])
    result = localizer.localize(obs, user_count=2, rng=6)
    print(result.position_estimates(), result.errors_to(truth))
"""

from repro.errors import (
    AdmissionError,
    BackpressureTimeout,
    ConfigurationError,
    ConnectivityError,
    DeadlineExpired,
    DeploymentError,
    EngineError,
    FaultInjected,
    FittingError,
    GeometryError,
    ReproError,
    RetriesExhausted,
    ServeError,
    StreamError,
    TraceError,
    TrackingError,
    WorkerCrashed,
)
from repro.faults import FaultPlan, FaultSpec, RetryPolicy, injected
from repro.geometry import CircularField, PolygonField, RectangularField
from repro.network import (
    Network,
    build_network,
    sample_sniffers_percentage,
    sample_sniffers_random,
    sample_sniffers_stratified,
)
from repro.routing import CollectionTree, build_collection_tree
from repro.traffic import (
    CollectionEvent,
    CollectionSchedule,
    FluxSimulator,
    MeasurementModel,
    simulate_flux,
    smooth_flux,
    synchronous_schedule,
)
from repro.fluxmodel import DiscreteFluxModel, continuous_flux, model_flux
from repro.fingerprint import (
    CompositionFit,
    LocalizationResult,
    NLSLocalizer,
    brief_flux_map,
)
from repro.fpmap import (
    FingerprintMap,
    MapRegistry,
    SpatialIndex,
    build_fingerprint_map,
)
from repro.smc import (
    SequentialMonteCarloTracker,
    TrackerConfig,
    TrackerStep,
)
from repro.mobility import Trajectory
from repro.stream import (
    ReplaySource,
    SessionManager,
    SyntheticLiveSource,
    TrackingSession,
    run_stream,
)
from repro.traces import TraceDataset, build_synthetic_dataset

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigurationError",
    "GeometryError",
    "DeploymentError",
    "ConnectivityError",
    "FittingError",
    "TrackingError",
    "TraceError",
    "StreamError",
    "BackpressureTimeout",
    "ServeError",
    "AdmissionError",
    "DeadlineExpired",
    "EngineError",
    "WorkerCrashed",
    "RetriesExhausted",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "injected",
    "RectangularField",
    "CircularField",
    "PolygonField",
    "Network",
    "build_network",
    "sample_sniffers_random",
    "sample_sniffers_percentage",
    "sample_sniffers_stratified",
    "CollectionTree",
    "build_collection_tree",
    "CollectionEvent",
    "CollectionSchedule",
    "synchronous_schedule",
    "FluxSimulator",
    "simulate_flux",
    "smooth_flux",
    "MeasurementModel",
    "DiscreteFluxModel",
    "continuous_flux",
    "model_flux",
    "NLSLocalizer",
    "LocalizationResult",
    "CompositionFit",
    "brief_flux_map",
    "FingerprintMap",
    "MapRegistry",
    "SpatialIndex",
    "build_fingerprint_map",
    "SequentialMonteCarloTracker",
    "TrackerConfig",
    "TrackerStep",
    "Trajectory",
    "ReplaySource",
    "SyntheticLiveSource",
    "TrackingSession",
    "SessionManager",
    "run_stream",
    "TraceDataset",
    "build_synthetic_dataset",
    "__version__",
]
