"""Campus access-point layout generation (paper Fig. 9).

Dartmouth's ~500 APs cluster inside buildings; the paper uses the 50
APs falling in a rectangular region as landmark references. We
generate a clustered layout (building centers + per-building AP
scatter) over a campus extent, then select the rectangular region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError, TraceError
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive


@dataclass(frozen=True)
class AccessPoint:
    """One campus access point."""

    name: str
    position: Tuple[float, float]
    building: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("AP name must be non-empty")


def generate_campus_aps(
    count: int = 500,
    campus_extent: float = 300.0,
    building_count: int = 60,
    building_spread: float = 8.0,
    rng: RandomState = None,
) -> List[AccessPoint]:
    """Generate a clustered campus AP layout.

    Parameters
    ----------
    count:
        Total APs (Dartmouth: ~500).
    campus_extent:
        Side length of the square campus (arbitrary meters-like units).
    building_count:
        Number of building clusters; APs are assigned to buildings
        with popularity proportional to a Zipf-like weight (big
        buildings host many APs, as on a real campus).
    building_spread:
        Gaussian scatter of APs around their building center.
    """
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    if building_count < 1:
        raise ConfigurationError(f"building_count must be >= 1, got {building_count}")
    check_positive("campus_extent", campus_extent)
    check_positive("building_spread", building_spread)
    gen = as_generator(rng)

    centers = gen.uniform(0.0, campus_extent, size=(building_count, 2))
    weights = 1.0 / np.arange(1, building_count + 1)
    weights = weights / weights.sum()
    assignments = gen.choice(building_count, size=count, p=weights)

    aps: List[AccessPoint] = []
    for i in range(count):
        b = int(assignments[i])
        pos = centers[b] + gen.normal(0.0, building_spread, size=2)
        pos = np.clip(pos, 0.0, campus_extent)
        aps.append(
            AccessPoint(
                name=f"AP{i:03d}B{b:02d}",
                position=(float(pos[0]), float(pos[1])),
                building=b,
            )
        )
    return aps


def select_rectangular_region(
    aps: List[AccessPoint],
    target_count: int = 50,
) -> Tuple[List[AccessPoint], Tuple[float, float, float, float]]:
    """Pick a rectangular sub-region containing ~``target_count`` APs.

    Mirrors the paper's use of "the 50 of them in a rectangular
    region as landmark references". The region is grown around the
    densest area until at least ``target_count`` APs fall inside; the
    closest ``target_count`` to the region center are returned.
    """
    if not aps:
        raise TraceError("no APs to select from")
    if not 1 <= target_count <= len(aps):
        raise ConfigurationError(
            f"target_count must be in [1, {len(aps)}], got {target_count}"
        )
    positions = np.asarray([ap.position for ap in aps])
    # Densest area: the AP with most neighbors within a broad radius.
    extent = positions.max(axis=0) - positions.min(axis=0)
    radius = float(max(extent) / 6.0) or 1.0
    d = np.linalg.norm(positions[:, None, :] - positions[None, :, :], axis=2)
    density = (d < radius).sum(axis=1)
    center = positions[int(np.argmax(density))]

    dist_to_center = np.linalg.norm(positions - center[None, :], axis=1)
    order = np.argsort(dist_to_center)
    chosen = order[:target_count]
    sel = [aps[int(i)] for i in chosen]
    sel_pos = positions[chosen]
    rect = (
        float(sel_pos[:, 0].min()),
        float(sel_pos[:, 1].min()),
        float(sel_pos[:, 0].max()),
        float(sel_pos[:, 1].max()),
    )
    return sel, rect
