"""Parser for syslog-style association records.

Inverse of :mod:`repro.traces.synthetic`: turns raw record lines back
into per-card timestamped AP association sequences, skipping
``disassoc`` events (only associations position a user, as in the
paper's use of the movement set).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.errors import TraceError

#: One association: (timestamp_seconds, ap_name).
Association = Tuple[float, str]


def parse_syslog_records(
    lines: Iterable[str], include_events: Tuple[str, ...] = ("assoc", "reassoc")
) -> Dict[str, List[Association]]:
    """Parse record lines into ``{mac: [(time, ap_name), ...]}``.

    Lines must be tab-separated ``time \\t mac \\t ap \\t event``;
    malformed lines raise :class:`~repro.errors.TraceError` with the
    offending line number. Sequences come back time-sorted per card.
    """
    out: Dict[str, List[Association]] = {}
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) != 4:
            raise TraceError(
                f"line {lineno}: expected 4 tab-separated fields, got {len(parts)}"
            )
        ts_str, mac, ap, event = parts
        try:
            ts = float(ts_str)
        except ValueError as exc:
            raise TraceError(f"line {lineno}: bad timestamp {ts_str!r}") from exc
        if not mac or not ap or not event:
            raise TraceError(f"line {lineno}: empty field")
        if event not in ("assoc", "reassoc", "disassoc"):
            raise TraceError(f"line {lineno}: unknown event {event!r}")
        if event in include_events:
            out.setdefault(mac, []).append((ts, ap))
    for mac in out:
        out[mac].sort(key=lambda a: a[0])
    if not out:
        raise TraceError("no association records parsed")
    return out
