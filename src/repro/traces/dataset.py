"""The end-to-end trace dataset used by the trace-driven experiment."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, TraceError
from repro.geometry.field import Field
from repro.mobility.trajectory import Trajectory
from repro.traces.aps import (
    AccessPoint,
    generate_campus_aps,
    select_rectangular_region,
)
from repro.traces.mobility_convert import (
    associations_to_trajectory,
    intercept_and_compress,
    scale_to_field,
)
from repro.traces.parser import parse_syslog_records
from repro.traces.synthetic import SyntheticTraceConfig, generate_syslog_records
from repro.util.rng import RandomState, as_generator


@dataclass
class TraceDataset:
    """Parsed campus traces ready for trajectory extraction.

    Attributes
    ----------
    aps:
        The landmark APs (the paper's 50-in-a-rectangle).
    region:
        The landmark rectangle ``(xmin, ymin, xmax, ymax)`` in campus
        coordinates.
    associations:
        ``{mac: [(time, ap_name), ...]}`` for every card.
    """

    aps: List[AccessPoint]
    region: Tuple[float, float, float, float]
    associations: Dict[str, List]

    @property
    def ap_positions(self) -> Dict[str, Tuple[float, float]]:
        return {ap.name: ap.position for ap in self.aps}

    def usable_macs(self, min_in_region_events: int = 8) -> List[str]:
        """Cards with enough in-landmark-region associations to track."""
        names = set(self.ap_positions)
        out = []
        for mac, seq in self.associations.items():
            hits = sum(1 for _, ap in seq if ap in names)
            if hits >= min_in_region_events:
                out.append(mac)
        return sorted(out)

    def trajectories_for(
        self,
        macs: List[str],
        field: Field,
        segment_duration: float = 40 * 3600.0,
        compression: float = 100.0,
        rng: RandomState = None,
    ) -> List[Trajectory]:
        """Field-space, time-compressed trajectories for selected cards.

        Each card's record gets a random segment intercepted (per the
        paper's methodology), compressed, and scaled to the field.
        """
        if not macs:
            raise ConfigurationError("macs must be non-empty")
        gen = as_generator(rng)
        positions = self.ap_positions
        out: List[Trajectory] = []
        for mac in macs:
            if mac not in self.associations:
                raise TraceError(f"unknown card {mac!r}")
            campus_traj = associations_to_trajectory(
                self.associations[mac], positions
            )
            compressed = intercept_and_compress(
                campus_traj,
                segment_duration=segment_duration,
                compression=compression,
                start_fraction=float(gen.uniform()),
            )
            out.append(scale_to_field(compressed, self.region, field))
        return out


def build_synthetic_dataset(
    user_count: int = 60,
    ap_count: int = 500,
    landmark_count: int = 50,
    trace_config: Optional[SyntheticTraceConfig] = None,
    rng: RandomState = None,
) -> TraceDataset:
    """Generate + parse a full synthetic campus data set in one call.

    This is the drop-in substitution for loading Dartmouth v1.3: the
    same parser and conversion pipeline would ingest the real records.
    """
    gen = as_generator(rng)
    aps = generate_campus_aps(count=ap_count, rng=gen)
    landmarks, region = select_rectangular_region(aps, target_count=landmark_count)
    lines = generate_syslog_records(
        aps, user_count=user_count, config=trace_config, rng=gen
    )
    associations = parse_syslog_records(lines)
    return TraceDataset(aps=landmarks, region=region, associations=associations)
