"""Synthetic campus mobility traces (substitution for Dartmouth v1.3).

The paper's trace-driven experiment (Section V.C) uses the
"movement" portion of the Dartmouth Wireless-Network Traces [8]:
syslog-derived sequences of (timestamp, access point) associations per
wireless card, spanning 2001-2004, with ~500 APs of which 50 inside a
rectangular region serve as location landmarks. That dataset is not
redistributable here, so this package generates statistically similar
records: users dwell at APs with heavy-tailed dwell times and hop to
spatially nearby APs over multi-month timelines, emitted in a
syslog-like line format and parsed back exactly as the real set would
be. The attack pipeline consumes only (user -> timestamped AP-position
sequence), which this generator reproduces end-to-end.
"""

from repro.traces.aps import AccessPoint, generate_campus_aps, select_rectangular_region
from repro.traces.synthetic import SyntheticTraceConfig, generate_syslog_records
from repro.traces.parser import parse_syslog_records
from repro.traces.mobility_convert import associations_to_trajectory, scale_to_field
from repro.traces.dataset import TraceDataset, build_synthetic_dataset

__all__ = [
    "AccessPoint",
    "generate_campus_aps",
    "select_rectangular_region",
    "SyntheticTraceConfig",
    "generate_syslog_records",
    "parse_syslog_records",
    "associations_to_trajectory",
    "scale_to_field",
    "TraceDataset",
    "build_synthetic_dataset",
]
