"""AP association sequences -> field-space mobility trajectories.

The paper concatenates the locations of a card's associated APs into a
mobility path, intercepts a segment of each record, compresses the
timeline by a factor of 100, and maps everything onto the 30x30
simulation field.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, TraceError
from repro.geometry.field import Field
from repro.mobility.trajectory import Trajectory
from repro.traces.aps import AccessPoint
from repro.traces.parser import Association
from repro.util.validation import check_positive


def associations_to_trajectory(
    associations: Sequence[Association],
    ap_positions: Dict[str, Tuple[float, float]],
    drop_unknown: bool = True,
) -> Trajectory:
    """Concatenate AP locations into a timestamped path.

    Consecutive events at identical timestamps are deduplicated (keep
    the last); events at APs not in ``ap_positions`` (outside the
    landmark region) are dropped when ``drop_unknown``, else raise.
    """
    if not associations:
        raise TraceError("empty association sequence")
    times: List[float] = []
    points: List[Tuple[float, float]] = []
    for ts, ap in associations:
        if ap not in ap_positions:
            if drop_unknown:
                continue
            raise TraceError(f"AP {ap!r} has no known position")
        if times and ts <= times[-1]:
            if ts == times[-1]:
                points[-1] = ap_positions[ap]
                continue
            raise TraceError("associations must be time-sorted")
        times.append(float(ts))
        points.append(ap_positions[ap])
    if len(times) < 2:
        raise TraceError(
            "fewer than two in-region associations; cannot form a path"
        )
    return Trajectory(times=np.asarray(times), positions=np.asarray(points))


def scale_to_field(
    trajectory: Trajectory,
    source_rect: Tuple[float, float, float, float],
    field: Field,
) -> Trajectory:
    """Affinely map a campus-space trajectory onto the simulation field."""
    xmin, ymin, xmax, ymax = source_rect
    if xmax <= xmin or ymax <= ymin:
        raise ConfigurationError(f"degenerate source rect {source_rect}")
    fxmin, fymin, fxmax, fymax = field.bounding_box
    sx = (fxmax - fxmin) / (xmax - xmin)
    sy = (fymax - fymin) / (ymax - ymin)
    pts = trajectory.positions.copy()
    pts[:, 0] = fxmin + (pts[:, 0] - xmin) * sx
    pts[:, 1] = fymin + (pts[:, 1] - ymin) * sy
    pts = field.clip(pts)
    return Trajectory(times=trajectory.times.copy(), positions=pts)


def intercept_and_compress(
    trajectory: Trajectory,
    segment_duration: float,
    compression: float = 100.0,
    start_fraction: float = 0.0,
) -> Trajectory:
    """Intercept a segment and compress its timeline (paper: x100).

    Parameters
    ----------
    segment_duration:
        Length (in original time units) of the intercepted segment.
    compression:
        Timeline division factor.
    start_fraction:
        Where in the record the segment starts, as a fraction of the
        feasible range (0 = beginning).
    """
    check_positive("segment_duration", segment_duration)
    check_positive("compression", compression)
    if not 0.0 <= start_fraction <= 1.0:
        raise ConfigurationError(
            f"start_fraction must be in [0,1], got {start_fraction}"
        )
    span = trajectory.duration
    if span <= 0:
        raise TraceError("trajectory has zero duration")
    seg = min(segment_duration, span)
    latest_start = trajectory.times[0] + (span - seg)
    start = trajectory.times[0] + start_fraction * (latest_start - trajectory.times[0])
    segment = trajectory.segment(float(start), float(start + seg))
    compressed = segment.compress_time(compression)
    return compressed.shift_time(-compressed.times[0])
