"""Syslog-style trace generation.

Emits records in a format mirroring the Dartmouth movement set: one
line per association event,

    <unix_seconds>\t<card_mac>\t<ap_name>\t<event>

with events ``assoc`` / ``reassoc`` / ``disassoc``. User behaviour:
alternating *sessions* (on campus, hopping between spatially nearby
APs with heavy-tailed dwell times) and *gaps* (off network). A record
can span thousands of hours — the paper notes one card's record covers
6200+ hours — which is why the experiment intercepts a segment and
compresses the timeline by 100x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError, TraceError
from repro.traces.aps import AccessPoint
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive


@dataclass
class SyntheticTraceConfig:
    """Behavioural knobs of the synthetic trace generator.

    Times are in seconds. Defaults give multi-month records with
    minutes-to-hours dwell times, matching the flavour of the real
    data set.
    """

    horizon: float = 90 * 24 * 3600.0  # 90 days of activity
    mean_dwell: float = 3600.0  # ~1 h median-ish dwell at an AP
    dwell_sigma: float = 1.0  # lognormal shape: heavy tail
    mean_gap: float = 8 * 3600.0  # off-network gaps between sessions
    session_hop_count: int = 6  # mean AP hops per session
    hop_locality: float = 40.0  # preference scale for nearby APs
    start_jitter: float = 24 * 3600.0  # users start at different times

    def __post_init__(self) -> None:
        check_positive("horizon", self.horizon)
        check_positive("mean_dwell", self.mean_dwell)
        check_positive("dwell_sigma", self.dwell_sigma)
        check_positive("mean_gap", self.mean_gap)
        if self.session_hop_count < 1:
            raise ConfigurationError("session_hop_count must be >= 1")
        check_positive("hop_locality", self.hop_locality)
        check_positive("start_jitter", self.start_jitter)


def _mac_for(user: int) -> str:
    """Deterministic fake MAC for user index (looks like the real logs)."""
    b = [(user >> shift) & 0xFF for shift in (16, 8, 0)]
    return f"00:16:{b[0]:02x}:{b[1]:02x}:{b[2]:02x}:a0"


def generate_syslog_records(
    aps: Sequence[AccessPoint],
    user_count: int,
    config: SyntheticTraceConfig = None,
    rng: RandomState = None,
) -> List[str]:
    """Generate syslog-style association records for ``user_count`` cards.

    Movement model: within a session a user hops between APs with
    transition probability ``exp(-distance / hop_locality)`` (strongly
    favouring nearby APs — walking between adjacent buildings), dwell
    times lognormal (heavy tail: lecture vs quick walk-through), and
    exponential off-network gaps between sessions.
    """
    if user_count < 1:
        raise ConfigurationError(f"user_count must be >= 1, got {user_count}")
    if not aps:
        raise TraceError("need at least one AP")
    cfg = config if config is not None else SyntheticTraceConfig()
    gen = as_generator(rng)

    positions = np.asarray([ap.position for ap in aps])
    n_aps = len(aps)
    # Pre-compute locality transition matrix (rows normalized).
    d = np.linalg.norm(positions[:, None, :] - positions[None, :, :], axis=2)
    trans = np.exp(-d / cfg.hop_locality)
    np.fill_diagonal(trans, 0.0)
    row_sums = trans.sum(axis=1, keepdims=True)
    degenerate = row_sums[:, 0] <= 0
    if np.any(degenerate):
        trans[degenerate] = 1.0 / max(n_aps - 1, 1)
        np.fill_diagonal(trans, 0.0)
        row_sums = trans.sum(axis=1, keepdims=True)
    trans = trans / row_sums

    lines: List[str] = []
    # Users never start beyond half the horizon, even when the jitter
    # setting exceeds it (short-horizon test configurations).
    max_start = min(cfg.start_jitter, cfg.horizon / 2.0)
    for user in range(user_count):
        mac = _mac_for(user)
        t = float(gen.uniform(0.0, max_start))
        ap = int(gen.integers(n_aps))
        while t < cfg.horizon:
            hops = 1 + int(gen.poisson(cfg.session_hop_count))
            lines.append(f"{int(t)}\t{mac}\t{aps[ap].name}\tassoc")
            for _ in range(hops):
                dwell = float(gen.lognormal(np.log(cfg.mean_dwell), cfg.dwell_sigma))
                t += max(dwell, 1.0)
                if t >= cfg.horizon:
                    break
                ap = int(gen.choice(n_aps, p=trans[ap]))
                lines.append(f"{int(t)}\t{mac}\t{aps[ap].name}\treassoc")
            lines.append(f"{int(min(t, cfg.horizon))}\t{mac}\t{aps[ap].name}\tdisassoc")
            t += float(gen.exponential(cfg.mean_gap))
    if not lines:
        raise TraceError(
            "trace generation produced no records; increase horizon"
        )
    lines.sort(key=lambda s: int(s.split("\t", 1)[0]))
    return lines
