"""Node deployment strategies.

The paper deploys 900 nodes on a 30x30 field in *perturbed grids*
(following Bruck, Gao & Jiang [3]) for its main simulations, uses
*uniform random* placement for the model-accuracy study (2500 nodes)
and as the high-variability variant of the trace-driven experiment.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DeploymentError
from repro.geometry.field import Field, RectangularField
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_in_range, check_positive


def deploy_uniform_random(
    field: Field, count: int, rng: RandomState = None
) -> np.ndarray:
    """Place ``count`` nodes i.i.d.-uniformly in ``field``."""
    if count <= 0:
        raise ConfigurationError(f"count must be > 0, got {count}")
    return field.sample_uniform(count, as_generator(rng))


def deploy_perturbed_grid(
    field: RectangularField,
    count: int,
    perturbation: float = 0.4,
    rng: RandomState = None,
) -> np.ndarray:
    """Place ~``count`` nodes on a jittered square grid.

    Each node sits at a grid cell center displaced by a uniform offset
    of up to ``perturbation`` cell-widths in each axis (clipped to the
    field). ``count`` must be a perfect square to tile a rectangular
    field evenly; otherwise the nearest rows x cols factorization with
    ``rows * cols == count`` area-proportional split is used.

    Parameters
    ----------
    perturbation:
        Maximum displacement as a fraction of the cell size, in
        ``[0, 0.5]``. ``0`` is a perfect grid.
    """
    if count <= 0:
        raise ConfigurationError(f"count must be > 0, got {count}")
    if not isinstance(field, RectangularField):
        raise ConfigurationError("perturbed-grid deployment requires a RectangularField")
    check_in_range("perturbation", perturbation, 0.0, 0.5)
    gen = as_generator(rng)

    aspect = field.width / field.height
    rows = max(1, int(round(np.sqrt(count / aspect))))
    cols = max(1, int(round(count / rows)))
    while rows * cols < count:
        cols += 1
    cell_w = field.width / cols
    cell_h = field.height / rows

    jj, ii = np.meshgrid(np.arange(cols), np.arange(rows))
    centers_x = field.xmin + (jj.ravel() + 0.5) * cell_w
    centers_y = field.ymin + (ii.ravel() + 0.5) * cell_h
    centers = np.column_stack([centers_x, centers_y])[:count]

    offsets = gen.uniform(-perturbation, perturbation, size=(count, 2))
    offsets[:, 0] *= cell_w
    offsets[:, 1] *= cell_h
    nodes = centers + offsets
    nodes[:, 0] = np.clip(nodes[:, 0], field.xmin, field.xmax)
    nodes[:, 1] = np.clip(nodes[:, 1], field.ymin, field.ymax)
    return nodes


def deploy_poisson(
    field: Field, intensity: float, rng: RandomState = None
) -> np.ndarray:
    """Homogeneous Poisson point process with ``intensity`` nodes/unit-area.

    Used by density-sensitivity ablations; the realized count is
    Poisson-distributed with mean ``intensity * field.area``.
    """
    check_positive("intensity", intensity)
    gen = as_generator(rng)
    count = int(gen.poisson(intensity * field.area))
    if count == 0:
        raise DeploymentError(
            "Poisson deployment produced zero nodes; increase intensity"
        )
    return field.sample_uniform(count, gen)
