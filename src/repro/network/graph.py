"""Unit-disk connectivity graph with CSR adjacency.

Two sensors communicate iff their distance is at most the radio range
``radius`` (the paper sets radius 2.4 on the 30x30 field for an average
degree of ~18). The adjacency is stored in compressed-sparse-row form
so BFS tree construction and neighborhood smoothing are O(V + E) with
numpy-friendly access patterns.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, GeometryError
from repro.geometry.grid import SpatialHashGrid
from repro.util.validation import check_positive


class UnitDiskGraph:
    """Undirected unit-disk graph over 2-D node positions."""

    def __init__(self, positions: np.ndarray, radius: float):
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise GeometryError(
                f"positions must have shape (n, 2), got {positions.shape}"
            )
        if positions.shape[0] < 1:
            raise ConfigurationError("graph needs at least one node")
        self.positions = positions
        self.radius = check_positive("radius", radius)
        self._build_csr()

    def _build_csr(self) -> None:
        n = self.positions.shape[0]
        grid = SpatialHashGrid(self.positions, cell_size=self.radius)
        rows, cols = grid.all_pairs_within(self.radius)
        # Symmetrize and drop self loops (all_pairs_within already has i<j).
        src = np.concatenate([rows, cols])
        dst = np.concatenate([cols, rows])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        counts = np.bincount(src, minlength=n)
        self.indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self.indices = dst.astype(np.int64)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return self.positions.shape[0]

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return self.indices.size // 2

    def neighbors(self, node: int) -> np.ndarray:
        """Indices of ``node``'s neighbors."""
        if not 0 <= node < self.node_count:
            raise ConfigurationError(f"node index {node} out of range")
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def degrees(self) -> np.ndarray:
        """Degree of every node."""
        return np.diff(self.indptr)

    def average_degree(self) -> float:
        return float(self.degrees().mean())

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------
    def bfs_hops(self, source: int) -> np.ndarray:
        """Hop distance from ``source`` to every node (-1 if unreachable)."""
        if not 0 <= source < self.node_count:
            raise ConfigurationError(f"source index {source} out of range")
        hops = np.full(self.node_count, -1, dtype=np.int64)
        hops[source] = 0
        frontier = np.array([source], dtype=np.int64)
        level = 0
        while frontier.size:
            level += 1
            # Gather all neighbors of the frontier at once.
            nexts: List[np.ndarray] = [
                self.indices[self.indptr[u] : self.indptr[u + 1]] for u in frontier
            ]
            cand = np.unique(np.concatenate(nexts)) if nexts else np.empty(0, np.int64)
            cand = cand[hops[cand] < 0]
            hops[cand] = level
            frontier = cand
        return hops

    def connected_components(self) -> np.ndarray:
        """Component label for each node (labels are 0..k-1 by discovery)."""
        labels = np.full(self.node_count, -1, dtype=np.int64)
        current = 0
        for start in range(self.node_count):
            if labels[start] >= 0:
                continue
            hops = self.bfs_hops(start)
            labels[hops >= 0] = current
            current += 1
        return labels

    def is_connected(self) -> bool:
        return bool(np.all(self.bfs_hops(0) >= 0))

    def largest_component_nodes(self) -> np.ndarray:
        """Indices of the nodes in the largest connected component."""
        labels = self.connected_components()
        sizes = np.bincount(labels)
        return np.flatnonzero(labels == int(np.argmax(sizes)))

    # ------------------------------------------------------------------
    # Metrics used for calibration
    # ------------------------------------------------------------------
    def edge_lengths(self) -> np.ndarray:
        """Lengths of all directed edge entries (each undirected edge twice)."""
        src = np.repeat(np.arange(self.node_count), np.diff(self.indptr))
        diff = self.positions[src] - self.positions[self.indices]
        return np.hypot(diff[:, 0], diff[:, 1])

    def to_networkx(self):
        """Export as a :mod:`networkx` graph (for debugging / validation)."""
        import networkx as nx

        g = nx.Graph()
        for i, (x, y) in enumerate(self.positions):
            g.add_node(i, pos=(float(x), float(y)))
        src = np.repeat(np.arange(self.node_count), np.diff(self.indptr))
        for u, v in zip(src, self.indices):
            if u < v:
                g.add_edge(int(u), int(v))
        return g
