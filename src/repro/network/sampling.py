"""Sniffer-node selection.

The adversary sniffs the flux at a subset of sensors. The paper sweeps
the *percentage* of reporting nodes (40/20/10/5 %) and, for the density
sweep, fixes the absolute count at 90. Random selection is the paper's
method; stratified selection is our variance-reduction extension.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.network.topology import Network
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_in_range


def sample_sniffers_random(
    network: Network, count: int, rng: RandomState = None
) -> np.ndarray:
    """Choose ``count`` distinct sniffer node indices uniformly at random."""
    if not 1 <= count <= network.node_count:
        raise ConfigurationError(
            f"count must be in [1, {network.node_count}], got {count}"
        )
    gen = as_generator(rng)
    return np.sort(gen.choice(network.node_count, size=count, replace=False))


def sample_sniffers_percentage(
    network: Network, percentage: float, rng: RandomState = None
) -> np.ndarray:
    """Choose ``percentage`` % of the nodes as sniffers (at least 1)."""
    check_in_range("percentage", percentage, 0.0, 100.0, inclusive=(False, True))
    count = max(1, int(round(network.node_count * percentage / 100.0)))
    return sample_sniffers_random(network, count, rng=rng)


def sample_sniffers_stratified(
    network: Network, count: int, rng: RandomState = None
) -> np.ndarray:
    """Spatially stratified sniffer selection.

    Partitions the field's bounding box into ~``count`` cells and picks
    one random node from each non-empty cell (topping up randomly if
    some cells are empty). Covers the field more evenly than uniform
    choice, which reduces fitting variance at small sniffer counts.
    """
    if not 1 <= count <= network.node_count:
        raise ConfigurationError(
            f"count must be in [1, {network.node_count}], got {count}"
        )
    gen = as_generator(rng)
    xmin, ymin, xmax, ymax = network.field.bounding_box
    side = max(1, int(np.floor(np.sqrt(count))))
    cw = (xmax - xmin) / side
    ch = (ymax - ymin) / side
    cx = np.clip(((network.positions[:, 0] - xmin) / cw).astype(int), 0, side - 1)
    cy = np.clip(((network.positions[:, 1] - ymin) / ch).astype(int), 0, side - 1)
    cell = cx * side + cy

    chosen = []
    for c in np.unique(cell):
        members = np.flatnonzero(cell == c)
        chosen.append(int(gen.choice(members)))
        if len(chosen) == count:
            break
    chosen_arr = np.asarray(sorted(set(chosen)), dtype=np.int64)
    if chosen_arr.size < count:
        remaining = np.setdiff1d(np.arange(network.node_count), chosen_arr)
        extra = gen.choice(remaining, size=count - chosen_arr.size, replace=False)
        chosen_arr = np.sort(np.concatenate([chosen_arr, extra]))
    return chosen_arr
