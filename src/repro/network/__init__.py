"""Sensor-network substrate: deployment, connectivity, sniffer selection."""

from repro.network.deployment import (
    deploy_perturbed_grid,
    deploy_poisson,
    deploy_uniform_random,
)
from repro.network.graph import UnitDiskGraph
from repro.network.topology import Network, build_network
from repro.network.sampling import (
    sample_sniffers_random,
    sample_sniffers_stratified,
    sample_sniffers_percentage,
)

__all__ = [
    "deploy_perturbed_grid",
    "deploy_uniform_random",
    "deploy_poisson",
    "UnitDiskGraph",
    "Network",
    "build_network",
    "sample_sniffers_random",
    "sample_sniffers_stratified",
    "sample_sniffers_percentage",
]
