"""The :class:`Network` bundle: field + node positions + connectivity.

Everything downstream (routing trees, flux simulation, NLS fitting,
SMC tracking) consumes a :class:`Network`, so experiments construct one
per run via :func:`build_network` and pass it around.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ConnectivityError
from repro.geometry.field import Field, RectangularField
from repro.network.deployment import deploy_perturbed_grid, deploy_uniform_random
from repro.network.graph import UnitDiskGraph
from repro.util.rng import RandomState, as_generator


@dataclass
class Network:
    """A deployed, connected sensor network.

    Attributes
    ----------
    field:
        The deployment region.
    positions:
        ``(n, 2)`` node coordinates.
    graph:
        Unit-disk connectivity over ``positions``.
    """

    field: Field
    positions: np.ndarray
    graph: UnitDiskGraph

    def __post_init__(self) -> None:
        if self.positions.shape[0] != self.graph.node_count:
            raise ConfigurationError(
                "positions and graph disagree on node count: "
                f"{self.positions.shape[0]} vs {self.graph.node_count}"
            )

    @property
    def node_count(self) -> int:
        return self.positions.shape[0]

    @property
    def radius(self) -> float:
        return self.graph.radius

    def average_degree(self) -> float:
        return self.graph.average_degree()

    def average_hop_distance(self) -> float:
        """Mean physical length of a communication edge.

        Serves as the calibrated estimate ``r_hat`` of the paper's
        average per-hop distance ``r`` (Formula 3.3-3.4). The paper
        folds ``r`` into the fitted factor ``s/r``, but an explicit
        estimate is useful for model-accuracy analysis.
        """
        lengths = self.graph.edge_lengths()
        if lengths.size == 0:
            raise ConnectivityError("network has no edges")
        return float(lengths.mean())

    def nearest_node(self, point: np.ndarray) -> int:
        """Index of the sensor closest to ``point`` (the user's attach node)."""
        point = np.asarray(point, dtype=float).reshape(2)
        d = np.hypot(
            self.positions[:, 0] - point[0], self.positions[:, 1] - point[1]
        )
        return int(np.argmin(d))


def build_network(
    field: Optional[Field] = None,
    node_count: int = 900,
    radius: float = 2.4,
    deployment: str = "perturbed_grid",
    perturbation: float = 0.4,
    require_connected: bool = True,
    max_attempts: int = 20,
    rng: RandomState = None,
) -> Network:
    """Deploy a network with the paper's default parameters.

    Defaults reproduce the paper's main setting: 900 nodes on a 30x30
    rectangular field in perturbed grids, radio radius 2.4 (average
    degree ~18).

    Parameters
    ----------
    deployment:
        ``"perturbed_grid"`` or ``"uniform_random"``.
    require_connected:
        If true, re-draw the deployment until the unit-disk graph is
        connected (up to ``max_attempts``), since data-collection trees
        must span the network.
    """
    if field is None:
        field = RectangularField(30.0, 30.0)
    if deployment not in ("perturbed_grid", "uniform_random"):
        raise ConfigurationError(
            f"unknown deployment {deployment!r}; "
            "expected 'perturbed_grid' or 'uniform_random'"
        )
    gen = as_generator(rng)
    last: Optional[Network] = None
    for _ in range(max(1, max_attempts)):
        if deployment == "perturbed_grid":
            positions = deploy_perturbed_grid(
                field, node_count, perturbation=perturbation, rng=gen
            )
        else:
            positions = deploy_uniform_random(field, node_count, rng=gen)
        graph = UnitDiskGraph(positions, radius)
        net = Network(field=field, positions=positions, graph=graph)
        if not require_connected or graph.is_connected():
            return net
        last = net
    raise ConnectivityError(
        f"could not deploy a connected network in {max_attempts} attempts "
        f"(n={node_count}, radius={radius}, deployment={deployment}); "
        "increase radius or node count"
    )
