"""Sampling-based NLS search for user positions (paper Section IV.A).

The objective is non-differentiable in the positions on rectangular
fields, so the paper searches over sampled candidate locations (10,000
per user in Fig. 5) and keeps the top-10 compositions. Enumerating all
``N^K`` compositions is infeasible for K > 1 at paper scale, so the
multi-user search runs *coordinate descent*: sweep one user at a time,
batch-evaluating all of that user's candidates against the incumbent
positions of the others, with greedy residual-peeling initialization
and random restarts. At a coordinate-descent fixpoint the per-user
candidate ranking equals the paper's "minimum objective over
compositions" ranking restricted to the incumbent neighborhood — the
approximation DESIGN.md documents. Exact enumeration is retained for
small problems (tests, ablation).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, FittingError
from repro.fingerprint.candidates import (
    CandidateGenerator,
    MapSeededCandidates,
    UniformCandidates,
)
from repro.fingerprint.objective import (
    EvalWorkspace,
    FluxObjective,
    solve_thetas_batched,
)
from repro.fingerprint.results import CompositionFit, LocalizationResult
from repro.fluxmodel.discrete import DiscreteFluxModel
from repro.geometry.field import Field
from repro.traffic.measurement import FluxObservation
from repro.util.rng import RandomState, as_generator


@dataclass
class SweepOutcome:
    """Internal result of one coordinate-descent run over fixed pools.

    Attributes
    ----------
    best_indices:
        Per-user index into that user's candidate pool.
    best_thetas:
        ``(K,)`` fitted stretch factors at the incumbent composition.
    best_objective:
        Objective at the incumbent composition.
    per_user_objectives:
        For each user, the ``(N_j,)`` objectives of all its candidates
        evaluated against the final incumbents of the other users —
        exactly the ranking the SMC filtering phase needs.
    per_user_thetas:
        For each user, the ``(N_j,)`` fitted theta of the swept user in
        each of those evaluations.
    """

    best_indices: np.ndarray
    best_thetas: np.ndarray
    best_objective: float
    per_user_objectives: List[np.ndarray]
    per_user_thetas: List[np.ndarray]


def coordinate_descent(
    objective: FluxObjective,
    pools: Sequence[np.ndarray],
    rng: RandomState = None,
    sweeps: int = 4,
    tol: float = 1e-9,
    init_indices: Optional[np.ndarray] = None,
    pool_kernels: Optional[Sequence[Optional[np.ndarray]]] = None,
    engine=None,
) -> SweepOutcome:
    """Coordinate-descent composition search over per-user candidate pools.

    Parameters
    ----------
    objective:
        Bound flux objective (model + observation).
    pools:
        Per-user ``(N_j, 2)`` candidate position arrays.
    sweeps:
        Maximum full passes over the users.
    init_indices:
        Optional per-user starting candidate indices; greedy residual
        peeling is used when omitted.
    pool_kernels:
        Optional per-user precomputed ``(N_j, n)`` geometry kernels
        over the objective's sniffer set (``None`` entries are
        computed here). Map-seeded search passes the fingerprint map's
        cached kernels so candidates at map cells cost nothing.
    engine:
        Optional :class:`repro.engine.Engine`. With workers, pool
        kernel evaluation is chunk-parallel, each sweep's batched theta
        solve splits its candidate rows across workers, and the final
        per-user re-ranking fans out one user per worker. RNG
        consumption (shuffles) stays serial, and every parallel section
        writes disjoint output slices, so the float64 result is
        bitwise-identical to the serial one.
    """
    if not pools:
        raise ConfigurationError("need at least one candidate pool")
    gen = as_generator(rng)
    K = len(pools)
    if pool_kernels is None:
        pool_kernels = [None] * K
    elif len(pool_kernels) != K:
        raise ConfigurationError(
            f"pool_kernels has {len(pool_kernels)} entries for {K} pools"
        )
    # Weight each pool's kernels once up front; every sweep below then
    # evaluates preweighted (no per-call reweighting churn), with one
    # scratch workspace per pool so stacked-kernel and solver buffers
    # are reused across sweeps.
    kernels = []
    for p, pre in zip(pools, pool_kernels):
        raw = (
            objective.model.geometry_kernels(np.asarray(p, float), engine=engine)
            if pre is None
            else np.asarray(pre, dtype=float)
        )
        if raw.shape != (np.asarray(p).shape[0], objective.sniffer_count):
            raise ConfigurationError(
                f"pool kernels {raw.shape} do not match pool size "
                f"{np.asarray(p).shape[0]} x {objective.sniffer_count} sniffers"
            )
        kernels.append(objective._weight_kernels(raw))
    workspaces = [EvalWorkspace() for _ in range(K)]
    for j, kern in enumerate(kernels):
        if kern.shape[0] == 0:
            raise ConfigurationError(f"user {j} has an empty candidate pool")

    # ------------------------------------------------------------------
    # Initialization: greedy residual peeling in random user order.
    # ------------------------------------------------------------------
    order = np.arange(K)
    gen.shuffle(order)
    incumbents = np.zeros(K, dtype=np.int64)
    if init_indices is not None:
        init_indices = np.asarray(init_indices, dtype=np.int64)
        if init_indices.shape != (K,):
            raise ConfigurationError(
                f"init_indices must have shape ({K},), got {init_indices.shape}"
            )
        incumbents = init_indices.copy()
    else:
        chosen: List[int] = []
        fixed_stack: List[np.ndarray] = []
        for j in order:
            fixed = np.asarray(fixed_stack) if fixed_stack else None
            _, objs = objective.evaluate_batch(
                kernels[j], fixed, workspace=workspaces[j], preweighted=True,
                engine=engine,
            )
            best = int(np.argmin(objs))
            incumbents[j] = best
            chosen.append(best)
            fixed_stack.append(kernels[j][best])

    # ------------------------------------------------------------------
    # Sweeps. ``evals_valid[j]`` tracks whether user j's stored ranking
    # was computed against the *current* incumbents of the other users;
    # any incumbent move invalidates every other user's ranking.
    # ------------------------------------------------------------------
    per_user_objectives: List[Optional[np.ndarray]] = [None] * K
    per_user_thetas: List[Optional[np.ndarray]] = [None] * K
    evals_valid = [False] * K
    best_objective = np.inf
    best_thetas = np.zeros(K)

    for _ in range(max(1, sweeps)):
        improved = False
        gen.shuffle(order)
        for j in order:
            others = [k for k in range(K) if k != j]
            fixed = (
                np.stack([kernels[k][incumbents[k]] for k in others])
                if others
                else None
            )
            thetas, objs = objective.evaluate_batch(
                kernels[j], fixed, workspace=workspaces[j], preweighted=True,
                engine=engine,
            )
            per_user_objectives[j] = objs
            per_user_thetas[j] = thetas[:, 0]
            evals_valid[j] = True
            best = int(np.argmin(objs))
            if objs[best] < best_objective - tol:
                improved = True
                best_objective = float(objs[best])
                if best != incumbents[j]:
                    incumbents[j] = best
                    for k in range(K):
                        if k != j:
                            evals_valid[k] = False
                # Reorder thetas back to user order (swept user first).
                reordered = np.empty(K)
                reordered[j] = thetas[best, 0]
                for pos, k in enumerate(others):
                    reordered[k] = thetas[best, 1 + pos]
                best_thetas = reordered
        if not improved:
            break

    # Ensure rankings reflect the final incumbents for every user.
    # Only stale users are re-evaluated — when the loop exits via the
    # unimproved-sweep break, every ranking already reflects the final
    # incumbents and this costs nothing.
    stale = [j for j in range(K) if not evals_valid[j]]

    def _rerank(j: int) -> None:
        others = [k for k in range(K) if k != j]
        fixed = (
            np.stack([kernels[k][incumbents[k]] for k in others]) if others else None
        )
        # Inner engine=None: this may already run on an engine worker
        # (see the nesting rule in repro.engine.executor).
        thetas, objs = objective.evaluate_batch(
            kernels[j], fixed, workspace=workspaces[j], preweighted=True
        )
        per_user_objectives[j] = objs
        per_user_thetas[j] = thetas[:, 0]

    if engine is not None and engine.parallel and len(stale) > 1:
        engine.map(_rerank, stale)
    else:
        for j in stale:
            _rerank(j)

    return SweepOutcome(
        best_indices=incumbents,
        best_thetas=best_thetas,
        best_objective=best_objective,
        per_user_objectives=[np.asarray(o) for o in per_user_objectives],
        per_user_thetas=[np.asarray(t) for t in per_user_thetas],
    )


def prune_inactive_users(
    objective: FluxObjective,
    kernels: np.ndarray,
    tolerance: float = 0.05,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Backward elimination of users whose stretch fits to ~zero.

    An unconstrained multi-user fit happily *splits* one true user's
    flux across several fitted users (extra degrees of freedom always
    reduce the residual a little), which defeats both the paper's
    "choose K conservatively large" robustness claim and the
    asynchronous-updating test ``s_j/r -> 0``. The operational meaning
    of that test is: *if removing user j barely changes the best
    achievable fit, user j did not collect this round.* This routine
    implements exactly that — repeatedly drop the user whose removal
    increases the objective the least, as long as the increase stays
    within ``tolerance`` (relative).

    Parameters
    ----------
    kernels:
        ``(K, n)`` incumbent geometry kernels, one row per user.
    tolerance:
        Maximum relative objective increase an inactive user's removal
        may cause.

    Returns
    -------
    ``(active_mask, thetas, objective_value)`` — thetas are zero for
    pruned users.
    """
    kernels = np.asarray(kernels, dtype=float)
    if kernels.ndim != 2:
        raise ConfigurationError(f"kernels must be (K, n), got {kernels.shape}")
    if tolerance < 0:
        raise ConfigurationError(f"tolerance must be >= 0, got {tolerance}")
    K = kernels.shape[0]
    weighted = objective._weight_kernels(kernels)
    target = objective._weighted_target

    def fit(indices: List[int]) -> Tuple[np.ndarray, float]:
        thetas, objs = solve_thetas_batched(weighted[indices][None, :, :], target)
        return thetas[0], float(objs[0])

    active = list(range(K))
    thetas_active, obj = fit(active)
    while len(active) > 1:
        best_j = None
        best_obj = np.inf
        best_thetas = None
        for j in active:
            subset = [k for k in active if k != j]
            th, o = fit(subset)
            if o < best_obj:
                best_j, best_obj, best_thetas = j, o, th
        if best_obj <= (1.0 + tolerance) * obj + 1e-12:
            active.remove(best_j)
            obj = best_obj
            thetas_active = best_thetas
        else:
            break

    mask = np.zeros(K, dtype=bool)
    mask[active] = True
    thetas = np.zeros(K)
    thetas[active] = thetas_active
    return mask, thetas, obj


def forward_select_active(
    objective: FluxObjective,
    kernels: np.ndarray,
    min_improvement: float = 0.10,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Greedy forward selection of the users that actually collected.

    The conservative dual of :func:`prune_inactive_users`: start from
    an empty model and add the user whose inclusion improves the fit
    the most, stopping when the best addition improves the objective
    by less than ``min_improvement`` (relative). A user that truly
    collected leaves a large unexplained flux component until added, so
    it always clears the bar; a silent user only ever soaks up model
    error, which improves the fit just a few percent.

    Parameters
    ----------
    kernels:
        ``(K, n)`` incumbent geometry kernels, one row per user.

    Returns
    -------
    ``(active_mask, thetas, objective_value)`` — thetas are zero for
    unselected users.
    """
    kernels = np.asarray(kernels, dtype=float)
    if kernels.ndim != 2:
        raise ConfigurationError(f"kernels must be (K, n), got {kernels.shape}")
    if not 0 <= min_improvement < 1:
        raise ConfigurationError(
            f"min_improvement must be in [0, 1), got {min_improvement}"
        )
    K = kernels.shape[0]
    weighted = objective._weight_kernels(kernels)
    target = objective._weighted_target

    def fit(indices: List[int]) -> Tuple[np.ndarray, float]:
        thetas, objs = solve_thetas_batched(weighted[indices][None, :, :], target)
        return thetas[0], float(objs[0])

    selected: List[int] = []
    obj = float(np.linalg.norm(target))  # empty model: F == 0
    thetas_sel = np.zeros(0)
    remaining = list(range(K))
    while remaining:
        best_j = None
        best_obj = np.inf
        best_thetas = None
        for j in remaining:
            th, o = fit(selected + [j])
            if o < best_obj:
                best_j, best_obj, best_thetas = j, o, th
        if best_obj < (1.0 - min_improvement) * obj:
            selected.append(best_j)
            remaining.remove(best_j)
            obj = best_obj
            thetas_sel = best_thetas
        else:
            break

    mask = np.zeros(K, dtype=bool)
    thetas = np.zeros(K)
    if selected:
        mask[selected] = True
        thetas[selected] = thetas_sel
    return mask, thetas, obj


def harvest_outcome(
    heap: List[Tuple[float, int, np.ndarray, np.ndarray]],
    counter: int,
    outcome: SweepOutcome,
    pools: Sequence[np.ndarray],
    top_m: int,
) -> int:
    """Push one descent outcome's compositions onto a harvest heap.

    Harvests the incumbent composition plus, for each user, its
    ``top_m`` next-best alternatives evaluated against the incumbents
    of the others — the composition family :meth:`NLSLocalizer.
    localize` accumulates across restarts. Factored out so the serving
    layer's batched solve phase reuses the exact localize harvest.
    Returns the updated heap tiebreak counter.
    """
    K = len(pools)
    incumbent_pos = np.stack(
        [pools[j][outcome.best_indices[j]] for j in range(K)]
    )
    _heap_push(
        heap, counter, outcome.best_objective, incumbent_pos,
        outcome.best_thetas,
    )
    counter += 1
    for j in range(K):
        objs = outcome.per_user_objectives[j]
        order = np.argsort(objs)[: top_m + 1]
        for idx in order:
            if idx == outcome.best_indices[j]:
                continue
            pos = incumbent_pos.copy()
            pos[j] = pools[j][idx]
            thetas = outcome.best_thetas.copy()
            thetas[j] = outcome.per_user_thetas[j][idx]
            _heap_push(heap, counter, float(objs[idx]), pos, thetas)
            counter += 1
    return counter


def fits_from_heap(
    heap: List[Tuple[float, int, np.ndarray, np.ndarray]], top_m: int
) -> List[CompositionFit]:
    """The ``top_m`` best harvested compositions as CompositionFits."""
    fits = [
        CompositionFit(
            positions=pos, thetas=np.maximum(thetas, 0.0), objective=obj
        )
        for obj, _, pos, thetas in sorted(heap, key=lambda e: e[0])[:top_m]
    ]
    if not fits:
        raise FittingError("localization produced no candidate compositions")
    return fits


def _heap_push(heap, counter, objective, positions, thetas) -> None:
    heapq.heappush(heap, (float(objective), counter, positions, thetas))


def enumerate_compositions(
    objective: FluxObjective, pools: Sequence[np.ndarray], top_m: int = 10
) -> List[CompositionFit]:
    """Exact ``prod N_j`` enumeration (small problems / ablation baseline)."""
    K = len(pools)
    sizes = [np.asarray(p).shape[0] for p in pools]
    total = int(np.prod(sizes))
    if total > 2_000_000:
        raise FittingError(
            f"exact enumeration of {total} compositions is infeasible; "
            "use coordinate descent"
        )
    kernels = [objective.model.geometry_kernels(np.asarray(p, float)) for p in pools]
    fits: List[CompositionFit] = []
    batch_idx: List[Tuple[int, ...]] = []
    batch_stacks: List[np.ndarray] = []

    def flush() -> None:
        if not batch_idx:
            return
        stacks = objective._weight_kernels(np.stack(batch_stacks))
        thetas, objs = solve_thetas_batched(stacks, objective._weighted_target)
        for i, combo in enumerate(batch_idx):
            positions = np.stack(
                [np.asarray(pools[j], float)[combo[j]] for j in range(K)]
            )
            fits.append(
                CompositionFit(
                    positions=positions,
                    thetas=thetas[i],
                    objective=float(objs[i]),
                )
            )
        batch_idx.clear()
        batch_stacks.clear()

    for combo in itertools.product(*[range(s) for s in sizes]):
        batch_idx.append(combo)
        batch_stacks.append(np.stack([kernels[j][combo[j]] for j in range(K)]))
        if len(batch_idx) >= 4096:
            flush()
    flush()
    fits.sort(key=lambda f: f.objective)
    return fits[:top_m]


class NLSLocalizer:
    """Instant localization of K users from one flux observation.

    Parameters
    ----------
    field:
        The deployment field.
    sniffer_positions:
        ``(n, 2)`` positions of the sniffed sensors.
    d_floor:
        Near-sink clamp of the flux model (see
        :class:`~repro.fluxmodel.discrete.DiscreteFluxModel`).
    """

    def __init__(
        self,
        field: Field,
        sniffer_positions: np.ndarray,
        d_floor: float = 1.0,
    ):
        self.field = field
        self.model = DiscreteFluxModel(field, sniffer_positions, d_floor=d_floor)

    def objective_for(self, observation: FluxObservation) -> FluxObjective:
        """Bind an observation (handles NaN dropout) into an objective."""
        return FluxObjective.from_observation(self.model, observation)

    def localize(
        self,
        observation: FluxObservation,
        user_count: int,
        candidate_count: int = 2000,
        top_m: int = 10,
        restarts: int = 3,
        sweeps: int = 4,
        generator: Optional[CandidateGenerator] = None,
        rng: RandomState = None,
        fingerprint_map=None,
        seed_top_k: int = 32,
        engine=None,
    ) -> LocalizationResult:
        """Estimate the positions of ``user_count`` users.

        The paper notes K need not be known exactly: choosing K
        conservatively large works because surplus users fit
        ``theta -> 0``. Each restart draws fresh candidate pools; the
        top-``top_m`` distinct compositions across all restarts are
        returned (Fig. 5 keeps the top 10).

        Parameters
        ----------
        fingerprint_map:
            Optional :class:`repro.fpmap.FingerprintMap` built for this
            localizer's deployment. When given, each user's pool is
            seeded with the top-``seed_top_k`` map matches (greedy
            residual peeling across users) plus local disc refinement
            around them, instead of ``generator``'s uniform draws — the
            same accuracy is reached at a fraction of the candidate
            budget. The seeds' kernels come from the map's cache, so
            they are never recomputed.
        seed_top_k:
            Map matches seeding each user's pool (capped by
            ``candidate_count``).
        engine:
            Optional :class:`repro.engine.Engine` forwarded to kernel
            evaluation and coordinate descent. Restarts stay serial (the
            candidate draws consume RNG), so results with and without an
            engine are identical for float64.
        """
        if user_count < 1:
            raise ConfigurationError(f"user_count must be >= 1, got {user_count}")
        if candidate_count < 1:
            raise ConfigurationError(
                f"candidate_count must be >= 1, got {candidate_count}"
            )
        if top_m < 1:
            raise ConfigurationError(f"top_m must be >= 1, got {top_m}")
        gen = as_generator(rng)
        if generator is None:
            generator = UniformCandidates(self.field)
        objective = self.objective_for(observation)

        seed_generators: Optional[List[MapSeededCandidates]] = None
        seed_columns: Optional[np.ndarray] = None
        if fingerprint_map is not None:
            if seed_top_k < 1:
                raise ConfigurationError(
                    f"seed_top_k must be >= 1, got {seed_top_k}"
                )
            fingerprint_map.validate_against(
                self.field, self.model.node_positions, self.model.d_floor
            )
            values = np.asarray(observation.values, dtype=float)
            good = np.isfinite(values)
            if not np.all(good):
                # The objective's model is restricted to the surviving
                # sniffers; map kernel slices must use the same columns.
                seed_columns = np.flatnonzero(good)
            matches = fingerprint_map.peel_matches(
                values, user_count, k=min(seed_top_k, candidate_count)
            )
            refine = 2.0 * fingerprint_map.resolution
            seed_generators = [
                MapSeededCandidates.from_match(self.field, match, refine)
                for match in matches
            ]

        heap: List[Tuple[float, int, np.ndarray, np.ndarray]] = []
        counter = 0
        for _ in range(max(1, restarts)):
            if seed_generators is None:
                pools = [
                    generator.generate(candidate_count, gen)
                    for _ in range(user_count)
                ]
                pool_kernels = None
            else:
                pools = []
                pool_kernels = []
                for seeded in seed_generators:
                    pool = seeded.generate(candidate_count, gen)
                    k = seeded.seed_count(candidate_count)
                    seed_kernels = fingerprint_map.kernels_for(
                        seeded.seed_indices[:k], columns=seed_columns
                    )
                    if pool.shape[0] > k:
                        rest = objective.model.geometry_kernels(
                            pool[k:], engine=engine
                        )
                        kernels = np.concatenate([seed_kernels, rest], axis=0)
                    else:
                        kernels = np.asarray(seed_kernels)
                    pools.append(pool)
                    pool_kernels.append(kernels)
            outcome = coordinate_descent(
                objective, pools, rng=gen, sweeps=sweeps,
                pool_kernels=pool_kernels, engine=engine,
            )
            # Harvest compositions: the incumbent plus, for each user,
            # its next-best alternatives against the incumbents.
            counter = harvest_outcome(heap, counter, outcome, pools, top_m)

        return LocalizationResult(fits=fits_from_heap(heap, top_m))
