"""The NLS objective ``min || F(positions, thetas) - F' ||``.

Key structure (paper Formula 4.1): the modeled flux is

    F_i = sum_j theta_j * g_i(p_j),    theta_j = s_j / r >= 0

— *linear* in the integrated stretch factors ``theta``. For any fixed
candidate positions the optimal thetas solve a tiny non-negative least
squares problem; we solve the unconstrained normal equations for whole
batches of candidate compositions at once and fall back to an
active-set NNLS only for the (rare) candidates whose unconstrained
solution goes negative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, FittingError
from repro.fluxmodel.discrete import DiscreteFluxModel
from repro.traffic.measurement import FluxObservation

_RIDGE = 1e-10


class EvalWorkspace:
    """Reusable scratch buffers for repeated batched evaluations.

    The coordinate-descent search calls :meth:`FluxObjective.
    evaluate_batch` with the same ``(N, K, n)`` shape every sweep;
    without reuse each call allocates the stacked-kernel tensor, the
    normal-equation matrices, and the prediction buffer anew
    (profile-visible churn). A workspace keyed by (name, shape) keeps
    one buffer per role alive across calls. Output arrays handed back
    to the caller (thetas, objectives) are always freshly allocated —
    only internal scratch is reused, so returned arrays stay valid
    across subsequent calls.
    """

    def __init__(self) -> None:
        self._buffers: dict = {}

    def buffer(self, name: str, shape: Tuple[int, ...]) -> np.ndarray:
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape:
            buf = np.empty(shape, dtype=float)
            self._buffers[name] = buf
        return buf


def solve_thetas(kernels: np.ndarray, target: np.ndarray) -> Tuple[np.ndarray, float]:
    """Non-negative LS for one composition.

    Parameters
    ----------
    kernels:
        ``(K, n)`` geometry kernels (one row per user).
    target:
        ``(n,)`` observed flux.

    Returns
    -------
    ``(thetas, objective)`` where ``objective = ||kernels.T @ thetas - target||_2``.
    """
    kernels = np.asarray(kernels, dtype=float)
    target = np.asarray(target, dtype=float)
    if kernels.ndim != 2 or kernels.shape[1] != target.shape[0]:
        raise ConfigurationError(
            f"kernels {kernels.shape} incompatible with target {target.shape}"
        )
    from scipy.optimize import nnls

    thetas, residual = nnls(kernels.T, target)
    return thetas, float(residual)


def solve_thetas_batched(
    kernel_stacks: np.ndarray,
    target: np.ndarray,
    workspace: Optional[EvalWorkspace] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Non-negative LS for a batch of compositions.

    Parameters
    ----------
    kernel_stacks:
        ``(B, K, n)`` — B candidate compositions of K users over n
        sniffers.
    target:
        ``(n,)`` observed flux.
    workspace:
        Optional scratch-buffer pool; pass one per repeated call site
        to avoid reallocating the normal-equation and prediction
        buffers every sweep.

    Returns
    -------
    ``(thetas, objectives)`` with shapes ``(B, K)`` and ``(B,)`` —
    always freshly allocated (safe to retain across calls).

    Strategy: batched unconstrained normal equations (one
    ``np.linalg.solve`` over stacked K x K systems); compositions whose
    solution violates ``theta >= 0`` are re-solved exactly with NNLS.
    """
    kernel_stacks = np.asarray(kernel_stacks, dtype=float)
    target = np.asarray(target, dtype=float)
    if kernel_stacks.ndim != 3:
        raise ConfigurationError(
            f"kernel_stacks must be (B, K, n), got {kernel_stacks.shape}"
        )
    B, K, n = kernel_stacks.shape
    if target.shape != (n,):
        raise ConfigurationError(
            f"target must have shape ({n},), got {target.shape}"
        )
    ws = workspace if workspace is not None else EvalWorkspace()

    # Normal equations: A = G G^T (B, K, K), b = G F' (B, K).
    A = np.matmul(
        kernel_stacks,
        kernel_stacks.transpose(0, 2, 1),
        out=ws.buffer("normal", (B, K, K)),
    )
    A += _RIDGE * np.eye(K)[None, :, :]
    b = np.matmul(kernel_stacks, target, out=ws.buffer("rhs", (B, K)))
    try:
        thetas = np.linalg.solve(A, b[..., None])[..., 0]
    except np.linalg.LinAlgError:
        thetas = _pinv_solve(A, b)

    negative = np.any(thetas < 0, axis=1)
    if np.any(negative):
        from scipy.optimize import nnls

        for idx in np.flatnonzero(negative):
            thetas[idx], _ = nnls(kernel_stacks[idx].T, target)

    predicted = np.einsum(
        "bk,bkn->bn", thetas, kernel_stacks, out=ws.buffer("predicted", (B, n))
    )
    predicted -= target[None, :]
    objectives = np.linalg.norm(predicted, axis=1)
    return thetas, objectives


def _pinv_solve(A: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = np.empty_like(b)
    for i in range(A.shape[0]):
        out[i] = np.linalg.pinv(A[i]) @ b[i]
    return out


@dataclass
class FluxObjective:
    """Bound objective: a flux model over the sniffer nodes plus one observation.

    Handles NaN readings (sniffer dropout) by masking them out of both
    the kernels and the target. Optional per-sniffer ``weights`` turn
    the residual into a weighted LS problem; *relative* weighting
    (``w_i ~ 1/F'_i``) stops the huge near-sink fluxes from dominating
    the fit, which matters because the model is least accurate exactly
    there (paper Fig. 3b).
    """

    model: DiscreteFluxModel
    target: np.ndarray
    weights: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.target = np.asarray(self.target, dtype=float)
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=float)
            if self.weights.shape != self.target.shape:
                raise ConfigurationError(
                    f"weights {self.weights.shape} must match target "
                    f"{self.target.shape}"
                )
            if np.any(self.weights <= 0) or not np.all(np.isfinite(self.weights)):
                raise ConfigurationError("weights must be finite and positive")
        self._weighted_target = (
            self.target if self.weights is None else self.weights * self.target
        )

    @classmethod
    def from_observation(
        cls,
        model: DiscreteFluxModel,
        observation: FluxObservation,
        weighting: str = "absolute",
    ) -> "FluxObjective":
        """Build from a :class:`FluxObservation` over the same sniffer set.

        Parameters
        ----------
        weighting:
            ``"absolute"`` — plain LS on raw flux residuals (the
            paper's formulation and our default); ``"relative"`` —
            residuals scaled by ``1 / max(F'_i, median positive flux)``
            so every sniffer contributes comparably (see the weighting
            ablation bench; helps single-user, hurts multi-user).
        """
        values = np.asarray(observation.values, dtype=float)
        if values.shape[0] != model.node_count:
            raise ConfigurationError(
                f"observation has {values.shape[0]} readings but the model covers "
                f"{model.node_count} nodes"
            )
        good = ~np.isnan(values)
        if not np.any(good):
            raise FittingError("all sniffer readings dropped out; cannot fit")
        if not np.all(good):
            model = model.restrict_to(np.flatnonzero(good))
            values = values[good]
        if weighting == "absolute":
            weights = None
        elif weighting == "relative":
            positive = values[values > 0]
            floor = float(np.median(positive)) if positive.size else 1.0
            weights = 1.0 / np.maximum(values, max(floor, 1e-12))
        else:
            raise ConfigurationError(
                f"weighting must be 'absolute' or 'relative', got {weighting!r}"
            )
        return cls(model=model, target=values, weights=weights)

    @property
    def sniffer_count(self) -> int:
        return int(self.target.shape[0])

    def _weight_kernels(self, kernels: np.ndarray) -> np.ndarray:
        if self.weights is None:
            return kernels
        return kernels * self.weights  # broadcasts over leading axes

    def evaluate(self, sinks: np.ndarray) -> Tuple[np.ndarray, float]:
        """Best thetas and objective for one composition of sink positions."""
        kernels = self.model.geometry_kernels(np.asarray(sinks, dtype=float))
        return solve_thetas(self._weight_kernels(kernels), self._weighted_target)

    def evaluate_batch(
        self,
        candidate_kernels: np.ndarray,
        fixed_kernels: Optional[np.ndarray] = None,
        workspace: Optional[EvalWorkspace] = None,
        preweighted: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate many single-user candidates against fixed co-users.

        Parameters
        ----------
        candidate_kernels:
            ``(N, n)`` kernels of N candidate positions for the user
            being swept.
        fixed_kernels:
            ``(K-1, n)`` kernels of the other users' incumbent
            positions, or ``None`` for the single-user case.
        workspace:
            Optional scratch-buffer pool reused across sweeps; callers
            evaluating the same pool repeatedly (coordinate descent)
            pass one per pool so the stacked-kernel tensor and solver
            scratch are allocated once instead of per call.
        preweighted:
            The kernels were already passed through per-sniffer
            weighting (:meth:`_weight_kernels`); skip re-weighting.
            Lets sweep loops weight each candidate pool once up front.

        Returns
        -------
        ``(thetas, objectives)`` of shapes ``(N, K)`` and ``(N,)``
        where the *first* theta column corresponds to the swept user.
        Both are freshly allocated on every call.
        """
        candidate_kernels = np.asarray(candidate_kernels, dtype=float)
        if candidate_kernels.ndim != 2:
            raise ConfigurationError(
                f"candidate_kernels must be (N, n), got {candidate_kernels.shape}"
            )
        ws = workspace if workspace is not None else EvalWorkspace()
        if not preweighted:
            candidate_kernels = self._weight_kernels(candidate_kernels)
        N, n = candidate_kernels.shape
        fixed_count = 0 if fixed_kernels is None else fixed_kernels.shape[0]
        if fixed_count == 0:
            stacks = candidate_kernels[:, None, :]
        else:
            fixed = np.asarray(fixed_kernels, dtype=float)
            if not preweighted:
                fixed = self._weight_kernels(fixed)
            stacks = ws.buffer("stacks", (N, 1 + fixed_count, n))
            stacks[:, 0, :] = candidate_kernels
            stacks[:, 1:, :] = fixed[None, :, :]
        return solve_thetas_batched(stacks, self._weighted_target, workspace=ws)
