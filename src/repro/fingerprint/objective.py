"""The NLS objective ``min || F(positions, thetas) - F' ||``.

Key structure (paper Formula 4.1): the modeled flux is

    F_i = sum_j theta_j * g_i(p_j),    theta_j = s_j / r >= 0

— *linear* in the integrated stretch factors ``theta``. For any fixed
candidate positions the optimal thetas solve a tiny non-negative least
squares problem; we solve the unconstrained normal equations for whole
batches of candidate compositions at once and fall back to an
active-set NNLS only for the (rare) candidates whose unconstrained
solution goes negative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, FittingError
from repro.fluxmodel.discrete import DiscreteFluxModel
from repro.traffic.measurement import FluxObservation

_RIDGE = 1e-10


class EvalWorkspace:
    """Reusable scratch buffers for repeated batched evaluations.

    The coordinate-descent search calls :meth:`FluxObjective.
    evaluate_batch` with the same ``(N, K, n)`` shape every sweep;
    without reuse each call allocates the stacked-kernel tensor, the
    normal-equation matrices, and the prediction buffer anew
    (profile-visible churn). A workspace keyed by (name, shape) keeps
    one buffer per role alive across calls. Output arrays handed back
    to the caller (thetas, objectives) are always freshly allocated —
    only internal scratch is reused, so returned arrays stay valid
    across subsequent calls.
    """

    def __init__(self) -> None:
        self._buffers: dict = {}

    def buffer(self, name: str, shape: Tuple[int, ...]) -> np.ndarray:
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape:
            buf = np.empty(shape, dtype=float)
            self._buffers[name] = buf
        return buf


def solve_thetas(kernels: np.ndarray, target: np.ndarray) -> Tuple[np.ndarray, float]:
    """Non-negative LS for one composition.

    Parameters
    ----------
    kernels:
        ``(K, n)`` geometry kernels (one row per user).
    target:
        ``(n,)`` observed flux.

    Returns
    -------
    ``(thetas, objective)`` where ``objective = ||kernels.T @ thetas - target||_2``.
    """
    kernels = np.asarray(kernels, dtype=float)
    target = np.asarray(target, dtype=float)
    if kernels.ndim != 2 or kernels.shape[1] != target.shape[0]:
        raise ConfigurationError(
            f"kernels {kernels.shape} incompatible with target {target.shape}"
        )
    from scipy.optimize import nnls

    thetas, residual = nnls(kernels.T, target)
    return thetas, float(residual)


# Largest K solved by exact support enumeration (2^K - 1 batched tiny
# solves); beyond it the scipy per-row fallback takes over.
_NNLS_ENUM_MAX_K = 8

# Smallest batch worth splitting across engine workers: below this the
# per-task dispatch overhead outweighs the row work (each row is a
# K x K solve — microseconds), so smaller batches solve inline even
# when an engine with workers is passed.
_SOLVE_PARALLEL_MIN_ROWS = 2048


def solve_thetas_batched(
    kernel_stacks: np.ndarray,
    target: np.ndarray,
    workspace: Optional[EvalWorkspace] = None,
    engine=None,
    nnls_mode: str = "auto",
) -> Tuple[np.ndarray, np.ndarray]:
    """Non-negative LS for a batch of compositions.

    Parameters
    ----------
    kernel_stacks:
        ``(B, K, n)`` — B candidate compositions of K users over n
        sniffers.
    target:
        ``(n,)`` observed flux.
    workspace:
        Optional scratch-buffer pool; pass one per repeated call site
        to avoid reallocating the normal-equation and prediction
        buffers every sweep. Used by the serial path only — parallel
        row chunks carry their own scratch.
    engine:
        Optional :class:`repro.engine.Engine`; with workers the batch
        rows are split into contiguous chunks solved concurrently.
        Every operation is row-local, so the parallel float64 result is
        bitwise-equal to the serial one.
    nnls_mode:
        ``"auto"`` (default) — negative-theta compositions are re-solved
        by exact batched support enumeration for ``K <= 8`` (one tiny
        vectorized solve per support instead of one Python-level scipy
        call per composition); ``"scipy"`` — always the per-row scipy
        NNLS (the pre-engine behavior, kept for benchmarks/ablation).

    Returns
    -------
    ``(thetas, objectives)`` with shapes ``(B, K)`` and ``(B,)`` —
    always freshly allocated (safe to retain across calls).

    Strategy: batched unconstrained normal equations (one
    ``np.linalg.solve`` over stacked K x K systems); compositions whose
    solution violates ``theta >= 0`` are re-solved exactly with NNLS.
    """
    kernel_stacks = np.asarray(kernel_stacks, dtype=float)
    target = np.asarray(target, dtype=float)
    if kernel_stacks.ndim != 3:
        raise ConfigurationError(
            f"kernel_stacks must be (B, K, n), got {kernel_stacks.shape}"
        )
    if nnls_mode not in ("auto", "scipy"):
        raise ConfigurationError(
            f"nnls_mode must be 'auto' or 'scipy', got {nnls_mode!r}"
        )
    B, K, n = kernel_stacks.shape
    if target.shape != (n,):
        raise ConfigurationError(
            f"target must have shape ({n},), got {target.shape}"
        )
    ws = workspace if workspace is not None else EvalWorkspace()
    thetas = np.empty((B, K))
    objectives = np.empty(B)

    if (
        engine is not None
        and engine.parallel
        and B >= _SOLVE_PARALLEL_MIN_ROWS
    ):
        rows = max(256, -(-B // engine.workers))  # ceil division
        engine.run_chunks(
            B,
            lambda start, stop: _solve_rows(
                kernel_stacks, target, thetas, objectives,
                start, stop, None, nnls_mode,
            ),
            chunk_size=rows,
        )
        return thetas, objectives
    _solve_rows(kernel_stacks, target, thetas, objectives, 0, B, ws, nnls_mode)
    return thetas, objectives


def _solve_rows(
    kernel_stacks: np.ndarray,
    target: np.ndarray,
    thetas: np.ndarray,
    objectives: np.ndarray,
    start: int,
    stop: int,
    ws: Optional[EvalWorkspace],
    nnls_mode: str,
) -> None:
    """Solve composition rows ``[start, stop)`` into the output slices."""
    sub = kernel_stacks[start:stop]
    B, K, n = sub.shape
    # Normal equations: A = G G^T (B, K, K), b = G F' (B, K).
    if ws is not None:
        A = np.matmul(
            sub, sub.transpose(0, 2, 1), out=ws.buffer("normal", (B, K, K))
        )
        b = np.matmul(sub, target, out=ws.buffer("rhs", (B, K)))
        predicted = ws.buffer("predicted", (B, n))
    else:
        A = np.matmul(sub, sub.transpose(0, 2, 1))
        b = np.matmul(sub, target)
        predicted = np.empty((B, n))
    diag = np.arange(K)
    A[:, diag, diag] += _RIDGE
    try:
        th = np.linalg.solve(A, b[..., None])[..., 0]
    except np.linalg.LinAlgError:
        th = _pinv_solve(A, b)

    negative = np.any(th < 0, axis=1)
    if np.any(negative):
        bad = np.flatnonzero(negative)
        if nnls_mode == "auto" and K <= _NNLS_ENUM_MAX_K:
            th[bad] = _nnls_enumerate(A[bad], b[bad], skip_full=True)
        else:
            from scipy.optimize import nnls

            for idx in bad:
                th[idx], _ = nnls(sub[idx].T, target)

    np.einsum("bk,bkn->bn", th, sub, out=predicted)
    predicted -= target[None, :]
    objectives[start:stop] = np.linalg.norm(predicted, axis=1)
    thetas[start:stop] = th


def solve_thetas_candidates(
    candidate_kernels: np.ndarray,
    fixed_kernels: Optional[np.ndarray],
    target: np.ndarray,
    workspace: Optional[EvalWorkspace] = None,
    engine=None,
    nnls_mode: str = "auto",
) -> Tuple[np.ndarray, np.ndarray]:
    """Factored NNLS for sweep-shaped batches (one varying user).

    Equivalent to :func:`solve_thetas_batched` over stacks whose rows
    all share the same ``fixed_kernels``, exploiting that structure:
    the fixed-fixed normal block and right-hand side are computed once
    per call instead of per candidate, the candidate block is one
    rank-1 border, and the ``(N, K, n)`` stacked tensor is never
    materialized. This is the coordinate-descent hot path — every sweep
    evaluates thousands of candidates against a handful of incumbents.

    Parameters
    ----------
    candidate_kernels:
        ``(N, n)`` (already weighted) kernels of the swept user.
    fixed_kernels:
        ``(F, n)`` (already weighted) incumbent kernels of the other
        users, or ``None``.
    target / workspace / engine / nnls_mode:
        As in :func:`solve_thetas_batched`.

    Returns ``(thetas, objectives)`` of shapes ``(N, 1 + F)`` and
    ``(N,)``; theta column 0 is the swept user.
    """
    candidate_kernels = np.asarray(candidate_kernels, dtype=float)
    target = np.asarray(target, dtype=float)
    if candidate_kernels.ndim != 2:
        raise ConfigurationError(
            f"candidate_kernels must be (N, n), got {candidate_kernels.shape}"
        )
    N, n = candidate_kernels.shape
    if target.shape != (n,):
        raise ConfigurationError(
            f"target must have shape ({n},), got {target.shape}"
        )
    if fixed_kernels is None:
        fixed = None
        Aff = bf = None
        K = 1
    else:
        fixed = np.asarray(fixed_kernels, dtype=float)
        if fixed.ndim != 2 or fixed.shape[1] != n:
            raise ConfigurationError(
                f"fixed_kernels must be (F, {n}), got {fixed.shape}"
            )
        Aff = fixed @ fixed.T
        bf = fixed @ target
        K = 1 + fixed.shape[0]
    ws = workspace if workspace is not None else EvalWorkspace()
    thetas = np.empty((N, K))
    objectives = np.empty(N)

    if (
        engine is not None
        and engine.parallel
        and N >= _SOLVE_PARALLEL_MIN_ROWS
    ):
        rows = max(256, -(-N // engine.workers))
        engine.run_chunks(
            N,
            lambda start, stop: _solve_candidate_rows(
                candidate_kernels, fixed, Aff, bf, target,
                thetas, objectives, start, stop, None, nnls_mode,
            ),
            chunk_size=rows,
        )
        return thetas, objectives
    _solve_candidate_rows(
        candidate_kernels, fixed, Aff, bf, target,
        thetas, objectives, 0, N, ws, nnls_mode,
    )
    return thetas, objectives


def _solve_candidate_rows(
    candidates: np.ndarray,
    fixed: Optional[np.ndarray],
    Aff: Optional[np.ndarray],
    bf: Optional[np.ndarray],
    target: np.ndarray,
    thetas: np.ndarray,
    objectives: np.ndarray,
    start: int,
    stop: int,
    ws: Optional[EvalWorkspace],
    nnls_mode: str,
) -> None:
    """Factored-normal-equation solve of candidate rows ``[start, stop)``."""
    c = candidates[start:stop]
    B, n = c.shape
    F = 0 if fixed is None else fixed.shape[0]
    K = 1 + F
    if ws is not None:
        A = ws.buffer("normal", (B, K, K))
        b = ws.buffer("rhs", (B, K))
        predicted = ws.buffer("predicted", (B, n))
    else:
        A = np.empty((B, K, K))
        b = np.empty((B, K))
        predicted = np.empty((B, n))
    # All row products go through einsum rather than BLAS ``@``: gemm
    # picks blocking by matrix shape, so a chunk of rows can round
    # differently than the full batch — einsum's per-output-element
    # loops make every row's value independent of the chunk split,
    # keeping parallel output bitwise-equal to serial.
    np.einsum("ij,ij->i", c, c, out=A[:, 0, 0])
    A[:, 0, 0] += _RIDGE
    np.einsum("ij,j->i", c, target, out=b[:, 0])
    if F:
        border = np.einsum("ij,kj->ik", c, fixed)  # (B, F)
        A[:, 0, 1:] = border
        A[:, 1:, 0] = border
        A[:, 1:, 1:] = Aff
        diag = np.arange(1, K)
        A[:, diag, diag] += _RIDGE
        b[:, 1:] = bf
        try:
            th = np.linalg.solve(A, b[..., None])[..., 0]
        except np.linalg.LinAlgError:
            th = _pinv_solve(A, b)
    else:
        th = b / A[:, :, 0]  # (B, 1) — scalar normal equation

    negative = np.any(th < 0, axis=1)
    if np.any(negative):
        bad = np.flatnonzero(negative)
        if nnls_mode == "auto" and K <= _NNLS_ENUM_MAX_K:
            th[bad] = _nnls_enumerate(A[bad], b[bad], skip_full=True)
        else:
            from scipy.optimize import nnls

            for idx in bad:
                stack = (
                    np.concatenate([c[idx : idx + 1], fixed], axis=0)
                    if F
                    else c[idx : idx + 1]
                )
                th[idx], _ = nnls(stack.T, target)

    np.multiply(c, th[:, 0:1], out=predicted)
    if F:
        predicted += np.einsum("ik,kn->in", th[:, 1:], fixed)
    predicted -= target[None, :]
    objectives[start:stop] = np.linalg.norm(predicted, axis=1)
    thetas[start:stop] = th


def _nnls_enumerate(
    A: np.ndarray, b: np.ndarray, skip_full: bool = False
) -> np.ndarray:
    """Exact batched NNLS for tiny K via support enumeration.

    ``min ||G^T theta - F||, theta >= 0`` attains its optimum at the
    unconstrained least-squares solution restricted to the optimum's
    support set, and any support whose restricted solution is
    non-negative yields a feasible candidate; minimizing over *all*
    non-empty supports therefore recovers the exact NNLS optimum. For
    the K of this problem (a handful of users) that is a few dozen
    batched tiny solves over only the violating rows — orders of
    magnitude cheaper than one Python-level scipy NNLS per composition,
    which profiling showed dominating whole filtering rounds. Supports
    of size 1 and 2 use closed forms (no LAPACK dispatch); a support
    whose system is numerically singular yields non-finite thetas and
    is simply never selected.

    Parameters
    ----------
    A / b:
        ``(V, K, K)`` ridged normal matrices and ``(V, K)`` right-hand
        sides of the violating rows.
    skip_full:
        Skip the full support. Exact when every row's *unconstrained*
        solution was infeasible (the callers' precondition): the full
        support's stationary point is that same infeasible solution.

    Returns ``(V, K)`` thetas (zero on non-support coordinates).
    Minimizes the residual proxy ``theta.A.theta - 2 theta.b`` (equal
    to ``||G^T theta - F||^2`` up to the constant ``||F||^2``).
    """
    V, K = b.shape
    best_q = np.zeros(V)  # empty support: theta = 0, proxy 0
    best_theta = np.zeros((V, K))
    full = (1 << K) - 1
    with np.errstate(divide="ignore", invalid="ignore"):
        for mask in range(1, full + 1):
            if skip_full and mask == full:
                continue
            support = [k for k in range(K) if (mask >> k) & 1]
            size = len(support)
            b_s = b[:, support]
            if size == 1:
                (i,) = support
                a = A[:, i, i]
                th = b_s / a[:, None]
                q = th[:, 0] * (a * th[:, 0] - 2.0 * b_s[:, 0])
            elif size == 2:
                i, j = support
                a11 = A[:, i, i]
                a22 = A[:, j, j]
                a12 = A[:, i, j]
                det = a11 * a22 - a12 * a12
                t0 = (a22 * b_s[:, 0] - a12 * b_s[:, 1]) / det
                t1 = (a11 * b_s[:, 1] - a12 * b_s[:, 0]) / det
                th = np.stack([t0, t1], axis=1)
                q = (
                    t0 * (a11 * t0 + a12 * t1)
                    + t1 * (a12 * t0 + a22 * t1)
                    - 2.0 * (t0 * b_s[:, 0] + t1 * b_s[:, 1])
                )
            else:
                A_s = A[:, support][:, :, support]
                try:
                    th = np.linalg.solve(A_s, b_s[..., None])[..., 0]
                except np.linalg.LinAlgError:
                    th = _pinv_solve(A_s, b_s)
                q = np.einsum("vi,vij,vj->v", th, A_s, th) - 2.0 * np.einsum(
                    "vi,vi->v", th, b_s
                )
            feasible = np.all(th >= 0.0, axis=1)  # non-finite rows drop out
            if not np.any(feasible):
                continue
            better = feasible & (q < best_q)
            if np.any(better):
                rows = np.flatnonzero(better)
                best_q[rows] = q[rows]
                best_theta[rows] = 0.0
                best_theta[np.ix_(rows, support)] = th[rows]
    return best_theta


def _pinv_solve(A: np.ndarray, b: np.ndarray) -> np.ndarray:
    # Batched pseudo-inverse over the stacked (B, K, K) systems — one
    # gufunc call instead of a Python loop per composition.
    return np.matmul(np.linalg.pinv(A), b[..., None])[..., 0]


@dataclass
class FluxObjective:
    """Bound objective: a flux model over the sniffer nodes plus one observation.

    Handles NaN readings (sniffer dropout) by masking them out of both
    the kernels and the target. Optional per-sniffer ``weights`` turn
    the residual into a weighted LS problem; *relative* weighting
    (``w_i ~ 1/F'_i``) stops the huge near-sink fluxes from dominating
    the fit, which matters because the model is least accurate exactly
    there (paper Fig. 3b).
    """

    model: DiscreteFluxModel
    target: np.ndarray
    weights: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.target = np.asarray(self.target, dtype=float)
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=float)
            if self.weights.shape != self.target.shape:
                raise ConfigurationError(
                    f"weights {self.weights.shape} must match target "
                    f"{self.target.shape}"
                )
            if np.any(self.weights <= 0) or not np.all(np.isfinite(self.weights)):
                raise ConfigurationError("weights must be finite and positive")
        self._weighted_target = (
            self.target if self.weights is None else self.weights * self.target
        )

    @classmethod
    def from_observation(
        cls,
        model: DiscreteFluxModel,
        observation: FluxObservation,
        weighting: str = "absolute",
    ) -> "FluxObjective":
        """Build from a :class:`FluxObservation` over the same sniffer set.

        Parameters
        ----------
        weighting:
            ``"absolute"`` — plain LS on raw flux residuals (the
            paper's formulation and our default); ``"relative"`` —
            residuals scaled by ``1 / max(F'_i, median positive flux)``
            so every sniffer contributes comparably (see the weighting
            ablation bench; helps single-user, hurts multi-user).
        """
        values = np.asarray(observation.values, dtype=float)
        if values.shape[0] != model.node_count:
            raise ConfigurationError(
                f"observation has {values.shape[0]} readings but the model covers "
                f"{model.node_count} nodes"
            )
        good = ~np.isnan(values)
        if not np.any(good):
            raise FittingError("all sniffer readings dropped out; cannot fit")
        if not np.all(good):
            model = model.restrict_to(np.flatnonzero(good))
            values = values[good]
        if weighting == "absolute":
            weights = None
        elif weighting == "relative":
            positive = values[values > 0]
            floor = float(np.median(positive)) if positive.size else 1.0
            weights = 1.0 / np.maximum(values, max(floor, 1e-12))
        else:
            raise ConfigurationError(
                f"weighting must be 'absolute' or 'relative', got {weighting!r}"
            )
        return cls(model=model, target=values, weights=weights)

    @property
    def sniffer_count(self) -> int:
        return int(self.target.shape[0])

    def _weight_kernels(self, kernels: np.ndarray) -> np.ndarray:
        if self.weights is None:
            return kernels
        return kernels * self.weights  # broadcasts over leading axes

    def evaluate(self, sinks: np.ndarray) -> Tuple[np.ndarray, float]:
        """Best thetas and objective for one composition of sink positions."""
        kernels = self.model.geometry_kernels(np.asarray(sinks, dtype=float))
        return solve_thetas(self._weight_kernels(kernels), self._weighted_target)

    def evaluate_batch(
        self,
        candidate_kernels: np.ndarray,
        fixed_kernels: Optional[np.ndarray] = None,
        workspace: Optional[EvalWorkspace] = None,
        preweighted: bool = False,
        engine=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate many single-user candidates against fixed co-users.

        Parameters
        ----------
        candidate_kernels:
            ``(N, n)`` kernels of N candidate positions for the user
            being swept.
        fixed_kernels:
            ``(K-1, n)`` kernels of the other users' incumbent
            positions, or ``None`` for the single-user case.
        workspace:
            Optional scratch-buffer pool reused across sweeps; callers
            evaluating the same pool repeatedly (coordinate descent)
            pass one per pool so the stacked-kernel tensor and solver
            scratch are allocated once instead of per call.
        preweighted:
            The kernels were already passed through per-sniffer
            weighting (:meth:`_weight_kernels`); skip re-weighting.
            Lets sweep loops weight each candidate pool once up front.
        engine:
            Optional :class:`repro.engine.Engine`, forwarded to
            :func:`solve_thetas_batched` for row-parallel solving.

        Returns
        -------
        ``(thetas, objectives)`` of shapes ``(N, K)`` and ``(N,)``
        where the *first* theta column corresponds to the swept user.
        Both are freshly allocated on every call.
        """
        candidate_kernels = np.asarray(candidate_kernels, dtype=float)
        if candidate_kernels.ndim != 2:
            raise ConfigurationError(
                f"candidate_kernels must be (N, n), got {candidate_kernels.shape}"
            )
        ws = workspace if workspace is not None else EvalWorkspace()
        N, n = candidate_kernels.shape
        # Both the single- and multi-user paths go through the factored
        # solver on workspace-pooled buffers: no ``(N, K, n)`` stack is
        # materialized, and when weighting applies it is written
        # straight into the pooled candidate buffer (no weighted temp).
        if preweighted or self.weights is None:
            cand = candidate_kernels
        else:
            cand = np.multiply(
                candidate_kernels, self.weights, out=ws.buffer("cand", (N, n))
            )
        if fixed_kernels is None:
            fixed = None
        else:
            fixed = np.asarray(fixed_kernels, dtype=float)
            if not preweighted:
                fixed = self._weight_kernels(fixed)
        return solve_thetas_candidates(
            cand, fixed, self._weighted_target, workspace=ws, engine=engine
        )
