"""Core contribution #1: NLS fingerprinting of mobile-user positions.

Fits the discrete flux model (Formula 3.4) to sparse flux observations
by Non-linear Least Squares (paper Section IV.A). Positions enter the
objective non-linearly (and non-differentiably on rectangular fields),
so the search is sampling-based; the integrated stretch factors
``theta_j = s_j / r`` enter linearly and are solved in closed form.
"""

from repro.fingerprint.objective import (
    EvalWorkspace,
    FluxObjective,
    solve_thetas,
    solve_thetas_batched,
)
from repro.fingerprint.candidates import (
    CandidateGenerator,
    UniformCandidates,
    GridCandidates,
    DiscCandidates,
    MapSeededCandidates,
)
from repro.fingerprint.results import CompositionFit, LocalizationResult
from repro.fingerprint.nls import NLSLocalizer
from repro.fingerprint.briefing import BriefingResult, brief_flux_map
from repro.fingerprint.usercount import UserCountEstimate, estimate_user_count

__all__ = [
    "EvalWorkspace",
    "FluxObjective",
    "solve_thetas",
    "solve_thetas_batched",
    "CandidateGenerator",
    "UniformCandidates",
    "GridCandidates",
    "DiscCandidates",
    "MapSeededCandidates",
    "CompositionFit",
    "LocalizationResult",
    "NLSLocalizer",
    "BriefingResult",
    "brief_flux_map",
    "UserCountEstimate",
    "estimate_user_count",
]
