"""Recursive flux-map briefing (paper Section III.C, Fig. 4).

With the *full* flux map available, users are identified one at a
time: detect the global traffic peak, take its position as a user
estimate, fit that user's stretch, subtract its modeled flux from the
map, and recurse. Each round removes the dominating user's traffic so
the next peak becomes visible. This is the expensive full-information
method that motivates the sparse-sampling NLS of Section IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.fluxmodel.calibration import estimate_hop_distance
from repro.fluxmodel.discrete import DiscreteFluxModel
from repro.network.topology import Network
from repro.traffic.smoothing import smooth_flux
from repro.util.validation import check_positive


@dataclass
class BriefedUser:
    """One user identified during briefing."""

    position: np.ndarray  # (2,) estimated position (the peak node)
    peak_node: int
    theta: float  # fitted integrated stretch factor s/r
    residual_energy: float  # ||residual||^2 after subtraction


@dataclass
class BriefingResult:
    """Outcome of recursive flux briefing.

    Attributes
    ----------
    users:
        Identified users in detection order (dominant traffic first).
    residual_maps:
        The reduced flux map after each subtraction (Fig. 4 shows these
        for the 3-user example).
    """

    users: List[BriefedUser]
    residual_maps: List[np.ndarray]

    @property
    def positions(self) -> np.ndarray:
        return np.stack([u.position for u in self.users])


def brief_flux_map(
    network: Network,
    flux_map: np.ndarray,
    max_users: int,
    smooth: bool = False,
    min_hops_for_fit: int = 2,
    stop_fraction: float = 0.05,
    hop_distance: Optional[float] = None,
    suppress_hops: float = 2.0,
) -> BriefingResult:
    """Recursively identify users from a full network flux map.

    Parameters
    ----------
    flux_map:
        ``(node_count,)`` total flux at every node.
    max_users:
        Maximum number of rounds (choose conservatively large; the
        recursion stops early when the residual peak falls below
        ``stop_fraction`` of the original peak).
    smooth:
        Neighborhood-average the map before each peak detection. Off
        by default: the collection-tree root carries the *exact*
        global flux maximum, and smoothing can shift the argmax to a
        neighbor.
    min_hops_for_fit:
        Exclude nodes within this many *model distance* of the peak
        from the stretch fit (the near-sink region the model does not
        capture). Implemented as a physical-distance cutoff of
        ``min_hops_for_fit * r_hat``.
    stop_fraction:
        Stop when the current peak is below this fraction of the
        original peak — the remaining map is noise, not a user.
    suppress_hops:
        After subtracting a user's modeled flux, zero the residual
        within ``suppress_hops * r_hat`` of its peak. Formula 3.4
        deliberately under-predicts the near-sink spike (Fig. 3b), so
        plain subtraction leaves a spurious residual peak at every
        already-detected user; the near field belongs almost entirely
        to the detected user anyway.
    """
    flux_map = np.asarray(flux_map, dtype=float)
    if flux_map.shape != (network.node_count,):
        raise ConfigurationError(
            f"flux_map must have shape ({network.node_count},), got {flux_map.shape}"
        )
    if max_users < 1:
        raise ConfigurationError(f"max_users must be >= 1, got {max_users}")
    check_positive("stop_fraction", stop_fraction)

    r_hat = hop_distance if hop_distance is not None else estimate_hop_distance(network)
    model = DiscreteFluxModel(network.field, network.positions, d_floor=r_hat)

    residual = flux_map.copy()
    original_peak = float(smooth_flux(network, residual).max()) if smooth else float(
        residual.max()
    )
    users: List[BriefedUser] = []
    residual_maps: List[np.ndarray] = []

    for _ in range(max_users):
        display = smooth_flux(network, residual) if smooth else residual
        peak_node = int(np.argmax(display))
        peak_value = float(display[peak_node])
        if peak_value <= stop_fraction * original_peak or peak_value <= 0:
            break
        position = network.positions[peak_node].copy()

        # Fit theta on the far-field nodes, where the model is valid.
        kernel = model.geometry_kernel(position)
        dist = np.hypot(
            network.positions[:, 0] - position[0],
            network.positions[:, 1] - position[1],
        )
        far = dist >= min_hops_for_fit * r_hat
        g = kernel[far]
        y = residual[far]
        denom = float(g @ g)
        theta = max(0.0, float(g @ y) / denom) if denom > 0 else 0.0

        predicted = theta * kernel
        residual = np.maximum(residual - predicted, 0.0)
        residual[dist < suppress_hops * r_hat] = 0.0
        users.append(
            BriefedUser(
                position=position,
                peak_node=peak_node,
                theta=theta,
                residual_energy=float(residual @ residual),
            )
        )
        residual_maps.append(residual.copy())

    if not users:
        raise ConfigurationError(
            "briefing found no traffic peak above the stop threshold"
        )
    return BriefingResult(users=users, residual_maps=residual_maps)
