"""Result types for NLS localization."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CompositionFit:
    """One fitted composition of K user positions.

    Attributes
    ----------
    positions:
        ``(K, 2)`` fitted sink positions.
    thetas:
        ``(K,)`` fitted integrated stretch factors ``s_j / r``.
    objective:
        Residual norm ``||F - F'||`` at the fit.
    """

    positions: np.ndarray
    thetas: np.ndarray
    objective: float

    def __post_init__(self) -> None:
        if self.positions.ndim != 2 or self.positions.shape[1] != 2:
            raise ConfigurationError(
                f"positions must be (K, 2), got {self.positions.shape}"
            )
        if self.thetas.shape != (self.positions.shape[0],):
            raise ConfigurationError("one theta per position required")
        if not np.isfinite(self.objective) or self.objective < 0:
            raise ConfigurationError(f"bad objective {self.objective}")

    @property
    def user_count(self) -> int:
        return self.positions.shape[0]

    def active_users(self, theta_floor: float = 1e-6) -> np.ndarray:
        """Users whose fitted stretch is meaningfully non-zero.

        The paper's asynchronous-updating rule: a best fit
        ``s_j/r -> 0`` means user ``j`` did not collect in this window.
        """
        return np.flatnonzero(self.thetas > theta_floor)


@dataclass
class LocalizationResult:
    """Top-M fitted compositions, best first (paper keeps M=10)."""

    fits: List[CompositionFit]

    def __post_init__(self) -> None:
        if not self.fits:
            raise ConfigurationError("LocalizationResult needs at least one fit")
        self.fits = sorted(self.fits, key=lambda f: f.objective)

    @property
    def best(self) -> CompositionFit:
        return self.fits[0]

    def position_estimates(self, objective_ratio: float = 1.5) -> np.ndarray:
        """Majority estimate per user across the top fits.

        The paper filters outlier reports "by adopting the reports of
        majority". We implement that as an objective-weighted mean over
        the fits whose objective is within ``objective_ratio`` of the
        best fit's — clearly inferior compositions are excluded, close
        contenders vote with weight ``1 / objective``. User slots carry
        no identity across compositions (the same physical composition
        can appear with its users permuted), so every fit is aligned to
        the best fit by a min-cost assignment before averaging.
        """
        from scipy.optimize import linear_sum_assignment

        if objective_ratio < 1.0:
            raise ConfigurationError(
                f"objective_ratio must be >= 1, got {objective_ratio}"
            )
        best_obj = self.fits[0].objective
        cutoff = best_obj * objective_ratio + 1e-12
        kept = [f for f in self.fits if f.objective <= cutoff]
        reference = kept[0].positions
        aligned = []
        for f in kept:
            cost = np.linalg.norm(
                f.positions[:, None, :] - reference[None, :, :], axis=2
            )
            rows, cols = linear_sum_assignment(cost)
            permuted = np.empty_like(f.positions)
            permuted[cols] = f.positions[rows]
            aligned.append(permuted)
        stacked = np.stack(aligned)  # (M', K, 2)
        weights = np.array([1.0 / (f.objective + 1e-9) for f in kept])
        weights = weights / weights.sum()
        return np.einsum("m,mkc->kc", weights, stacked)

    def errors_to(self, true_positions: np.ndarray) -> np.ndarray:
        """Per-user localization error of the best-matching assignment.

        Because flux carries no identity, fitted users are matched to
        true users by the error-minimizing permutation (Hungarian
        assignment) before computing distances, as the paper implicitly
        does when reporting average error.
        """
        from scipy.optimize import linear_sum_assignment

        true_positions = np.asarray(true_positions, dtype=float)
        est = self.position_estimates()
        if true_positions.shape != est.shape:
            raise ConfigurationError(
                f"true positions {true_positions.shape} vs estimates {est.shape}"
            )
        cost = np.linalg.norm(est[:, None, :] - true_positions[None, :, :], axis=2)
        rows, cols = linear_sum_assignment(cost)
        return cost[rows, cols]
