"""Candidate position generators for sampling-based NLS search.

The paper tests "10,000 random location samples for each user"
(Fig. 5) — that is :class:`UniformCandidates`. :class:`GridCandidates`
is the deterministic variant; :class:`DiscCandidates` implements the
SMC prediction kernel's uniform-disc proposal (Formula 4.2) and is
also reused for local refinement around an incumbent.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.field import Field
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive


class CandidateGenerator(abc.ABC):
    """Produces candidate sink positions inside a field."""

    @abc.abstractmethod
    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``(count, 2)`` candidate positions inside the field."""


class UniformCandidates(CandidateGenerator):
    """Uniform random candidates over the whole field."""

    def __init__(self, field: Field):
        self.field = field

    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if count <= 0:
            raise ConfigurationError(f"count must be > 0, got {count}")
        return self.field.sample_uniform(count, rng)


class GridCandidates(CandidateGenerator):
    """Deterministic grid candidates (jittered optionally).

    Exhaustive-ish coverage with predictable density; used by the
    search ablation to compare against random sampling.
    """

    def __init__(self, field: Field, jitter: float = 0.0):
        self.field = field
        if jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {jitter}")
        self.jitter = float(jitter)

    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if count <= 0:
            raise ConfigurationError(f"count must be > 0, got {count}")
        xmin, ymin, xmax, ymax = self.field.bounding_box
        side = max(1, int(np.ceil(np.sqrt(count))))
        xs = np.linspace(xmin, xmax, side + 2)[1:-1]
        ys = np.linspace(ymin, ymax, side + 2)[1:-1]
        gx, gy = np.meshgrid(xs, ys)
        pts = np.column_stack([gx.ravel(), gy.ravel()])
        if pts.shape[0] > count:
            # Never hand back more candidates than budgeted, and spread
            # the truncation over the whole grid: dropping the trailing
            # rows of the row-major layout would leave the top band of
            # the field uncovered.
            sel = (np.arange(count, dtype=np.int64) * pts.shape[0]) // count
            pts = pts[sel]
        if self.jitter > 0:
            pts = pts + rng.uniform(-self.jitter, self.jitter, size=pts.shape)
            pts = self.field.clip(pts)
        inside = self.field.contains(pts)
        if not np.all(inside):
            pts = self.field.clip(pts)
        return pts


class DiscCandidates(CandidateGenerator):
    """Uniform candidates within discs around given centers.

    This is the paper's prediction proposal (Formula 4.2): from a
    previous sample position, the next position is uniform within a
    disc of radius ``v_max * dt``. Centers are cycled if ``count``
    exceeds their number; candidates landing outside the field are
    clipped onto it (the user cannot leave the field).
    """

    def __init__(self, field: Field, centers: np.ndarray, radius: float):
        self.field = field
        centers = np.asarray(centers, dtype=float)
        if centers.ndim == 1:
            centers = centers[None, :]
        if centers.ndim != 2 or centers.shape[1] != 2 or centers.shape[0] == 0:
            raise ConfigurationError(
                f"centers must be (m>=1, 2), got {centers.shape}"
            )
        self.centers = centers
        self.radius = check_positive("radius", radius)

    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if count <= 0:
            raise ConfigurationError(f"count must be > 0, got {count}")
        m = self.centers.shape[0]
        which = np.arange(count) % m
        rng.shuffle(which)
        radii = self.radius * np.sqrt(rng.uniform(size=count))
        angles = rng.uniform(0.0, 2.0 * np.pi, size=count)
        pts = self.centers[which] + np.column_stack(
            [radii * np.cos(angles), radii * np.sin(angles)]
        )
        return self.field.clip(pts)


class MapSeededCandidates(CandidateGenerator):
    """Fingerprint-map seeds followed by local disc refinement.

    The classic fingerprinting online stage: the first
    ``seed_positions`` candidates are the top-k map-match cells for the
    observation (best match first), and the remaining budget is spent
    on uniform-disc samples around those seeds — the same local
    proposal as :class:`DiscCandidates` — so the NLS search starts in
    the right basin and refines below the map's grid resolution. An
    ``explore_fraction`` of the refinement budget is diverted to
    uniform field-wide draws: signature matching occasionally picks the
    wrong basin (symmetric deployments, peeling residue), and a purely
    local pool could never escape it. Build one per user from a
    :class:`repro.fpmap.FingerprintMap` match (see :meth:`from_match`),
    or directly from any seed set.

    Attributes
    ----------
    seed_indices:
        Optional map cell ids of the seeds (best first); consumers use
        them to fetch precomputed kernels from the map's LRU block
        cache instead of re-deriving them.
    """

    def __init__(
        self,
        field: Field,
        seed_positions: np.ndarray,
        refine_radius: float,
        seed_indices: Optional[np.ndarray] = None,
        explore_fraction: float = 0.25,
    ):
        self.field = field
        seed_positions = np.asarray(seed_positions, dtype=float)
        if seed_positions.ndim != 2 or seed_positions.shape[1] != 2:
            raise ConfigurationError(
                f"seed_positions must be (k, 2), got {seed_positions.shape}"
            )
        if seed_positions.shape[0] == 0:
            raise ConfigurationError("need at least one seed position")
        self.seed_positions = seed_positions
        self.refine_radius = check_positive("refine_radius", refine_radius)
        self.seed_indices = (
            None
            if seed_indices is None
            else np.asarray(seed_indices, dtype=np.int64)
        )
        if (
            self.seed_indices is not None
            and self.seed_indices.shape != (seed_positions.shape[0],)
        ):
            raise ConfigurationError(
                f"seed_indices {self.seed_indices.shape} must match "
                f"seed_positions {seed_positions.shape}"
            )
        if not 0.0 <= explore_fraction < 1.0:
            raise ConfigurationError(
                f"explore_fraction must be in [0, 1), got {explore_fraction}"
            )
        self.explore_fraction = float(explore_fraction)
        self._refiner = DiscCandidates(field, seed_positions, refine_radius)
        self._explorer = UniformCandidates(field)

    @classmethod
    def from_match(
        cls,
        field: Field,
        match,
        refine_radius: float,
        explore_fraction: float = 0.25,
    ):
        """Build from a :class:`repro.fpmap.MapMatch` (best cell first)."""
        return cls(
            field,
            match.positions,
            refine_radius,
            seed_indices=match.indices,
            explore_fraction=explore_fraction,
        )

    def seed_count(self, count: int) -> int:
        """How many of ``count`` generated candidates are literal seeds."""
        return min(self.seed_positions.shape[0], count)

    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if count <= 0:
            raise ConfigurationError(f"count must be > 0, got {count}")
        k = self.seed_count(count)
        seeds = self.seed_positions[:k]
        if count == k:
            return seeds.copy()
        explore = int((count - k) * self.explore_fraction)
        parts = [seeds]
        if count - k - explore > 0:
            parts.append(self._refiner.generate(count - k - explore, rng))
        if explore > 0:
            parts.append(self._explorer.generate(explore, rng))
        return np.concatenate(parts, axis=0)
