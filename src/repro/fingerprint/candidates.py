"""Candidate position generators for sampling-based NLS search.

The paper tests "10,000 random location samples for each user"
(Fig. 5) — that is :class:`UniformCandidates`. :class:`GridCandidates`
is the deterministic variant; :class:`DiscCandidates` implements the
SMC prediction kernel's uniform-disc proposal (Formula 4.2) and is
also reused for local refinement around an incumbent.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.field import Field
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive


class CandidateGenerator(abc.ABC):
    """Produces candidate sink positions inside a field."""

    @abc.abstractmethod
    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``(count, 2)`` candidate positions inside the field."""


class UniformCandidates(CandidateGenerator):
    """Uniform random candidates over the whole field."""

    def __init__(self, field: Field):
        self.field = field

    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if count <= 0:
            raise ConfigurationError(f"count must be > 0, got {count}")
        return self.field.sample_uniform(count, rng)


class GridCandidates(CandidateGenerator):
    """Deterministic grid candidates (jittered optionally).

    Exhaustive-ish coverage with predictable density; used by the
    search ablation to compare against random sampling.
    """

    def __init__(self, field: Field, jitter: float = 0.0):
        self.field = field
        if jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {jitter}")
        self.jitter = float(jitter)

    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if count <= 0:
            raise ConfigurationError(f"count must be > 0, got {count}")
        xmin, ymin, xmax, ymax = self.field.bounding_box
        side = max(1, int(np.ceil(np.sqrt(count))))
        xs = np.linspace(xmin, xmax, side + 2)[1:-1]
        ys = np.linspace(ymin, ymax, side + 2)[1:-1]
        gx, gy = np.meshgrid(xs, ys)
        pts = np.column_stack([gx.ravel(), gy.ravel()])[:count]
        if self.jitter > 0:
            pts = pts + rng.uniform(-self.jitter, self.jitter, size=pts.shape)
            pts = self.field.clip(pts)
        inside = self.field.contains(pts)
        if not np.all(inside):
            pts = self.field.clip(pts)
        return pts


class DiscCandidates(CandidateGenerator):
    """Uniform candidates within discs around given centers.

    This is the paper's prediction proposal (Formula 4.2): from a
    previous sample position, the next position is uniform within a
    disc of radius ``v_max * dt``. Centers are cycled if ``count``
    exceeds their number; candidates landing outside the field are
    clipped onto it (the user cannot leave the field).
    """

    def __init__(self, field: Field, centers: np.ndarray, radius: float):
        self.field = field
        centers = np.asarray(centers, dtype=float)
        if centers.ndim == 1:
            centers = centers[None, :]
        if centers.ndim != 2 or centers.shape[1] != 2 or centers.shape[0] == 0:
            raise ConfigurationError(
                f"centers must be (m>=1, 2), got {centers.shape}"
            )
        self.centers = centers
        self.radius = check_positive("radius", radius)

    def generate(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if count <= 0:
            raise ConfigurationError(f"count must be > 0, got {count}")
        m = self.centers.shape[0]
        which = np.arange(count) % m
        rng.shuffle(which)
        radii = self.radius * np.sqrt(rng.uniform(size=count))
        angles = rng.uniform(0.0, 2.0 * np.pi, size=count)
        pts = self.centers[which] + np.column_stack(
            [radii * np.cos(angles), radii * np.sin(angles)]
        )
        return self.field.clip(pts)
